//! End-to-end key-value correctness: a SET stored through the whole
//! stack (client app → client Linux kernel model → wire → IX dataplane →
//! KV store) is returned verbatim by a later GET on a different
//! connection, including values large enough to span several TCP
//! segments.

use std::cell::RefCell;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix::apps::kvstore::{KvServer, SharedStore};
use ix::apps::workload::proto;
use ix::baselines::linux::{LinuxHost, LinuxParams};
use ix::core::dataplane::Dataplane;
use ix::core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix::core::params::CostParams;
use ix::nic::fabric::Fabric;
use ix::nic::params::MachineParams;
use ix::sim::{Nanos, SimTime, Simulator};
use ix::tcp::StackConfig;

/// Issues SET(key)=payload then GET(key) on a second connection and
/// checks the bytes round-trip.
struct SetGetClient {
    server: ix::net::Ipv4Addr,
    payload: Vec<u8>,
    phase: u8,
    rx: Vec<u8>,
    got: Rc<RefCell<Option<Vec<u8>>>>,
    started: bool,
}

impl LibixHandler for SetGetClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            ctx.connect(self.server, 11211, 0);
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok);
        match self.phase {
            0 => {
                let req = proto::encode_request(proto::OP_SET, 1, b"the-key", &self.payload);
                ctx.write(Bytes::from(req));
            }
            1 => {
                let req =
                    proto::encode_request(proto::OP_GET, 2, b"the-key", &vec![0u8; self.payload.len()]);
                ctx.write(Bytes::from(req));
            }
            _ => unreachable!(),
        }
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        self.rx.extend_from_slice(data);
        let Some(h) = proto::decode_response_header(&self.rx) else { return };
        if self.rx.len() < h.total_len() {
            return;
        }
        assert_eq!(h.status, proto::ST_OK);
        let body = self.rx[proto::RSP_HDR..h.total_len()].to_vec();
        self.rx.clear();
        match self.phase {
            0 => {
                // SET acknowledged; reconnect for the GET so the value
                // crosses connections (and very likely server threads).
                self.phase = 1;
                ctx.close();
                self.started = false;
            }
            1 => {
                *self.got.borrow_mut() = Some(body);
                ctx.close();
            }
            _ => unreachable!(),
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        !self.started
    }
}

fn roundtrip(payload_len: usize) {
    let mut sim = Simulator::new(77);
    let mut fabric = Fabric::new(4, MachineParams::default());
    let server = fabric.add_host(1, 4, 0);
    let client = fabric.add_host(1, 2, 0);
    let server_ip = fabric.host(server).ip;
    let store = SharedStore::new();
    let st = store.clone();
    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        4,
        CostParams::default(),
        StackConfig::default(),
        Some(11211),
        move |_| Box::new(Libix::new(KvServer::new(st.clone()))),
    );
    let payload: Vec<u8> = (0..payload_len).map(|i| (i * 31 % 251) as u8).collect();
    let got: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
    let g2 = got.clone();
    let p2 = payload.clone();
    let lh = LinuxHost::launch(
        &mut sim,
        fabric.host(client),
        1,
        LinuxParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(SetGetClient {
                server: server_ip,
                payload: p2.clone(),
                phase: 0,
                rx: Vec::new(),
                got: g2.clone(),
                started: false,
            }))
        },
    );
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    lh.seed_arp(server_ip, fabric.host(server).mac);
    sim.run_until(SimTime(Nanos::from_millis(400).as_nanos()));
    let got = got.borrow();
    assert_eq!(
        got.as_deref(),
        Some(&payload[..]),
        "GET must return the SET bytes (len {payload_len})"
    );
    assert_eq!(store.borrow().len(), 1);
}

#[test]
fn small_value_roundtrips() {
    roundtrip(2);
}

#[test]
fn mss_sized_value_roundtrips() {
    roundtrip(1460);
}

#[test]
fn multi_segment_value_roundtrips() {
    roundtrip(10_000);
}
