//! Cross-crate integration tests: the full reproduction stack (fabric +
//! engines + applications) exercised end to end on all three systems,
//! checking the paper's *orderings* hold (exact magnitudes are the
//! benches' job).

use ix::apps::harness::{
    run_echo, run_kv, run_netpipe, EchoConfig, EngineTuning, KvConfig, System,
};
use ix::apps::workload::WorkloadKind;
use ix::sim::Nanos;

fn small_echo(system: System) -> ix::apps::harness::EchoResult {
    let cfg = EchoConfig {
        system,
        server_cores: 4,
        n_clients: 4,
        client_threads: 4,
        conns_per_thread: 8,
        n_per_conn: 64,
        warmup: Nanos::from_millis(4),
        measure: Nanos::from_millis(10),
        ..EchoConfig::default()
    };
    run_echo(&cfg)
}

#[test]
fn netpipe_latency_ordering_matches_paper() {
    let tuning = EngineTuning::default();
    let (ix, _) = run_netpipe(System::Ix, 64, 50, &tuning);
    let (linux, _) = run_netpipe(System::Linux, 64, 50, &tuning);
    let (mtcp, _) = run_netpipe(System::Mtcp, 64, 50, &tuning);
    // Fig 2: IX ≈ 5.7 µs, 4x better than Linux; mTCP an order of
    // magnitude worse than IX.
    assert!(ix < linux && linux < mtcp, "ordering: ix={ix} linux={linux} mtcp={mtcp}");
    assert!(ix > 3_000 && ix < 9_000, "IX one-way {ix} ns");
    assert!(linux > 2 * ix, "Linux should be ≥2x IX ({linux} vs {ix})");
    assert!(mtcp > 5 * ix, "mTCP should be ≫ IX ({mtcp} vs {ix})");
}

#[test]
fn netpipe_large_messages_converge_to_wire_bandwidth() {
    let tuning = EngineTuning::default();
    let (_, ix) = run_netpipe(System::Ix, 262_144, 20, &tuning);
    // A single 10GbE flow: goodput must approach but not exceed 10 Gbps.
    assert!(ix > 5.0 && ix < 10.0, "IX 256KB goodput {ix} Gbps");
}

#[test]
fn echo_throughput_ordering_matches_paper() {
    let ix = small_echo(System::Ix);
    let linux = small_echo(System::Linux);
    let mtcp = small_echo(System::Mtcp);
    // Fig 3b ordering: IX > mTCP > Linux.
    assert!(
        ix.msgs_per_sec > mtcp.msgs_per_sec && mtcp.msgs_per_sec > linux.msgs_per_sec,
        "ix={:.0} mtcp={:.0} linux={:.0}",
        ix.msgs_per_sec,
        mtcp.msgs_per_sec,
        linux.msgs_per_sec
    );
    // Everyone actually moved traffic and closed connections (churn).
    for r in [&ix, &linux, &mtcp] {
        assert!(r.messages > 1_000);
        assert!(r.conns_closed > 0, "RST churn must complete");
    }
}

#[test]
fn echo_payload_sizes_scale_goodput() {
    let small = EchoConfig {
        system: System::Ix,
        server_cores: 4,
        n_clients: 4,
        client_threads: 4,
        conns_per_thread: 8,
        msg_size: 64,
        n_per_conn: 64,
        warmup: Nanos::from_millis(4),
        measure: Nanos::from_millis(10),
        ..EchoConfig::default()
    };
    let big = EchoConfig {
        msg_size: 4096,
        ..small.clone()
    };
    let rs = run_echo(&small);
    let rb = run_echo(&big);
    assert!(
        rb.goodput_gbps > rs.goodput_gbps * 4.0,
        "4KB goodput {:.2} vs 64B {:.2}",
        rb.goodput_gbps,
        rs.goodput_gbps
    );
}

#[test]
fn memcached_ix_beats_linux_on_tail_latency() {
    let mk = |system| KvConfig {
        system,
        workload: WorkloadKind::Usr,
        target_rps: 200_000.0,
        server_cores: if system == System::Ix { 6 } else { 8 },
        n_clients: 8,
        client_threads: 4,
        conns_per_thread: 8,
        warmup: Nanos::from_millis(8),
        measure: Nanos::from_millis(20),
        ..KvConfig::default()
    };
    let ix = run_kv(&mk(System::Ix));
    let linux = run_kv(&mk(System::Linux));
    // Both meet the offered load at this light point.
    assert!(ix.rps > 185_000.0, "IX achieved {}", ix.rps);
    assert!(linux.rps > 185_000.0, "Linux achieved {}", linux.rps);
    // §5.5/Table 2: IX roughly halves the unloaded latencies.
    assert!(
        ix.agent_p99_ns < linux.agent_p99_ns,
        "IX p99 {} vs Linux {}",
        ix.agent_p99_ns,
        linux.agent_p99_ns
    );
    // Kernel-share ordering (§5.5): Linux spends far more CPU in-kernel.
    let share = |r: &ix::apps::harness::KvResult| {
        r.cpu_split.0 as f64 / (r.cpu_split.0 + r.cpu_split.1) as f64
    };
    assert!(
        share(&linux) > share(&ix) + 0.2,
        "kernel shares: linux {:.2} ix {:.2}",
        share(&linux),
        share(&ix)
    );
}

#[test]
fn determinism_same_seed_same_result() {
    let cfg = EchoConfig {
        system: System::Ix,
        server_cores: 2,
        n_clients: 2,
        client_threads: 2,
        conns_per_thread: 4,
        n_per_conn: 32,
        warmup: Nanos::from_millis(2),
        measure: Nanos::from_millis(6),
        seed: 1234,
        ..EchoConfig::default()
    };
    let a = run_echo(&cfg);
    let b = run_echo(&cfg);
    assert_eq!(a.messages, b.messages, "same seed, same message count");
    assert_eq!(a.rtt_p99_ns, b.rtt_p99_ns, "same seed, same tail");
    let c = run_echo(&EchoConfig { seed: 99, ..cfg });
    // A different seed perturbs the workload draw (may coincide on
    // counts, but the full trace differs; check a soft signal).
    let _ = c;
}
