//! Determinism regression: every experiment in this repo must reproduce
//! **byte-identically** from `(configuration, seed)` alone — that is the
//! foundation the golden-trace test, the figure pipeline, and every
//! debugging session stand on. These tests catch any accidental
//! nondeterminism (hash-map iteration order, wall-clock leakage, RNG
//! stream drift) at the whole-experiment level — and also prove the seed
//! is actually wired through, not silently ignored.

use ix_apps::harness::{
    run_connscale, run_echo, run_netpipe_faulted, run_netpipe_seeded, ConnScaleConfig, EchoConfig,
    EngineTuning, System,
};
use ix_faults::{FaultPlan, GilbertElliott, LinkFaults};
use ix_sim::Nanos;
use ix_tcp::StackConfig;

#[test]
fn netpipe_same_seed_reproduces_byte_identically() {
    let tuning = EngineTuning::default();
    let a = run_netpipe_seeded(System::Ix, 256, 40, &tuning, 42);
    let b = run_netpipe_seeded(System::Ix, 256, 40, &tuning, 42);
    // Exact equality, including the f64 goodput bits — not "close".
    assert_eq!(a.0, b.0, "one-way latency diverged between identical runs");
    assert_eq!(
        a.1.to_bits(),
        b.1.to_bits(),
        "goodput diverged between identical runs"
    );
}

#[test]
fn netpipe_different_seeds_measure_different_runs() {
    let tuning = EngineTuning::default();
    // The seed sets the client's start phase; at least one of these
    // perturbations must show up in the measured stats (they park the
    // client at distinct phases of the server's poll cadence).
    let base = run_netpipe_seeded(System::Ix, 256, 40, &tuning, 42);
    let perturbed = (1u64..6)
        .map(|s| run_netpipe_seeded(System::Ix, 256, 40, &tuning, s))
        .any(|r| r != base);
    assert!(perturbed, "five different seeds all reproduced seed 42's stats");
}

#[test]
fn echo_experiment_reproduces_from_config_and_seed() {
    let cfg = EchoConfig {
        server_cores: 2,
        n_clients: 2,
        client_threads: 2,
        conns_per_thread: 4,
        n_per_conn: 32,
        warmup: Nanos::from_millis(1),
        measure: Nanos::from_millis(3),
        seed: 7,
        ..EchoConfig::default()
    };
    let x = run_echo(&cfg);
    let y = run_echo(&cfg);
    // The full result — histograms, counters, debug diagnostics — must
    // match field for field; Debug formatting covers all of them.
    assert_eq!(
        format!("{x:?}"),
        format!("{y:?}"),
        "same (config, seed) produced different results"
    );
}

/// One fixed faulted NetPIPE point: 2% Bernoulli loss layered with a
/// Gilbert–Elliott burst chain and one 2 ms flap on the client cable.
fn faulted_netpipe_point() -> ix_apps::harness::FaultedNetpipeResult {
    let tuning = EngineTuning { stack: StackConfig::low_latency(), ..EngineTuning::default() };
    run_netpipe_faulted(System::Ix, 256, 40, &tuning, 42, 3_000, |_, client_port| {
        FaultPlan::new(0xf1f0).with_link(
            client_port,
            LinkFaults {
                loss: 0.02,
                burst: Some(GilbertElliott::bursty(0.01, 4.0)),
                down_windows: vec![(4_000_000, 6_000_000)],
                ..LinkFaults::default()
            },
        )
    })
}

#[test]
fn faulted_netpipe_replays_byte_identically() {
    let a = faulted_netpipe_point();
    let b = faulted_netpipe_point();
    // The faults must really bite — otherwise this replays nothing —
    // and the transfer must still complete through recovery.
    assert!(a.faults.dropped_total() > 0, "fault plan injected nothing: {:?}", a.faults);
    assert!(a.done, "faulted NetPIPE stalled: {} reps, {:?}", a.reps, a.faults);
    assert!(
        a.server_tcp.retransmits + a.client_tcp.retransmits > 0,
        "drops occurred but nothing was retransmitted"
    );
    // Byte-identical replay: every measurement, every TCP counter, and
    // every fault counter — including the f64 goodput bits.
    assert_eq!(a.one_way_ns, b.one_way_ns, "latency diverged between identical faulted runs");
    assert_eq!(a.goodput_gbps.to_bits(), b.goodput_gbps.to_bits(), "goodput bits diverged");
    assert_eq!((a.reps, a.done), (b.reps, b.done));
    assert_eq!(a.server_tcp, b.server_tcp, "server TCP counters diverged");
    assert_eq!(a.client_tcp, b.client_tcp, "client TCP counters diverged");
    assert_eq!(a.faults, b.faults, "fault counters diverged");
}

/// A small Fig 4 point (the §5.4 rotating-RPC experiment) at a fixed
/// seed. The expected values below were captured before the
/// open-addressing flow-table / TCB-slab / ready-ring rewrite, so this
/// test is the byte-identity contract for that swap: the fast path may
/// only change *how fast* the experiment runs, never *what* it measures.
#[test]
fn fig4_point_replays_byte_identically_across_flow_table_swap() {
    let cfg = ConnScaleConfig {
        system: System::Ix,
        total_conns: 400,
        n_clients: 2,
        client_threads: 2,
        measure: Nanos::from_millis(4),
        ..ConnScaleConfig::default()
    };
    let a = run_connscale(&cfg);
    let b = run_connscale(&cfg);
    // Replay determinism: the same (config, seed) twice in one binary.
    assert_eq!(a.msgs_per_sec.to_bits(), b.msgs_per_sec.to_bits());
    assert_eq!(a.rtt_avg_ns, b.rtt_avg_ns);
    assert_eq!(a.server_conns, b.server_conns);
    // Pinned pre-swap baseline (HashMap flow table, O(conns) client
    // scan): the measured numbers must not move.
    assert_eq!(
        (a.msgs_per_sec.to_bits(), a.rtt_avg_ns, a.misses_per_msg.to_bits(), a.server_conns),
        (0x411397a000000000u64, 37_400u64, 0x3ff6666666666666u64, 400u64),
        "fig4 point diverged from the pinned pre-swap baseline: \
         msgs_per_sec={} ({:#x}) rtt_avg_ns={} misses={:#x} server_conns={}",
        a.msgs_per_sec,
        a.msgs_per_sec.to_bits(),
        a.rtt_avg_ns,
        a.misses_per_msg.to_bits(),
        a.server_conns
    );
}

#[test]
fn faulted_netpipe_different_fault_seed_is_a_different_run() {
    let a = faulted_netpipe_point();
    let tuning = EngineTuning { stack: StackConfig::low_latency(), ..EngineTuning::default() };
    let b = run_netpipe_faulted(System::Ix, 256, 40, &tuning, 42, 3_000, |_, client_port| {
        FaultPlan::new(0x0dd).with_link(
            client_port,
            LinkFaults {
                loss: 0.02,
                burst: Some(GilbertElliott::bursty(0.01, 4.0)),
                down_windows: vec![(4_000_000, 6_000_000)],
                ..LinkFaults::default()
            },
        )
    });
    // Same experiment seed, different fault seed: the fault RNG stream
    // is independent and must actually steer which frames drop.
    assert_ne!(a.faults, b.faults, "fault seed had no effect on the injected faults");
}
