//! Determinism regression: every experiment in this repo must reproduce
//! **byte-identically** from `(configuration, seed)` alone — that is the
//! foundation the golden-trace test, the figure pipeline, and every
//! debugging session stand on. These tests catch any accidental
//! nondeterminism (hash-map iteration order, wall-clock leakage, RNG
//! stream drift) at the whole-experiment level — and also prove the seed
//! is actually wired through, not silently ignored.

use ix_apps::harness::{run_echo, run_netpipe_seeded, EchoConfig, EngineTuning, System};
use ix_sim::Nanos;

#[test]
fn netpipe_same_seed_reproduces_byte_identically() {
    let tuning = EngineTuning::default();
    let a = run_netpipe_seeded(System::Ix, 256, 40, &tuning, 42);
    let b = run_netpipe_seeded(System::Ix, 256, 40, &tuning, 42);
    // Exact equality, including the f64 goodput bits — not "close".
    assert_eq!(a.0, b.0, "one-way latency diverged between identical runs");
    assert_eq!(
        a.1.to_bits(),
        b.1.to_bits(),
        "goodput diverged between identical runs"
    );
}

#[test]
fn netpipe_different_seeds_measure_different_runs() {
    let tuning = EngineTuning::default();
    // The seed sets the client's start phase; at least one of these
    // perturbations must show up in the measured stats (they park the
    // client at distinct phases of the server's poll cadence).
    let base = run_netpipe_seeded(System::Ix, 256, 40, &tuning, 42);
    let perturbed = (1u64..6)
        .map(|s| run_netpipe_seeded(System::Ix, 256, 40, &tuning, s))
        .any(|r| r != base);
    assert!(perturbed, "five different seeds all reproduced seed 42's stats");
}

#[test]
fn echo_experiment_reproduces_from_config_and_seed() {
    let cfg = EchoConfig {
        server_cores: 2,
        n_clients: 2,
        client_threads: 2,
        conns_per_thread: 4,
        n_per_conn: 32,
        warmup: Nanos::from_millis(1),
        measure: Nanos::from_millis(3),
        seed: 7,
        ..EchoConfig::default()
    };
    let x = run_echo(&cfg);
    let y = run_echo(&cfg);
    // The full result — histograms, counters, debug diagnostics — must
    // match field for field; Debug formatting covers all of them.
    assert_eq!(
        format!("{x:?}"),
        format!("{y:?}"),
        "same (config, seed) produced different results"
    );
}
