//! End-to-end robustness under randomized fault mixes: NetPIPE and
//! key-value transfers must complete with byte-identical payloads under
//! Bernoulli loss up to 5% and single link flaps. TCP's loss recovery
//! (RTO, fast retransmit) is what makes that true; these properties
//! exercise it through the whole stack — application, dataplane, NIC
//! rings, faulted switch — with every fault mix drawn from the seeded
//! property harness, so a failing mix reproduces from the test name.
//!
//! The fault-mix strategy is also the workspace's first user of the
//! `prop_filter` and weighted `prop_oneof!` combinators.

use std::cell::RefCell;
use std::rc::Rc;

use ix::apps::harness::{run_netpipe_faulted, EngineTuning, System};
use ix::apps::kvstore::{KvServer, SharedStore};
use ix::apps::workload::proto;
use ix::baselines::linux::{LinuxHost, LinuxParams};
use ix::core::dataplane::Dataplane;
use ix::core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix::core::params::CostParams;
use ix::faults::{FaultPlan, LinkFaults};
use ix::nic::fabric::Fabric;
use ix::nic::params::MachineParams;
use ix::sim::{Nanos, SimTime, Simulator};
use ix::tcp::StackConfig;
use ix::testkit::prop::Strategy;
use ix::testkit::{props, Bytes};

/// One randomized fault to aim at a cable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FaultMix {
    /// Independent per-frame loss, in permille (≤ 50 = 5%).
    Loss { permille: u64 },
    /// A single link flap: down for `len_us` starting at `start_us`.
    Flap { start_us: u64, len_us: u64 },
}

impl FaultMix {
    fn link_faults(&self) -> LinkFaults {
        match *self {
            FaultMix::Loss { permille } => LinkFaults {
                loss: permille as f64 / 1000.0,
                ..LinkFaults::default()
            },
            FaultMix::Flap { start_us, len_us } => LinkFaults {
                down_windows: vec![(start_us * 1000, (start_us + len_us) * 1000)],
                ..LinkFaults::default()
            },
        }
    }
}

/// Draws a fault mix: mostly Bernoulli loss (the common case the 5%
/// bound is about), sometimes a flap. The flap arm uses `prop_filter`
/// to keep the outage inside the first 22 ms so every drawn mix leaves
/// the run time to recover.
fn fault_mix() -> impl Strategy<Value = FaultMix> {
    ix::testkit::prop_oneof![
        3 => (1u64..=50).prop_map(|permille| FaultMix::Loss { permille }),
        1 => (0u64..=20_000, 500u64..=4_000)
            .prop_filter("flap ends inside the run", |&(s, l)| s + l <= 22_000)
            .prop_map(|(start_us, len_us)| FaultMix::Flap { start_us, len_us }),
    ]
}

/// A stack tuned so loss recovery happens on millisecond timescales:
/// the default 200 ms RTO floor would dominate the simulated budget.
fn tuning() -> EngineTuning {
    EngineTuning { stack: StackConfig::low_latency(), ..EngineTuning::default() }
}

props! {
    #![config(cases = 10)]
    #[test]
    fn netpipe_completes_under_fault_mix(mix in fault_mix(), seed in 1u64..1_000) {
        let m = mix.clone();
        let r = run_netpipe_faulted(System::Ix, 256, 30, &tuning(), seed, 3_000, |_, client_port| {
            FaultPlan::new(seed ^ 0xfa17).with_link(client_port, m.link_faults())
        });
        // The transfer must complete in full: NetPIPE only reports
        // `done` when every rep echoed all 256 bytes both ways.
        assert!(
            r.done,
            "NetPIPE stalled under {mix:?} (seed {seed}): {} reps, faults {:?}",
            r.reps, r.faults
        );
        assert_eq!(r.reps, 30);
        // Anything the wire dropped was repaired by a retransmission.
        let retx = r.server_tcp.retransmits + r.client_tcp.retransmits;
        let dropped = r.faults.dropped_total();
        assert!(
            dropped == 0 || retx > 0,
            "{dropped} frames dropped but no retransmissions under {mix:?}"
        );
    }
}

/// Issues SET(key)=payload then GET(key) on a second connection and
/// records what came back.
struct SetGetClient {
    server: ix::net::Ipv4Addr,
    payload: Vec<u8>,
    phase: u8,
    rx: Vec<u8>,
    got: Rc<RefCell<Option<Vec<u8>>>>,
    started: bool,
}

impl LibixHandler for SetGetClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            ctx.connect(self.server, 11211, 0);
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok);
        let (op, seq) = if self.phase == 0 { (proto::OP_SET, 1) } else { (proto::OP_GET, 2) };
        let req = proto::encode_request(op, seq, b"the-key", &self.payload);
        ctx.write(Bytes::from(req));
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        self.rx.extend_from_slice(data);
        let Some(h) = proto::decode_response_header(&self.rx) else { return };
        if self.rx.len() < h.total_len() {
            return;
        }
        assert_eq!(h.status, proto::ST_OK);
        let body = self.rx[proto::RSP_HDR..h.total_len()].to_vec();
        self.rx.clear();
        if self.phase == 0 {
            // SET acknowledged; reconnect for the GET so the value
            // crosses connections.
            self.phase = 1;
            ctx.close();
            self.started = false;
        } else {
            *self.got.borrow_mut() = Some(body);
            ctx.close();
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        !self.started
    }
}

/// SET then GET of a multi-segment value through a faulted cable; the
/// GET must return the SET payload verbatim.
fn kv_roundtrip_faulted(mix: &FaultMix, seed: u64) -> (Option<Vec<u8>>, Vec<u8>) {
    let mut sim = Simulator::new(seed);
    let mut fabric = Fabric::new(4, MachineParams::default());
    let server = fabric.add_host(1, 4, 0);
    let client = fabric.add_host(1, 2, 0);
    let client_port = fabric.host_port(client, 0);
    fabric.install_faults(
        FaultPlan::new(seed ^ 0x6b76).with_link(client_port, mix.link_faults()),
    );
    let server_ip = fabric.host(server).ip;
    let store = SharedStore::new();
    let st = store.clone();
    let cfg = StackConfig::low_latency();
    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        4,
        CostParams::default(),
        cfg.clone(),
        Some(11211),
        move |_| Box::new(Libix::new(KvServer::new(st.clone()))),
    );
    // A payload spanning several TCP segments, so loss can hit the
    // middle of a burst.
    let payload: Vec<u8> = (0..10_000).map(|i| (i * 31 % 251) as u8).collect();
    let got: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
    let (g2, p2) = (got.clone(), payload.clone());
    let lh = LinuxHost::launch(
        &mut sim,
        fabric.host(client),
        1,
        LinuxParams::default(),
        cfg,
        None,
        move |_| {
            Box::new(Libix::new(SetGetClient {
                server: server_ip,
                payload: p2.clone(),
                phase: 0,
                rx: Vec::new(),
                got: g2.clone(),
                started: false,
            }))
        },
    );
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    lh.seed_arp(server_ip, fabric.host(server).mac);
    sim.run_until(SimTime(Nanos::from_millis(3_000).as_nanos()));
    let out = got.borrow().clone();
    (out, payload)
}

props! {
    #![config(cases = 10)]
    #[test]
    fn kv_value_roundtrips_byte_identically_under_fault_mix(
        mix in fault_mix(),
        seed in 1u64..1_000,
    ) {
        let (got, payload) = kv_roundtrip_faulted(&mix, seed);
        assert_eq!(
            got.as_deref(),
            Some(&payload[..]),
            "GET bytes diverged from SET under {mix:?} (seed {seed})"
        );
    }
}

// ---------------------------------------------------------------------
// IXCP queue-hang watchdog: detection, re-steer, recovery.
// ---------------------------------------------------------------------

use ix::apps::harness::{run_fault_recovery, FaultRecoveryConfig};
use ix::core::ixcp::WatchdogStats;
use ix::faults::NicFaults;

/// A server NIC whose RX queue 0 stops draining at 10 ms and never
/// recovers on its own — recovery can only come from the control plane
/// re-steering that queue's flow groups.
fn hang_plan(server_port: u16) -> FaultPlan {
    let mut nic = NicFaults::default();
    nic.rx_hangs.insert(0, vec![(10_000_000, u64::MAX)]);
    FaultPlan::new(1).with_nic(server_port, nic)
}

#[test]
fn watchdog_resteers_hung_queue_and_traffic_recovers() {
    let cfg = FaultRecoveryConfig {
        // Four server cores: the three healthy threads have the CPU
        // headroom to absorb the hung queue's flow groups (re-steering
        // onto a saturated core could never reach the threshold).
        watchdog_period: Some(Nanos::from_millis(1)),
        // Frames wedged in the hung ring are discarded at re-steer and
        // recovered by client retransmission — which must fit in the
        // 40 ms run, hence the millisecond RTO floor.
        tuning: tuning(),
        ..FaultRecoveryConfig::default()
    };
    let r = run_fault_recovery(&cfg, hang_plan);
    let w: WatchdogStats = r.watchdog.expect("watchdog ran");
    assert!(w.scans > 0, "watchdog never scanned: {w:?}");
    assert!(w.hangs_detected >= 1, "hang not detected: {w:?}");
    assert!(w.buckets_resteered > 0, "no RSS buckets re-steered: {w:?}");
    assert!(w.flows_migrated > 0, "no flows migrated off the hung queue: {w:?}");
    // The dip is real (a quarter of the flow groups stall until the
    // watchdog acts) but traffic must be back above 80% of baseline by
    // the end of the run.
    assert!(!r.stalled, "traffic never recovered: {r:?}");
    assert!(
        r.faults.nics.values().any(|n| n.rx_hang_skips > 0),
        "hang plan never suppressed a poll: {:?}",
        r.faults
    );
}

/// Two server RX queues (0 and 1) wedge at the same instant and never
/// recover on their own.
fn double_hang_plan(server_port: u16) -> FaultPlan {
    let mut nic = NicFaults::default();
    nic.rx_hangs.insert(0, vec![(10_000_000, u64::MAX)]);
    nic.rx_hangs.insert(1, vec![(10_000_000, u64::MAX)]);
    FaultPlan::new(1).with_nic(server_port, nic)
}

/// Two queues hang in the same watchdog period. The single-pass
/// re-steer must exclude BOTH from the healthy set: re-steering them
/// one detection at a time used to rotate part of queue 0's buckets
/// onto still-hung queue 1 (and vice versa), leaving those flow groups
/// in a second black hole and the run permanently below the recovery
/// threshold.
#[test]
fn watchdog_resteers_two_simultaneously_hung_queues_in_one_pass() {
    let cfg = FaultRecoveryConfig {
        // Six cores: with two wedged, four healthy threads remain to
        // absorb the re-steered flow groups with CPU headroom.
        server_cores: 6,
        watchdog_period: Some(Nanos::from_millis(1)),
        tuning: tuning(),
        ..FaultRecoveryConfig::default()
    };
    let r = run_fault_recovery(&cfg, double_hang_plan);
    let w: WatchdogStats = r.watchdog.expect("watchdog ran");
    // Exactly one detection per hung queue: the single pass must fully
    // resolve both. Re-detections on later ticks are the signature of
    // the old bug — buckets parked on a queue the same scan already
    // knew was wedged (the per-detection code reported 6 here, plus
    // extra bucket moves and discarded frames for every bounce).
    assert_eq!(w.hangs_detected, 2, "each hang detected once, resolved in one pass: {w:?}");
    assert!(w.buckets_resteered > 0, "no RSS buckets re-steered: {w:?}");
    assert!(w.flows_migrated > 0, "no flows migrated off the hung queues: {w:?}");
    assert!(
        !r.stalled,
        "traffic never recovered from the double hang; dip {:.2}, windows {:?}",
        r.dip_frac, r.per_window_rx_bytes
    );
}

#[test]
fn without_watchdog_the_hung_queue_stays_dead() {
    let cfg = FaultRecoveryConfig {
        server_cores: 2,
        tuning: tuning(),
        ..FaultRecoveryConfig::default()
    };
    let r = run_fault_recovery(&cfg, hang_plan);
    assert!(r.watchdog.is_none());
    // A permanently hung queue strands its flow groups: goodput stays
    // below the 80% recovery threshold for the rest of the run.
    assert!(
        r.stalled,
        "expected a permanent stall without the watchdog; dip {:.2}, windows {:?}",
        r.dip_frac, r.per_window_rx_bytes
    );
}
