//! The paper's core comparison in one program: the same echo application
//! running on IX, on the Linux model, and on the mTCP model — same
//! protocol stack, three execution architectures (§5.2).
//!
//! Run with: `cargo run --release --example three_stacks`

use ix::apps::harness::{run_netpipe, EngineTuning, System};

fn main() {
    println!("NetPIPE 64B ping-pong, same system on both ends (paper Fig 2):\n");
    let tuning = EngineTuning::default();
    let mut rows = Vec::new();
    for sys in [System::Ix, System::Linux, System::Mtcp] {
        let (one_way, _) = run_netpipe(sys, 64, 100, &tuning);
        rows.push((sys, one_way));
        println!("  {:<6} one-way latency: {:>7.2} us", sys.name(), one_way as f64 / 1e3);
    }
    println!();
    println!("paper: IX 5.7us — 4x better than Linux (24us), ~10x better than mTCP.");
    println!("Why: IX polls and runs each packet to completion with adaptive");
    println!("batching; Linux pays interrupts + scheduler wake-ups + syscalls;");
    println!("mTCP trades latency for throughput with coarse-grained batching.");
    assert!(rows[0].1 < rows[1].1, "IX must beat Linux on latency");
    assert!(rows[1].1 < rows[2].1, "Linux must beat mTCP on latency");
}
