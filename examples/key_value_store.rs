//! A memcached-style key-value store served by the IX dataplane, driven
//! by a mutilate-style load generator on Linux-model clients — a
//! miniature of the paper's §5.5 evaluation.
//!
//! Run with: `cargo run --release --example key_value_store`

use ix::apps::harness::{run_kv, KvConfig, System};
use ix::apps::workload::WorkloadKind;
use ix::sim::Nanos;

fn main() {
    println!("memcached-style KV store: IX (6 cores) vs Linux (8 cores), USR workload\n");
    println!(
        "{:>9} | {:>11} {:>11} | {:>11} {:>11}",
        "load", "IX p99(us)", "IX rps", "Lnx p99(us)", "Lnx rps"
    );
    for target in [100e3, 400e3, 800e3] {
        let mut row = format!("{:>8.0}K |", target / 1e3);
        for sys in [System::Ix, System::Linux] {
            let cfg = KvConfig {
                system: sys,
                workload: WorkloadKind::Usr,
                target_rps: target,
                server_cores: if sys == System::Ix { 6 } else { 8 },
                measure: Nanos::from_millis(25),
                ..KvConfig::default()
            };
            let r = run_kv(&cfg);
            row += &format!(" {:>11.1} {:>10.0}K", r.agent_p99_ns as f64 / 1e3, r.rps / 1e3);
            if sys == System::Ix {
                row += " |";
            }
        }
        println!("{row}");
    }
    println!("\nThe Linux column collapses first — the §5.5 result: IX sustains");
    println!("~3.6x the USR load of Linux under the same 500us tail-latency SLA.");
}
