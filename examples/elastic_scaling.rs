//! Elastic thread scaling: the IXCP control plane revokes and grants
//! hardware threads at runtime, migrating RSS flow groups and live
//! connections between elastic threads (§4.1, §4.4) while traffic keeps
//! flowing.
//!
//! Run with: `cargo run --release --example elastic_scaling`

use std::cell::RefCell;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix::core::dataplane::Dataplane;
use ix::core::ixcp::ControlPlane;
use ix::core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix::core::params::CostParams;
use ix::nic::fabric::Fabric;
use ix::nic::params::MachineParams;
use ix::sim::{Nanos, SimTime, Simulator};
use ix::tcp::StackConfig;

struct Echo;
impl LibixHandler for Echo {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        ctx.write(Bytes::copy_from_slice(data));
    }
}

struct Pinger {
    server: ix::net::Ipv4Addr,
    conns: usize,
    started: bool,
    count: Rc<RefCell<u64>>,
}
impl LibixHandler for Pinger {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            for u in 0..self.conns as u64 {
                ctx.connect(self.server, 9090, u);
            }
        }
    }
    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok);
        ctx.write(Bytes::from_static(b"0123456789abcdef"));
    }
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, _d: &Bytes) {
        *self.count.borrow_mut() += 1;
        ctx.write(Bytes::from_static(b"0123456789abcdef"));
    }
    fn wants_tick(&self, _n: u64) -> bool {
        !self.started
    }
}

fn main() {
    let mut sim = Simulator::new(9);
    let mut fabric = Fabric::new(4, MachineParams::default());
    let server = fabric.add_host(1, 8, 0);
    let client = fabric.add_host(1, 2, 0);
    let server_ip = fabric.host(server).ip;

    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        4,
        CostParams::default(),
        StackConfig::default(),
        Some(9090),
        |_| Box::new(Libix::new(Echo)),
    );
    let count = Rc::new(RefCell::new(0u64));
    let c2 = count.clone();
    let cdp = Dataplane::launch(
        &mut sim,
        fabric.host(client),
        1,
        CostParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(Pinger {
                server: server_ip,
                conns: 32,
                started: false,
                count: c2.clone(),
            }))
        },
    );
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    cdp.seed_arp(server_ip, fabric.host(server).mac);

    let mut cp = ControlPlane::new();
    let id = cp.register(sdp);

    let ms = |n: u64| SimTime(Nanos::from_millis(n).as_nanos());
    let rate = |c: &Rc<RefCell<u64>>, last: &mut u64, dt_ms: u64| {
        let now = *c.borrow();
        let r = (now - *last) as f64 / (dt_ms as f64 / 1e3) / 1e3;
        *last = now;
        r
    };
    let mut last = 0u64;

    sim.run_until(ms(20));
    println!("t=20ms  threads=4  rate={:>7.1}K msg/s", rate(&count, &mut last, 20));

    println!(">>> IXCP revokes 3 of 4 elastic threads (flows migrate)");
    cp.set_active_threads(&mut sim, id, 1);
    sim.run_until(ms(40));
    println!("t=40ms  threads={}  rate={:>7.1}K msg/s", cp.active_threads(id), rate(&count, &mut last, 20));

    println!(">>> IXCP grants them back");
    cp.set_active_threads(&mut sim, id, 4);
    sim.run_until(ms(60));
    println!("t=60ms  threads={}  rate={:>7.1}K msg/s", cp.active_threads(id), rate(&count, &mut last, 20));

    let rep = cp.monitor(id);
    println!(
        "\nqueue monitor: max backlog {} frames, drops {} — traffic never stopped.",
        rep.max_rx_backlog, rep.rx_drops
    );
    assert!(*count.borrow() > 0);
}
