//! Quickstart: build a two-host fabric, run an IX echo server and an IX
//! client, and print the round-trip latency — the smallest end-to-end
//! use of the public API.
//!
//! Run with: `cargo run --release --example quickstart`

use std::cell::RefCell;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix::core::dataplane::Dataplane;
use ix::core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix::core::params::CostParams;
use ix::nic::fabric::Fabric;
use ix::nic::params::MachineParams;
use ix::sim::{Nanos, SimTime, Simulator};
use ix::tcp::StackConfig;

/// Echo back everything we receive.
struct Echo;

impl LibixHandler for Echo {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        ctx.charge(150); // Simulated application CPU.
        ctx.write(Bytes::copy_from_slice(data));
    }
}

/// Send one message, await the echo, record the RTT.
struct Ping {
    server: ix::net::Ipv4Addr,
    sent_at: u64,
    rtts: Rc<RefCell<Vec<u64>>>,
    reps: usize,
    started: bool,
}

impl LibixHandler for Ping {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            ctx.connect(self.server, 7777, 0);
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok);
        self.sent_at = ctx.now_ns;
        ctx.write(Bytes::from_static(b"ping ping ping!!")); // 16 bytes.
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, _data: &Bytes) {
        self.rtts.borrow_mut().push(ctx.now_ns - self.sent_at);
        if self.rtts.borrow().len() < self.reps {
            self.sent_at = ctx.now_ns;
            ctx.write(Bytes::from_static(b"ping ping ping!!"));
        } else {
            ctx.close();
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        !self.started
    }
}

fn main() {
    // A switch with two hosts: both will run the IX dataplane.
    let mut sim = Simulator::new(42);
    let mut fabric = Fabric::new(4, MachineParams::default());
    let server = fabric.add_host(1, 2, 0);
    let client = fabric.add_host(1, 2, 0);
    let server_ip = fabric.host(server).ip;

    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        1,
        CostParams::default(),
        StackConfig::default(),
        Some(7777),
        |_| Box::new(Libix::new(Echo)),
    );

    let rtts = Rc::new(RefCell::new(Vec::new()));
    let r2 = rtts.clone();
    let cdp = Dataplane::launch(
        &mut sim,
        fabric.host(client),
        1,
        CostParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(Ping {
                server: server_ip,
                sent_at: 0,
                rtts: r2.clone(),
                reps: 100,
                started: false,
            }))
        },
    );

    // ARP bring-up (the fabric is a single L2 segment).
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    cdp.seed_arp(server_ip, fabric.host(server).mac);

    sim.run_until(SimTime(Nanos::from_millis(50).as_nanos()));

    let rtts = rtts.borrow();
    assert_eq!(rtts.len(), 100, "all pings answered");
    let avg = rtts.iter().sum::<u64>() / rtts.len() as u64;
    println!("IX <-> IX echo over the simulated fabric");
    println!("  round trips : {}", rtts.len());
    println!("  average RTT : {:.2} us", avg as f64 / 1e3);
    println!("  min RTT     : {:.2} us", *rtts.iter().min().expect("nonempty") as f64 / 1e3);
    println!(
        "  (the paper's Fig 2 reports ~5.7 us one-way for 64B, i.e. ~11.4 us RTT)"
    );
    println!("  server processed {} packets", sdp.stats().rx_packets);
}
