#!/usr/bin/env bash
# Tier-1 gate (documented in README.md): the whole pipeline runs
# OFFLINE — the workspace has zero registry dependencies (hermetic-build
# policy, DESIGN.md), so a clean checkout must build, test, and lint
# with no network at all. Any `cargo` invocation that tries to reach
# crates.io is itself a regression.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Zero-copy TX regression gate: run the alloc/copy-count suite by name
# (it is also part of the workspace run above) so a counter drift — a
# reintroduced staging buffer or payload copy — fails with an explicit,
# greppable test name rather than somewhere in the workspace wall.
cargo test -q --offline -p ix-tcp --test zerocopy

# Zero-copy RX regression gate, same shape as the TX one: the identity
# suite pins rx_payload_copies/rx_ooo_copies at 0 and Bytes::ptr_eq
# ring-to-app aliasing; the reassembly suite differentially checks the
# mbuf-holding reorder path against a naive copying oracle.
cargo test -q --offline -p ix-tcp --test rx_zerocopy
cargo test -q --offline -p ix-tcp --test rx_reassembly

# Pre-stack filter / SYN-cookie regression gates: the listener-hardening
# suite pins the RFC 793 §3.4 no-listener RST fields and the half-open
# backlog bound; the cookie suite pins the stateless handshake — zero
# TCB-slab growth and zero held buffers under a 64k-SYN blast.
cargo test -q --offline -p ix-tcp --test syn_filter
cargo test -q --offline -p ix-tcp --test syn_cookies

# Flow-group migration property gate: the differential suite replays
# mid-transfer migrations against a never-migrated oracle and pins
# 0 resets / 0 payload divergence / 0 leaked mbufs, plus the golden
# RTO-rearm trace and the StackStats conservation checks.
cargo test -q --offline -p ix-tcp --test migration

# Bucket-index gate: the per-RSS-bucket intrusive lists on FlowMap must
# stay in lock-step with the probe table under randomized insert /
# remove / extract / absorb churn, and the migration order must be a
# function of insertion history alone, independent of table layout.
cargo test -q --offline -p ix-tcp --test bucket_index

# Batched-RX pipeline gates: the checksum property suite pins the
# widened u64 fold byte-identical to the RFC 1071 u16 reference; the
# rx_batch differential suite replays randomized interleavings through
# the staged pipeline against the per-packet oracle. The byte-identity
# grep pins the named batch_rx-off witness: with the knob off (the
# default every figure sweep runs under), input_batch is globally
# byte-identical to per-packet input().
cargo test -q --offline -p ix-net --test checksum_prop
cargo test --offline -p ix-tcp --test rx_batch 2>&1 | tee /tmp/ci_rxbatch.out
if ! grep -q "test batch_rx_off_is_byte_identical ... ok" /tmp/ci_rxbatch.out; then
    echo "ci: FAIL — batch_rx-off byte-identity witness did not pass" >&2
    exit 1
fi

# Elastic control-loop gate: spike absorption, bounded migration rate,
# hung-target backoff, admission-gate shed/lift, RCU filter republish
# on absorb, and the inert-controller byte-identical determinism pin.
cargo test -q --offline -p ix-core --test elastic

# Microbench smoke: quick mode trims iteration counts so this is a
# does-it-still-run check (plus BENCH_sim.json regeneration), not a
# statistically meaningful measurement. The greps assert the TX- and
# RX-path comparisons actually ran and produced their speedup sections.
IX_BENCH_QUICK=1 cargo bench -q -p ix-bench --offline | tee /tmp/ci_bench.out
if ! grep -q "^\[txpath\] retransmit_front:" /tmp/ci_bench.out; then
    echo "ci: FAIL — txpath microbench comparison did not run" >&2
    exit 1
fi
for wl in deliver_1460b ooo_drain kv_parse_inplace; do
    if ! grep -q "^\[rxpath\] ${wl}:" /tmp/ci_bench.out; then
        echo "ci: FAIL — rxpath/${wl} microbench comparison did not run" >&2
        exit 1
    fi
done
for wl in classify_hit classify_miss syn_cookie_roundtrip; do
    if ! grep -q "^\[filter\] ${wl}:" /tmp/ci_bench.out; then
        echo "ci: FAIL — filter/${wl} microbench did not run" >&2
        exit 1
    fi
done

# Bulk-migration microbench gate: the [migrate] comparisons must run,
# and the bulk extract path must hold a >= 5x speedup over the per-flow
# scan/sort/re-lookup baseline at 100k live flows. The factor gate
# reads extract_100k — its per-iteration cost calibrates to hundreds of
# iterations even in quick mode, so the ratio is stable; the heavier
# absorb points are presence-checked only.
for wl in extract_100k absorb_100k; do
    if ! grep -q "^\[migrate\] ${wl}:" /tmp/ci_bench.out; then
        echo "ci: FAIL — migrate/${wl} microbench comparison did not run" >&2
        exit 1
    fi
done
speedup=$(sed -n 's/^\[migrate\] extract_100k:.*(\([0-9.]*\)x)$/\1/p' /tmp/ci_bench.out)
if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 5.0) }'; then
    echo "ci: FAIL — migrate/extract_100k bulk speedup ${speedup}x is below the 5x floor" >&2
    exit 1
fi
echo "ci: migrate/extract_100k bulk speedup ${speedup}x (floor 5x)"

# Batched-RX microbench gates: the [checksum] and [rxbatch] comparisons
# must run, the flow-grouped batch must hold >= 1.5x over per-frame
# input() (64-frame batches, 16 interleaved flows — the documented
# ACK-coalescing and single-probe-per-flow win), and the widened
# checksum fold must hold >= 2x over the u16 baseline at MTU size. Both
# per-iteration costs calibrate to plenty of iterations in quick mode,
# so the ratios are stable enough to gate.
for wl in verify_64b verify_1460b build_1460b; do
    if ! grep -q "^\[checksum\] ${wl}:" /tmp/ci_bench.out; then
        echo "ci: FAIL — checksum/${wl} microbench comparison did not run" >&2
        exit 1
    fi
done
rxb=$(sed -n 's/^\[rxbatch\] group_probe:.*(\([0-9.]*\)x)$/\1/p' /tmp/ci_bench.out)
if ! awk -v s="$rxb" 'BEGIN { exit !(s >= 1.5) }'; then
    echo "ci: FAIL — rxbatch/group_probe speedup ${rxb}x is below the 1.5x floor" >&2
    exit 1
fi
echo "ci: rxbatch/group_probe batched speedup ${rxb}x (floor 1.5x)"
cks=$(sed -n 's/^\[checksum\] verify_1460b:.*(\([0-9.]*\)x)$/\1/p' /tmp/ci_bench.out)
if ! awk -v s="$cks" 'BEGIN { exit !(s >= 2.0) }'; then
    echo "ci: FAIL — checksum/verify_1460b speedup ${cks}x is below the 2x floor" >&2
    exit 1
fi
echo "ci: checksum/verify_1460b widened-fold speedup ${cks}x (floor 2x)"

# Wall-clock budget: the quick fig5 sweep must stay interactive. The
# ceiling is generous (slow shared CI hosts), but a scheduler or pool
# regression that reintroduces the seed's minutes-long runs trips it.
fig5_budget_s=120
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig5_memcached > /dev/null
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig5 sweep took ${elapsed_s}s (budget ${fig5_budget_s}s)"
if [ "$elapsed_s" -gt "$fig5_budget_s" ]; then
    echo "ci: FAIL — quick fig5 exceeded its wall-clock budget" >&2
    exit 1
fi

# Round-trip smoke: the quick fig3b point set runs the mutilate-style
# closed-loop client against the echo server through the mbuf-holding
# RX delivery path. The budget catches a payload copy (or a pool leak
# forcing window collapse) creeping back into in-order delivery.
fig3b_budget_s=120
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig3b_roundtrips > /dev/null
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig3b sweep took ${elapsed_s}s (budget ${fig3b_budget_s}s)"
if [ "$elapsed_s" -gt "$fig3b_budget_s" ]; then
    echo "ci: FAIL — quick fig3b exceeded its wall-clock budget" >&2
    exit 1
fi

# Connection-scale smoke: the quick fig4 point set (100 and 10k
# connections, all four system/port columns) exercises the flow-table
# demux, TCB slab, and rotating-client ready ring end to end. The
# budget catches an accidental return to per-message O(conns) scans.
fig4_budget_s=120
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig4_connscale > /dev/null
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig4 sweep took ${elapsed_s}s (budget ${fig4_budget_s}s)"
if [ "$elapsed_s" -gt "$fig4_budget_s" ]; then
    echo "ci: FAIL — quick fig4 exceeded its wall-clock budget" >&2
    exit 1
fi

# Batch-bound smoke: the quick fig6 point set drives the adaptive-batch
# sweep through the zero-copy TX path end to end. The budget catches a
# per-segment allocation creeping back into the hot loop (the seed's
# Vec-chain pipeline put this sweep well past the ceiling).
fig6_budget_s=120
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig6_batchbound > /dev/null
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig6 sweep took ${elapsed_s}s (budget ${fig6_budget_s}s)"
if [ "$elapsed_s" -gt "$fig6_budget_s" ]; then
    echo "ci: FAIL — quick fig6 exceeded its wall-clock budget" >&2
    exit 1
fi

# Faulted-sweep smoke: the quick fig7 point set (baseline, 1% loss,
# queue hang + watchdog) must run and recover within its own budget —
# a fault-plane or watchdog regression shows up as a stall (nonzero
# exit is not expected, but the wall-clock catches pathological RTO
# storms that multiply the event count).
fig7_budget_s=60
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig7_faults | tee /tmp/ci_fig7.out | tail -n +4
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig7 sweep took ${elapsed_s}s (budget ${fig7_budget_s}s)"
if [ "$elapsed_s" -gt "$fig7_budget_s" ]; then
    echo "ci: FAIL — quick fig7 exceeded its wall-clock budget" >&2
    exit 1
fi
if ! grep -q "no permanently stalled connections" /tmp/ci_fig7.out; then
    echo "ci: FAIL — quick fig7 reported a stalled scenario" >&2
    exit 1
fi

# Adversarial-sweep smoke: the quick fig8 point set (no-attack baseline
# plus a 4x SYN flood with and without the pre-stack filter) runs the
# attack generator, the NIC filter stage, and the cookie handshake end
# to end; the binary itself asserts the dropped-frames-allocate-nothing
# invariant, so the gate here is budget-only (mirroring fig4/fig6).
fig8_budget_s=120
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig8_adversarial > /dev/null
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig8 sweep took ${elapsed_s}s (budget ${fig8_budget_s}s)"
if [ "$elapsed_s" -gt "$fig8_budget_s" ]; then
    echo "ci: FAIL — quick fig8 exceeded its wall-clock budget" >&2
    exit 1
fi

# Elastic-controller smoke: the quick fig9 point set runs the MMPP
# spike against static and elastic core allocation. The binary prints
# two headline lines the greps pin: the controller-off reruns must be
# bit-identical (the elastic machinery contributes nothing when
# disabled), and the elastic run must absorb the spike under SLA,
# consolidate violation-free, and beat the static core-time.
fig9_budget_s=60
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig9_elastic | tee /tmp/ci_fig9.out | tail -n +4
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig9 sweep took ${elapsed_s}s (budget ${fig9_budget_s}s)"
if [ "$elapsed_s" -gt "$fig9_budget_s" ]; then
    echo "ci: FAIL — quick fig9 exceeded its wall-clock budget" >&2
    exit 1
fi
if ! grep -q "controller-off runs are byte-identical" /tmp/ci_fig9.out; then
    echo "ci: FAIL — quick fig9 controller-off determinism broke" >&2
    exit 1
fi
if ! grep -q "elastic run absorbed the spike" /tmp/ci_fig9.out; then
    echo "ci: FAIL — quick fig9 elastic run missed an acceptance gate" >&2
    exit 1
fi

# Bulk-migration smoke: the quick fig9-scale point set (1k and 10k
# connections) moves whole live shards between cores under echo load
# through the bucket-index extract + batch timer-splice absorb path.
# The headline grep pins flat per-flow scaling (largest point within 2x
# of the smallest), every ping-pong moving the full shard, zero resets,
# and the load stream surviving the burst.
fig9s_budget_s=90
start_s=$SECONDS
IX_SWEEP_QUICK=1 ./target/release/fig9_scale | tee /tmp/ci_fig9s.out | tail -n +4
elapsed_s=$(( SECONDS - start_s ))
echo "ci: quick fig9-scale sweep took ${elapsed_s}s (budget ${fig9s_budget_s}s)"
if [ "$elapsed_s" -gt "$fig9s_budget_s" ]; then
    echo "ci: FAIL — quick fig9-scale exceeded its wall-clock budget" >&2
    exit 1
fi
if ! grep -q "flat migration scaling:" /tmp/ci_fig9s.out; then
    echo "ci: FAIL — quick fig9-scale missed an acceptance gate" >&2
    exit 1
fi

echo "ci: all green"
