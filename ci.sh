#!/usr/bin/env bash
# Tier-1 gate (documented in README.md): the whole pipeline runs
# OFFLINE — the workspace has zero registry dependencies (hermetic-build
# policy, DESIGN.md), so a clean checkout must build, test, and lint
# with no network at all. Any `cargo` invocation that tries to reach
# crates.io is itself a regression.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"
