#!/bin/bash
# Regenerates every paper figure/table into results/.
set -u
cd "$(dirname "$0")"
BIN=./target/release
mkdir -p results
run() {
  name=$1; budget=$2
  echo "=== running $name (budget ${budget}s)"
  timeout "$budget" $BIN/$name > results/$name.txt 2>&1
  echo "=== $name exit=$?"
}
run fig2_netpipe 300
run fig6_batchbound 1200
run fig3c_msgsize 1500
run fig3a_cores 2400
run fig3b_roundtrips 2400
run fig4_connscale 2400
run table2_sla 2400
run ablations 1200
echo ALL_FIGURES_DONE
