//! Property tests (ix-testkit harness) for the descriptor rings: under
//! arbitrary hardware/driver op interleavings the rings stay FIFO with
//! respect to a `VecDeque` reference model and the descriptor accounting
//! identities from the 82599 model hold at every step.

use std::collections::VecDeque;

use ix_mempool::Mbuf;
use ix_nic::ring::{RxRing, TxRing};
use ix_testkit::prelude::*;

/// One step of a ring exercise program. Raw counts are interpreted
/// modulo nothing — the rings themselves must handle overload (tail
/// drop, full rejection) correctly.
#[derive(Debug, Clone)]
enum RingOp {
    /// Hardware deposits a frame (Rx) / driver enqueues one (Tx).
    Push,
    /// Driver polls a frame (Rx) / hardware takes one for the wire (Tx).
    Pop,
    /// Driver returns up to `n` descriptors (Rx replenish; Tx reclaim
    /// ignores the count and collects everything).
    Recycle(usize),
}

fn ring_op() -> impl Strategy<Value = RingOp> {
    prop_oneof![
        (0usize..1).prop_map(|_| RingOp::Push),
        (0usize..1).prop_map(|_| RingOp::Pop),
        (1usize..8).prop_map(RingOp::Recycle),
    ]
}

/// A frame whose payload is a unique tag, so FIFO order is observable.
fn tagged(tag: u32) -> Mbuf {
    let mut m = Mbuf::standalone();
    m.extend_from_slice(&tag.to_le_bytes());
    m
}

fn tag_of(m: &Mbuf) -> u32 {
    u32::from_le_bytes(m.data().try_into().expect("4-byte tag"))
}

props! {
    #![config(cases = 96)]

    /// RX ring vs reference: frames come out in arrival order, drops
    /// happen exactly when no descriptor is posted, and
    /// `posted + pending + unreplenished == capacity` always holds.
    #[test]
    fn rx_ring_matches_reference(
        capacity in 1usize..32,
        ops in collection::vec(ring_op(), 0..200),
    ) {
        let mut ring = RxRing::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next_tag = 0u32;
        let mut model_drops = 0u64;
        let mut model_received = 0u64;
        for op in ops {
            match op {
                RingOp::Push => {
                    let had_descriptor = ring.posted() > 0;
                    let accepted = ring.push(tagged(next_tag));
                    prop_assert_eq!(accepted, had_descriptor, "drop discipline broken");
                    if accepted {
                        model.push_back(next_tag);
                        model_received += 1;
                    } else {
                        model_drops += 1;
                    }
                    next_tag += 1;
                }
                RingOp::Pop => {
                    let got = ring.poll().map(|m| tag_of(&m));
                    prop_assert_eq!(got, model.pop_front(), "FIFO order broken");
                }
                RingOp::Recycle(n) => {
                    let added = ring.replenish(n);
                    prop_assert!(added <= n);
                }
            }
            prop_assert_eq!(ring.pending(), model.len());
            prop_assert_eq!(
                ring.posted() + ring.pending() + ring.unreplenished(),
                capacity,
                "descriptor accounting drifted"
            );
        }
        prop_assert_eq!(ring.drops, model_drops);
        prop_assert_eq!(ring.received, model_received);
    }

    /// TX ring vs reference: wire order equals push order, pushes are
    /// rejected exactly when `free() == 0`, and
    /// `free + pending + unreclaimed == capacity` always holds (with
    /// unreclaimed inferred from the identity before reclaim).
    #[test]
    fn tx_ring_matches_reference(
        capacity in 1usize..32,
        ops in collection::vec(ring_op(), 0..200),
    ) {
        let mut ring = TxRing::new(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut model_unreclaimed = 0usize;
        let mut next_tag = 0u32;
        let mut model_transmitted = 0u64;
        let mut model_rejections = 0u64;
        for op in ops {
            match op {
                RingOp::Push => {
                    let want_accept = model.len() + model_unreclaimed < capacity;
                    match ring.push(tagged(next_tag)) {
                        Ok(()) => {
                            prop_assert!(want_accept, "push accepted on a full ring");
                            model.push_back(next_tag);
                        }
                        Err(back) => {
                            prop_assert!(!want_accept, "push rejected with free slots");
                            prop_assert_eq!(tag_of(&back), next_tag, "rejected wrong frame");
                            model_rejections += 1;
                        }
                    }
                    next_tag += 1;
                }
                RingOp::Pop => {
                    let got = ring.take_for_wire().map(|m| tag_of(&m));
                    let want = model.pop_front();
                    prop_assert_eq!(got, want, "wire order broken");
                    if want.is_some() {
                        model_unreclaimed += 1;
                        model_transmitted += 1;
                    }
                }
                RingOp::Recycle(_) => {
                    prop_assert_eq!(ring.reclaim(), model_unreclaimed);
                    model_unreclaimed = 0;
                }
            }
            prop_assert_eq!(ring.pending(), model.len());
            prop_assert_eq!(
                ring.free() + ring.pending() + model_unreclaimed,
                capacity,
                "descriptor accounting drifted"
            );
        }
        prop_assert_eq!(ring.transmitted, model_transmitted);
        prop_assert_eq!(ring.full_rejections, model_rejections);
    }
}
