//! RX and TX descriptor rings.
//!
//! The rings model the 82599's descriptor mechanics at the level that
//! matters for the paper's results: finite capacity, explicit receive-
//! buffer posting (so an unreplenished ring drops packets — queues "build
//! up only at the NIC edge", §3), and transmit occupancy (a full TX ring
//! back-pressures the stack).

use std::collections::VecDeque;

use ix_mempool::{Mbuf, MbufPool, PoolStats, MBUF_DATA_SIZE};

/// A receive descriptor ring for one hardware queue.
///
/// `posted` counts empty descriptors the driver has handed to the NIC;
/// each arriving frame consumes one. Frames wait in FIFO order until the
/// dataplane polls them out. When no descriptor is posted the frame is
/// dropped (tail drop), which is what 82599 hardware does.
///
/// Each ring owns a receive-buffer pool: an accepted frame is DMA'd —
/// the one copy of the paper's one-copy-from-wire RX path — into a
/// pool-backed, headroom-carrying mbuf, and the sender's transmit buffer
/// is released immediately (a TX completion, as in hardware). The pool
/// mbuf then travels *uncopied* through the stack to the application and
/// returns here only when `recv_done` credits it, so receive-buffer
/// occupancy reflects real consumer backlog.
#[derive(Debug)]
pub struct RxRing {
    capacity: usize,
    posted: usize,
    frames: VecDeque<Mbuf>,
    pool: MbufPool,
    /// Tail-drop counter (no posted descriptor, or no receive buffer).
    pub drops: u64,
    /// The subset of `drops` caused by receive-pool exhaustion: the
    /// consumer is sitting on too many uncredited buffers.
    pub pool_drops: u64,
    /// Total frames accepted.
    pub received: u64,
    /// Deepest the ring has been since the last
    /// [`take_depth_hwm`](RxRing::take_depth_hwm) — the control plane's
    /// queue-depth signal. An instantaneous `pending()` sample aliases
    /// with batched run-to-completion draining (the ring is empty at
    /// most instants even under heavy load); the high-water mark sees
    /// every burst.
    depth_hwm: usize,
}

impl RxRing {
    /// Creates a ring with `capacity` descriptors, fully posted, backed
    /// by a receive pool of twice that many buffers (the default slack
    /// for consumer-held frames; [`RxRing::with_pool`] tunes it).
    pub fn new(capacity: usize) -> RxRing {
        RxRing::with_pool(capacity, capacity * 2)
    }

    /// Creates a ring with `capacity` descriptors and `pool_bufs`
    /// receive buffers (floored at `capacity` so a fully posted ring can
    /// always land). Buffer memory is provisioned lazily in large-page
    /// blocks by the pool.
    pub fn with_pool(capacity: usize, pool_bufs: usize) -> RxRing {
        RxRing {
            capacity,
            posted: capacity,
            frames: VecDeque::with_capacity(capacity),
            pool: MbufPool::new(pool_bufs.max(capacity)),
            drops: 0,
            pool_drops: 0,
            received: 0,
            depth_hwm: 0,
        }
    }

    /// Ring capacity in descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empty descriptors currently available to the NIC.
    pub fn posted(&self) -> usize {
        self.posted
    }

    /// Frames waiting to be polled.
    pub fn pending(&self) -> usize {
        self.frames.len()
    }

    /// Receive-buffer pool accounting (outstanding counts frames held
    /// anywhere between this ring and the application's `recv_done`).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Hardware side: deposit an arriving frame. Returns `false` (and
    /// counts a drop) when no descriptor is posted or no receive buffer
    /// is free. On success the frame is copied once into a pool mbuf
    /// (the DMA write) and the sender's buffer is released.
    pub fn push(&mut self, frame: Mbuf) -> bool {
        if self.posted == 0 {
            self.drops += 1;
            return false;
        }
        let Some(mut buf) = self.pool.alloc() else {
            self.drops += 1;
            self.pool_drops += 1;
            return false;
        };
        // Default headroom leaves room for in-place reply prepends after
        // header pulls; an outsized frame forfeits headroom instead of
        // overflowing the tail.
        if frame.len() > buf.tailroom() {
            buf.set_headroom(MBUF_DATA_SIZE - frame.len());
        }
        buf.extend_from_slice(frame.data());
        self.posted -= 1;
        self.frames.push_back(buf);
        self.received += 1;
        self.depth_hwm = self.depth_hwm.max(self.frames.len());
        true
    }

    /// Driver side: poll one frame, consuming its descriptor. The
    /// descriptor stays unavailable until [`RxRing::replenish`].
    pub fn poll(&mut self) -> Option<Mbuf> {
        self.frames.pop_front()
    }

    /// Driver side: return `n` descriptors to the NIC (bounded by
    /// capacity). Returns how many were actually posted.
    pub fn replenish(&mut self, n: usize) -> usize {
        let room = self.capacity - self.posted - self.frames.len();
        let add = n.min(room);
        self.posted += add;
        add
    }

    /// Descriptors awaiting replenishment (consumed by polled frames).
    pub fn unreplenished(&self) -> usize {
        self.capacity - self.posted - self.frames.len()
    }

    /// Reads and resets the queue-depth high-water mark (floored at the
    /// standing backlog, which is still queued).
    pub fn take_depth_hwm(&mut self) -> usize {
        let hwm = self.depth_hwm.max(self.frames.len());
        self.depth_hwm = self.frames.len();
        hwm
    }
}

/// A transmit descriptor ring for one hardware queue.
///
/// The driver pushes filled frames; the NIC drains them at wire rate. A
/// full ring rejects the push — the dataplane treats that as transmit
/// back-pressure.
#[derive(Debug)]
pub struct TxRing {
    capacity: usize,
    pending: VecDeque<Mbuf>,
    /// Frames handed to the wire but whose descriptors are not yet
    /// reclaimed by the driver.
    unreclaimed: usize,
    /// Total frames transmitted.
    pub transmitted: u64,
    /// Pushes rejected because the ring was full.
    pub full_rejections: u64,
}

impl TxRing {
    /// Creates a ring with `capacity` descriptors.
    pub fn new(capacity: usize) -> TxRing {
        TxRing {
            capacity,
            pending: VecDeque::with_capacity(capacity),
            unreclaimed: 0,
            transmitted: 0,
            full_rejections: 0,
        }
    }

    /// Ring capacity in descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames queued for the wire.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Free descriptors.
    pub fn free(&self) -> usize {
        self.capacity - self.pending.len() - self.unreclaimed
    }

    /// Driver side: enqueue a frame for transmission. Returns the frame
    /// back when the ring is full.
    pub fn push(&mut self, frame: Mbuf) -> Result<(), Mbuf> {
        if self.free() == 0 {
            self.full_rejections += 1;
            return Err(frame);
        }
        self.pending.push_back(frame);
        Ok(())
    }

    /// Hardware side: take the next frame for the wire. Its descriptor
    /// moves to the unreclaimed set until the driver collects it.
    pub fn take_for_wire(&mut self) -> Option<Mbuf> {
        let f = self.pending.pop_front()?;
        self.unreclaimed += 1;
        self.transmitted += 1;
        Some(f)
    }

    /// Driver side: reclaim completed descriptors ("based on the transmit
    /// ring's head position", Fig 1b step 6). Returns how many were
    /// reclaimed.
    pub fn reclaim(&mut self) -> usize {
        let n = self.unreclaimed;
        self.unreclaimed = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Mbuf {
        let mut m = Mbuf::standalone();
        m.extend_from_slice(b"frame");
        m
    }

    #[test]
    fn rx_posting_discipline() {
        let mut r = RxRing::new(2);
        assert_eq!(r.posted(), 2);
        assert!(r.push(frame()));
        assert!(r.push(frame()));
        // No descriptors left: tail drop.
        assert!(!r.push(frame()));
        assert_eq!(r.drops, 1);
        assert_eq!(r.pending(), 2);
        // Polling does not free descriptors by itself.
        let _f = r.poll().unwrap();
        assert_eq!(r.posted(), 0);
        assert_eq!(r.unreplenished(), 1);
        assert_eq!(r.replenish(8), 1);
        assert_eq!(r.posted(), 1);
        assert!(r.push(frame()));
    }

    #[test]
    fn rx_fifo_order() {
        let mut r = RxRing::new(4);
        for i in 0..3u8 {
            let mut m = Mbuf::standalone();
            m.extend_from_slice(&[i]);
            r.push(m);
        }
        for i in 0..3u8 {
            assert_eq!(r.poll().unwrap().data(), &[i]);
        }
        assert!(r.poll().is_none());
    }

    #[test]
    fn rx_push_dmas_into_pool_buffer_and_frees_sender_frame() {
        let mut r = RxRing::with_pool(4, 4);
        assert!(r.push(frame()));
        assert_eq!(r.pool_stats().outstanding, 1);
        let m = r.poll().unwrap();
        assert_eq!(m.data(), b"frame");
        // The polled mbuf carries fresh headroom (for in-place reply
        // prepends after header pulls), not the sender's layout.
        assert!(m.headroom() > 0);
        drop(m);
        assert_eq!(r.pool_stats().outstanding, 0, "dropping the mbuf recycles it");
    }

    #[test]
    fn rx_pool_exhaustion_counts_pool_drop() {
        let mut r = RxRing::with_pool(2, 2);
        r.push(frame());
        r.push(frame());
        let _a = r.poll().unwrap();
        let _b = r.poll().unwrap();
        r.replenish(2);
        // Descriptors are posted, but both receive buffers are still
        // held by the consumer.
        assert!(!r.push(frame()));
        assert_eq!(r.pool_drops, 1);
        assert_eq!(r.drops, 1);
    }

    #[test]
    fn tx_capacity_and_backpressure() {
        let mut t = TxRing::new(2);
        t.push(frame()).unwrap();
        t.push(frame()).unwrap();
        assert!(t.push(frame()).is_err());
        assert_eq!(t.full_rejections, 1);
        // Wire drains one; descriptor still unreclaimed -> still full.
        assert!(t.take_for_wire().is_some());
        assert!(t.push(frame()).is_err());
        assert_eq!(t.reclaim(), 1);
        assert!(t.push(frame()).is_ok());
        assert_eq!(t.transmitted, 1);
    }

    #[test]
    fn tx_wire_order() {
        let mut t = TxRing::new(8);
        for i in 0..4u8 {
            let mut m = Mbuf::standalone();
            m.extend_from_slice(&[i]);
            t.push(m).unwrap();
        }
        for i in 0..4u8 {
            assert_eq!(t.take_for_wire().unwrap().data(), &[i]);
        }
        assert!(t.take_for_wire().is_none());
        assert_eq!(t.reclaim(), 4);
        assert_eq!(t.free(), 8);
    }
}
