//! Calibration constants for the simulated hardware.
//!
//! These are the *physics* of the testbed — link speeds and latencies —
//! plus NIC microarchitecture constants. Software execution costs (per-
//! packet stack work, syscall costs, interrupt handling) live with the
//! execution engines in `ix-core` and `ix-baselines`.
//!
//! Headline calibration targets from the paper:
//!
//! * §2.2: "3 µs latency across a pair of 10 GbE NICs, one to five switch
//!   crossings with cut-through latencies of a few hundred ns each, and
//!   propagation delays of 500 ns for 100 meters."
//! * §5.2: IX-to-IX unloaded one-way latency of 5.7 µs for 64 B messages.

/// Physical and NIC-hardware parameters of one machine / the fabric.
#[derive(Debug, Clone)]
pub struct MachineParams {
    /// Link bandwidth in Gbps (10.0 for every port in the testbed).
    pub link_gbps: f64,
    /// One-way propagation delay per hop (host-switch), ns. Datacenter
    /// scale: ~50 m of fiber.
    pub propagation_ns: u64,
    /// Switch cut-through forwarding latency, ns ("a few hundred ns").
    pub switch_latency_ns: u64,
    /// Fixed NIC transmit-side latency (descriptor fetch + DMA read +
    /// MAC pipeline), ns.
    pub nic_tx_latency_ns: u64,
    /// Fixed NIC receive-side latency (MAC pipeline + DMA write + DDIO
    /// placement), ns. Together with `nic_tx_latency_ns` this calibrates
    /// the paper's "3 µs across a pair of NICs".
    pub nic_rx_latency_ns: u64,
    /// Descriptor-ring capacity per queue (ixgbe default: 512).
    pub ring_entries: usize,
    /// Extra receive-pool buffers per RX queue beyond the posted ring,
    /// covering frames the application still holds between delivery and
    /// `recv_done` (plus out-of-order reassembly). Memory is provisioned
    /// lazily, so generous slack costs nothing until used.
    pub rx_extra_bufs: usize,
    /// Number of hardware queue pairs per port (82599: up to 128; the
    /// experiments use one per hardware thread).
    pub queues_per_port: usize,
    /// L3 cache capacity in bytes (Xeon E5-2665: 20 MB; we follow the
    /// paper's discussion and model the working-set cliff of §5.4).
    pub l3_cache_bytes: u64,
    /// Penalty per L3 miss, ns (DRAM access on the testbed Xeons).
    pub l3_miss_ns: u64,
    /// Baseline L3 misses per message when everything fits in cache
    /// (§5.4: "as little as 1.4 L3 cache misses per message").
    pub ddio_hot_misses_per_msg: f64,
    /// L3 misses per message when the connection working set far exceeds
    /// the cache (§5.4: "25 L3 cache misses per message" at 250 k
    /// connections).
    pub ddio_cold_misses_per_msg: f64,
    /// Bytes of hot per-connection state (TCP PCB fields touched per
    /// message). Determines where the §5.4 cliff begins.
    pub conn_state_bytes: u64,
}

impl Default for MachineParams {
    fn default() -> MachineParams {
        MachineParams {
            link_gbps: 10.0,
            propagation_ns: 250,
            switch_latency_ns: 300,
            nic_tx_latency_ns: 1_500,
            nic_rx_latency_ns: 2_000,
            ring_entries: 512,
            rx_extra_bufs: 2048,
            queues_per_port: 16,
            l3_cache_bytes: 20 * 1024 * 1024,
            l3_miss_ns: 70,
            ddio_hot_misses_per_msg: 1.4,
            ddio_cold_misses_per_msg: 25.0,
            conn_state_bytes: 320,
        }
    }
}

impl MachineParams {
    /// Nanoseconds to serialize a frame carrying `l2_payload` bytes of L2
    /// payload on this machine's links.
    pub fn serialization_ns(&self, l2_payload: usize) -> u64 {
        ix_net::wire::serialization_ns(l2_payload, self.link_gbps)
    }

    /// The unloaded one-way fabric latency (NIC to NIC through one switch)
    /// for a frame with `l2_payload` bytes: the §2.2 "3 µs" pipeline.
    pub fn fabric_one_way_ns(&self, l2_payload: usize) -> u64 {
        self.nic_tx_latency_ns
            + self.serialization_ns(l2_payload)
            + self.propagation_ns
            + self.switch_latency_ns
            + self.serialization_ns(l2_payload)
            + self.propagation_ns
            + self.nic_rx_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_hit_paper_fabric_latency() {
        let p = MachineParams::default();
        // 64B TCP message: 104 B of L2 payload.
        let one_way = p.fabric_one_way_ns(104);
        // Calibrated so the full pipeline (NIC pair + switch crossing +
        // propagation) supports the paper's unloaded latencies.
        assert!(one_way > 3_000 && one_way < 5_500, "one-way {one_way} ns");
    }

    #[test]
    fn serialization_scales_with_size() {
        let p = MachineParams::default();
        assert!(p.serialization_ns(1500) > 10 * p.serialization_ns(1));
        // Min-frame floor: 1-byte and 46-byte payloads serialize alike.
        assert_eq!(p.serialization_ns(1), p.serialization_ns(46));
    }
}
