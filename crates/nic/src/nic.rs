//! The multi-queue NIC port model (Intel 82599-style).

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use ix_faults::FaultsRef;
use ix_mempool::Mbuf;
use ix_net::eth::{EthHeader, EtherType, MacAddr};
use ix_net::filter::{self, FilterPolicy, Verdict};
use ix_net::ip::IpProto;
use ix_net::rss::{hash_ipv4_tuple, RssKey, TOEPLITZ_DEFAULT_KEY};
use ix_sim::Simulator;

use crate::params::MachineParams;
use crate::ring::{RxRing, TxRing};
use crate::switch::Switch;

/// Index of a hardware queue pair within one NIC port.
pub type QueueId = usize;

/// Callback invoked when a frame lands in an RX ring; engines use it to
/// wake from quiescence (IX) or to model interrupt delivery (Linux).
pub type RxNotify = Rc<dyn Fn(&mut Simulator, QueueId)>;

/// Per-port counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Frames delivered into RX rings.
    pub rx_frames: u64,
    /// Frames dropped for lack of posted RX descriptors.
    pub rx_ring_drops: u64,
    /// Frames dropped because the destination MAC did not match.
    pub rx_mac_drops: u64,
    /// Frames placed on the wire.
    pub tx_frames: u64,
    /// Bytes placed on the wire (L2 payload, excluding preamble/FCS).
    pub tx_bytes: u64,
    /// Bytes received (L2 payload).
    pub rx_bytes: u64,
}

/// Per-queue counters for the pre-stack filter stage. The invariant the
/// whole design hangs on: a dropped frame must never touch the receive
/// pool, so `drop_allocs` — measured as the pool's allocation-counter
/// delta across each drop — stays pinned at 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Frames discarded before any pool-mbuf allocation.
    pub drops: u64,
    /// Frames explicitly admitted by the policy (rule or default pass).
    pub passes: u64,
    /// SYN frames admitted but flagged for the stateless-cookie path.
    pub challenges: u64,
    /// Pool allocations observed while executing drops — pinned 0.
    pub drop_allocs: u64,
}

/// One NIC port: RSS steering, per-queue descriptor rings, and wire-rate
/// transmit serialization.
pub struct Nic {
    /// This port's MAC address (bonded ports share one MAC).
    pub mac: MacAddr,
    /// The switch port this NIC is cabled to.
    pub switch_port: u16,
    params: MachineParams,
    rss_key: RssKey,
    /// 128-entry redirection table mapping `hash & 0x7f` to a queue.
    redirection: Vec<QueueId>,
    rx: Vec<RxRing>,
    tx: Vec<TxRing>,
    notify: Vec<Option<RxNotify>>,
    /// Round-robin cursor over TX queues.
    tx_cursor: usize,
    /// Whether a drain event chain is currently active.
    tx_draining: bool,
    switch: Weak<RefCell<Switch>>,
    /// Installed fault plane, if any (shared with the switch; keyed by
    /// this NIC's `switch_port`). Absent by default — the fault-free
    /// path is untouched.
    faults: Option<FaultsRef>,
    /// Installed pre-stack filter policy snapshot, if any (an RCU read
    /// handle published by the control plane). Absent by default — the
    /// unfiltered path is byte-identical to a build without the filter.
    filter: Option<Rc<FilterPolicy>>,
    /// Per-queue filter verdict counters (empty Vec until a policy is
    /// first installed).
    filter_stats: Vec<FilterStats>,
    /// Port counters.
    pub stats: NicStats,
    /// When true, frames whose destination MAC does not match are still
    /// accepted (used by diagnostic taps; off by default).
    pub promiscuous: bool,
}

/// Shared handle to a NIC.
pub type NicRef = Rc<RefCell<Nic>>;

impl Nic {
    /// Creates a NIC with `queues` queue pairs, attached to nothing.
    /// [`crate::fabric::Fabric`] wires it to a switch port.
    pub fn new(mac: MacAddr, queues: usize, params: MachineParams) -> Nic {
        let ring = params.ring_entries;
        Nic {
            mac,
            switch_port: u16::MAX,
            rss_key: TOEPLITZ_DEFAULT_KEY,
            redirection: (0..128).map(|i| i % queues).collect(),
            rx: (0..queues)
                .map(|_| RxRing::with_pool(ring, ring + params.rx_extra_bufs))
                .collect(),
            tx: (0..queues).map(|_| TxRing::new(ring)).collect(),
            notify: (0..queues).map(|_| None).collect(),
            tx_cursor: 0,
            tx_draining: false,
            switch: Weak::new(),
            faults: None,
            filter: None,
            filter_stats: Vec::new(),
            stats: NicStats::default(),
            promiscuous: false,
            params,
        }
    }

    /// Number of queue pairs.
    pub fn queues(&self) -> usize {
        self.rx.len()
    }

    /// Points the NIC at its switch (done by the fabric builder).
    pub fn attach(&mut self, switch: Weak<RefCell<Switch>>, port: u16) {
        self.switch = switch;
        self.switch_port = port;
    }

    /// Installs the RX notification hook for a queue.
    pub fn set_notify(&mut self, q: QueueId, f: RxNotify) {
        self.notify[q] = Some(f);
    }

    /// Installs the fault plane ([`crate::fabric::Fabric::install_faults`]
    /// wires the same handle into the switch).
    pub fn set_faults(&mut self, faults: FaultsRef) {
        self.faults = Some(faults);
    }

    /// Installs (or removes, with `None`) the pre-stack filter policy.
    /// The argument is a published RCU snapshot: the control plane calls
    /// this again after every rule update, so the hot path never takes a
    /// lock or re-resolves the policy — it just derefs the `Rc` it holds.
    pub fn set_filter(&mut self, policy: Option<Rc<FilterPolicy>>) {
        if policy.is_some() && self.filter_stats.is_empty() {
            self.filter_stats = vec![FilterStats::default(); self.queues()];
        }
        self.filter = policy;
    }

    /// The installed filter policy snapshot, if any.
    pub fn filter(&self) -> Option<&Rc<FilterPolicy>> {
        self.filter.as_ref()
    }

    /// Per-queue filter counters (empty slice if no policy was ever
    /// installed).
    pub fn filter_stats(&self) -> &[FilterStats] {
        &self.filter_stats
    }

    /// Filter counters summed over all queues.
    pub fn filter_stats_total(&self) -> FilterStats {
        let mut t = FilterStats::default();
        for s in &self.filter_stats {
            t.drops += s.drops;
            t.passes += s.passes;
            t.challenges += s.challenges;
            t.drop_allocs += s.drop_allocs;
        }
        t
    }

    /// True when RX queue `q` is inside a scripted hang window at
    /// `now_ns`: the driver must not drain it (frames keep landing and
    /// the ring eventually tail-drops, like a wedged DMA consumer).
    /// Always false without a fault plane.
    pub fn rx_queue_hung(&self, now_ns: u64, q: QueueId) -> bool {
        match &self.faults {
            Some(f) => f.borrow_mut().rx_queue_hung(self.switch_port, q, now_ns),
            None => false,
        }
    }

    /// Reprograms the RSS redirection table. `map[i]` is the queue for
    /// hash bucket `i`; the control plane uses this to rebalance flow
    /// groups between elastic threads (§3, §4.4).
    pub fn set_redirection(&mut self, map: Vec<QueueId>) {
        assert_eq!(map.len(), 128, "82599 redirection table has 128 entries");
        let q = self.queues();
        assert!(map.iter().all(|&m| m < q), "queue out of range");
        self.redirection = map;
    }

    /// The current RSS redirection table (`map[i]` = queue for hash
    /// bucket `i`). The control plane reads it to compute incremental
    /// re-steers (e.g. the queue-hang watchdog moving only the buckets
    /// of an unhealthy queue).
    pub fn redirection(&self) -> &[QueueId] {
        &self.redirection
    }

    /// Read access to a queue's RX ring.
    pub fn rx_ring(&mut self, q: QueueId) -> &mut RxRing {
        &mut self.rx[q]
    }

    /// Read access to a queue's TX ring.
    pub fn tx_ring(&mut self, q: QueueId) -> &mut TxRing {
        &mut self.tx[q]
    }

    /// Classifies a frame for RSS: hash of the IPv4/TCP-or-UDP 4-tuple,
    /// or `None` for non-IP traffic (steered to queue 0, like the
    /// 82599's non-RSS default queue).
    fn classify(&self, data: &[u8]) -> QueueId {
        // Minimal, allocation-free peek at the headers. Full validation
        // happens in the stack; RSS hardware only reads the tuple fields.
        if data.len() < EthHeader::LEN + 20 {
            return 0;
        }
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        if ethertype != EtherType::Ipv4.to_u16() {
            return 0;
        }
        let ip = &data[EthHeader::LEN..];
        let ihl = (ip[0] & 0x0f) as usize * 4;
        let proto = IpProto::from_u8(ip[9]);
        if !matches!(proto, IpProto::Tcp | IpProto::Udp) || ip.len() < ihl + 4 {
            return 0;
        }
        let src = ix_net::Ipv4Addr(u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]));
        let dst = ix_net::Ipv4Addr(u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]));
        let l4 = &ip[ihl..];
        let sp = u16::from_be_bytes([l4[0], l4[1]]);
        let dp = u16::from_be_bytes([l4[2], l4[3]]);
        let hash = hash_ipv4_tuple(&self.rss_key, src, dst, sp, dp);
        self.redirection[(hash & 0x7f) as usize]
    }

    /// Computes the RSS queue a flow would be steered to on this NIC;
    /// used by client stacks to probe ephemeral ports (§4.4).
    pub fn queue_for_flow(
        &self,
        src: ix_net::Ipv4Addr,
        dst: ix_net::Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> QueueId {
        let hash = hash_ipv4_tuple(&self.rss_key, src, dst, src_port, dst_port);
        self.redirection[(hash & 0x7f) as usize]
    }

    /// Wire side: a frame has finished arriving (including NIC RX fixed
    /// latency). Steers it into a ring and fires the queue's notify hook.
    pub fn deliver(nic: &NicRef, sim: &mut Simulator, frame: Mbuf) {
        let (hook, q) = {
            let mut n = nic.borrow_mut();
            let data = frame.data();
            if data.len() < EthHeader::LEN {
                n.stats.rx_mac_drops += 1;
                return;
            }
            let dst = MacAddr([data[0], data[1], data[2], data[3], data[4], data[5]]);
            if dst != n.mac && !dst.is_broadcast() && !n.promiscuous {
                n.stats.rx_mac_drops += 1;
                return;
            }
            let q = n.classify(data);
            // Pre-stack filter: classify on fixed-offset fields and, on
            // a drop verdict, discard *here* — before `RxRing::push`
            // allocates the pool mbuf the frame would be copied into.
            // The pool allocation-counter delta across the drop is
            // recorded so tests can pin it at zero rather than trust
            // the control flow.
            if let Some(policy) = n.filter.clone() {
                if let Some(pre) = filter::pre_parse(data) {
                    match policy.classify(&pre, sim.now().as_nanos()) {
                        Verdict::Pass => n.filter_stats[q].passes += 1,
                        Verdict::SynChallenge => n.filter_stats[q].challenges += 1,
                        Verdict::Drop => {
                            let allocs_before = n.rx[q].pool_stats().allocs;
                            drop(frame);
                            let allocs_after = n.rx[q].pool_stats().allocs;
                            n.filter_stats[q].drops += 1;
                            n.filter_stats[q].drop_allocs += allocs_after - allocs_before;
                            return;
                        }
                    }
                }
            }
            let len = frame.len() as u64;
            if n.rx[q].push(frame) {
                n.stats.rx_frames += 1;
                n.stats.rx_bytes += len;
                (n.notify[q].clone(), q)
            } else {
                n.stats.rx_ring_drops += 1;
                return;
            }
        };
        if let Some(hook) = hook {
            hook(sim, q);
        }
    }

    /// Driver side: the stack wrote TX descriptors and rang the doorbell.
    /// Starts the wire-drain event chain if it is idle.
    ///
    /// Fault-plane hook: a scripted doorbell loss swallows this kick —
    /// queued frames sit in the ring until the *next* doorbell (exactly
    /// the failure a missed MMIO write produces).
    pub fn kick_tx(nic: &NicRef, sim: &mut Simulator) {
        let start = {
            let mut n = nic.borrow_mut();
            if n.tx_draining {
                return;
            }
            if let Some(f) = &n.faults {
                if f.borrow_mut().doorbell_lost(n.switch_port) {
                    return;
                }
            }
            n.tx_draining = true;
            sim.now()
        };
        let nic = nic.clone();
        sim.schedule_at(start, move |sim| Nic::drain_one(&nic, sim));
    }

    /// Serializes the next pending TX frame onto the wire, then chains
    /// the next drain at the frame's end-of-serialization instant, which
    /// models back-to-back line-rate transmission.
    fn drain_one(nic: &NicRef, sim: &mut Simulator) {
        // Fault-plane hook: inside a TX hang window the drain engine
        // stalls in place and resumes when the window closes. The
        // `tx_draining` flag stays set so doorbells keep coalescing.
        let hang_until = {
            let n = nic.borrow();
            match &n.faults {
                Some(f) => f.borrow_mut().tx_hang_until(n.switch_port, sim.now().as_nanos()),
                None => None,
            }
        };
        if let Some(end) = hang_until {
            let nic = nic.clone();
            sim.schedule_at(ix_sim::SimTime(end), move |sim| Nic::drain_one(&nic, sim));
            return;
        }
        let (frame, depart, sw, port) = {
            let mut n = nic.borrow_mut();
            let queues = n.queues();
            let mut frame = None;
            for i in 0..queues {
                let q = (n.tx_cursor + i) % queues;
                if let Some(f) = n.tx[q].take_for_wire() {
                    n.tx_cursor = (q + 1) % queues;
                    frame = Some(f);
                    break;
                }
            }
            let Some(frame) = frame else {
                n.tx_draining = false;
                return;
            };
            let l2_payload = frame.len().saturating_sub(EthHeader::LEN);
            let ser = n.params.serialization_ns(l2_payload);
            n.stats.tx_frames += 1;
            n.stats.tx_bytes += frame.len() as u64;
            let depart = sim.now() + ix_sim::Nanos(ser);
            (frame, depart, n.switch.clone(), n.switch_port)
        };
        // Frame reaches switch ingress after NIC fixed latency and the
        // host-to-switch propagation delay.
        let (tx_lat, prop) = {
            let n = nic.borrow();
            (n.params.nic_tx_latency_ns, n.params.propagation_ns)
        };
        let ingress_at = depart + ix_sim::Nanos(tx_lat + prop);
        if let Some(sw) = sw.upgrade() {
            sim.schedule_at(ingress_at, move |sim| {
                Switch::ingress(&sw, sim, frame, port);
            });
        }
        // Chain the next drain at end of this frame's serialization.
        let nic = nic.clone();
        sim.schedule_at(depart, move |sim| Nic::drain_one(&nic, sim));
    }

    /// Current time adjusted view: when the port will next be idle.
    pub fn is_tx_draining(&self) -> bool {
        self.tx_draining
    }

    /// The machine parameters this NIC was built with.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("mac", &self.mac)
            .field("queues", &self.rx.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Nic {
        Nic::new(MacAddr::from_host_index(1), 4, MachineParams::default())
    }

    /// Builds a minimal TCP/IPv4 frame to the given MAC with the tuple.
    fn tcp_frame(dst_mac: MacAddr, sport: u16, dport: u16) -> Mbuf {
        use ix_net::ip::{IpProto, Ipv4Addr, Ipv4Header};
        use ix_net::tcp::{TcpFlags, TcpHeader};
        let mut m = Mbuf::standalone();
        let src = Ipv4Addr::new(10, 0, 0, 9);
        let dst = Ipv4Addr::new(10, 0, 0, 1);
        let tcp = TcpHeader {
            src_port: sport,
            dst_port: dport,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 1000,
            mss: None,
            wscale: None,
        };
        let tcp_len = tcp.len();
        tcp.encode(m.append(tcp_len), src, dst, &[]);
        let ip = Ipv4Header {
            tos: 0,
            total_len: (Ipv4Header::LEN + tcp_len) as u16,
            ident: 0,
            ttl: 64,
            proto: IpProto::Tcp,
            src,
            dst,
        };
        ip.encode(m.prepend(Ipv4Header::LEN));
        let eth = EthHeader {
            dst: dst_mac,
            src: MacAddr::from_host_index(9),
            ethertype: EtherType::Ipv4,
        };
        eth.encode(m.prepend(EthHeader::LEN));
        m
    }

    #[test]
    fn rss_steers_consistently() {
        let nic = mk();
        let f = tcp_frame(nic.mac, 1234, 80);
        let q1 = nic.classify(f.data());
        let q2 = nic.classify(f.data());
        assert_eq!(q1, q2);
        assert!(q1 < 4);
    }

    #[test]
    fn different_flows_spread_over_queues() {
        let nic = mk();
        let mut seen = std::collections::HashSet::new();
        for p in 1000..1200 {
            let f = tcp_frame(nic.mac, p, 80);
            seen.insert(nic.classify(f.data()));
        }
        assert!(seen.len() >= 3, "poor spread: {seen:?}");
    }

    #[test]
    fn deliver_checks_mac_and_posts() {
        let mut sim = Simulator::new(0);
        let nic = Rc::new(RefCell::new(mk()));
        let my_mac = nic.borrow().mac;
        let f = tcp_frame(my_mac, 1234, 80);
        let q = nic.borrow().classify(f.data());
        Nic::deliver(&nic, &mut sim, f);
        assert_eq!(nic.borrow().stats.rx_frames, 1);
        assert_eq!(nic.borrow_mut().rx_ring(q).pending(), 1);
        // Wrong MAC: dropped.
        let f2 = tcp_frame(MacAddr::from_host_index(42), 1234, 80);
        Nic::deliver(&nic, &mut sim, f2);
        assert_eq!(nic.borrow().stats.rx_mac_drops, 1);
    }

    #[test]
    fn notify_fires_on_delivery() {
        let mut sim = Simulator::new(0);
        let nic = Rc::new(RefCell::new(mk()));
        let my_mac = nic.borrow().mac;
        let f = tcp_frame(my_mac, 5555, 80);
        let q = nic.borrow().classify(f.data());
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        nic.borrow_mut()
            .set_notify(q, Rc::new(move |_sim, q| h.borrow_mut().push(q)));
        Nic::deliver(&nic, &mut sim, f);
        assert_eq!(*hits.borrow(), vec![q]);
    }

    #[test]
    fn ring_exhaustion_drops() {
        let mut sim = Simulator::new(0);
        let params = MachineParams { ring_entries: 2, ..MachineParams::default() };
        let nic = Rc::new(RefCell::new(Nic::new(
            MacAddr::from_host_index(1),
            1,
            params,
        )));
        let my_mac = nic.borrow().mac;
        for _ in 0..3 {
            Nic::deliver(&nic, &mut sim, tcp_frame(my_mac, 7, 80));
        }
        let n = nic.borrow();
        assert_eq!(n.stats.rx_frames, 2);
        assert_eq!(n.stats.rx_ring_drops, 1);
    }

    #[test]
    fn filter_drop_happens_before_pool_alloc() {
        use ix_net::filter::{FilterPolicy, RuleAction};
        use ix_net::ip::Ipv4Addr;
        let mut sim = Simulator::new(0);
        let nic = Rc::new(RefCell::new(mk()));
        let my_mac = nic.borrow().mac;
        // Frames come from 10.0.0.9 (the tcp_frame builder); deny it.
        let policy =
            FilterPolicy::new().rule_src(Ipv4Addr::new(10, 0, 0, 9), RuleAction::Drop);
        nic.borrow_mut().set_filter(Some(Rc::new(policy)));
        let f = tcp_frame(my_mac, 1234, 80);
        let q = nic.borrow().classify(f.data());
        let allocs_before = nic.borrow_mut().rx_ring(q).pool_stats().allocs;
        for _ in 0..100 {
            Nic::deliver(&nic, &mut sim, tcp_frame(my_mac, 1234, 80));
        }
        let n = nic.borrow_mut();
        assert_eq!(n.stats.rx_frames, 0, "dropped frames must not land");
        let t = n.filter_stats_total();
        assert_eq!(t.drops, 100);
        assert_eq!(t.drop_allocs, 0, "a dropped frame allocated from the pool");
        drop(n);
        let allocs_after = nic.borrow_mut().rx_ring(q).pool_stats().allocs;
        assert_eq!(allocs_before, allocs_after);
    }

    #[test]
    fn filter_pass_and_challenge_still_deliver() {
        use ix_net::filter::{FilterPolicy, RuleAction};
        let mut sim = Simulator::new(0);
        let nic = Rc::new(RefCell::new(mk()));
        let my_mac = nic.borrow().mac;
        // Challenge rule on port 80: the ACK frames the builder makes
        // are not SYNs, so they pass — and still land in the ring.
        let policy = FilterPolicy::new().rule_port(
            ix_net::ip::IpProto::Tcp,
            80,
            RuleAction::SynChallenge,
        );
        nic.borrow_mut().set_filter(Some(Rc::new(policy)));
        Nic::deliver(&nic, &mut sim, tcp_frame(my_mac, 1234, 80));
        let n = nic.borrow();
        assert_eq!(n.stats.rx_frames, 1);
        assert_eq!(n.filter_stats_total().passes, 1);
        assert_eq!(n.filter_stats_total().drops, 0);
    }

    #[test]
    fn filter_uninstall_restores_plain_path() {
        use ix_net::filter::{FilterPolicy, RuleAction};
        use ix_net::ip::Ipv4Addr;
        let mut sim = Simulator::new(0);
        let nic = Rc::new(RefCell::new(mk()));
        let my_mac = nic.borrow().mac;
        let policy =
            FilterPolicy::new().rule_src(Ipv4Addr::new(10, 0, 0, 9), RuleAction::Drop);
        nic.borrow_mut().set_filter(Some(Rc::new(policy)));
        Nic::deliver(&nic, &mut sim, tcp_frame(my_mac, 1, 80));
        assert_eq!(nic.borrow().stats.rx_frames, 0);
        nic.borrow_mut().set_filter(None);
        Nic::deliver(&nic, &mut sim, tcp_frame(my_mac, 1, 80));
        assert_eq!(nic.borrow().stats.rx_frames, 1);
    }

    #[test]
    fn redirection_table_reprogram() {
        let mut nic = mk();
        // Steer everything to queue 3.
        nic.set_redirection(vec![3; 128]);
        let f = tcp_frame(nic.mac, 1234, 80);
        assert_eq!(nic.classify(f.data()), 3);
    }

    #[test]
    #[should_panic(expected = "128 entries")]
    fn redirection_table_wrong_size_panics() {
        let mut nic = mk();
        nic.set_redirection(vec![0; 64]);
    }
}
