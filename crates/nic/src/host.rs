//! Hosts and CPU cores.

use std::cell::RefCell;
use std::rc::Rc;

use ix_net::eth::MacAddr;
use ix_net::ip::Ipv4Addr;
use ix_sim::{Nanos, SimTime};

use crate::nic::NicRef;

/// Identifies a host within the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(pub u16);

/// Identifies a core within a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId(pub u16);

/// A hardware thread with busy-time accounting.
///
/// Execution engines charge modeled CPU costs here; the core serializes
/// them, which is how queueing delay under load emerges. A hyperthread is
/// a `Core` with `speed < 1.0` — the paper's Fig 3a "half steps indicate
/// hyperthreads".
#[derive(Debug)]
pub struct Core {
    /// Relative execution speed (1.0 = full physical core; a hyperthread
    /// sharing a core runs at roughly 0.6).
    pub speed: f64,
    /// When currently queued work completes.
    pub busy_until: SimTime,
    /// Accumulated busy nanoseconds (for utilization and the §5.5
    /// kernel-time share measurements).
    pub busy_ns: u64,
    /// Busy nanoseconds spent in kernel/dataplane context.
    pub kernel_ns: u64,
    /// Busy nanoseconds spent in user/application context.
    pub user_ns: u64,
}

/// Shared handle to a core.
pub type CoreRef = Rc<RefCell<Core>>;

/// Which protection domain CPU time is charged to; reproduces the §5.5
/// observation that memcached spends ~75% of CPU in the Linux kernel but
/// <10% in the IX dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuDomain {
    /// Kernel or dataplane execution.
    Kernel,
    /// Application execution.
    User,
}

impl Core {
    /// Creates a full-speed core.
    pub fn new() -> Core {
        Core::with_speed(1.0)
    }

    /// Creates a core with the given relative speed.
    pub fn with_speed(speed: f64) -> Core {
        Core {
            speed,
            busy_until: SimTime::ZERO,
            busy_ns: 0,
            kernel_ns: 0,
            user_ns: 0,
        }
    }

    /// Charges `work` of nominal CPU time starting no earlier than `now`,
    /// returning the completion instant. Work is scaled by the core's
    /// speed and serialized after any queued work.
    pub fn run(&mut self, now: SimTime, work: Nanos, domain: CpuDomain) -> SimTime {
        let scaled = Nanos((work.as_nanos() as f64 / self.speed).round() as u64);
        let start = now.max(self.busy_until);
        let end = start + scaled;
        self.busy_until = end;
        self.busy_ns += scaled.as_nanos();
        match domain {
            CpuDomain::Kernel => self.kernel_ns += scaled.as_nanos(),
            CpuDomain::User => self.user_ns += scaled.as_nanos(),
        }
        end
    }

    /// True when the core has no queued work at `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Fraction of the window `[start, end)` this core spent busy.
    /// Callers snapshot `busy_ns` at the window edges.
    pub fn utilization(busy_ns_delta: u64, window: Nanos) -> f64 {
        if window.as_nanos() == 0 {
            return 0.0;
        }
        busy_ns_delta as f64 / window.as_nanos() as f64
    }
}

impl Default for Core {
    fn default() -> Core {
        Core::new()
    }
}

/// A machine: address identity, NIC ports, and cores.
///
/// In the paper's testbed the server exposes either one port (10GbE) or
/// four bonded ports (4x10GbE) and has 8 cores / 16 hyperthreads.
pub struct Host {
    /// Fabric-unique id.
    pub id: HostId,
    /// The host's IPv4 address (one per host; bonds share it).
    pub ip: Ipv4Addr,
    /// The host's MAC (bonded ports share it).
    pub mac: MacAddr,
    /// NIC ports.
    pub nics: Vec<NicRef>,
    /// Hardware threads.
    pub cores: Vec<CoreRef>,
}

impl Host {
    /// Convenience: allocate `n` full cores plus `ht` hyperthreads.
    pub fn make_cores(n: usize, ht: usize, ht_speed: f64) -> Vec<CoreRef> {
        let mut v: Vec<CoreRef> = (0..n).map(|_| Rc::new(RefCell::new(Core::new()))).collect();
        v.extend((0..ht).map(|_| Rc::new(RefCell::new(Core::with_speed(ht_speed)))));
        v
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("ip", &self.ip)
            .field("nics", &self.nics.len())
            .field("cores", &self.cores.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_serializes_work() {
        let mut c = Core::new();
        let t0 = SimTime(1_000);
        let end1 = c.run(t0, Nanos(500), CpuDomain::Kernel);
        assert_eq!(end1, SimTime(1_500));
        // Second charge queues after the first even though "now" is earlier.
        let end2 = c.run(SimTime(1_200), Nanos(300), CpuDomain::User);
        assert_eq!(end2, SimTime(1_800));
        assert_eq!(c.busy_ns, 800);
        assert_eq!(c.kernel_ns, 500);
        assert_eq!(c.user_ns, 300);
    }

    #[test]
    fn idle_gap_not_accumulated() {
        let mut c = Core::new();
        c.run(SimTime(0), Nanos(100), CpuDomain::Kernel);
        // Idle from 100 to 10_000.
        let end = c.run(SimTime(10_000), Nanos(100), CpuDomain::Kernel);
        assert_eq!(end, SimTime(10_100));
        assert_eq!(c.busy_ns, 200);
        assert!(c.idle_at(SimTime(20_000)));
        assert!(!c.idle_at(SimTime(10_050)));
    }

    #[test]
    fn hyperthread_runs_slower() {
        let mut ht = Core::with_speed(0.5);
        let end = ht.run(SimTime(0), Nanos(100), CpuDomain::Kernel);
        assert_eq!(end, SimTime(200));
    }

    #[test]
    fn utilization_math() {
        assert_eq!(Core::utilization(500, Nanos(1_000)), 0.5);
        assert_eq!(Core::utilization(0, Nanos(0)), 0.0);
    }

    #[test]
    fn make_cores_mix() {
        let cores = Host::make_cores(2, 2, 0.6);
        assert_eq!(cores.len(), 4);
        assert_eq!(cores[0].borrow().speed, 1.0);
        assert_eq!(cores[3].borrow().speed, 0.6);
    }
}
