//! Simulated network hardware: multi-queue NICs, links, and the switch.
//!
//! The paper's testbed is a 24-machine cluster of Xeon servers with Intel
//! x520 (82599EB) 10GbE NICs behind a Quanta/Cumulus 48x10GbE cut-through
//! switch (§5.1). This crate is that hardware, as a deterministic model on
//! top of [`ix_sim`]:
//!
//! * [`nic::Nic`] — a multi-queue NIC port with Toeplitz RSS steering into
//!   per-queue descriptor rings, and wire-rate transmit serialization.
//! * [`ring::RxRing`] / [`ring::TxRing`] — descriptor rings with explicit
//!   buffer-posting, so receive-buffer exhaustion drops packets exactly as
//!   real hardware does.
//! * [`switch::Switch`] — MAC-learning cut-through switch with link
//!   aggregation (the 4x10GbE server bond uses an L3+L4 hash, §5.1).
//! * [`cache::DdioModel`] — Intel Data Direct I/O: DMA lands in the L3
//!   cache, so per-message misses stay at ~1.4 until the connection-state
//!   working set outgrows the cache (the §5.4 connection-scalability
//!   cliff).
//! * [`host::Host`] / [`host::Core`] — a machine: cores with busy-until
//!   accounting, NIC ports, addresses.
//! * [`fabric::Fabric`] — topology builder wiring hosts to the switch.

pub mod cache;
pub mod fabric;
pub mod host;
pub mod nic;
pub mod params;
pub mod ring;
pub mod switch;

pub use cache::DdioModel;
pub use fabric::Fabric;
pub use host::{Core, CoreId, Host, HostId};
pub use nic::{Nic, NicRef, NicStats, QueueId, RxNotify};
pub use params::MachineParams;
pub use ring::{RxRing, TxRing};
pub use switch::Switch;
