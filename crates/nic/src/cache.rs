//! Intel Data Direct I/O (DDIO) and the connection-state working set.
//!
//! §5.4 of the paper explains the connection-scalability results (Fig 4):
//! DDIO steers DMA writes into the L3 cache, so at small connection counts
//! a message costs "as little as 1.4 L3 cache misses". At 250,000
//! connections the TCP protocol control blocks no longer fit in L3 and
//! the workload averages 25 misses per message, dropping throughput to
//! 47% of peak. This module is that model: a smooth interpolation from
//! the hot (fits-in-cache) miss rate to the cold (working set ≫ cache)
//! miss rate, converted into a per-message CPU penalty.

use crate::params::MachineParams;

/// The DDIO / L3 working-set model for one server socket.
#[derive(Debug, Clone)]
pub struct DdioModel {
    l3_bytes: f64,
    hot_misses: f64,
    cold_misses: f64,
    conn_state_bytes: f64,
    miss_ns: f64,
}

impl DdioModel {
    /// Builds the model from machine parameters.
    pub fn new(p: &MachineParams) -> DdioModel {
        DdioModel {
            l3_bytes: p.l3_cache_bytes as f64,
            hot_misses: p.ddio_hot_misses_per_msg,
            cold_misses: p.ddio_cold_misses_per_msg,
            conn_state_bytes: p.conn_state_bytes as f64,
            miss_ns: p.l3_miss_ns as f64,
        }
    }

    /// Expected L3 misses for one message when the host currently has
    /// `connections` established connections.
    ///
    /// Model: while the working set (connection state + a fixed stack/app
    /// resident set modeled as half the L3) fits, misses stay at the hot
    /// rate. Beyond that, the probability that a given connection's PCB
    /// is still cached decays with the overcommit ratio, and misses
    /// approach the cold rate asymptotically.
    pub fn misses_per_message(&self, connections: u64) -> f64 {
        let resident = self.l3_bytes * 0.5; // Stack + app hot data.
        let budget = self.l3_bytes - resident;
        let working = connections as f64 * self.conn_state_bytes;
        if working <= budget {
            return self.hot_misses;
        }
        // Fraction of PCB accesses that hit shrinks like budget/working.
        let hit = (budget / working).clamp(0.0, 1.0);
        self.cold_misses - (self.cold_misses - self.hot_misses) * hit
    }

    /// The per-message CPU penalty (ns) at the given connection count,
    /// relative to the hot baseline (the baseline misses are already part
    /// of the calibrated per-packet costs).
    pub fn penalty_ns(&self, connections: u64) -> u64 {
        let extra = (self.misses_per_message(connections) - self.hot_misses).max(0.0);
        (extra * self.miss_ns).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DdioModel {
        DdioModel::new(&MachineParams::default())
    }

    #[test]
    fn hot_below_capacity() {
        let m = model();
        // §5.4: "as little as 1.4 L3 cache misses per message for up to
        // 10,000 concurrent connections".
        assert!((m.misses_per_message(1_000) - 1.4).abs() < 1e-9);
        assert!((m.misses_per_message(10_000) - 1.4).abs() < 1e-9);
        assert_eq!(m.penalty_ns(10_000), 0);
    }

    #[test]
    fn cold_at_quarter_million() {
        let m = model();
        // §5.4: ~25 misses/message at 250k connections.
        let misses = m.misses_per_message(250_000);
        assert!(misses > 20.0 && misses <= 25.0, "misses {misses}");
        assert!(m.penalty_ns(250_000) > 1_000);
    }

    #[test]
    fn monotone_in_connections() {
        let m = model();
        let mut prev = 0.0;
        for c in [1u64, 100, 10_000, 50_000, 100_000, 250_000, 1_000_000] {
            let x = m.misses_per_message(c);
            assert!(x >= prev, "not monotone at {c}");
            prev = x;
        }
        // Never exceeds the cold asymptote.
        assert!(prev <= 25.0 + 1e-9);
    }
}
