//! Topology builder: hosts wired to one switch.

use std::cell::RefCell;
use std::rc::Rc;

use ix_net::eth::MacAddr;
use ix_net::ip::Ipv4Addr;

use crate::host::{Host, HostId};
use crate::nic::{Nic, NicRef};
use crate::params::MachineParams;
use crate::switch::Switch;

/// The simulated machine room: one switch and its hosts.
///
/// Mirrors §5.1: a 48-port switch, 24 clients on one port each, the
/// server on one port (10GbE) or four bonded ports (4x10GbE).
pub struct Fabric {
    /// The switch.
    pub switch: Rc<RefCell<Switch>>,
    /// All hosts, indexed by [`HostId`].
    pub hosts: Vec<Host>,
    params: MachineParams,
    next_port: u16,
}

impl Fabric {
    /// Creates a fabric with a `ports`-port switch.
    pub fn new(ports: usize, params: MachineParams) -> Fabric {
        Fabric {
            switch: Rc::new(RefCell::new(Switch::new(ports, params.clone()))),
            hosts: Vec::new(),
            params,
            next_port: 0,
        }
    }

    /// Adds a host with `n_ports` NIC ports (bonded if more than one,
    /// sharing one MAC and IP) and `cores` full-speed hardware threads
    /// plus `hyperthreads` reduced-speed ones.
    ///
    /// # Panics
    ///
    /// Panics if the switch runs out of ports.
    pub fn add_host(&mut self, n_ports: usize, cores: usize, hyperthreads: usize) -> HostId {
        let id = HostId(self.hosts.len() as u16);
        let mac = MacAddr::from_host_index(id.0 + 1);
        let ip = Ipv4Addr::from_host_index(id.0 + 1);
        let mut nics: Vec<NicRef> = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            let port = self.next_port;
            self.next_port += 1;
            assert!(
                (port as usize) < self.switch.borrow().port_count(),
                "switch out of ports"
            );
            let nic = Rc::new(RefCell::new(Nic::new(
                mac,
                self.params.queues_per_port,
                self.params.clone(),
            )));
            nic.borrow_mut().attach(Rc::downgrade(&self.switch), port);
            self.switch.borrow_mut().attach(port, nic.clone(), mac);
            nics.push(nic);
        }
        self.hosts.push(Host {
            id,
            ip,
            mac,
            nics,
            cores: Host::make_cores(cores, hyperthreads, 0.6),
        });
        id
    }

    /// Looks up a host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Installs a fault plan across the whole fabric: the switch and
    /// every NIC share one live [`ix_faults::FaultState`], so per-link
    /// and per-queue counters accumulate in one place. Returns the
    /// handle for snapshotting counters. Call after all hosts exist;
    /// links/NICs are keyed by switch port (see [`Fabric::host_port`]).
    pub fn install_faults(&mut self, plan: ix_faults::FaultPlan) -> ix_faults::FaultsRef {
        let state = ix_faults::FaultState::shared(plan);
        self.switch.borrow_mut().set_faults(state.clone());
        for host in &self.hosts {
            for nic in &host.nics {
                nic.borrow_mut().set_faults(state.clone());
            }
        }
        state
    }

    /// The switch port of a host's `nth` NIC — the key for that link in
    /// a [`ix_faults::FaultPlan`].
    pub fn host_port(&self, id: HostId, nth: usize) -> u16 {
        self.hosts[id.0 as usize].nics[nth].borrow().switch_port
    }

    /// The machine parameters the fabric was built with.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Finds the host owning `ip`, if any.
    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<&Host> {
        self.hosts.iter().find(|h| h.ip == ip)
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("hosts", &self.hosts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ix_mempool::Mbuf;
    use ix_net::eth::{EthHeader, EtherType};
    use ix_net::ip::{IpProto, Ipv4Header};
    use ix_net::tcp::{TcpFlags, TcpHeader};
    use ix_net::wire::frame_wire_bytes;
    use ix_sim::{Nanos, SimTime, Simulator};

    fn testbed() -> Fabric {
        let mut f = Fabric::new(8, MachineParams::default());
        f.add_host(1, 2, 0); // Host 0.
        f.add_host(1, 2, 0); // Host 1.
        f
    }

    /// Builds a TCP frame from host `src` to host `dst`.
    fn frame_between(f: &Fabric, src: HostId, dst: HostId, payload: &[u8]) -> Mbuf {
        let s = f.host(src);
        let d = f.host(dst);
        let mut m = Mbuf::standalone();
        m.extend_from_slice(payload);
        let tcp = TcpHeader {
            src_port: 1234,
            dst_port: 80,
            seq: 1,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 1000,
            mss: None,
            wscale: None,
        };
        let tlen = tcp.len();
        let data_copy: Vec<u8> = m.data().to_vec();
        tcp.encode(m.prepend(tlen), s.ip, d.ip, &data_copy);
        let ip = Ipv4Header {
            tos: 0,
            total_len: (Ipv4Header::LEN + tlen + payload.len()) as u16,
            ident: 0,
            ttl: 64,
            proto: IpProto::Tcp,
            src: s.ip,
            dst: d.ip,
        };
        ip.encode(m.prepend(Ipv4Header::LEN));
        EthHeader {
            dst: d.mac,
            src: s.mac,
            ethertype: EtherType::Ipv4,
        }
        .encode(m.prepend(EthHeader::LEN));
        m
    }

    #[test]
    fn end_to_end_frame_delivery() {
        let mut sim = Simulator::new(1);
        let f = testbed();
        let frame = frame_between(&f, HostId(0), HostId(1), b"ping");
        let src_nic = f.host(HostId(0)).nics[0].clone();
        // Enqueue on queue 0 TX and kick.
        assert!(
            src_nic.borrow_mut().tx_ring(0).push(frame).is_ok(),
            "tx ring accepts"
        );
        crate::nic::Nic::kick_tx(&src_nic, &mut sim);
        sim.run();
        let dst_nic = &f.host(HostId(1)).nics[0];
        assert_eq!(dst_nic.borrow().stats.rx_frames, 1);
        // The frame content survived the trip.
        let q = {
            let mut found = None;
            let mut n = dst_nic.borrow_mut();
            for q in 0..n.queues() {
                if n.rx_ring(q).pending() > 0 {
                    found = Some(q);
                    break;
                }
            }
            found.expect("frame landed in some queue")
        };
        let got = dst_nic.borrow_mut().rx_ring(q).poll().unwrap();
        assert!(got.data().ends_with(b"ping"));
    }

    #[test]
    fn latency_matches_fabric_pipeline() {
        let mut sim = Simulator::new(1);
        let f = testbed();
        let payload = b"x".repeat(64);
        let frame = frame_between(&f, HostId(0), HostId(1), &payload);
        let l2 = frame.len() - EthHeader::LEN;
        let src_nic = f.host(HostId(0)).nics[0].clone();
        src_nic.borrow_mut().tx_ring(0).push(frame).ok().unwrap();
        let t0 = sim.now();
        crate::nic::Nic::kick_tx(&src_nic, &mut sim);
        sim.run();
        let elapsed = sim.now().since(t0);
        let expect = f.params().fabric_one_way_ns(l2);
        assert_eq!(elapsed, Nanos(expect), "one-way {elapsed}");
    }

    #[test]
    fn back_to_back_frames_serialize_at_line_rate() {
        let mut sim = Simulator::new(1);
        let f = testbed();
        let src_nic = f.host(HostId(0)).nics[0].clone();
        let n = 100;
        for _ in 0..n {
            let frame = frame_between(&f, HostId(0), HostId(1), &[0u8; 1000]);
            src_nic.borrow_mut().tx_ring(0).push(frame).ok().unwrap();
        }
        crate::nic::Nic::kick_tx(&src_nic, &mut sim);
        sim.run();
        let dst_nic = &f.host(HostId(1)).nics[0];
        assert_eq!(dst_nic.borrow().stats.rx_frames, n as u64);
        // Total time ≈ pipeline latency + n * serialization.
        let l2 = 1000 + 40 + EthHeader::LEN; // payload + ip/tcp headers... approximate below.
        let ser = f.params().serialization_ns(1000 + 40);
        let total = sim.now().as_nanos();
        let floor = (n as u64) * ser;
        assert!(total >= floor, "total {total} < serialization floor {floor}");
        assert!(total < floor + 10_000, "total {total} too slow");
        let _ = l2;
    }

    #[test]
    fn bonded_host_spreads_flows_over_ports() {
        let mut f = Fabric::new(8, MachineParams::default());
        let client = f.add_host(1, 1, 0);
        let server = f.add_host(4, 8, 0); // 4x10GbE bond.
        let mut sim = Simulator::new(1);
        // Many flows with different source ports.
        let src_nic = f.host(client).nics[0].clone();
        for port in 0..200u16 {
            let s = f.host(client);
            let d = f.host(server);
            let mut m = Mbuf::standalone();
            let tcp = TcpHeader {
                src_port: 10_000 + port,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 1000,
                mss: Some(1460),
                wscale: None,
            };
            let tlen = tcp.len();
            tcp.encode(m.append(tlen), s.ip, d.ip, &[]);
            Ipv4Header {
                tos: 0,
                total_len: (Ipv4Header::LEN + tlen) as u16,
                ident: 0,
                ttl: 64,
                proto: IpProto::Tcp,
                src: s.ip,
                dst: d.ip,
            }
            .encode(m.prepend(Ipv4Header::LEN));
            EthHeader {
                dst: d.mac,
                src: s.mac,
                ethertype: EtherType::Ipv4,
            }
            .encode(m.prepend(EthHeader::LEN));
            src_nic.borrow_mut().tx_ring(0).push(m).ok().unwrap();
        }
        crate::nic::Nic::kick_tx(&src_nic, &mut sim);
        sim.run();
        let ports_hit = f
            .host(server)
            .nics
            .iter()
            .filter(|n| n.borrow().stats.rx_frames > 0)
            .count();
        assert!(ports_hit >= 3, "LAG hash used only {ports_hit} ports");
        let total: u64 = f
            .host(server)
            .nics
            .iter()
            .map(|n| n.borrow().stats.rx_frames)
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn wire_accounting_matches_frames() {
        // frame_wire_bytes is used for goodput math in the benches; check
        // one concrete case end to end.
        let f = testbed();
        let frame = frame_between(&f, HostId(0), HostId(1), &[0u8; 64]);
        assert_eq!(frame.len(), 64 + 20 + 20 + 14);
        assert_eq!(frame_wire_bytes(frame.len() - 14), 142);
    }

    #[test]
    fn host_lookup() {
        let f = testbed();
        assert!(f.host_by_ip(f.host(HostId(1)).ip).is_some());
        assert!(f.host_by_ip(Ipv4Addr::new(1, 2, 3, 4)).is_none());
        assert_eq!(f.host(HostId(0)).cores.len(), 2);
    }

    #[test]
    fn congestion_queues_at_switch_port() {
        // Two senders to one receiver: the receiver's switch port can
        // carry only 10 Gbps, so 2x offered load takes ~2x the time.
        let mut f = Fabric::new(8, MachineParams::default());
        let a = f.add_host(1, 1, 0);
        let b = f.add_host(1, 1, 0);
        let dst = f.add_host(1, 1, 0);
        let mut sim = Simulator::new(1);
        let n = 200;
        for src in [a, b] {
            let nic = f.host(src).nics[0].clone();
            for _ in 0..n {
                let frame = frame_between(&f, src, dst, &[0u8; 1400]);
                nic.borrow_mut().tx_ring(0).push(frame).ok().unwrap();
            }
            crate::nic::Nic::kick_tx(&nic, &mut sim);
        }
        sim.run();
        assert_eq!(f.host(dst).nics[0].borrow().stats.rx_frames, 2 * n as u64);
        let ser = f.params().serialization_ns(1400 + 40);
        // All frames leave the two sources in ~n*ser, but must squeeze
        // through one egress port: total ≈ 2n * ser.
        let elapsed = sim.now().as_nanos();
        let floor = 2 * n as u64 * ser;
        assert!(elapsed >= floor, "{elapsed} < {floor}");
        assert!(elapsed < floor + floor / 4, "{elapsed} ≫ {floor}");
        let _ = SimTime::ZERO;
    }
}
