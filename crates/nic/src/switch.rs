//! The cut-through switch with static MAC forwarding and link
//! aggregation.
//!
//! Models the Quanta/Cumulus 48x10GbE Broadcom Trident+ switch of the
//! testbed (§5.1): per-port output serialization at line rate, a
//! cut-through forwarding latency, and L3+L4-hash link aggregation for
//! the server's 4x10GbE bond.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ix_faults::{FaultsRef, LinkVerdict};
use ix_mempool::Mbuf;
use ix_net::eth::{EthHeader, EtherType, MacAddr};
use ix_net::rss::{hash_ipv4_tuple, TOEPLITZ_DEFAULT_KEY};
use ix_sim::{Nanos, SimTime, Simulator};

use crate::nic::{Nic, NicRef};
use crate::params::MachineParams;

/// Forwarding decision for a destination MAC.
#[derive(Debug, Clone)]
enum PortSel {
    /// A single switch port.
    One(u16),
    /// A link-aggregation group; member chosen by L3+L4 hash.
    Lag(Vec<u16>),
}

#[derive(Debug, Default)]
struct SwitchPort {
    busy_until: SimTime,
}

/// Per-switch counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames flooded (broadcast destination).
    pub flooded: u64,
    /// Frames dropped for an unknown unicast destination.
    pub unknown_dropped: u64,
}

/// The switch: forwarding table, per-port occupancy, attached NICs.
pub struct Switch {
    params: MachineParams,
    ports: Vec<SwitchPort>,
    attached: Vec<Option<NicRef>>,
    table: HashMap<MacAddr, PortSel>,
    /// Counters.
    pub stats: SwitchStats,
    /// Installed fault plane, if any. Links are keyed by switch port;
    /// each frame consults the fault plane once per link it crosses
    /// (once at ingress for the sender's link, once at egress for the
    /// receiver's). Absent by default: the fault-free path draws no
    /// randomness and schedules nothing extra.
    faults: Option<FaultsRef>,
}

impl Switch {
    /// Creates a switch with `ports` ports.
    pub fn new(ports: usize, params: MachineParams) -> Switch {
        Switch {
            params,
            ports: (0..ports).map(|_| SwitchPort::default()).collect(),
            attached: (0..ports).map(|_| None).collect(),
            table: HashMap::new(),
            stats: SwitchStats::default(),
            faults: None,
        }
    }

    /// Installs the fault plane ([`crate::fabric::Fabric::install_faults`]
    /// wires the same handle into every NIC).
    pub fn set_faults(&mut self, faults: FaultsRef) {
        self.faults = Some(faults);
    }

    /// Attaches a NIC to a port and installs its MAC in the forwarding
    /// table. For bonded MACs, call once per member port; entries
    /// accumulate into a LAG.
    pub fn attach(&mut self, port: u16, nic: NicRef, mac: MacAddr) {
        self.attached[port as usize] = Some(nic);
        match self.table.get_mut(&mac) {
            None => {
                self.table.insert(mac, PortSel::One(port));
            }
            Some(PortSel::One(existing)) => {
                let first = *existing;
                self.table.insert(mac, PortSel::Lag(vec![first, port]));
            }
            Some(PortSel::Lag(members)) => members.push(port),
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Resolves the output port(s) for a frame.
    fn resolve(&mut self, frame: &Mbuf, in_port: u16) -> Vec<u16> {
        let data = frame.data();
        if data.len() < EthHeader::LEN {
            return Vec::new();
        }
        let dst = MacAddr([data[0], data[1], data[2], data[3], data[4], data[5]]);
        if dst.is_broadcast() {
            self.stats.flooded += 1;
            return (0..self.ports.len() as u16)
                .filter(|&p| p != in_port && self.attached[p as usize].is_some())
                .collect();
        }
        match self.table.get(&dst) {
            Some(PortSel::One(p)) => {
                self.stats.forwarded += 1;
                vec![*p]
            }
            Some(PortSel::Lag(members)) => {
                self.stats.forwarded += 1;
                vec![members[Switch::lag_hash(data) % members.len()]]
            }
            None => {
                self.stats.unknown_dropped += 1;
                Vec::new()
            }
        }
    }

    /// The L3+L4 hash used for LAG member selection (§5.1: "four NIC
    /// ports bonded by the switch with a L3+L4 hash").
    fn lag_hash(data: &[u8]) -> usize {
        if data.len() < EthHeader::LEN + 24 {
            return 0;
        }
        let ip = &data[EthHeader::LEN..];
        let ihl = (ip[0] & 0x0f) as usize * 4;
        if ip.len() < ihl + 4 {
            return 0;
        }
        let src = ix_net::Ipv4Addr(u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]));
        let dst = ix_net::Ipv4Addr(u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]));
        let l4 = &ip[ihl..];
        let sp = u16::from_be_bytes([l4[0], l4[1]]);
        let dp = u16::from_be_bytes([l4[2], l4[3]]);
        hash_ipv4_tuple(&TOEPLITZ_DEFAULT_KEY, src, dst, sp, dp) as usize
    }

    /// A frame has fully arrived at `in_port`. Forwards it: cut-through
    /// latency, output-port serialization, propagation, then delivery
    /// into the destination NIC (which adds its own RX latency).
    ///
    /// Fault-plane hook #1: the sender's link (`in_port`) gets a verdict
    /// here, covering the host→switch leg of that cable.
    pub fn ingress(switch: &Rc<RefCell<Switch>>, sim: &mut Simulator, mut frame: Mbuf, in_port: u16) {
        let faults = switch.borrow().faults.clone();
        if let Some(f) = faults {
            let now_ns = sim.now().as_nanos();
            let corruptible = Switch::is_ipv4(&frame);
            match f.borrow_mut().link_verdict(in_port, now_ns, corruptible) {
                LinkVerdict::Deliver => {}
                LinkVerdict::Drop => return,
                LinkVerdict::Corrupt(r) => Switch::corrupt(&mut frame, r),
                LinkVerdict::Delay(d) => {
                    // Reordering on the ingress leg: re-enter forwarding
                    // after the extra delay (bypassing a second verdict).
                    let sw = switch.clone();
                    sim.schedule_in(Nanos(d), move |sim| {
                        Switch::forward(&sw, sim, frame, in_port);
                    });
                    return;
                }
            }
        }
        Switch::forward(switch, sim, frame, in_port);
    }

    /// The fault-free forwarding body of [`Switch::ingress`].
    fn forward(switch: &Rc<RefCell<Switch>>, sim: &mut Simulator, frame: Mbuf, in_port: u16) {
        let outs = switch.borrow_mut().resolve(&frame, in_port);
        let Some((&last, rest)) = outs.split_last() else {
            return;
        };
        // Clone for all but the last output (flood path only); the common
        // unicast case moves the frame without copying.
        for &out in rest {
            Switch::egress(switch, sim, frame.clone(), out);
        }
        Switch::egress(switch, sim, frame, last);
    }

    /// True when the frame carries an IPv4 ethertype (and therefore
    /// checksum protection for everything past the Ethernet header).
    fn is_ipv4(frame: &Mbuf) -> bool {
        let data = frame.data();
        data.len() > EthHeader::LEN
            && u16::from_be_bytes([data[12], data[13]]) == EtherType::Ipv4.to_u16()
    }

    /// Flips one byte of an IPv4 frame at a checksum-protected offset
    /// (anywhere past the Ethernet header: the IP header checksum covers
    /// the header, the TCP/UDP pseudo-header checksum covers the rest),
    /// so the receiving stack must detect and drop the frame.
    fn corrupt(frame: &mut Mbuf, r: u64) {
        let len = frame.len();
        debug_assert!(len > EthHeader::LEN);
        let span = (len - EthHeader::LEN) as u64;
        let off = EthHeader::LEN + (r % span) as usize;
        frame.data_mut()[off] ^= 0xff;
    }

    /// Schedules one frame out of `out` port.
    ///
    /// Fault-plane hook #2: the receiver's link (`out`) gets a verdict
    /// here, covering the switch→host leg of that cable.
    fn egress(switch: &Rc<RefCell<Switch>>, sim: &mut Simulator, mut frame: Mbuf, out: u16) {
        let mut extra_delay = 0u64;
        let faults = switch.borrow().faults.clone();
        if let Some(f) = faults {
            let now_ns = sim.now().as_nanos();
            let corruptible = Switch::is_ipv4(&frame);
            match f.borrow_mut().link_verdict(out, now_ns, corruptible) {
                LinkVerdict::Deliver => {}
                LinkVerdict::Drop => return,
                LinkVerdict::Corrupt(r) => Switch::corrupt(&mut frame, r),
                LinkVerdict::Delay(d) => extra_delay = d,
            }
        }
        let (depart, dst_nic, prop, rx_lat) = {
            let mut sw = switch.borrow_mut();
            let l2_payload = frame.len().saturating_sub(EthHeader::LEN);
            let ser = sw.params.serialization_ns(l2_payload);
            let start = (sim.now() + Nanos(sw.params.switch_latency_ns))
                .max(sw.ports[out as usize].busy_until);
            let depart = start + Nanos(ser);
            sw.ports[out as usize].busy_until = depart;
            let dst = sw.attached[out as usize].clone();
            (depart, dst, sw.params.propagation_ns, sw.params.nic_rx_latency_ns)
        };
        let Some(dst_nic) = dst_nic else { return };
        sim.schedule_at(depart + Nanos(prop + rx_lat + extra_delay), move |sim| {
            Nic::deliver(&dst_nic, sim, frame);
        });
    }
}

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switch")
            .field("ports", &self.ports.len())
            .field("stats", &self.stats)
            .finish()
    }
}
