//! Property test (ix-testkit harness): the hierarchical wheel agrees with a reference
//! BinaryHeap implementation on what fires, when (to tick resolution),
//! and in what order — under arbitrary schedule/cancel/advance programs.

use std::collections::BinaryHeap;

use ix_testkit::prelude::*;

use ix_timerwheel::{TimerId, TimerWheel, DEFAULT_RESOLUTION_NS};

#[derive(Debug, Clone)]
enum OpKind {
    /// Schedule a timer this many ns out.
    Schedule(u64),
    /// Cancel the k-th still-live timer (mod live count).
    Cancel(usize),
    /// Advance by this many ns.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (1u64..50_000_000).prop_map(OpKind::Schedule),
        (0usize..64).prop_map(OpKind::Cancel),
        (1u64..5_000_000).prop_map(OpKind::Advance),
    ]
}

#[derive(Debug, PartialEq, Eq)]
struct RefTimer {
    /// Tick deadline (negated for min-heap via Reverse ordering trick).
    deadline_tick: u64,
    seq: u64,
    payload: u64,
}

impl Ord for RefTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: invert so earliest deadline (then earliest seq) pops
        // first.
        other
            .deadline_tick
            .cmp(&self.deadline_tick)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for RefTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

props! {
    #![config(cases = 64)]

    #[test]
    fn wheel_matches_reference(ops in collection::vec(op_strategy(), 1..120)) {
        let res = DEFAULT_RESOLUTION_NS;
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut heap: BinaryHeap<RefTimer> = BinaryHeap::new();
        let mut live: Vec<(TimerId, u64)> = Vec::new(); // (id, payload)
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut fired_wheel: Vec<u64> = Vec::new();
        let mut fired_ref: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                OpKind::Schedule(delay) => {
                    seq += 1;
                    let payload = seq;
                    let id = wheel.schedule(delay, payload);
                    live.push((id, payload));
                    // The wheel rounds *up* to the next tick, minimum 1.
                    let ticks = delay.div_ceil(res).max(1);
                    heap.push(RefTimer {
                        deadline_tick: now / res + ticks,
                        seq,
                        payload,
                    });
                }
                OpKind::Cancel(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = k % live.len();
                    let (id, payload) = live.swap_remove(idx);
                    let got = wheel.cancel(id);
                    prop_assert_eq!(got, Some(payload), "live timer must cancel");
                    // Remove from the reference heap.
                    let mut rest: Vec<RefTimer> = heap.drain().collect();
                    let pos = rest.iter().position(|t| t.payload == payload).expect("in ref");
                    rest.swap_remove(pos);
                    heap = rest.into_iter().collect();
                }
                OpKind::Advance(dur) => {
                    now += dur;
                    wheel.advance(now, |p| fired_wheel.push(p));
                    let now_tick = now / res;
                    while let Some(t) = heap.peek() {
                        if t.deadline_tick <= now_tick {
                            let t = heap.pop().expect("peeked");
                            fired_ref.push(t.payload);
                            live.retain(|(_, p)| *p != t.payload);
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Drain everything at the end: the wheel and the reference must
        // fire the remaining timers in the same (deadline, seq) order.
        now += 200 * 3_600 * 1_000_000_000u64;
        wheel.advance(now, |p| fired_wheel.push(p));
        while let Some(t) = heap.pop() {
            fired_ref.push(t.payload);
        }
        prop_assert_eq!(wheel.live(), 0, "wheel fully drained");
        prop_assert_eq!(fired_wheel, fired_ref, "fire sequences diverged");
    }
}
