//! Hierarchical timing wheels (Varghese & Lauck, SOSP '87).
//!
//! The paper (§4.2): *"We provide a hierarchical timing wheel
//! implementation for managing network timeouts, such as TCP
//! retransmissions. It is optimized for the common case where most timers
//! are canceled before they expire. We support extremely high-resolution
//! timeouts, as low as 16 µs, which has been shown to improve performance
//! during TCP incast congestion."*
//!
//! [`TimerWheel`] reproduces that component: a 4-level wheel of 256 slots
//! per level with a default 16 µs tick, O(1) schedule, O(1) *true* cancel
//! (entries are unlinked immediately, not lazily), and cascading on level
//! rollover. Timer identity is protected with generation counters so a
//! stale [`TimerId`] can never cancel a reused slot.
//!
//! In the IX dataplane the wheel is advanced at step (5) of the
//! run-to-completion loop (Fig 1b); in the Linux model it is advanced from
//! the timer softirq.

use std::fmt;

/// Default tick: 16 µs, the paper's highest-resolution timeout.
pub const DEFAULT_RESOLUTION_NS: u64 = 16_000;

/// Slots per wheel level (256, as in the classic design).
pub const SLOTS_PER_LEVEL: usize = 256;

/// Number of levels. Four levels at 16 µs cover 256^4 ticks ≈ 19 hours.
pub const LEVELS: usize = 4;

const SLOT_MASK: u64 = (SLOTS_PER_LEVEL as u64) - 1;
const LEVEL_BITS: u32 = 8;

/// Handle to a scheduled timer; required to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Entry<T> {
    /// Absolute expiry tick.
    deadline: u64,
    generation: u32,
    /// Where the entry currently lives: (level, slot, position) — updated
    /// on cascade so cancel can unlink in O(1).
    location: Option<(u8, u16, u32)>,
    payload: Option<T>,
    next_free: u32,
}

/// A hierarchical timing wheel carrying payloads of type `T`.
pub struct TimerWheel<T> {
    resolution_ns: u64,
    /// `slots[level][slot]` holds indices into `entries`.
    slots: Vec<Vec<Vec<u32>>>,
    entries: Vec<Entry<T>>,
    free_head: u32,
    /// The current tick (time / resolution).
    now_tick: u64,
    /// Number of live (scheduled, not yet fired/cancelled) timers.
    live: usize,
    /// Counters for the cancel-dominant workload the paper describes.
    scheduled_total: u64,
    cancelled_total: u64,
    fired_total: u64,
}

const NIL: u32 = u32::MAX;

impl<T> TimerWheel<T> {
    /// Creates a wheel with the default 16 µs resolution, starting at
    /// time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel::with_resolution(DEFAULT_RESOLUTION_NS)
    }

    /// Creates a wheel with a custom tick length in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ns` is zero.
    pub fn with_resolution(resolution_ns: u64) -> TimerWheel<T> {
        assert!(resolution_ns > 0);
        TimerWheel {
            resolution_ns,
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS_PER_LEVEL).map(|_| Vec::new()).collect())
                .collect(),
            entries: Vec::new(),
            free_head: NIL,
            now_tick: 0,
            live: 0,
            scheduled_total: 0,
            cancelled_total: 0,
            fired_total: 0,
        }
    }

    /// The wheel's tick length in nanoseconds.
    pub fn resolution_ns(&self) -> u64 {
        self.resolution_ns
    }

    /// Number of currently scheduled timers.
    pub fn live(&self) -> usize {
        self.live
    }

    /// `(scheduled, cancelled, fired)` lifetime counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.scheduled_total, self.cancelled_total, self.fired_total)
    }

    /// The current time in nanoseconds (tick-quantized).
    pub fn now_ns(&self) -> u64 {
        self.now_tick * self.resolution_ns
    }

    fn alloc_entry(&mut self) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.entries[idx as usize].next_free;
            idx
        } else {
            self.entries.push(Entry {
                deadline: 0,
                generation: 0,
                location: None,
                payload: None,
                next_free: NIL,
            });
            (self.entries.len() - 1) as u32
        }
    }

    fn free_entry(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.generation = e.generation.wrapping_add(1);
        e.location = None;
        e.payload = None;
        e.next_free = self.free_head;
        self.free_head = idx;
    }

    /// Picks the level and slot for a deadline, given the current tick.
    fn place(&self, deadline: u64) -> (u8, u16) {
        let delta = deadline.saturating_sub(self.now_tick).max(1);
        for level in 0..LEVELS as u32 {
            let span = 1u64 << (LEVEL_BITS * (level + 1));
            if delta < span {
                let slot = (deadline >> (LEVEL_BITS * level)) & SLOT_MASK;
                return (level as u8, slot as u16);
            }
        }
        // Beyond the top level: park in the furthest top-level slot.
        let level = (LEVELS - 1) as u32;
        let slot = (deadline >> (LEVEL_BITS * level)) & SLOT_MASK;
        ((LEVELS - 1) as u8, slot as u16)
    }

    fn link(&mut self, idx: u32, level: u8, slot: u16) {
        let list = &mut self.slots[level as usize][slot as usize];
        let pos = list.len() as u32;
        list.push(idx);
        self.entries[idx as usize].location = Some((level, slot, pos));
    }

    fn unlink(&mut self, idx: u32) {
        let (level, slot, pos) = self.entries[idx as usize]
            .location
            .take()
            .expect("unlink of unlinked entry");
        let list = &mut self.slots[level as usize][slot as usize];
        list.swap_remove(pos as usize);
        if let Some(&moved) = list.get(pos as usize) {
            self.entries[moved as usize].location = Some((level, slot, pos));
        }
    }

    /// Schedules a timer `delay_ns` from the wheel's current time,
    /// rounding *up* to the next tick so timers never fire early.
    pub fn schedule(&mut self, delay_ns: u64, payload: T) -> TimerId {
        let ticks = delay_ns.div_ceil(self.resolution_ns).max(1);
        let deadline = self.now_tick + ticks;
        let idx = self.alloc_entry();
        let generation = self.entries[idx as usize].generation;
        self.entries[idx as usize].deadline = deadline;
        self.entries[idx as usize].payload = Some(payload);
        let (level, slot) = self.place(deadline);
        self.link(idx, level, slot);
        self.live += 1;
        self.scheduled_total += 1;
        TimerId { index: idx, generation }
    }

    /// Nanoseconds until `id` fires (tick-quantized, 0 when due), or
    /// `None` if it already fired or was cancelled. Flow migration uses
    /// this to carry a timer's residual delay onto another core's wheel:
    /// re-arming at the full interval instead would let frequent
    /// migration postpone a deadline indefinitely.
    pub fn remaining_ns(&self, id: TimerId) -> Option<u64> {
        let e = self.entries.get(id.index as usize)?;
        if e.generation != id.generation || e.location.is_none() {
            return None;
        }
        Some(e.deadline.saturating_sub(self.now_tick) * self.resolution_ns)
    }

    /// Cancels a timer, returning its payload if it was still pending.
    /// Cancelling an already-fired or already-cancelled timer returns
    /// `None`.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let e = self.entries.get(id.index as usize)?;
        if e.generation != id.generation || e.location.is_none() {
            return None;
        }
        self.unlink(id.index);
        let payload = self.entries[id.index as usize].payload.take();
        self.free_entry(id.index);
        self.live -= 1;
        self.cancelled_total += 1;
        payload
    }

    /// Cancels a timer and reports its residual delay in one entry
    /// access: `(payload, remaining_ns)`, or `None` if it already fired
    /// or was cancelled. This is the migration-extract primitive —
    /// equivalent to [`TimerWheel::remaining_ns`] followed by
    /// [`TimerWheel::cancel`], but with a single generation check and
    /// entry load instead of two round-trips per timer.
    pub fn cancel_with_remaining(&mut self, id: TimerId) -> Option<(T, u64)> {
        let e = self.entries.get(id.index as usize)?;
        if e.generation != id.generation || e.location.is_none() {
            return None;
        }
        let remaining = e.deadline.saturating_sub(self.now_tick) * self.resolution_ns;
        self.unlink(id.index);
        let payload =
            self.entries[id.index as usize].payload.take().expect("live entry has payload");
        self.free_entry(id.index);
        self.live -= 1;
        self.cancelled_total += 1;
        Some((payload, remaining))
    }

    /// Bulk cancel: invokes `sink(payload, remaining_ns)` for every id
    /// that was still pending; stale ids are skipped silently. Behaves
    /// exactly like [`TimerWheel::cancel_with_remaining`] per id.
    pub fn cancel_batch(
        &mut self,
        ids: impl IntoIterator<Item = TimerId>,
        mut sink: impl FnMut(T, u64),
    ) {
        for id in ids {
            if let Some((payload, remaining)) = self.cancel_with_remaining(id) {
                sink(payload, remaining);
            }
        }
    }

    /// Bulk schedule: arms every `(delay_ns, payload)` item and hands
    /// its [`TimerId`] to `sink`, in order. Identical fire semantics to
    /// calling [`TimerWheel::schedule`] per item (same tick rounding,
    /// same per-slot tie order) but amortized for migration-sized
    /// batches: the entry arena is grown once up front, and the wheel
    /// position is resolved once per run of equal deadlines — absorbed
    /// flow groups carry long runs of identical residual delays, which
    /// append to one slot chain without re-deriving level/slot each
    /// time.
    pub fn schedule_batch(
        &mut self,
        items: impl IntoIterator<Item = (u64, T)>,
        mut sink: impl FnMut(TimerId),
    ) {
        let items = items.into_iter();
        let (lo, hi) = items.size_hint();
        let n = hi.unwrap_or(lo);
        // A fully-idle wheel arming a migration-sized batch: relink the
        // free list in ascending arena order (generations untouched, so
        // stale-handle protection is unaffected) — allocations then
        // walk the arena sequentially instead of hopping across the
        // LIFO scars of the preceding cancel storm, one streamed write
        // per entry instead of a cold miss.
        if self.live == 0 && self.free_head != NIL && n >= 1024 {
            self.free_head = NIL;
            for i in (0..self.entries.len()).rev() {
                self.entries[i].next_free = self.free_head;
                self.free_head = i as u32;
            }
        }
        self.entries.reserve(n);
        // (deadline, level, slot) of the previous item: consecutive
        // equal deadlines skip `place`.
        let mut last: Option<(u64, u8, u16)> = None;
        for (delay_ns, payload) in items {
            let ticks = delay_ns.div_ceil(self.resolution_ns).max(1);
            let deadline = self.now_tick + ticks;
            let idx = self.alloc_entry();
            let generation = self.entries[idx as usize].generation;
            self.entries[idx as usize].deadline = deadline;
            self.entries[idx as usize].payload = Some(payload);
            let (level, slot) = match last {
                Some((d, l, s)) if d == deadline => (l, s),
                _ => {
                    let (l, s) = self.place(deadline);
                    last = Some((deadline, l, s));
                    (l, s)
                }
            };
            self.link(idx, level, slot);
            self.live += 1;
            self.scheduled_total += 1;
            sink(TimerId { index: idx, generation });
        }
    }

    /// Absolute tick of the earliest pending timer, or `None` when idle.
    /// Linear in the number of live entries (scans occupied slots).
    fn next_deadline_tick(&self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in &self.slots {
            for slot in level {
                for &idx in slot {
                    let d = self.entries[idx as usize].deadline;
                    best = Some(best.map_or(d, |b: u64| b.min(d)));
                }
            }
        }
        best
    }

    /// Teleports the wheel to `tick` (which must not skip any deadline)
    /// and re-places every live entry relative to the new origin, so that
    /// cascades that "should have happened" during the skipped interval
    /// are reconstructed. O(live).
    fn jump_to(&mut self, tick: u64) {
        debug_assert!(tick >= self.now_tick);
        let mut all: Vec<u32> = Vec::with_capacity(self.live);
        for level in &mut self.slots {
            for slot in level {
                all.append(slot);
            }
        }
        self.now_tick = tick;
        for idx in all {
            self.entries[idx as usize].location = None;
            let deadline = self.entries[idx as usize].deadline;
            debug_assert!(deadline > tick, "jump skipped a deadline");
            let (l, s) = self.place(deadline);
            self.link(idx, l, s);
        }
    }

    /// Advances the wheel to `now_ns`, invoking `fire` for every expired
    /// timer in deadline order (ties in schedule order).
    ///
    /// Long idle gaps are skipped in O(live) rather than O(ticks), so a
    /// quiescent stack can be advanced across seconds cheaply.
    pub fn advance(&mut self, now_ns: u64, mut fire: impl FnMut(T)) {
        let target_tick = now_ns / self.resolution_ns;
        // Fast-path long advances over empty wheel regions.
        const JUMP_THRESHOLD: u64 = 4 * SLOTS_PER_LEVEL as u64;
        if target_tick > self.now_tick + JUMP_THRESHOLD {
            match self.next_deadline_tick() {
                None => {
                    self.now_tick = target_tick;
                    return;
                }
                Some(d) if d > target_tick => {
                    self.jump_to(target_tick);
                    return;
                }
                Some(d) if d > self.now_tick + 1 => {
                    self.jump_to(d - 1);
                }
                Some(_) => {}
            }
        }
        while self.now_tick < target_tick {
            // Re-check for a skippable gap once per wheel lap (the scan is
            // O(live), so amortize it over 256 ticks).
            if self.now_tick & SLOT_MASK == 0 && target_tick > self.now_tick + JUMP_THRESHOLD {
                match self.next_deadline_tick() {
                    None => {
                        self.now_tick = target_tick;
                        return;
                    }
                    Some(d) if d > target_tick => {
                        self.jump_to(target_tick);
                        return;
                    }
                    Some(d) if d > self.now_tick + 1 => self.jump_to(d - 1),
                    Some(_) => {}
                }
            }
            self.now_tick += 1;
            // Cascade: when a level-k digit rolls over to 0, redistribute
            // the corresponding slot of level k+1.
            for level in 1..LEVELS as u32 {
                let below_mask = (1u64 << (LEVEL_BITS * level)) - 1;
                if self.now_tick & below_mask != 0 {
                    break;
                }
                let slot = (self.now_tick >> (LEVEL_BITS * level)) & SLOT_MASK;
                let moved: Vec<u32> =
                    std::mem::take(&mut self.slots[level as usize][slot as usize]);
                for idx in moved {
                    self.entries[idx as usize].location = None;
                    let deadline = self.entries[idx as usize].deadline;
                    let (l, s) = self.place(deadline);
                    self.link(idx, l, s);
                }
            }
            // Fire the level-0 slot for this tick.
            let slot = (self.now_tick & SLOT_MASK) as usize;
            if self.slots[0][slot].is_empty() {
                continue;
            }
            let due: Vec<u32> = std::mem::take(&mut self.slots[0][slot]);
            for idx in due {
                let e = &mut self.entries[idx as usize];
                if e.deadline > self.now_tick {
                    // A future lap of the wheel; relink.
                    e.location = None;
                    let deadline = e.deadline;
                    let (l, s) = self.place(deadline);
                    self.link(idx, l, s);
                    continue;
                }
                e.location = None;
                let payload = e.payload.take().expect("live entry has payload");
                self.free_entry(idx);
                self.live -= 1;
                self.fired_total += 1;
                fire(payload);
            }
        }
    }

    /// Nanoseconds until the next pending timer fires, or `None` when the
    /// wheel is idle. Linear in the distance to the next timer (used by
    /// quiescent dataplanes to sleep; not on the hot path).
    pub fn next_deadline_ns(&self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in &self.slots {
            for slot in level {
                for &idx in slot {
                    let d = self.entries[idx as usize].deadline;
                    best = Some(best.map_or(d, |b: u64| b.min(d)));
                }
            }
        }
        best.map(|t| t.saturating_sub(self.now_tick) * self.resolution_ns)
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> TimerWheel<T> {
        TimerWheel::new()
    }
}

impl<T> fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimerWheel")
            .field("resolution_ns", &self.resolution_ns)
            .field("now_tick", &self.now_tick)
            .field("live", &self.live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(50_000, 1); // 50 µs -> ceil to 4 ticks = 64 µs.
        let mut fired = Vec::new();
        w.advance(49_999, |p| fired.push(p));
        assert!(fired.is_empty());
        w.advance(64_000, |p| fired.push(p));
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn cancel_before_expiry() {
        let mut w: TimerWheel<&'static str> = TimerWheel::new();
        let id = w.schedule(100_000, "rto");
        assert_eq!(w.live(), 1);
        assert_eq!(w.cancel(id), Some("rto"));
        assert_eq!(w.live(), 0);
        let mut fired = Vec::new();
        w.advance(1_000_000, |p| fired.push(p));
        assert!(fired.is_empty());
        // Double-cancel is a no-op.
        assert_eq!(w.cancel(id), None);
    }

    #[test]
    fn stale_id_cannot_cancel_reused_entry() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let id1 = w.schedule(16_000, 1);
        w.advance(16_000, |_| {});
        // Entry slot is reused for a new timer.
        let _id2 = w.schedule(16_000, 2);
        assert_eq!(w.cancel(id1), None);
        assert_eq!(w.live(), 1);
    }

    #[test]
    fn many_timers_fire_in_order() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        // Deadlines spread over several levels.
        let delays: Vec<u64> = vec![
            16_000,      // 1 tick
            160_000,     // 10 ticks
            4_096_000,   // 256 ticks (level 1)
            10_000_000,  // 625 ticks
            100_000_000, // 6250 ticks
            2_000_000_000, // 125k ticks (level 2)
        ];
        for &d in &delays {
            w.schedule(d, d);
        }
        let mut fired = Vec::new();
        w.advance(3_000_000_000, |p| fired.push(p));
        assert_eq!(fired, delays);
    }

    #[test]
    fn cascade_preserves_deadline() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // 300 ticks: lives on level 1 initially, cascades to level 0.
        let delay = 300 * DEFAULT_RESOLUTION_NS;
        w.schedule(delay, 7);
        let mut hits = Vec::new();
        // Step in small increments past the cascade boundary.
        let mut t = 0;
        while t < 299 * DEFAULT_RESOLUTION_NS {
            t += DEFAULT_RESOLUTION_NS * 13;
            w.advance(t.min(299 * DEFAULT_RESOLUTION_NS), |p| hits.push(p));
        }
        assert!(hits.is_empty(), "fired early at {t}");
        w.advance(300 * DEFAULT_RESOLUTION_NS, |p| hits.push(p));
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn reschedule_pattern_like_tcp_rto() {
        // The cancel-dominant pattern: schedule, cancel, reschedule on
        // every ACK; only the last one fires.
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let mut id = w.schedule(200_000_000, 0);
        for i in 1..1000u32 {
            w.advance(i as u64 * 50_000, |_| panic!("premature fire"));
            assert!(w.cancel(id).is_some());
            id = w.schedule(200_000_000, i);
        }
        let (s, c, f) = w.counters();
        assert_eq!(s, 1000);
        assert_eq!(c, 999);
        assert_eq!(f, 0);
        let mut fired = Vec::new();
        w.advance(999 * 50_000 + 200_000_000, |p| fired.push(p));
        assert_eq!(fired, vec![999]);
    }

    #[test]
    fn next_deadline_reporting() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert_eq!(w.next_deadline_ns(), None);
        w.schedule(100_000, 1);
        let nd = w.next_deadline_ns().unwrap();
        // 100 µs rounds up to 7 ticks = 112 µs.
        assert_eq!(nd, 112_000);
    }

    #[test]
    fn zero_delay_fires_next_tick() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(0, 9);
        let mut fired = Vec::new();
        w.advance(DEFAULT_RESOLUTION_NS, |p| fired.push(p));
        assert_eq!(fired, vec![9]);
    }

    #[test]
    fn far_future_beyond_top_level() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // ~78 hours: beyond the 19-hour span of four levels.
        let delay = 78 * 3600 * 1_000_000_000u64;
        w.schedule(delay, 1);
        let mut fired = Vec::new();
        // Advance in big steps; expensive but correctness-only path.
        w.advance(delay + DEFAULT_RESOLUTION_NS, |p| fired.push(p));
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn cancel_with_remaining_matches_remaining_then_cancel() {
        let mut a: TimerWheel<u32> = TimerWheel::new();
        let mut b: TimerWheel<u32> = TimerWheel::new();
        let ida = a.schedule(1_000_000, 1);
        let idb = b.schedule(1_000_000, 1);
        a.advance(300_000, |_| panic!("early"));
        b.advance(300_000, |_| panic!("early"));
        let want = b.remaining_ns(idb).unwrap();
        let got = a.cancel_with_remaining(ida).unwrap();
        assert_eq!(got, (b.cancel(idb).unwrap(), want));
        assert_eq!(a.live(), 0);
        assert_eq!(a.counters(), b.counters());
        // Stale id: both report nothing.
        assert_eq!(a.cancel_with_remaining(ida), None);
    }

    #[test]
    fn schedule_batch_is_equivalent_to_sequential_schedules() {
        // Same delays, one wheel batched and one sequential: identical
        // fire order (incl. per-slot ties) and counters.
        let delays: Vec<u64> =
            (0..500u64).map(|i| 16_000 + (i % 7) * 3_000_000 + (i % 3) * 16_000).collect();
        let mut seq: TimerWheel<u64> = TimerWheel::new();
        let mut bat: TimerWheel<u64> = TimerWheel::new();
        for (i, &d) in delays.iter().enumerate() {
            seq.schedule(d, i as u64);
        }
        let mut ids = Vec::new();
        bat.schedule_batch(
            delays.iter().enumerate().map(|(i, &d)| (d, i as u64)),
            |id| ids.push(id),
        );
        assert_eq!(ids.len(), delays.len());
        assert_eq!(bat.live(), seq.live());
        let mut fs = Vec::new();
        let mut fb = Vec::new();
        seq.advance(1_000_000_000, |p| fs.push(p));
        bat.advance(1_000_000_000, |p| fb.push(p));
        assert_eq!(fb, fs, "batched schedule changed fire order");
    }

    #[test]
    fn cancel_batch_skips_stale_ids() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let a = w.schedule(100_000, 1);
        let b = w.schedule(200_000, 2);
        let c = w.schedule(300_000, 3);
        assert!(w.cancel(b).is_some());
        let mut got = Vec::new();
        w.cancel_batch([a, b, c], |p, rem| got.push((p, rem)));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 3);
        assert_eq!(w.live(), 0);
    }

    #[test]
    fn high_volume_mixed_workload() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        let mut ids = Vec::new();
        for i in 0..10_000u64 {
            ids.push((i, w.schedule(16_000 + (i % 977) * 31_000, i)));
        }
        // Cancel every third timer.
        let mut expect: Vec<u64> = Vec::new();
        for (i, id) in &ids {
            if i % 3 == 0 {
                assert!(w.cancel(*id).is_some());
            } else {
                expect.push(*i);
            }
        }
        let mut fired = Vec::new();
        w.advance(977 * 31_000 + 1_000_000, |p| fired.push(p));
        fired.sort_unstable();
        expect.sort_unstable();
        assert_eq!(fired, expect);
        assert_eq!(w.live(), 0);
    }
}
