//! Microbenchmarks of the reproduction's hot data structures, on the
//! in-tree `ix-testkit` wall-clock runner: the components §4.2/§4.4 of
//! the paper claims are fast — the Toeplitz RSS hash, the hierarchical
//! timing wheel under its cancel-dominant workload, the per-thread mbuf
//! pool, TCP segment processing, and the full simulated host-to-host
//! echo round trip.
//!
//! Run with `cargo bench` (or `cargo bench <filter>`); set
//! `IX_BENCH_QUICK=1` for a smoke-length pass.

use std::hint::black_box;

use ix_mempool::MbufPool;
use ix_net::ip::Ipv4Addr;
use ix_net::rss::{hash_ipv4_tuple, TOEPLITZ_DEFAULT_KEY};
use ix_net::tcp::{TcpFlags, TcpHeader};
use ix_sim::{Histogram, Nanos, Simulator};
use ix_testkit::bench::BenchRunner;
use ix_timerwheel::TimerWheel;

/// The seed engine's scheduler, kept as the reference point for the
/// calendar-queue rewrite: a `BinaryHeap` ordered by `(time, seq)` with
/// a tombstone `HashSet` consulted (and cleaned) on every pop.
mod binheap_model {
    use std::collections::{BinaryHeap, HashSet};

    struct Ev {
        time: u64,
        seq: u64,
        action: Box<dyn FnOnce()>,
    }

    impl PartialEq for Ev {
        fn eq(&self, other: &Ev) -> bool {
            (self.time, self.seq) == (other.time, other.seq)
        }
    }
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Ev) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, other: &Ev) -> std::cmp::Ordering {
            // Reversed: BinaryHeap is a max-heap, we want min-(time, seq).
            (other.time, other.seq).cmp(&(self.time, self.seq))
        }
    }

    pub struct BinHeapSim {
        now: u64,
        seq: u64,
        queue: BinaryHeap<Ev>,
        cancelled: HashSet<u64>,
        executed: u64,
    }

    impl BinHeapSim {
        pub fn new() -> BinHeapSim {
            BinHeapSim {
                now: 0,
                seq: 0,
                queue: BinaryHeap::new(),
                cancelled: HashSet::new(),
                executed: 0,
            }
        }

        pub fn schedule_in(&mut self, delay: u64, action: impl FnOnce() + 'static) -> u64 {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Ev {
                time: self.now + delay,
                seq,
                action: Box::new(action),
            });
            seq
        }

        pub fn cancel(&mut self, seq: u64) {
            self.cancelled.insert(seq);
        }

        pub fn step(&mut self) -> bool {
            while let Some(ev) = self.queue.pop() {
                if self.cancelled.remove(&ev.seq) {
                    continue;
                }
                self.now = ev.time;
                (ev.action)();
                self.executed += 1;
                return true;
            }
            false
        }

        pub fn executed(&self) -> u64 {
            self.executed
        }
    }
}

/// Scheduler workloads, run identically against the calendar-queue
/// engine and the BinaryHeap reference. Each iteration schedules and
/// fires so the queue holds a steady working set; one event executes
/// per iteration, so events/sec = 1e9 / ns_per_iter.
fn bench_scheduler(r: &mut BenchRunner) {
    /// Steady-state queue depth (a loaded testbed keeps thousands of
    /// timers and packet events outstanding).
    const DEPTH: u64 = 8192;
    /// Near-tier delay spread: inside the ~1.05 ms calendar horizon.
    const NEAR_SPREAD: u64 = 900_000;
    /// Far-tier delay: well past the horizon, lands in the overflow heap.
    const FAR_DELAY: u64 = 8_000_000;

    // -- Pure schedule/fire churn at depth.
    r.bench("scheduler/churn_fire_8k", |b| {
        let mut sim = Simulator::new(7);
        for i in 0..DEPTH {
            sim.schedule_in(Nanos(500 + (i * 97) % NEAR_SPREAD), |_| {});
        }
        let mut d = 0u64;
        b.iter(|| {
            d = (d.wrapping_mul(997).wrapping_add(131)) % NEAR_SPREAD;
            sim.schedule_in(Nanos(500 + d), |_| {});
            black_box(sim.step());
        })
    });
    r.bench("scheduler_binheap/churn_fire_8k", |b| {
        let mut sim = binheap_model::BinHeapSim::new();
        for i in 0..DEPTH {
            sim.schedule_in(500 + (i * 97) % NEAR_SPREAD, || {});
        }
        let mut d = 0u64;
        b.iter(|| {
            d = (d.wrapping_mul(997).wrapping_add(131)) % NEAR_SPREAD;
            sim.schedule_in(500 + d, || {});
            black_box(sim.step());
        });
        black_box(sim.executed());
    });

    // -- Cancel-dominant: the RTO pattern — arm a retransmit timer, then
    // cancel it when the ACK arrives a moment later. The in-flight
    // cancelled timers (200 µs of them) form the queue's working set;
    // the 600 ns events keep the clock moving one fire per iteration.
    r.bench("scheduler/cancel_rto_rearm", |b| {
        let mut sim = Simulator::new(7);
        b.iter(|| {
            let id = sim.schedule_in(Nanos(200_000), |_| {});
            sim.cancel(id);
            sim.schedule_in(Nanos(600), |_| {});
            black_box(sim.step());
        })
    });
    r.bench("scheduler_binheap/cancel_rto_rearm", |b| {
        let mut sim = binheap_model::BinHeapSim::new();
        b.iter(|| {
            let id = sim.schedule_in(200_000, || {});
            sim.cancel(id);
            sim.schedule_in(600, || {});
            black_box(sim.step());
        });
        black_box(sim.executed());
    });

    // -- Mixed horizon: half the inserts spread across the near calendar,
    // half go deep into the overflow tier and must be promoted back.
    r.bench("scheduler/mixed_near_far", |b| {
        let mut sim = Simulator::new(7);
        for i in 0..DEPTH {
            let base = (i * 97) % NEAR_SPREAD;
            sim.schedule_in(Nanos(if i % 2 == 0 { 500 + base } else { FAR_DELAY + base }), |_| {});
        }
        let mut d = 0u64;
        b.iter(|| {
            d = (d.wrapping_mul(997).wrapping_add(131)) % NEAR_SPREAD;
            let far = d.is_multiple_of(2);
            sim.schedule_in(Nanos(if far { FAR_DELAY + d } else { 500 + d }), |_| {});
            black_box(sim.step());
        })
    });
    r.bench("scheduler_binheap/mixed_near_far", |b| {
        let mut sim = binheap_model::BinHeapSim::new();
        for i in 0..DEPTH {
            let base = (i * 97) % NEAR_SPREAD;
            sim.schedule_in(if i % 2 == 0 { 500 + base } else { FAR_DELAY + base }, || {});
        }
        let mut d = 0u64;
        b.iter(|| {
            d = (d.wrapping_mul(997).wrapping_add(131)) % NEAR_SPREAD;
            let far = d.is_multiple_of(2);
            sim.schedule_in(if far { FAR_DELAY + d } else { 500 + d }, || {});
            black_box(sim.step());
        });
        black_box(sim.executed());
    });
}

fn bench_toeplitz(r: &mut BenchRunner) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let mut port = 0u16;
    r.bench("rss/toeplitz_ipv4_tuple", |b| {
        b.iter(|| {
            port = port.wrapping_add(1);
            black_box(hash_ipv4_tuple(
                &TOEPLITZ_DEFAULT_KEY,
                black_box(src),
                black_box(dst),
                port,
                80,
            ))
        })
    });
}

fn bench_timerwheel(r: &mut BenchRunner) {
    // The paper's common case: timers cancelled before expiry (RTO
    // rearming on every ACK).
    r.bench("timerwheel/schedule_cancel", |b| {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        b.iter(|| {
            let id = w.schedule(200_000_000, 1);
            black_box(w.cancel(id));
        })
    });
    r.bench("timerwheel/advance_idle_tick", |b| {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        w.schedule(3_600_000_000_000, 1); // Far-future anchor.
        let mut now = 0u64;
        b.iter(|| {
            now += 16_000;
            w.advance(now, |_| {});
        })
    });
}

fn bench_mempool(r: &mut BenchRunner) {
    r.bench("mempool/alloc_free", |b| {
        let mut pool = MbufPool::new(1024);
        b.iter(|| {
            let m = pool.alloc().expect("capacity");
            black_box(&m);
        })
    });
    r.bench("mempool/alloc_prepend_headers", |b| {
        let mut pool = MbufPool::new(1024);
        b.iter(|| {
            let mut m = pool.alloc().expect("capacity");
            m.extend_from_slice(&[0u8; 64]);
            m.prepend(20);
            m.prepend(20);
            m.prepend(14);
            black_box(m.len());
        })
    });
}

fn bench_tcp_codec(r: &mut BenchRunner) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let hdr = TcpHeader {
        src_port: 40_000,
        dst_port: 80,
        seq: 12345,
        ack: 67890,
        flags: TcpFlags::ACK,
        window: 65_535,
        mss: None,
        wscale: None,
    };
    let payload = [0xA5u8; 64];
    let mut buf = vec![0u8; hdr.len() + payload.len()];
    buf[hdr.len()..].copy_from_slice(&payload);
    r.bench("tcp_codec/encode_64b_segment", |b| {
        b.iter(|| {
            let (h, t) = buf.split_at_mut(20);
            hdr.encode(h, src, dst, t);
        })
    });
    // Prepare a valid segment for decode.
    let (h, t) = buf.split_at_mut(20);
    hdr.encode(h, src, dst, t);
    r.bench("tcp_codec/decode_64b_segment", |b| {
        b.iter(|| black_box(TcpHeader::decode(&buf, src, dst).expect("valid")))
    });
}

/// TX segment build, run through the in-place zero-copy pipeline and
/// through the Vec-chain model it replaced (retransmit-queue `Box` copy
/// → TCP-segment `Vec` → L3 `Vec` → mbuf copy). Identical wire frames
/// out of both; the difference is purely copies and allocations.
fn bench_txpath(r: &mut BenchRunner) {
    use ix_mempool::Mbuf;
    use ix_net::eth::{EthHeader, EtherType, MacAddr};
    use ix_net::ip::{IpProto, Ipv4Header};
    use ix_testkit::Bytes;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    fn tcp_hdr() -> TcpHeader {
        TcpHeader {
            src_port: 40_000,
            dst_port: 80,
            seq: 12345,
            ack: 67890,
            flags: TcpFlags::ACK,
            window: 65_535,
            mss: None,
            wscale: None,
        }
    }
    fn ip_hdr(l4_len: usize) -> Ipv4Header {
        Ipv4Header {
            tos: 0,
            total_len: (Ipv4Header::LEN + l4_len) as u16,
            ident: 7,
            ttl: Ipv4Header::DEFAULT_TTL,
            proto: IpProto::Tcp,
            src: SRC,
            dst: DST,
        }
    }
    fn eth_hdr() -> EthHeader {
        EthHeader {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
    }

    // The zero-copy path: one pool mbuf, payload written once into the
    // tail, headers prepended in place (checksums fed the payload slice).
    fn build_inplace(pool: &mut MbufPool, payload: &[u8]) -> Mbuf {
        let tcp = tcp_hdr();
        let hlen = tcp.len();
        let mut m = pool.alloc_with_headroom(ix_net::MAX_TX_HEADER_LEN).expect("capacity");
        m.extend_from_slice(payload);
        tcp.encode(m.prepend(hlen), SRC, DST, payload);
        ip_hdr(hlen + payload.len()).encode(m.prepend(Ipv4Header::LEN));
        eth_hdr().encode(m.prepend(EthHeader::LEN));
        m
    }

    // The replaced pipeline: copy into an owned rtq block, serialize the
    // TCP segment into a Vec, wrap in an L3 Vec, copy into the mbuf.
    fn build_vecchain(pool: &mut MbufPool, payload: &[u8]) -> (Mbuf, Box<[u8]>) {
        let rtq: Box<[u8]> = payload.into();
        let tcp = tcp_hdr();
        let hlen = tcp.len();
        let mut seg = vec![0u8; hlen + rtq.len()];
        seg[hlen..].copy_from_slice(&rtq);
        let (h, t) = seg.split_at_mut(hlen);
        tcp.encode(h, SRC, DST, t);
        let mut l3 = vec![0u8; Ipv4Header::LEN + seg.len()];
        ip_hdr(seg.len()).encode(&mut l3[..Ipv4Header::LEN]);
        l3[Ipv4Header::LEN..].copy_from_slice(&seg);
        let mut m = pool.alloc().expect("capacity");
        m.extend_from_slice(&l3);
        eth_hdr().encode(m.prepend(EthHeader::LEN));
        (m, rtq)
    }

    for (label, size) in [("build_64b", 64usize), ("build_1460b", 1460)] {
        let payload = vec![0xA5u8; size];
        r.bench(&format!("txpath/{label}"), |b| {
            let mut pool = MbufPool::new(1024);
            b.iter(|| black_box(build_inplace(&mut pool, &payload).len()))
        });
        r.bench(&format!("txpath_vecchain/{label}"), |b| {
            let mut pool = MbufPool::new(1024);
            b.iter(|| {
                let (m, rtq) = build_vecchain(&mut pool, &payload);
                black_box(m.len() + rtq.len())
            })
        });
    }

    // Retransmission: the new path bumps a refcount on the shared block
    // and rebuilds in place; the old path deep-cloned the rtq `Box` and
    // re-ran the whole chain.
    let block = Bytes::from(vec![0xA5u8; 1460]);
    r.bench("txpath/retransmit_front", |b| {
        let mut pool = MbufPool::new(1024);
        b.iter(|| {
            let data: Bytes = block.clone();
            black_box(build_inplace(&mut pool, &data).len())
        })
    });
    let boxed: Box<[u8]> = vec![0xA5u8; 1460].into();
    r.bench("txpath_vecchain/retransmit_front", |b| {
        let mut pool = MbufPool::new(1024);
        b.iter(|| {
            let data: Box<[u8]> = boxed.clone();
            let (m, rtq) = build_vecchain(&mut pool, &data);
            black_box(m.len() + rtq.len())
        })
    });
}

/// RX delivery, run through the zero-copy hold/credit pipeline and
/// through the copy model it replaced (a staging copy per delivery, and
/// a second copy when an out-of-order segment drained). The arriving
/// frame's DMA fill is identical in both models; the difference is
/// everything between the ring buffer and the application.
fn bench_rxpath(r: &mut BenchRunner) {
    use std::collections::{BTreeMap, VecDeque};

    use ix_apps::workload::proto;
    use ix_mempool::Mbuf;
    use ix_testkit::Bytes;

    // -- In-order delivery: a 1460 B payload from a just-DMA'd pool mbuf
    // to the app and back (`recv_done`). Zero-copy: a refcounted view
    // and a queue move; the app reads the view where it lies. Copy
    // model: stage into an owned buffer, then append into the app's
    // reassembly buffer — the two copies the old pipeline made. Source
    // payloads rotate across a footprint larger than L1 so the copies
    // pay realistic cache-miss costs, as they would at line rate.
    const SLOTS: usize = 256;
    let sources: Vec<Vec<u8>> = (0..SLOTS).map(|i| vec![i as u8; 1460]).collect();
    r.bench("rxpath/deliver_1460b", |b| {
        let mut pool = MbufPool::new(SLOTS + 8);
        drop(pool.alloc()); // Provision the pool outside the timed loop.
        let mut held: VecDeque<Mbuf> = VecDeque::new();
        let mut i = 0usize;
        b.iter(|| {
            let mut m = pool.alloc().expect("capacity");
            m.extend_from_slice(&sources[i % SLOTS]); // DMA (both models).
            i += 1;
            let view = m.as_bytes(); // recv: a zero-copy view.
            held.push_back(m); // Retained until credited.
            // The app parses where the data lies.
            let n = black_box(view[0] as usize + view.len());
            drop(view);
            drop(held.pop_front()); // recv_done credit.
            n
        })
    });
    r.bench("rxpath_copy/deliver_1460b", |b| {
        let mut pool = MbufPool::new(SLOTS + 8);
        drop(pool.alloc()); // Provision the pool outside the timed loop.
        let mut rx: Vec<u8> = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            let mut m = pool.alloc().expect("capacity");
            m.extend_from_slice(&sources[i % SLOTS]); // DMA (both models).
            i += 1;
            let staged = m.data().to_vec(); // Copy one: event staging.
            drop(m);
            rx.extend_from_slice(&staged); // Copy two: app reassembly.
            let n = black_box(rx[0] as usize + rx.len());
            rx.clear();
            n
        })
    });

    // -- Out-of-order: buffer a 1460 B segment, then drain it once the
    // gap fills, trimming a 100 B stale prefix. Zero-copy: the mbuf
    // itself is buffered and later trimmed in place with `pull`. Copy
    // model: one copy into the reassembly map and a second on drain —
    // the double copy the old `drain_ooo` performed.
    r.bench("rxpath/ooo_drain", |b| {
        let mut pool = MbufPool::new(SLOTS + 8);
        drop(pool.alloc()); // Provision the pool outside the timed loop.
        let mut held: VecDeque<Mbuf> = VecDeque::new();
        let mut i = 0usize;
        b.iter(|| {
            let mut ooo: BTreeMap<u32, Mbuf> = BTreeMap::new();
            let mut m = pool.alloc().expect("capacity");
            m.extend_from_slice(&sources[i % SLOTS]);
            i += 1;
            ooo.insert(1_000, m); // Buffered as it arrived.
            let mut m = ooo.remove(&1_000).expect("present");
            m.pull(100); // Stale-prefix trim: a window move.
            let view = m.as_bytes();
            held.push_back(m);
            let n = black_box(view[0] as usize + view.len());
            drop(view);
            drop(held.pop_front());
            n
        })
    });
    r.bench("rxpath_copy/ooo_drain", |b| {
        let mut pool = MbufPool::new(SLOTS + 8);
        drop(pool.alloc()); // Provision the pool outside the timed loop.
        let mut rx: Vec<u8> = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            let mut ooo: BTreeMap<u32, Box<[u8]>> = BTreeMap::new();
            let mut m = pool.alloc().expect("capacity");
            m.extend_from_slice(&sources[i % SLOTS]);
            i += 1;
            ooo.insert(1_000, m.data().into()); // Copy one: into the map.
            drop(m);
            let d = ooo.remove(&1_000).expect("present");
            let staged = d[100..].to_vec(); // Copy two: trim on drain.
            rx.extend_from_slice(&staged); // Copy three: app reassembly.
            let n = black_box(rx[0] as usize + rx.len());
            rx.clear();
            n
        })
    });

    // -- Application parse: one delivery carrying eight pipelined GET
    // requests. In place: decode straight from the delivered view (the
    // KV server's contiguous fast path). Copy model: append to the
    // per-connection reassembly buffer first (the old unconditional
    // spill), then decode and drain.
    let mut batch = Vec::new();
    for seq in 0..8u64 {
        batch.extend_from_slice(&proto::encode_request(
            proto::OP_GET,
            seq,
            b"key:0123456789",
            &[0u8; 64],
        ));
    }
    let delivery = Bytes::from(batch);
    r.bench("rxpath/kv_parse_inplace", |b| {
        b.iter(|| {
            let mut consumed = 0usize;
            let mut served = 0u32;
            while let Some(h) = proto::decode_request_header(&delivery[consumed..]) {
                if delivery.len() - consumed < h.total_len() {
                    break;
                }
                consumed += h.total_len();
                served += 1;
            }
            black_box(served)
        })
    });
    r.bench("rxpath_copy/kv_parse_inplace", |b| {
        let mut rx: Vec<u8> = Vec::new();
        b.iter(|| {
            rx.extend_from_slice(&delivery); // The old unconditional append.
            let mut consumed = 0usize;
            let mut served = 0u32;
            while let Some(h) = proto::decode_request_header(&rx[consumed..]) {
                if rx.len() - consumed < h.total_len() {
                    break;
                }
                consumed += h.total_len();
                served += 1;
            }
            rx.drain(..consumed);
            black_box(served)
        })
    });
}

/// Flow-table workloads, run identically against the open-addressing
/// [`ix_tcp::FlowMap`] and the `HashMap<u64, _>` it replaced in the
/// TCP shard. Payloads are 64 B (a TCB-shaped cache-line) and keys are
/// `FlowId::pack`-shaped words, so the comparison measures exactly the
/// per-packet demux the stack performs.
fn bench_flowtable(r: &mut BenchRunner) {
    use ix_tcp::FlowMap;
    use std::collections::HashMap;

    type Payload = [u64; 8];
    const LIVE: usize = 100_000;

    /// `FlowId::pack`-shaped key: remote ip | remote port | local port.
    fn flow_key(i: u64) -> u64 {
        ((0x0a00_0001 + (i / 64)) << 32) | ((16_384 + (i % 48_000)) << 16) | 80
    }

    // -- Hot-path demux: random established-flow lookups at 100k live.
    r.bench("flowtable/lookup_hit", |b| {
        let mut m: FlowMap<Payload> = FlowMap::new();
        for i in 0..LIVE as u64 {
            m.insert(flow_key(i), [i; 8]);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i.wrapping_mul(25_214_903_917).wrapping_add(11)) % LIVE;
            black_box(m.get(flow_key(i as u64)).expect("present")[0]);
        })
    });
    r.bench("flowtable_hashmap/lookup_hit", |b| {
        let mut m: HashMap<u64, Payload> = HashMap::new();
        for i in 0..LIVE as u64 {
            m.insert(flow_key(i), [i; 8]);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i.wrapping_mul(25_214_903_917).wrapping_add(11)) % LIVE;
            black_box(m.get(&flow_key(i as u64)).expect("present")[0]);
        })
    });

    // -- Connection churn at steady state: one accept + one close per
    // iteration against a 100k-flow working set (the §5.3 RST-churn
    // pattern at Fig 4 scale).
    r.bench("flowtable/insert_churn", |b| {
        let mut m: FlowMap<Payload> = FlowMap::new();
        for i in 0..LIVE as u64 {
            m.insert(flow_key(i), [i; 8]);
        }
        let (mut head, mut tail) = (LIVE as u64, 0u64);
        b.iter(|| {
            m.insert(flow_key(head), [head; 8]);
            black_box(m.remove(flow_key(tail)).expect("present"));
            head += 1;
            tail += 1;
        })
    });
    r.bench("flowtable_hashmap/insert_churn", |b| {
        let mut m: HashMap<u64, Payload> = HashMap::new();
        for i in 0..LIVE as u64 {
            m.insert(flow_key(i), [i; 8]);
        }
        let (mut head, mut tail) = (LIVE as u64, 0u64);
        b.iter(|| {
            m.insert(flow_key(head), [head; 8]);
            black_box(m.remove(&flow_key(tail)).expect("present"));
            head += 1;
            tail += 1;
        })
    });

    // -- Flow-group migration: one iteration = extract every flow whose
    // RSS bucket moved (1/8 of a 10k-flow shard, in sorted-key order,
    // as `extract_flows` does) and absorb them back.
    const SHARD: u64 = 10_000;
    r.bench("flowtable/migrate_extract", |b| {
        let mut m: FlowMap<Payload> = FlowMap::new();
        for i in 0..SHARD {
            m.insert(flow_key(i), [i; 8]);
        }
        b.iter(|| {
            // Key-only scan, as `extract_flows` does: the probe array
            // alone decides the batch; the slab is touched per moved
            // flow only.
            let mut batch = m.collect_keys();
            batch.retain(|k| (k >> 16) & 7 == 0);
            batch.sort_unstable();
            let mut out = Vec::with_capacity(batch.len());
            for &k in &batch {
                out.push((k, m.remove(k).expect("present")));
            }
            for (k, v) in out {
                m.insert(k, v);
            }
            black_box(m.len());
        })
    });
    r.bench("flowtable_hashmap/migrate_extract", |b| {
        let mut m: HashMap<u64, Payload> = HashMap::new();
        for i in 0..SHARD {
            m.insert(flow_key(i), [i; 8]);
        }
        b.iter(|| {
            let mut batch: Vec<u64> =
                m.iter().filter(|(k, _)| (*k >> 16) & 7 == 0).map(|(k, _)| *k).collect();
            batch.sort_unstable();
            let mut out = Vec::with_capacity(batch.len());
            for &k in &batch {
                out.push((k, m.remove(&k).expect("present")));
            }
            for (k, v) in out {
                m.insert(k, v);
            }
            black_box(m.len());
        })
    });
}

/// Flow-group migration, over the shard's real data structures
/// (bucketed [`ix_tcp::FlowMap`] + [`TimerWheel`] with four armed
/// timers per flow). Extract side: one iteration moves one RSS flow
/// group — the granularity the elastic control loop rebalances at —
/// out of a table holding 1k/10k/100k live flows, then restores it
/// untimed ([`Bencher::iter_timed`]). The bulk path walks the group's
/// intrusive bucket list and splices its timers with `cancel_batch`;
/// the per-flow baseline is the pipeline it replaced, whose cost is
/// O(table) regardless of group size — `collect_keys()` over every
/// live flow, a software Toeplitz hash per key to test group
/// membership, a full key sort, then 4 × (`remaining_ns` + `cancel`)
/// wheel round-trips per extracted flow. Absorb side: the whole shard
/// lands on a freshly-started destination core (the fig9 shape); the
/// bulk path reserves the flow table once and re-arms timers through
/// `schedule_batch` slot handles, the baseline grows the table one
/// insert at a time and pays 4 × `schedule` + `get_mut` re-lookups
/// per flow.
fn bench_migrate(r: &mut BenchRunner) {
    use std::time::Instant;

    use ix_tcp::{FlowMap, NUM_BUCKETS};
    use ix_timerwheel::TimerId;

    /// TCB stand-in: four armed timers plus a cache line of state.
    #[derive(Clone, Copy)]
    struct Flow {
        timers: [Option<TimerId>; 4],
        _state: [u64; 8],
    }

    const LOCAL_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const LOCAL_PORT: u16 = 7000;

    fn remote(i: u64) -> (Ipv4Addr, u16) {
        (Ipv4Addr(0x0a00_0002 + (i / 48_000) as u32), (16_384 + (i % 48_000)) as u16)
    }

    fn key_of(i: u64) -> u64 {
        let (ip, port) = remote(i);
        ((ip.0 as u64) << 32) | ((port as u64) << 16) | LOCAL_PORT as u64
    }

    fn bucket_of_key(k: u64) -> u16 {
        let hash = hash_ipv4_tuple(
            &TOEPLITZ_DEFAULT_KEY,
            Ipv4Addr((k >> 32) as u32),
            LOCAL_IP,
            (k >> 16) as u16,
            k as u16,
        );
        (hash & (NUM_BUCKETS as u32 - 1)) as u16
    }

    /// RTO-shaped timer spread, constant per (flow, slot) so the wheel
    /// reaches a steady state across iterations.
    fn delay(k: u64, j: usize) -> u64 {
        200_000_000 + (k % 64) * 1_000_000 + j as u64 * 16_384
    }

    fn setup(n: u64) -> (FlowMap<Flow>, TimerWheel<u64>) {
        let mut m: FlowMap<Flow> = FlowMap::with_capacity(n as usize * 2);
        let mut w: TimerWheel<u64> = TimerWheel::new();
        for i in 0..n {
            let k = key_of(i);
            let mut f = Flow { timers: [None; 4], _state: [i; 8] };
            for j in 0..4 {
                f.timers[j] = Some(w.schedule(delay(k, j), k));
            }
            m.insert_in_bucket(k, bucket_of_key(k), f);
        }
        (m, w)
    }

    /// Bulk extract of one flow group: walk its intrusive bucket list,
    /// splice all four timers per flow in one wheel pass.
    fn extract_bulk(m: &mut FlowMap<Flow>, w: &mut TimerWheel<u64>, b: u16) -> Vec<(u64, u16, Flow)> {
        let keys: Vec<u64> = m.bucket_keys(b).collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let f = m.remove(k).expect("listed key present");
            w.cancel_batch(f.timers.into_iter().flatten(), |_, remaining| {
                black_box(remaining);
            });
            out.push((k, b, f));
        }
        out
    }

    /// Per-flow baseline extract of the same group: full-table key
    /// scan, a Toeplitz hash per key to test membership, a sort, then
    /// four individual wheel round-trips per flow.
    fn extract_perflow(m: &mut FlowMap<Flow>, w: &mut TimerWheel<u64>, b: u16) -> Vec<(u64, u16, Flow)> {
        let mut batch = m.collect_keys();
        batch.retain(|&k| bucket_of_key(k) == b);
        batch.sort_unstable();
        let mut out = Vec::with_capacity(batch.len());
        for &k in &batch {
            let f = m.remove(k).expect("present");
            for id in f.timers.into_iter().flatten() {
                black_box(w.remaining_ns(id));
                w.cancel(id);
            }
            out.push((k, b, f));
        }
        out
    }

    /// Bulk absorb, mirroring the shipped `Stack::absorb_flows` path:
    /// capacity reservation, staged slab/bucket placement with slot
    /// handles (no per-flow table probe), one `schedule_batch` pass
    /// re-arming every timer, then a single home-slot-ordered
    /// `commit_staged` probe over the whole batch.
    fn absorb_bulk(m: &mut FlowMap<Flow>, w: &mut TimerWheel<u64>, group: Vec<(u64, u16, Flow)>) {
        m.reserve(group.len());
        let mut reqs = Vec::with_capacity(group.len() * 4);
        let mut targets = Vec::with_capacity(group.len() * 4);
        for (k, b, mut f) in group {
            f.timers = [None; 4];
            let slot = m.stage_insert(k, b, f);
            for j in 0..4 {
                reqs.push((delay(k, j), k));
                targets.push((slot, j));
            }
        }
        let mut i = 0usize;
        w.schedule_batch(reqs, |id| {
            let (slot, j) = targets[i];
            i += 1;
            m.slot_mut(slot).timers[j] = Some(id);
        });
        m.commit_staged();
    }

    /// Per-flow baseline absorb: one unreserved insert per flow, then
    /// 4 × `schedule` + `get_mut` re-lookup to store each timer id.
    fn absorb_perflow(m: &mut FlowMap<Flow>, w: &mut TimerWheel<u64>, group: Vec<(u64, u16, Flow)>) {
        for (k, b, mut f) in group {
            f.timers = [None; 4];
            m.insert_in_bucket(k, b, f);
            for j in 0..4 {
                let id = w.schedule(delay(k, j), k);
                m.get_mut(k).expect("just inserted").timers[j] = Some(id);
            }
        }
    }

    // Each iteration rotates through the 128 flow groups so every
    // bucket-list length is sampled; the untimed half of the round-trip
    // restores the table to steady state.
    for (label, n) in [("1k", 1_000u64), ("10k", 10_000), ("100k", 100_000)] {
        r.bench(&format!("migrate/extract_{label}"), |be| {
            let (mut m, mut w) = setup(n);
            let mut b = 0u16;
            be.iter_timed(|| {
                let t = Instant::now();
                let group = extract_bulk(&mut m, &mut w, b);
                let dt = t.elapsed();
                black_box(group.len());
                absorb_bulk(&mut m, &mut w, group);
                b = (b + 1) % NUM_BUCKETS as u16;
                dt
            })
        });
        r.bench(&format!("migrate_perflow/extract_{label}"), |be| {
            let (mut m, mut w) = setup(n);
            let mut b = 0u16;
            be.iter_timed(|| {
                let t = Instant::now();
                let group = extract_perflow(&mut m, &mut w, b);
                let dt = t.elapsed();
                black_box(group.len());
                absorb_bulk(&mut m, &mut w, group);
                b = (b + 1) % NUM_BUCKETS as u16;
                dt
            })
        });
        // Absorb-side: the whole shard lands on a freshly-started
        // destination core (the fig9 shape) — empty flow table, empty
        // wheel. The baseline grows both one insert at a time.
        r.bench(&format!("migrate/absorb_{label}"), |be| {
            let (mut m, mut w) = setup(n);
            be.iter_timed(|| {
                let mut group = Vec::with_capacity(n as usize);
                for b in 0..NUM_BUCKETS as u16 {
                    group.append(&mut extract_bulk(&mut m, &mut w, b));
                }
                let mut dm: FlowMap<Flow> = FlowMap::new();
                let mut dw: TimerWheel<u64> = TimerWheel::new();
                let t = Instant::now();
                absorb_bulk(&mut dm, &mut dw, group);
                let dt = t.elapsed();
                black_box(dm.len());
                (m, w) = (dm, dw);
                dt
            })
        });
        r.bench(&format!("migrate_perflow/absorb_{label}"), |be| {
            let (mut m, mut w) = setup(n);
            be.iter_timed(|| {
                let mut group = Vec::with_capacity(n as usize);
                for b in 0..NUM_BUCKETS as u16 {
                    group.append(&mut extract_bulk(&mut m, &mut w, b));
                }
                let mut dm: FlowMap<Flow> = FlowMap::new();
                let mut dw: TimerWheel<u64> = TimerWheel::new();
                let t = Instant::now();
                absorb_perflow(&mut dm, &mut dw, group);
                let dt = t.elapsed();
                black_box(dm.len());
                (m, w) = (dm, dw);
                dt
            })
        });
    }
}

/// The pre-stack RX filter: fixed-offset pre-parse plus one
/// open-addressing policy lookup per frame, against a HashMap-ACL model
/// (separate std maps per rule kind, probed in the same precedence
/// order), plus the SYN-cookie encode/validate pair.
fn bench_filter(r: &mut BenchRunner) {
    use ix_net::filter::{pre_parse, FilterPolicy, PreParsed, RuleAction};
    use ix_net::ip::IpProto;
    use std::collections::HashMap;

    const RULES: u64 = 2_000;

    fn rule_ip(i: u64) -> Ipv4Addr {
        Ipv4Addr(0x0a09_0000u32.wrapping_add((i * 37) as u32))
    }

    fn policy() -> FilterPolicy {
        let mut p = FilterPolicy::new();
        for i in 0..RULES {
            p = p.rule_src(rule_ip(i), RuleAction::Drop);
        }
        p.rule_net16(Ipv4Addr(0x0af0_0001), RuleAction::Drop)
            .rule_port(IpProto::Tcp, 11211, RuleAction::SynChallenge)
    }

    /// A 64 B TCP frame whose source is the `i`-th drop rule (hit) or
    /// outside every rule (miss).
    fn tcp_frame(src: Ipv4Addr) -> Vec<u8> {
        use ix_net::eth::{EthHeader, EtherType, MacAddr};
        use ix_net::ip::Ipv4Header;
        let dst = Ipv4Addr::new(10, 0, 0, 1);
        let tcp = TcpHeader {
            src_port: 31_337,
            dst_port: 80,
            seq: 1,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65_535,
            mss: Some(1460),
            wscale: None,
        };
        let tcp_len = tcp.len();
        let mut f = vec![0u8; EthHeader::LEN + Ipv4Header::LEN + tcp_len];
        EthHeader {
            dst: MacAddr::from_host_index(1),
            src: MacAddr::from_host_index(2),
            ethertype: EtherType::Ipv4,
        }
        .encode(&mut f[..EthHeader::LEN]);
        Ipv4Header {
            tos: 0,
            total_len: (Ipv4Header::LEN + tcp_len) as u16,
            ident: 0,
            ttl: 64,
            proto: IpProto::Tcp,
            src,
            dst,
        }
        .encode(&mut f[EthHeader::LEN..EthHeader::LEN + Ipv4Header::LEN]);
        tcp.encode(&mut f[EthHeader::LEN + Ipv4Header::LEN..], src, dst, &[]);
        f
    }

    /// The ACL shape the open-addressing table replaces: one std
    /// HashMap per rule kind, probed src → net16 → port.
    struct HashAcl {
        src: HashMap<u32, RuleAction>,
        net16: HashMap<u32, RuleAction>,
        port: HashMap<(IpProto, u16), RuleAction>,
    }

    impl HashAcl {
        fn model() -> HashAcl {
            let mut src = HashMap::new();
            for i in 0..RULES {
                src.insert(rule_ip(i).0, RuleAction::Drop);
            }
            let mut net16 = HashMap::new();
            net16.insert(0x0af0u32, RuleAction::Drop);
            let mut port = HashMap::new();
            port.insert((IpProto::Tcp, 11_211u16), RuleAction::SynChallenge);
            HashAcl { src, net16, port }
        }

        fn classify(&self, p: &PreParsed) -> u8 {
            let rule = self
                .src
                .get(&p.src_ip.0)
                .or_else(|| self.net16.get(&(p.src_ip.0 >> 16)))
                .or_else(|| self.port.get(&(p.proto, p.dst_port)));
            match rule {
                Some(RuleAction::Drop) => 1,
                Some(_) => 2,
                None => 0,
            }
        }
    }

    let hit = tcp_frame(rule_ip(1_234));
    let miss = tcp_frame(Ipv4Addr::new(172, 16, 0, 9));

    for (wl, frame) in [("classify_hit", &hit), ("classify_miss", &miss)] {
        r.bench(&format!("filter/{wl}"), |b| {
            let p = policy();
            b.iter(|| {
                let pre = pre_parse(black_box(frame)).expect("parses");
                black_box(p.classify(&pre, 0));
            })
        });
        r.bench(&format!("filter_hashmap/{wl}"), |b| {
            let acl = HashAcl::model();
            b.iter(|| {
                let pre = pre_parse(black_box(frame)).expect("parses");
                black_box(acl.classify(&pre));
            })
        });
    }

    // Cookie mint + validate: the per-SYN cost of the stateless path.
    r.bench("filter/syn_cookie_roundtrip", |b| {
        use ix_tcp::syncookie;
        let secret = 0x5eed_c0de_u64;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            let key = black_box(i);
            let iss = i as u32;
            let cookie = syncookie::encode(secret, key, iss, 7, 3);
            black_box(syncookie::validate(secret, key, iss, cookie, 7).expect("valid"));
        })
    });
}

/// Internet-checksum folding: the widened u64 chunker against the
/// scalar u16-pair fold it replaced. Verify covers the RX validation
/// path (header + payload in one pass), build the TX insertion path.
fn bench_checksum(r: &mut BenchRunner) {
    use ix_net::checksum::checksum;

    /// The pre-widening implementation, kept as the baseline: u16
    /// big-endian pairs into a u32 accumulator, folded at the end.
    fn fold_u16(data: &[u8]) -> u16 {
        let mut sum = 0u32;
        let mut chunks = data.chunks_exact(2);
        for pair in &mut chunks {
            sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += (*last as u32) << 8;
        }
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    fn payload(len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        let mut x = 0x1d3a_f00d_u64;
        for b in buf.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        buf
    }

    // Verify-shaped buffers: checksum inserted so the full-buffer fold
    // comes out zero, exactly what `ix_net::checksum::verify` sees.
    for (wl, len) in [("verify_64b", 64usize), ("verify_1460b", 1460)] {
        let mut buf = payload(len);
        let c = checksum(&buf);
        buf[0] = (c >> 8) as u8;
        buf[1] = (c & 0xff) as u8;
        let base = buf.clone();
        r.bench(&format!("checksum/{wl}"), |b| {
            b.iter(|| black_box(ix_net::checksum::verify(black_box(&buf))))
        });
        r.bench(&format!("checksum_u16/{wl}"), |b| {
            b.iter(|| black_box(fold_u16(black_box(&base)) == 0))
        });
    }

    // Build-shaped: sum a zero-field payload, as TX header encode does.
    let buf = payload(1460);
    r.bench("checksum/build_1460b", |b| {
        b.iter(|| black_box(checksum(black_box(&buf))))
    });
    r.bench("checksum_u16/build_1460b", |b| {
        b.iter(|| black_box(fold_u16(black_box(&buf))))
    });
}

/// The staged RX batch pipeline against per-frame `input()`: one
/// 64-frame polled batch of pure ACKs from 16 interleaved established
/// flows, over a shard also holding ~2k idle connections (so flow-table
/// probes miss cache the way a loaded shard's do). The batched side
/// probes the table once per flow per run and takes the hot-TCB fast
/// path; the per-frame side pays the full dispatch per segment.
fn bench_rxbatch(r: &mut BenchRunner) {
    use ix_mempool::Mbuf;
    use ix_net::eth::{EthHeader, EtherType, MacAddr};
    use ix_net::ip::{IpProto, Ipv4Header};
    use ix_tcp::{AckPolicy, StackConfig, TcpEvent, TcpShard};

    const CLI_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SRV_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const SRV_PORT: u16 = 80;
    const HOT_FLOWS: u16 = 16;
    const IDLE_FLOWS: u16 = 16_384;
    const BATCH: usize = 64;
    const PAYLOAD: usize = 16;
    const RUNS: usize = BATCH / HOT_FLOWS as usize;

    /// One client→server wire frame with valid checksums.
    fn wire(src_port: u16, seq: u32, ack: u32, flags: TcpFlags, mss: Option<u16>, payload: &[u8]) -> Vec<u8> {
        let hdr = TcpHeader {
            src_port,
            dst_port: SRV_PORT,
            seq,
            ack,
            flags,
            window: 65_535,
            mss,
            wscale: None,
        };
        let hlen = hdr.len();
        let mut f = vec![0u8; EthHeader::LEN + Ipv4Header::LEN + hlen + payload.len()];
        EthHeader {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .encode(&mut f[..EthHeader::LEN]);
        Ipv4Header {
            tos: 0,
            total_len: (Ipv4Header::LEN + hlen + payload.len()) as u16,
            ident: 0,
            ttl: 64,
            proto: IpProto::Tcp,
            src: CLI_IP,
            dst: SRV_IP,
        }
        .encode(&mut f[EthHeader::LEN..EthHeader::LEN + Ipv4Header::LEN]);
        hdr.encode(&mut f[EthHeader::LEN + Ipv4Header::LEN..], CLI_IP, SRV_IP, payload);
        f[EthHeader::LEN + Ipv4Header::LEN + hlen..].copy_from_slice(payload);
        f
    }

    /// Stands up a shard with `HOT_FLOWS + IDLE_FLOWS` established
    /// connections (distinct client ports starting at 40000) and returns
    /// it plus, per hot flow, the server's `snd_una` (srv_iss + 1).
    fn established_shard(cfg: StackConfig) -> (TcpShard, Vec<u32>) {
        let mut b = TcpShard::new(cfg, SRV_IP, MacAddr::from_host_index(2));
        b.arp_seed(CLI_IP, MacAddr::from_host_index(1));
        b.listen(SRV_PORT);
        let mut now = 1_000u64;
        let mut hot_acks = Vec::new();
        for i in 0..HOT_FLOWS + IDLE_FLOWS {
            let port = 40_000 + i;
            let isn = 0x1000_0000u32.wrapping_add(u32::from(i) << 8);
            now += 1_000;
            b.input(now, mk_mbuf(&wire(port, isn, 0, TcpFlags::SYN, Some(1460), &[])));
            b.end_cycle(now);
            let mut siss = None;
            for mut f in b.take_tx() {
                f.pull(EthHeader::LEN + Ipv4Header::LEN);
                let (hdr, _) = TcpHeader::decode(f.data(), SRV_IP, CLI_IP).expect("tcp");
                if hdr.flags.syn && hdr.flags.ack {
                    siss = Some(hdr.seq);
                }
            }
            let srv_ack = siss.expect("SYN-ACK").wrapping_add(1);
            now += 1_000;
            b.input(
                now,
                mk_mbuf(&wire(port, isn.wrapping_add(1), srv_ack, TcpFlags::ACK, None, &[])),
            );
            b.end_cycle(now);
            for e in b.take_events() {
                if let TcpEvent::Knock { flow, .. } = e {
                    b.accept(flow, u64::from(port)).unwrap();
                }
            }
            let _ = b.take_tx();
            let _ = b.take_events();
            if i < HOT_FLOWS {
                hot_acks.push(srv_ack);
            }
        }
        (b, hot_acks)
    }

    fn mk_mbuf(wire: &[u8]) -> Mbuf {
        let mut m = Mbuf::standalone();
        m.append(wire.len()).copy_from_slice(wire);
        m
    }

    /// The 64-frame batch: the 16 hot flows interleaved round-robin,
    /// each contributing a run of `RUNS` in-order 16-byte data segments
    /// (frame `j` belongs to flow `j % 16` and carries run index
    /// `j / 16`). Seq fields are placeholders until `advance` patches
    /// them to the live per-flow cursor.
    fn mk_batch(hot_acks: &[u32]) -> Vec<Vec<u8>> {
        let body = [0x5au8; PAYLOAD];
        (0..BATCH)
            .map(|j| {
                let i = (j % hot_acks.len()) as u16;
                let isn = 0x1000_0000u32.wrapping_add(u32::from(i) << 8);
                wire(40_000 + i, isn.wrapping_add(1), hot_acks[i as usize], TcpFlags::ACK, None, &body)
            })
            .collect()
    }

    /// Patches a prebuilt frame's TCP sequence number and repairs the
    /// transport checksum incrementally (RFC 1624 §3: HC' = ~(~HC +
    /// ~m + m')), so the per-iteration frame refresh costs a few
    /// nanoseconds on both sides of the comparison instead of a rebuild.
    fn patch_seq(w: &mut [u8], seq: u32) {
        let tcp = EthHeader::LEN + Ipv4Header::LEN;
        let ck = tcp + 16;
        let mut s = u32::from(!u16::from_be_bytes([w[ck], w[ck + 1]]));
        for (o, half) in [(tcp + 4, (seq >> 16) as u16), (tcp + 6, seq as u16)] {
            s += u32::from(!u16::from_be_bytes([w[o], w[o + 1]])) + u32::from(half);
        }
        w[tcp + 4..tcp + 8].copy_from_slice(&seq.to_be_bytes());
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        w[ck..ck + 2].copy_from_slice(&(!(s as u16)).to_be_bytes());
    }

    /// Rewrites every frame's seq to the current per-flow cursor and
    /// bumps the cursors past the batch, keeping each flow's byte
    /// stream strictly in order across iterations.
    fn advance(batch: &mut [Vec<u8>], seqs: &mut [u32]) {
        for (j, w) in batch.iter_mut().enumerate() {
            let i = j % seqs.len();
            let run = (j / seqs.len()) as u32;
            patch_seq(w, seqs[i].wrapping_add(run * PAYLOAD as u32));
        }
        for s in seqs.iter_mut() {
            *s = s.wrapping_add((RUNS * PAYLOAD) as u32);
        }
    }

    /// Per-flow client seq cursors right after the handshake.
    fn seq_cursors() -> Vec<u32> {
        (0..HOT_FLOWS)
            .map(|i| 0x1000_0000u32.wrapping_add(u32::from(i) << 8).wrapping_add(1))
            .collect()
    }

    /// Consumes a cycle's output the way a run-to-completion app would:
    /// drops the TX frames and credits every delivered payload straight
    /// back via `recv_done`, so the advertised window never closes.
    fn drain(shard: &mut TcpShard, now: u64) -> usize {
        let mut n = shard.take_tx().len();
        for e in shard.take_events() {
            n += 1;
            if let TcpEvent::Recv { flow, payload, .. } = e {
                shard.recv_done(now, flow, payload.len() as u32).expect("credit");
            }
        }
        n
    }

    // `patch_seq` must agree with a full rebuild, checksum included.
    {
        let body = [0x5au8; PAYLOAD];
        let mut probe = wire(41_000, 7, 9, TcpFlags::ACK, None, &body);
        patch_seq(&mut probe, 0xdead_beef);
        assert_eq!(probe, wire(41_000, 0xdead_beef, 9, TcpFlags::ACK, None, &body));
    }

    r.bench("rxbatch/group_probe", |b| {
        let cfg = StackConfig {
            batch_rx: true,
            ack_policy: AckPolicy::Immediate,
            ..StackConfig::default()
        };
        let (mut shard, hot_acks) = established_shard(cfg);
        let mut batch = mk_batch(&hot_acks);
        let mut seqs = seq_cursors();
        // Frames come from a recycling pool, as the NIC's would; the
        // stack holds each delivered payload until `recv_done` credits
        // it back at the end of the cycle.
        let mut pool = MbufPool::new(4 * BATCH);
        let mut frames: Vec<Mbuf> = Vec::with_capacity(BATCH);
        let mut now = 1_000_000_000u64;
        b.iter(|| {
            now += 10_000;
            advance(&mut batch, &mut seqs);
            // Bulk ring refill: one pool transaction for the batch.
            assert_eq!(pool.alloc_batch(BATCH, &mut frames), BATCH);
            for (m, w) in frames.iter_mut().zip(&batch) {
                m.extend_from_slice(w);
            }
            shard.input_batch(now, &mut frames);
            shard.end_cycle(now);
            black_box(drain(&mut shard, now));
        })
    });

    r.bench("rxbatch_frame/group_probe", |b| {
        let cfg = StackConfig { ack_policy: AckPolicy::Immediate, ..StackConfig::default() };
        let (mut shard, hot_acks) = established_shard(cfg);
        let mut batch = mk_batch(&hot_acks);
        let mut seqs = seq_cursors();
        let mut pool = MbufPool::new(4 * BATCH);
        let mut now = 1_000_000_000u64;
        b.iter(|| {
            now += 10_000;
            advance(&mut batch, &mut seqs);
            for w in &batch {
                shard.input(now, pool.alloc_with(w).expect("pool"));
            }
            shard.end_cycle(now);
            black_box(drain(&mut shard, now));
        })
    });
}

fn bench_histogram(r: &mut BenchRunner) {
    r.bench("stats/histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(ix_sim::Nanos(v % 1_000_000));
        })
    });
}

fn bench_end_to_end(r: &mut BenchRunner) {
    // Simulation engine throughput: how many virtual echo messages per
    // wall-second the DES sustains (determines bench harness runtimes).
    r.bench("simulation/ix_echo_1ms_virtual", |b| {
        b.iter(|| {
            use ix_apps::harness::{run_netpipe, EngineTuning, System};
            black_box(run_netpipe(System::Ix, 64, 50, &EngineTuning::default()))
        })
    });
}

/// Persists every result (and the calendar-vs-BinaryHeap comparison) to
/// `results/BENCH_sim.json`.
fn write_report(r: &BenchRunner) {
    let quick = std::env::var("IX_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let mut rows = String::from("[");
    for (i, res) in r.results().iter().enumerate() {
        if i > 0 {
            rows.push_str(", ");
        }
        rows += &format!(
            "{{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"iters\": {}}}",
            ix_bench::report::json_escape(&res.name),
            res.ns_per_iter,
            res.iters
        );
    }
    rows.push(']');
    // Quick (CI smoke) runs get their own keys so they never clobber
    // recorded full-length numbers.
    let suffix = if quick { "_quick" } else { "" };
    ix_bench::report::update_section(
        &format!("microbench{suffix}"),
        &format!("{{\"quick\": {quick}, \"results\": {rows}}}"),
    );

    // One event fires per iteration in every scheduler workload, so
    // events/sec is directly 1e9 / ns_per_iter and the speedup is the
    // ns ratio against the BinaryHeap model.
    let find = |name: &str| r.results().iter().find(|x| x.name == name).map(|x| x.ns_per_iter);
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in ["churn_fire_8k", "cancel_rto_rearm", "mixed_near_far"] {
        if let (Some(new), Some(base)) = (
            find(&format!("scheduler/{wl}")),
            find(&format!("scheduler_binheap/{wl}")),
        ) {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"calendar_ns\": {new:.2}, \"binheap_ns\": {base:.2}, \
                 \"calendar_events_per_sec\": {:.0}, \"binheap_events_per_sec\": {:.0}, \
                 \"speedup\": {:.2}}}",
                1e9 / new,
                1e9 / base,
                base / new
            );
            println!(
                "[scheduler] {wl}: {:.1} ns/event vs binheap {:.1} ns/event ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("scheduler_speedup{suffix}"), &cmp);
    }

    // Same shape for the flow-table workloads: identical workload run
    // against the open-addressing FlowMap and the HashMap it replaced.
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in ["lookup_hit", "insert_churn", "migrate_extract"] {
        if let (Some(new), Some(base)) = (
            find(&format!("flowtable/{wl}")),
            find(&format!("flowtable_hashmap/{wl}")),
        ) {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"flowtable_ns\": {new:.2}, \"hashmap_ns\": {base:.2}, \
                 \"speedup\": {:.2}}}",
                base / new
            );
            println!(
                "[flowtable] {wl}: {:.1} ns/op vs HashMap {:.1} ns/op ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("flowtable_speedup{suffix}"), &cmp);
    }

    // And for the TX build path: the in-place zero-copy pipeline against
    // the Vec-chain model it replaced.
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in ["build_64b", "build_1460b", "retransmit_front"] {
        if let (Some(new), Some(base)) =
            (find(&format!("txpath/{wl}")), find(&format!("txpath_vecchain/{wl}")))
        {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"inplace_ns\": {new:.2}, \"vecchain_ns\": {base:.2}, \
                 \"speedup\": {:.2}}}",
                base / new
            );
            println!(
                "[txpath] {wl}: {:.1} ns/seg vs vec-chain {:.1} ns/seg ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("txpath_speedup{suffix}"), &cmp);
    }

    // And for the RX delivery path: the zero-copy hold/credit pipeline
    // against the staging-copy model it replaced.
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in ["deliver_1460b", "ooo_drain", "kv_parse_inplace"] {
        if let (Some(new), Some(base)) =
            (find(&format!("rxpath/{wl}")), find(&format!("rxpath_copy/{wl}")))
        {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"zerocopy_ns\": {new:.2}, \"copy_ns\": {base:.2}, \
                 \"speedup\": {:.2}}}",
                base / new
            );
            println!(
                "[rxpath] {wl}: {:.1} ns/op vs copy model {:.1} ns/op ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("rxpath_speedup{suffix}"), &cmp);
    }

    // And for flow-group migration: the bulk bucket-walk + timer-splice
    // path against the per-flow scan/sort/re-lookup pipeline it
    // replaced. One iteration migrates 1/8 of the shard out and back.
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in
        ["extract_1k", "extract_10k", "extract_100k", "absorb_1k", "absorb_10k", "absorb_100k"]
    {
        if let (Some(new), Some(base)) =
            (find(&format!("migrate/{wl}")), find(&format!("migrate_perflow/{wl}")))
        {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"bulk_ns\": {new:.2}, \"perflow_ns\": {base:.2}, \
                 \"speedup\": {:.2}}}",
                base / new
            );
            println!(
                "[migrate] {wl}: {:.1} ns/round vs per-flow {:.1} ns/round ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("migrate_speedup{suffix}"), &cmp);
    }

    // And for the pre-stack filter: pre-parse + one open-addressing
    // lookup per frame against the HashMap-ACL model, plus the absolute
    // per-SYN cookie cost (no baseline — the alternative is a TCB).
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in ["classify_hit", "classify_miss"] {
        if let (Some(new), Some(base)) =
            (find(&format!("filter/{wl}")), find(&format!("filter_hashmap/{wl}")))
        {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"filter_ns\": {new:.2}, \"hashmap_ns\": {base:.2}, \
                 \"speedup\": {:.2}}}",
                base / new
            );
            println!(
                "[filter] {wl}: {:.1} ns/frame vs HashMap ACL {:.1} ns/frame ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    if let Some(ns) = find("filter/syn_cookie_roundtrip") {
        if !first {
            cmp.push_str(", ");
        }
        cmp += &format!("\"syn_cookie_roundtrip\": {{\"filter_ns\": {ns:.2}}}");
        println!("[filter] syn_cookie_roundtrip: {ns:.1} ns/handshake (mint + validate)");
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("filter_speedup{suffix}"), &cmp);
    }

    // And for checksum folding: the u64 chunker against the scalar
    // u16-pair fold it replaced, on verify- and build-shaped buffers.
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in ["verify_64b", "verify_1460b", "build_1460b"] {
        if let (Some(new), Some(base)) =
            (find(&format!("checksum/{wl}")), find(&format!("checksum_u16/{wl}")))
        {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"wide_ns\": {new:.2}, \"u16_ns\": {base:.2}, \
                 \"speedup\": {:.2}}}",
                base / new
            );
            println!(
                "[checksum] {wl}: {:.1} ns/op vs u16 fold {:.1} ns/op ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("checksum_speedup{suffix}"), &cmp);
    }

    // And for the staged RX batch pipeline: one flow-grouped 64-frame
    // batch against the same frames fed one `input()` call at a time.
    let mut cmp = String::from("{");
    let mut first = true;
    for wl in ["group_probe"] {
        if let (Some(new), Some(base)) =
            (find(&format!("rxbatch/{wl}")), find(&format!("rxbatch_frame/{wl}")))
        {
            if !first {
                cmp.push_str(", ");
            }
            first = false;
            cmp += &format!(
                "\"{wl}\": {{\"batched_ns\": {new:.2}, \"perframe_ns\": {base:.2}, \
                 \"speedup\": {:.2}}}",
                base / new
            );
            println!(
                "[rxbatch] {wl}: {:.1} ns/batch vs per-frame {:.1} ns/batch ({:.2}x)",
                new,
                base,
                base / new
            );
        }
    }
    cmp.push('}');
    if cmp.len() > 2 {
        ix_bench::report::update_section(&format!("rxbatch_speedup{suffix}"), &cmp);
    }
}

fn main() {
    let mut r = BenchRunner::from_args();
    bench_toeplitz(&mut r);
    bench_timerwheel(&mut r);
    bench_scheduler(&mut r);
    bench_mempool(&mut r);
    bench_tcp_codec(&mut r);
    bench_txpath(&mut r);
    bench_rxpath(&mut r);
    bench_flowtable(&mut r);
    bench_migrate(&mut r);
    bench_filter(&mut r);
    bench_checksum(&mut r);
    bench_rxbatch(&mut r);
    bench_histogram(&mut r);
    bench_end_to_end(&mut r);
    write_report(&r);
    r.finish();
}
