//! Microbenchmarks of the reproduction's hot data structures, on the
//! in-tree `ix-testkit` wall-clock runner: the components §4.2/§4.4 of
//! the paper claims are fast — the Toeplitz RSS hash, the hierarchical
//! timing wheel under its cancel-dominant workload, the per-thread mbuf
//! pool, TCP segment processing, and the full simulated host-to-host
//! echo round trip.
//!
//! Run with `cargo bench` (or `cargo bench <filter>`); set
//! `IX_BENCH_QUICK=1` for a smoke-length pass.

use std::hint::black_box;

use ix_mempool::MbufPool;
use ix_net::ip::Ipv4Addr;
use ix_net::rss::{hash_ipv4_tuple, TOEPLITZ_DEFAULT_KEY};
use ix_net::tcp::{TcpFlags, TcpHeader};
use ix_sim::Histogram;
use ix_testkit::bench::BenchRunner;
use ix_timerwheel::TimerWheel;

fn bench_toeplitz(r: &mut BenchRunner) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let mut port = 0u16;
    r.bench("rss/toeplitz_ipv4_tuple", |b| {
        b.iter(|| {
            port = port.wrapping_add(1);
            black_box(hash_ipv4_tuple(
                &TOEPLITZ_DEFAULT_KEY,
                black_box(src),
                black_box(dst),
                port,
                80,
            ))
        })
    });
}

fn bench_timerwheel(r: &mut BenchRunner) {
    // The paper's common case: timers cancelled before expiry (RTO
    // rearming on every ACK).
    r.bench("timerwheel/schedule_cancel", |b| {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        b.iter(|| {
            let id = w.schedule(200_000_000, 1);
            black_box(w.cancel(id));
        })
    });
    r.bench("timerwheel/advance_idle_tick", |b| {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        w.schedule(3_600_000_000_000, 1); // Far-future anchor.
        let mut now = 0u64;
        b.iter(|| {
            now += 16_000;
            w.advance(now, |_| {});
        })
    });
}

fn bench_mempool(r: &mut BenchRunner) {
    r.bench("mempool/alloc_free", |b| {
        let mut pool = MbufPool::new(1024);
        b.iter(|| {
            let m = pool.alloc().expect("capacity");
            black_box(&m);
        })
    });
    r.bench("mempool/alloc_prepend_headers", |b| {
        let mut pool = MbufPool::new(1024);
        b.iter(|| {
            let mut m = pool.alloc().expect("capacity");
            m.extend_from_slice(&[0u8; 64]);
            m.prepend(20);
            m.prepend(20);
            m.prepend(14);
            black_box(m.len());
        })
    });
}

fn bench_tcp_codec(r: &mut BenchRunner) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let hdr = TcpHeader {
        src_port: 40_000,
        dst_port: 80,
        seq: 12345,
        ack: 67890,
        flags: TcpFlags::ACK,
        window: 65_535,
        mss: None,
        wscale: None,
    };
    let payload = [0xA5u8; 64];
    let mut buf = vec![0u8; hdr.len() + payload.len()];
    buf[hdr.len()..].copy_from_slice(&payload);
    r.bench("tcp_codec/encode_64b_segment", |b| {
        b.iter(|| {
            let (h, t) = buf.split_at_mut(20);
            hdr.encode(h, src, dst, t);
        })
    });
    // Prepare a valid segment for decode.
    let (h, t) = buf.split_at_mut(20);
    hdr.encode(h, src, dst, t);
    r.bench("tcp_codec/decode_64b_segment", |b| {
        b.iter(|| black_box(TcpHeader::decode(&buf, src, dst).expect("valid")))
    });
}

fn bench_histogram(r: &mut BenchRunner) {
    r.bench("stats/histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(ix_sim::Nanos(v % 1_000_000));
        })
    });
}

fn bench_end_to_end(r: &mut BenchRunner) {
    // Simulation engine throughput: how many virtual echo messages per
    // wall-second the DES sustains (determines bench harness runtimes).
    r.bench("simulation/ix_echo_1ms_virtual", |b| {
        b.iter(|| {
            use ix_apps::harness::{run_netpipe, EngineTuning, System};
            black_box(run_netpipe(System::Ix, 64, 50, &EngineTuning::default()))
        })
    });
}

fn main() {
    let mut r = BenchRunner::from_args();
    bench_toeplitz(&mut r);
    bench_timerwheel(&mut r);
    bench_mempool(&mut r);
    bench_tcp_codec(&mut r);
    bench_histogram(&mut r);
    bench_end_to_end(&mut r);
    r.finish();
}
