//! Benchmark harness for the IX reproduction.
//!
//! One binary per paper table/figure (see `src/bin/`): each regenerates
//! the corresponding rows/series. Microbenchmarks of the hot data
//! structures live under `benches/`. Shared output formatting lives
//! here, alongside the parallel [`sweep`] runner the figure binaries
//! farm their points out with and the [`report`] writer that persists
//! measurements to `results/BENCH_sim.json`.

pub mod report;
pub mod sweep;

/// Prints a figure/table header with the paper reference.
pub fn banner(id: &str, caption: &str) {
    println!("==========================================================");
    println!("{id} — {caption}");
    println!("==========================================================");
}

/// Formats a nanosecond latency as microseconds with two decimals.
pub fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1000.0)
}

/// Formats messages/second in millions with two decimals.
pub fn mmsgs(v: f64) -> String {
    format!("{:.2}", v / 1e6)
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting() {
        assert_eq!(super::us(5_700), "5.70");
        assert_eq!(super::mmsgs(8_800_000.0), "8.80");
    }
}
