//! Machine-readable bench output: `results/BENCH_sim.json`.
//!
//! Every producer of performance numbers — the microbench harness, each
//! figure binary's sweep runner — writes its measurements into one JSON
//! file keyed by section, so the repo's perf trajectory is tracked in a
//! diffable artifact instead of scrollback. The workspace is hermetic
//! (no serde), so this module hand-rolls the tiny subset of JSON it
//! needs: a flat top-level object whose values are replaced wholesale,
//! section by section, preserving the sections other binaries wrote.

use std::fs;
use std::path::PathBuf;

/// Path of the shared results file, anchored to the workspace root so it
/// is stable no matter which directory `cargo` runs from.
pub fn results_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_sim.json"
    ))
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Splits the top-level object of `text` into `(key, raw value)` pairs.
/// Returns `None` when the text is not a parsable flat object (the file
/// is then rewritten from scratch rather than corrupted further).
fn split_sections(text: &str) -> Option<Vec<(String, String)>> {
    let body = text.trim();
    let body = body.strip_prefix('{')?.strip_suffix('}')?;
    let mut sections = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        // Key.
        rest = rest.strip_prefix('"')?;
        let key_end = {
            let mut end = None;
            let mut escaped = false;
            for (i, c) in rest.char_indices() {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => {
                        end = Some(i);
                        break;
                    }
                    _ => escaped = false,
                }
            }
            end?
        };
        let key = rest[..key_end].to_string();
        rest = rest[key_end + 1..].trim_start().strip_prefix(':')?.trim_start();
        // Raw value: scan to the next top-level comma.
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        let mut value_end = rest.len();
        for (i, c) in rest.char_indices() {
            if in_string {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => in_string = false,
                    _ => escaped = false,
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                ',' if depth == 0 => {
                    value_end = i;
                    break;
                }
                _ => {}
            }
        }
        if in_string || depth != 0 {
            return None;
        }
        sections.push((key, rest[..value_end].trim().to_string()));
        rest = rest[value_end..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(sections)
}

/// Renders sections back into a stable, human-diffable JSON object.
fn render(sections: &[(String, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{}\": {}", json_escape(k), v));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out.push('\n');
    out
}

/// Replaces (or appends) the section `key` with the pre-rendered JSON
/// `raw_value`, preserving every other section in the file. Errors are
/// reported to stderr but never abort a bench run.
pub fn update_section(key: &str, raw_value: &str) {
    let path = results_path();
    let mut sections = fs::read_to_string(&path)
        .ok()
        .and_then(|t| split_sections(&t))
        .unwrap_or_default();
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = raw_value.to_string(),
        None => sections.push((key.to_string(), raw_value.to_string())),
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(&path, render(&sections)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[bench] wrote section {key:?} to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_roundtrips() {
        let text = r#"{
  "a": {"x": 1, "y": [1, 2, {"z": "s,tr"}]},
  "b": 3.5,
  "c": "plain \"quoted\" text"
}"#;
        let s = split_sections(text).expect("parses");
        assert_eq!(s.len(), 3);
        assert_eq!(s[1], ("b".to_string(), "3.5".to_string()));
        assert!(s[0].1.starts_with('{') && s[0].1.ends_with('}'));
        let rendered = render(&s);
        let again = split_sections(&rendered).expect("round trip");
        assert_eq!(s, again);
    }

    #[test]
    fn garbage_resets_cleanly() {
        assert!(split_sections("not json").is_none());
        assert!(split_sections("{\"unterminated\": [1, 2}").is_none());
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
