//! Fig 9 — elastic core allocation under an MMPP load spike (beyond the
//! paper's evaluation; ROADMAP "energy proportionality" — the §4.4
//! mechanisms driven by the policy the paper left to future work).
//!
//! A memcached fleet's aggregate arrival rate follows a two-state MMPP:
//! a calm base rate and a spike several times higher. The IX server
//! either keeps every core active (static baseline) or starts
//! consolidated and lets the elastic controller add cores when the
//! queue-delay SLA proxy trips, then revoke them — draining and
//! migrating live flow groups — when the spike passes. Reported per
//! run: time-to-absorb the first spike, over-SLA windows after the
//! final spike (SLA-violation-free consolidation), and the busy-cores ×
//! time energy proxy against the static allocation.
//!
//! Expected shape: the static run never violates (all cores always on)
//! but pays full energy; the elastic run absorbs the spike within a few
//! controller epochs, consolidates without violating, and finishes the
//! run at a fraction of the static core-time. The static series is also
//! run twice and must be bit-identical: the controller machinery
//! contributes nothing when disabled.

use ix_apps::harness::{run_elastic, ElasticKvConfig, ElasticKvResult};
use ix_sim::Nanos;

/// One sweep row: a named configuration of the same MMPP load.
struct Point {
    name: &'static str,
    cfg: ElasticKvConfig,
}

fn points(quick: bool) -> Vec<Point> {
    // Calibration against fig5: IX sustains roughly 300-380 Krps per
    // core on USR, so the base rate fits the consolidated core set with
    // headroom and the spike overflows it several cores' worth.
    let base = if quick {
        ElasticKvConfig {
            n_clients: 8,
            client_threads: 2,
            conns_per_thread: 8,
            base_rps: 120_000.0,
            burst_rps: 700_000.0,
            server_cores: 4,
            initial_active: 1,
            spike_start: Nanos::from_millis(6),
            mean_on: Nanos::from_millis(8),
            mean_off: Nanos::from_millis(8),
            duration: Nanos::from_millis(24),
            dial_at: Nanos::from_millis(8),
            ..ElasticKvConfig::default()
        }
    } else {
        ElasticKvConfig::default()
    };
    // The gate row spikes past the capacity of EVERY core — absorbing
    // by adding cores is impossible, so the admission gate is the only
    // graceful-degradation lever left. One bounded spike (mean_off
    // spans the rest of the run) leaves the clients' accumulated
    // open-loop backlog time to drain, so the run shows the whole gate
    // cycle: close under saturation, shed the mid-spike dial wave at
    // the NIC edge, lift after the backlog clears, shed dials land.
    let gate = ElasticKvConfig {
        admission_gate: true,
        burst_rps: if quick { 2_200_000.0 } else { 3_200_000.0 },
        mean_on: if quick { Nanos::from_millis(4) } else { Nanos::from_millis(6) },
        mean_off: base.duration,
        dial_at: if quick { Nanos::from_millis(8) } else { Nanos::from_millis(13) },
        late_dials: 8,
        ..base.clone()
    };
    vec![
        Point {
            name: "static",
            cfg: ElasticKvConfig { elastic: false, ..base.clone() },
        },
        Point {
            name: "static (rerun)",
            cfg: ElasticKvConfig { elastic: false, ..base.clone() },
        },
        Point {
            name: "elastic",
            cfg: base,
        },
        Point {
            name: "elastic+gate",
            cfg: gate,
        },
    ]
}

fn series_fingerprint(r: &ElasticKvResult) -> Vec<(u64, u64, u64)> {
    r.windows.iter().map(|w| (w.t_ns, w.p99_ns, w.completed)).collect()
}

fn main() {
    let quick = ix_bench::sweep::quick();
    ix_bench::banner(
        "Figure 9",
        "elastic core add/revoke under an MMPP spike: absorb time, consolidation, energy",
    );
    let pts = points(quick);
    let outcome = ix_bench::sweep::run(&pts, |p| run_elastic(&p.cfg));

    println!(
        "{:<16} {:>8} {:>12} {:>9} {:>7} {:>5} {:>8} {:>9} {:>9} {:>6}",
        "run", "Kreq", "absorb", "postviol", "energy", "adds", "revokes", "migrated", "gatedrop", "dials"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (p, r) in pts.iter().zip(outcome.results.iter()) {
        let absorb = match r.absorb_ns {
            Some(0) => "never over".to_string(),
            Some(ns) => format!("{:.1} ms", ns as f64 / 1e6),
            None => "NOT ABSORBED".to_string(),
        };
        let energy_frac = r.core_ns as f64 / r.static_core_ns as f64;
        println!(
            "{:<16} {:>8.0} {:>12} {:>9} {:>6.0}% {:>5} {:>8} {:>9} {:>9} {:>6}",
            p.name,
            r.completed_total as f64 / 1e3,
            absorb,
            r.post_spike_violations,
            energy_frac * 100.0,
            r.ctl.adds,
            r.ctl.revokes,
            r.ctl.flows_migrated,
            r.gate_drops,
            r.dials_ok,
        );
        let series: Vec<String> = r
            .windows
            .iter()
            .map(|w| {
                format!(
                    "{{\"t_ms\": {:.1}, \"p99_us\": {:.1}, \"completed\": {}, \"cores\": {}, \"burst\": {}}}",
                    w.t_ns as f64 / 1e6,
                    w.p99_ns as f64 / 1e3,
                    w.completed,
                    w.active_cores,
                    w.burst_on
                )
            })
            .collect();
        json_rows.push(format!(
            "{{\"run\": \"{}\", \"completed\": {}, \"shed\": {}, \"absorb_ms\": {}, \
             \"post_spike_violations\": {}, \"energy_frac\": {:.4}, \"adds\": {}, \
             \"revokes\": {}, \"parks\": {}, \"flows_migrated\": {}, \"buckets_moved\": {}, \
             \"add_retries\": {}, \"gate_drops\": {}, \"dials_ok\": {}, \"shed_epochs\": {}, \
             \"series\": [{}]}}",
            ix_bench::report::json_escape(p.name),
            r.completed_total,
            r.shed,
            match r.absorb_ns {
                Some(ns) => format!("{:.2}", ns as f64 / 1e6),
                None => "null".to_string(),
            },
            r.post_spike_violations,
            energy_frac,
            r.ctl.adds,
            r.ctl.revokes,
            r.ctl.parks,
            r.ctl.flows_migrated,
            r.ctl.buckets_moved,
            r.ctl.add_retries,
            r.gate_drops,
            r.dials_ok,
            r.ctl.shed_epochs,
            series.join(", "),
        ));
    }

    // Headline gates the CI checks grep for.
    let stat0 = &outcome.results[0];
    let stat1 = &outcome.results[1];
    if series_fingerprint(stat0) == series_fingerprint(stat1) {
        println!("\ncontroller-off runs are byte-identical");
    } else {
        println!("\nDETERMINISM BROKEN: controller-off reruns diverged");
    }
    let elastic = &outcome.results[2];
    let absorbed = elastic.absorb_ns.is_some();
    let clean = elastic.post_spike_violations == 0;
    let saved = elastic.core_ns < elastic.static_core_ns;
    if absorbed && clean && saved {
        println!(
            "elastic run absorbed the spike (p99 under SLA), consolidated violation-free, \
             and spent {:.0}% of the static core-time",
            100.0 * elastic.core_ns as f64 / elastic.static_core_ns as f64
        );
    } else {
        println!(
            "ELASTIC RUN FAILED a gate: absorbed={absorbed} clean_consolidation={clean} energy_saved={saved}"
        );
    }

    let suffix = if quick { "_quick" } else { "" };
    ix_bench::report::update_section(
        &format!("fig9_elastic{suffix}"),
        &format!("[{}]", json_rows.join(", ")),
    );
    ix_bench::sweep::record("fig9_elastic", &outcome);
}
