//! Fig 9-scale — bulk flow-group migration at connection scale: move a
//! whole live shard (1k → 250k established connections) between cores
//! under load and report the host-side cost per migrated flow.
//!
//! The elastic control loop (fig9) migrates flow groups when it adds or
//! revokes cores; this sweep stresses the *mechanism* at Fig 4
//! connection counts. Each point establishes N connections in staggered
//! dial waves, consolidates all 128 RSS buckets onto core 0, then
//! ping-pongs the entire shard between cores 0 and 1 several times with
//! the echo load still running. The migration is timed with a host wall
//! clock around the bulk extract/absorb pass (per-bucket intrusive list
//! walks + batch timer splices), and the minimum ns-per-flow across the
//! ping-pongs is the headline.
//!
//! Expected shape: ns/flow stays roughly flat across three decades of
//! connection count — the bulk path does O(moved) work, with no
//! O(table) scans, sorts, or re-hash growth — and the load stream
//! continues across the burst with zero connection resets.
//!
//! Points run SERIALLY: the measurement is host wall-clock, and
//! parallel sweep workers would corrupt it.

use std::time::Instant;

use ix_apps::harness::{run_scale_migration, ScaleMigrationConfig};

fn main() {
    let quick = ix_bench::sweep::quick();
    ix_bench::banner(
        "Figure 9-scale",
        "whole-shard live migration vs connection count: host ns per moved flow",
    );
    let conn_counts: &[usize] =
        if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000, 250_000] };

    let start = Instant::now();
    let mut results = Vec::with_capacity(conn_counts.len());
    for &n in conn_counts {
        let cfg = ScaleMigrationConfig { total_conns: n, ..ScaleMigrationConfig::default() };
        results.push(run_scale_migration(&cfg));
    }
    let wall = start.elapsed();

    println!(
        "{:>8} {:>9} {:>12} {:>14} {:>12} {:>12} {:>12} {:>7}",
        "conns", "moved", "ns/flow", "absorb ns/fl", "best ms", "before", "after", "resets"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (&n, r) in conn_counts.iter().zip(results.iter()) {
        let moved = r.migrations.iter().map(|m| m.moved).min().unwrap_or(0);
        let best_ns = r.migrations.iter().map(|m| m.host_ns).min().unwrap_or(0);
        println!(
            "{:>8} {:>9} {:>12.1} {:>14.1} {:>12.3} {:>10.2}M {:>10.2}M {:>7}",
            n,
            moved,
            r.ns_per_flow,
            r.absorb_ns_per_flow,
            best_ns as f64 / 1e6,
            r.msgs_before / 1e6,
            r.msgs_after / 1e6,
            r.resets
        );
        let migs: Vec<String> = r
            .migrations
            .iter()
            .map(|m| {
                format!(
                    "{{\"moved\": {}, \"host_ns\": {}, \"extract_ns\": {}, \"absorb_ns\": {}}}",
                    m.moved, m.host_ns, m.extract_ns, m.absorb_ns
                )
            })
            .collect();
        json_rows.push(format!(
            "{{\"conns\": {}, \"live\": {}, \"ns_per_flow\": {:.2}, \
             \"absorb_ns_per_flow\": {:.2}, \"msgs_before\": {:.0}, \
             \"msgs_after\": {:.0}, \"resets\": {}, \"migrations\": [{}]}}",
            n,
            r.conns,
            r.ns_per_flow,
            r.absorb_ns_per_flow,
            r.msgs_before,
            r.msgs_after,
            r.resets,
            migs.join(", ")
        ));
    }

    // Headline gates the CI checks grep for: per-flow absorb cost at
    // the largest point within 2x of the smallest (flat scaling —
    // absorb is the destination-side adoption work; the extract half,
    // reported alongside, reads scattered cold flow state and is
    // bounded by DRAM latency, not by the algorithm), every migration
    // moved the whole shard, and no connection was lost.
    let first = results.first().expect("at least one point");
    let last = results.last().expect("at least one point");
    let ratio = last.absorb_ns_per_flow / first.absorb_ns_per_flow.max(1e-9);
    let all_moved = results
        .iter()
        .all(|r| r.migrations.iter().all(|m| m.moved == r.conns) && !r.migrations.is_empty());
    let no_resets = results.iter().all(|r| r.resets == 0);
    let survived = results.iter().all(|r| r.msgs_after > 0.0);
    if ratio <= 2.0 && all_moved && no_resets && survived {
        println!(
            "\nflat migration scaling: absorb {:.1} ns/flow at {}k vs {:.1} ns/flow at {}k \
             ({:.2}x <= 2x), 0 resets, load survived",
            last.absorb_ns_per_flow,
            conn_counts.last().expect("nonempty") / 1_000,
            first.absorb_ns_per_flow,
            conn_counts.first().expect("nonempty") / 1_000,
            ratio
        );
    } else {
        println!(
            "\nSCALING GATE FAILED: absorb_ratio={ratio:.2} all_moved={all_moved} \
             no_resets={no_resets} survived={survived}"
        );
    }

    let suffix = if quick { "_quick" } else { "" };
    ix_bench::report::update_section(
        &format!("fig9_scale{suffix}"),
        &format!("[{}]", json_rows.join(", ")),
    );
    ix_bench::sweep::record(
        "fig9_scale",
        &ix_bench::sweep::SweepOutcome { results, wall, threads: 1 },
    );
}
