//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Adaptive batching** (§3/§6): B=64 adaptive vs B=1 — unloaded
//!    latency must be unaffected ("we never wait to batch"), loaded
//!    throughput must improve with B.
//! 2. **PCIe doorbell coalescing** (§6): replenishing RX descriptors in
//!    ≥32-entry batches vs per-iteration doorbells.
//! 3. **Zero-copy API** (§3): charging POSIX-style per-byte copies in
//!    both directions, visible at large message sizes.
//! 4. **Decoupled pipeline granularity** (§2.3): the mTCP batching
//!    quantum sweep — the latency/throughput trade IX's run-to-completion
//!    design avoids.

use ix_apps::harness::{run_echo, run_netpipe, EchoConfig, EngineTuning, System};
use ix_core::params::CostParams;
use ix_sim::Nanos;

fn echo_cfg(tuning: EngineTuning, msg: usize) -> EchoConfig {
    EchoConfig {
        system: System::Ix,
        server_cores: 8,
        msg_size: msg,
        n_per_conn: 1024,
        warmup: Nanos::from_millis(6),
        measure: Nanos::from_millis(14),
        tuning,
        ..EchoConfig::default()
    }
}

fn main() {
    ix_bench::banner("Ablation 1", "adaptive batching: B=64 vs B=1");
    for b in [1usize, 64] {
        let t = EngineTuning { ix: CostParams::with_batch_bound(b), ..EngineTuning::default() };
        let (one_way, _) = run_netpipe(System::Ix, 64, 100, &t);
        let r = run_echo(&echo_cfg(t, 64));
        println!(
            "  B={b:<3} unloaded one-way {:>6.2} us | loaded {:>5.2} M msg/s",
            one_way as f64 / 1e3,
            r.msgs_per_sec / 1e6
        );
    }
    println!("  expectation: identical unloaded latency (never wait to batch); higher B wins loaded.");

    ix_bench::banner("Ablation 2", "PCIe doorbell coalescing on the RX replenish path (§6)");
    for coalesce in [32usize, 1] {
        let mut t = EngineTuning { ..EngineTuning::default() };
        t.ix.rx_replenish_batch = coalesce;
        let r = run_echo(&echo_cfg(t, 64));
        println!(
            "  replenish>={coalesce:<3} -> {:>5.2} M msg/s   {}",
            r.msgs_per_sec / 1e6,
            r.debug
        );
    }
    println!("  note: with 8 queues the echo workload is wire-limited before the");
    println!("  doorbell CPU cost binds; the §6 bottleneck was a shared-PCIe-bus");
    println!("  limit at 16 hyperthreads, which this model does not bind (see");
    println!("  EXPERIMENTS.md).");

    ix_bench::banner("Ablation 3", "zero-copy API vs POSIX-style copies");
    // The large-message case runs CPU-bound (2 cores, 4x10GbE) so the
    // copy cost is visible rather than hidden behind the wire limit.
    for (label, copy) in [("zero-copy", false), ("copying  ", true)] {
        let mut t = EngineTuning { ..EngineTuning::default() };
        t.ix.copy_api = copy;
        let small = run_echo(&echo_cfg(t.clone(), 64));
        let large = run_echo(&EchoConfig {
            server_cores: 2,
            server_ports: 4,
            ..echo_cfg(t, 8192)
        });
        println!(
            "  {label} 64B: {:>5.2} M msg/s | 8KB (2 cores, 40G): {:>6.2} Gbps",
            small.msgs_per_sec / 1e6,
            large.goodput_gbps
        );
    }
    println!("  expectation: copies barely matter at 64B, cost real bandwidth at 8KB.");

    ix_bench::banner("Ablation 4", "pipeline decoupling granularity (mTCP quantum sweep)");
    for q_us in [5u64, 20, 50, 100] {
        let mut t = EngineTuning { ..EngineTuning::default() };
        t.mtcp.quantum_ns = q_us * 1_000;
        let (one_way, _) = run_netpipe(System::Mtcp, 64, 100, &t);
        let cfg = EchoConfig {
            system: System::Mtcp,
            server_cores: 8,
            n_per_conn: 1024,
            warmup: Nanos::from_millis(6),
            measure: Nanos::from_millis(14),
            tuning: t,
            ..EchoConfig::default()
        };
        let r = run_echo(&cfg);
        println!(
            "  quantum {q_us:>3} us -> one-way {:>7.2} us, {:>5.2} M msg/s",
            one_way as f64 / 1e3,
            r.msgs_per_sec / 1e6
        );
    }
    println!("  expectation: latency scales with the quantum — the trade IX's");
    println!("  run-to-completion + adaptive batching avoids entirely.");
}
