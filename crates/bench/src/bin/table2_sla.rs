//! Table 2 — "Unloaded latency and maximum RPS for a given service-level
//! agreement for the memcache workloads ETC and USR."
//!
//! Paper values (99th percentile):
//!   ETC-Linux:  94 µs unloaded,  550K RPS @ <500 µs
//!   ETC-IX:     45 µs unloaded, 1550K RPS @ <500 µs
//!   USR-Linux:  85 µs unloaded,  500K RPS @ <500 µs
//!   USR-IX:     32 µs unloaded, 1800K RPS @ <500 µs

use ix_apps::harness::{run_kv, KvConfig, System};
use ix_apps::workload::WorkloadKind;

const SLA_NS: u64 = 500_000;

/// The SLA grid per system: bounded-runtime fixed walk, probed in
/// parallel with every other point in the table.
fn grid(system: System) -> &'static [f64] {
    match system {
        System::Ix => &[1_000e3, 1_300e3, 1_600e3, 1_900e3, 2_200e3],
        _ => &[350e3, 450e3, 550e3, 650e3],
    }
}

fn main() {
    ix_bench::banner(
        "Table 2",
        "Unloaded p99 latency and max RPS under a 500us p99 SLA",
    );
    // Flatten the whole table into one point list: for each of the four
    // (workload, system) configs, one unloaded probe (target 50K) plus
    // its SLA grid. All points are independent simulations.
    let configs: Vec<(WorkloadKind, System)> = [WorkloadKind::Etc, WorkloadKind::Usr]
        .into_iter()
        .flat_map(|wl| [System::Linux, System::Ix].map(|s| (wl, s)))
        .collect();
    let mut points: Vec<(WorkloadKind, System, f64)> = Vec::new();
    for &(wl, sys) in &configs {
        points.push((wl, sys, 50_000.0));
        for &t in grid(sys) {
            points.push((wl, sys, t));
        }
    }
    let outcome = ix_bench::sweep::run(&points, |&(wl, system, target)| {
        let cfg = KvConfig {
            system,
            workload: wl,
            target_rps: target,
            server_cores: if system == System::Ix { 6 } else { 8 },
            ..KvConfig::default()
        };
        run_kv(&cfg)
    });
    println!(
        "{:<12} | {:>14} | {:>16} | paper",
        "config", "min lat @p99", "RPS @SLA<500us"
    );
    let paper = [("ETC-Linux", 94, 550), ("ETC-IX", 45, 1550), ("USR-Linux", 85, 500), ("USR-IX", 32, 1800)];
    let mut i = 0;
    for (ci, &(wl, sys)) in configs.iter().enumerate() {
        let unloaded = outcome.results[i].agent_p99_ns;
        i += 1;
        // Highest grid target that meets the SLA and is actually achieved.
        let mut cap = 0.0;
        for &t in grid(sys) {
            let r = &outcome.results[i];
            i += 1;
            if r.agent_p99_ns <= SLA_NS && r.rps >= t * 0.95 {
                cap = t;
            }
        }
        let (pname, plat, pcap) = paper[ci];
        println!(
            "{:<12} | {:>11.1} us | {:>12.0}K    | {pname}: {plat} us, {pcap}K",
            format!("{:?}-{}", wl, sys.name()),
            unloaded as f64 / 1e3,
            cap / 1e3,
        );
    }
    ix_bench::sweep::record("table2_sla", &outcome);
}
