//! Table 2 — "Unloaded latency and maximum RPS for a given service-level
//! agreement for the memcache workloads ETC and USR."
//!
//! Paper values (99th percentile):
//!   ETC-Linux:  94 µs unloaded,  550K RPS @ <500 µs
//!   ETC-IX:     45 µs unloaded, 1550K RPS @ <500 µs
//!   USR-Linux:  85 µs unloaded,  500K RPS @ <500 µs
//!   USR-IX:     32 µs unloaded, 1800K RPS @ <500 µs

use ix_apps::harness::{run_kv, KvConfig, System};
use ix_apps::workload::WorkloadKind;

const SLA_NS: u64 = 500_000;

/// Finds the highest sustainable target whose agent p99 meets the SLA,
/// by grid walk then bisection refinement.
fn sla_capacity(system: System, wl: WorkloadKind) -> f64 {
    let cores = if system == System::Ix { 6 } else { 8 };
    let probe = |rps: f64| -> (f64, u64) {
        let cfg = KvConfig {
            system,
            workload: wl,
            target_rps: rps,
            server_cores: cores,
            ..KvConfig::default()
        };
        let r = run_kv(&cfg);
        (r.rps, r.agent_p99_ns)
    };
    // Fixed grid walk (bounded runtime): highest target that meets the
    // SLA and is actually achieved.
    let grid: &[f64] = if system == System::Ix {
        &[1_000e3, 1_300e3, 1_600e3, 1_900e3, 2_200e3]
    } else {
        &[350e3, 450e3, 550e3, 650e3]
    };
    let mut best = 0.0;
    for &t in grid {
        let (ach, p99) = probe(t);
        if p99 <= SLA_NS && ach >= t * 0.95 {
            best = t;
        }
    }
    best
}

/// Unloaded p99 from a light-load run.
fn unloaded_p99(system: System, wl: WorkloadKind) -> u64 {
    let cfg = KvConfig {
        system,
        workload: wl,
        target_rps: 50_000.0,
        server_cores: if system == System::Ix { 6 } else { 8 },
        ..KvConfig::default()
    };
    run_kv(&cfg).agent_p99_ns
}

fn main() {
    ix_bench::banner(
        "Table 2",
        "Unloaded p99 latency and max RPS under a 500us p99 SLA",
    );
    println!(
        "{:<12} | {:>14} | {:>16} | paper",
        "config", "min lat @p99", "RPS @SLA<500us"
    );
    let paper = [("ETC-Linux", 94, 550), ("ETC-IX", 45, 1550), ("USR-Linux", 85, 500), ("USR-IX", 32, 1800)];
    let mut i = 0;
    for wl in [WorkloadKind::Etc, WorkloadKind::Usr] {
        for sys in [System::Linux, System::Ix] {
            let unloaded = unloaded_p99(sys, wl);
            let cap = sla_capacity(sys, wl);
            let (pname, plat, pcap) = paper[i];
            println!(
                "{:<12} | {:>11.1} us | {:>12.0}K    | {pname}: {plat} us, {pcap}K",
                format!("{:?}-{}", wl, sys.name()),
                unloaded as f64 / 1e3,
                cap / 1e3,
            );
            i += 1;
        }
    }
}
