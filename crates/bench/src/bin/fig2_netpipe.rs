//! Fig 2 — "NetPIPE performance for varying message sizes and system
//! software configurations."
//!
//! Paper shape: IX-IX reaches 5 Gbps (half of 10GbE) with ~20 KB
//! messages and has 5.7 µs one-way latency at 64 B; Linux needs ~385 KB
//! for 5 Gbps with 24 µs at 64 B; mTCP trades latency for throughput and
//! is an order of magnitude worse than IX at small sizes.

use ix_apps::harness::{run_netpipe, EngineTuning, System};

const SYSTEMS: [System; 3] = [System::Ix, System::Linux, System::Mtcp];

fn main() {
    ix_bench::banner("Figure 2", "NetPIPE goodput vs message size (same system on both ends)");
    let sizes: &[usize] = if ix_bench::sweep::quick() {
        &[64, 4_096, 65_536]
    } else {
        &[64, 256, 1_024, 4_096, 16_384, 32_768, 65_536, 131_072, 262_144, 524_288]
    };
    // Every (size, system) point is an independent simulation — farm the
    // grid out and reassemble rows afterwards.
    let mut points: Vec<(usize, System)> = Vec::new();
    for &size in sizes {
        for sys in SYSTEMS {
            points.push((size, sys));
        }
    }
    let outcome = ix_bench::sweep::run(&points, |&(size, sys)| {
        let reps = if size >= 65_536 { 30 } else { 60 };
        run_netpipe(sys, size, reps, &EngineTuning::default())
    });
    println!(
        "{:>9} | {:>12} {:>10} | {:>12} {:>10} | {:>12} {:>10}",
        "size(B)", "IX 1-way us", "IX Gbps", "Lnx 1-way us", "Lnx Gbps", "mTCP 1-way", "mTCP Gbps"
    );
    let mut half_bw: [Option<usize>; 3] = [None, None, None];
    for (si, &size) in sizes.iter().enumerate() {
        let mut row = format!("{size:>9} |");
        for (i, slot) in half_bw.iter_mut().enumerate() {
            let (one_way, gbps) = outcome.results[si * SYSTEMS.len() + i];
            row += &format!(" {:>12.2} {:>10.2} |", one_way as f64 / 1e3, gbps);
            if gbps >= 5.0 && slot.is_none() {
                *slot = Some(size);
            }
        }
        println!("{}", row.trim_end_matches('|'));
    }
    println!();
    println!("Half-bandwidth (5 Gbps) crossing points (paper: IX ~20KB, Linux ~385KB):");
    for (i, sys) in SYSTEMS.into_iter().enumerate() {
        match half_bw[i] {
            Some(s) => println!("  {:<6} <= {} B", sys.name(), s),
            None => println!("  {:<6} not reached in sweep", sys.name()),
        }
    }
    ix_bench::sweep::record("fig2_netpipe", &outcome);
}
