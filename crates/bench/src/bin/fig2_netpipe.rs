//! Fig 2 — "NetPIPE performance for varying message sizes and system
//! software configurations."
//!
//! Paper shape: IX-IX reaches 5 Gbps (half of 10GbE) with ~20 KB
//! messages and has 5.7 µs one-way latency at 64 B; Linux needs ~385 KB
//! for 5 Gbps with 24 µs at 64 B; mTCP trades latency for throughput and
//! is an order of magnitude worse than IX at small sizes.

use ix_apps::harness::{run_netpipe, EngineTuning, System};

fn main() {
    ix_bench::banner("Figure 2", "NetPIPE goodput vs message size (same system on both ends)");
    let tuning = EngineTuning::default();
    let sizes: &[usize] = &[
        64, 256, 1_024, 4_096, 16_384, 32_768, 65_536, 131_072, 262_144, 524_288,
    ];
    println!(
        "{:>9} | {:>12} {:>10} | {:>12} {:>10} | {:>12} {:>10}",
        "size(B)", "IX 1-way us", "IX Gbps", "Lnx 1-way us", "Lnx Gbps", "mTCP 1-way", "mTCP Gbps"
    );
    let mut half_bw: [Option<usize>; 3] = [None, None, None];
    for &size in sizes {
        let reps = if size >= 65_536 { 30 } else { 60 };
        let mut row = format!("{size:>9} |");
        for (i, sys) in [System::Ix, System::Linux, System::Mtcp].into_iter().enumerate() {
            let (one_way, gbps) = run_netpipe(sys, size, reps, &tuning);
            row += &format!(" {:>12.2} {:>10.2} |", one_way as f64 / 1e3, gbps);
            if gbps >= 5.0 && half_bw[i].is_none() {
                half_bw[i] = Some(size);
            }
        }
        println!("{}", row.trim_end_matches('|'));
    }
    println!();
    println!("Half-bandwidth (5 Gbps) crossing points (paper: IX ~20KB, Linux ~385KB):");
    for (i, sys) in [System::Ix, System::Linux, System::Mtcp].into_iter().enumerate() {
        match half_bw[i] {
            Some(s) => println!("  {:<6} <= {} B", sys.name(), s),
            None => println!("  {:<6} not reached in sweep", sys.name()),
        }
    }
}
