//! Calibration probe: quick sanity numbers for all three systems.
//! Not a paper figure — a development aid kept for reproducibility work.
//!
//! Besides the application-level numbers, the probe prints the engine's
//! own instrumentation: event-scheduler counters (volume, cancellation
//! ratio, queue depth, calendar-tier split) and the server's mbuf
//! alloc/free churn, so a perf regression in the simulator itself is
//! visible without a profiler.

use ix_apps::harness::{
    run_echo_instrumented, run_kv_instrumented, run_netpipe, EchoConfig, EngineInstrumentation,
    EngineTuning, KvConfig, System,
};
use ix_apps::workload::WorkloadKind;

fn print_instrumentation(instr: &EngineInstrumentation) {
    let c = instr.sim;
    println!(
        "         sched: {} scheduled ({} near / {} far, {} promoted), {} executed, {} cancelled (+{} stale), depth hw {} (bucket hw {})",
        c.scheduled,
        c.near_inserts,
        c.far_inserts,
        c.promotions,
        c.executed,
        c.cancelled,
        c.cancel_noops,
        c.pending_high_water,
        c.bucket_high_water,
    );
    let m = instr.mbuf;
    println!(
        "         mbuf:  {} allocs / {} frees, peak outstanding {}, exhausted {}",
        m.allocs, m.frees, m.peak_outstanding, m.exhausted
    );
    let t = instr.tcp;
    println!(
        "         tcp:   {} retx ({} rto, {} fastrtx, {} persist), max recovery {:.1} us, drops {} parse / {} csum",
        t.retransmits,
        t.rto_fires,
        t.fast_retransmits,
        t.persist_probes,
        t.max_recovery_ns as f64 / 1e3,
        t.parse_drops,
        t.checksum_drops,
    );
}

fn main() {
    let tuning = EngineTuning::default();
    println!("== NetPIPE 64B one-way latency (paper: IX 5.7us, Linux 24us, mTCP ~10x IX)");
    for sys in [System::Ix, System::Linux, System::Mtcp] {
        let (one_way, _) = run_netpipe(sys, 64, 200, &tuning);
        println!("  {:<6} {:>8.2} us", sys.name(), one_way as f64 / 1000.0);
    }

    println!("== Echo 64B, n=1024, 8 cores, 10GbE (paper: IX 8.8M, mTCP ~4.6M, Linux ~1M)");
    for sys in [System::Ix, System::Linux, System::Mtcp] {
        let cfg = EchoConfig {
            system: sys,
            ..EchoConfig::default()
        };
        let (r, instr) = run_echo_instrumented(&cfg);
        println!(
            "  {:<6} {:>6.2} M msg/s  rtt avg {:>7.1} us  p99 {:>7.1} us  conns {} kernel% {:.0}",
            sys.name(),
            r.msgs_per_sec / 1e6,
            r.rtt_avg_ns as f64 / 1e3,
            r.rtt_p99_ns as f64 / 1e3,
            r.conns_closed,
            100.0 * r.cpu_split.0 as f64 / (r.cpu_split.0 + r.cpu_split.1).max(1) as f64,
        );
        println!("         {}", r.debug);
        print_instrumentation(&instr);
    }

    println!("== memcached USR @ 300K RPS (sanity)");
    for sys in [System::Ix, System::Linux] {
        let cfg = KvConfig {
            system: sys,
            workload: WorkloadKind::Usr,
            target_rps: 300_000.0,
            server_cores: if sys == System::Ix { 6 } else { 8 },
            ..KvConfig::default()
        };
        let (r, instr) = run_kv_instrumented(&cfg);
        println!(
            "  {:<6} {:>7.0}K rps  avg {:>7.1} us  p99 {:>7.1} us  agent avg {:>6.1} p99 {:>6.1}  kernel% {:.0} shed {}",
            sys.name(),
            r.rps / 1e3,
            r.avg_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.agent_avg_ns as f64 / 1e3,
            r.agent_p99_ns as f64 / 1e3,
            100.0 * r.cpu_split.0 as f64 / (r.cpu_split.0 + r.cpu_split.1).max(1) as f64,
            r.shed,
        );
        println!("         net avg {:.1} p99 {:.1} us", r.net_avg_ns as f64/1e3, r.net_p99_ns as f64/1e3);
        print_instrumentation(&instr);
    }
}
