//! Fig 5 — "Average and 99th percentile latency as a function of
//! throughput for two memcached workloads" (ETC and USR), Linux vs IX.
//!
//! Paper shape: IX halves the unloaded latency and sustains 2.8× (ETC)
//! and 3.6× (USR) the RPS of Linux at the 500 µs 99th-percentile SLA.
//! Linux runs 8 cores; IX runs 6 (application lock contention stops IX
//! gaining beyond 6, §5.5).

use ix_apps::harness::{run_kv, KvConfig, System};
use ix_apps::workload::WorkloadKind;

fn sweep(system: System, wl: WorkloadKind, targets: &[f64]) {
    println!(
        "--- {} / {:?} ({} cores)",
        system.name(),
        wl,
        if system == System::Ix { 6 } else { 8 }
    );
    println!(
        "{:>9} | {:>9} | {:>9} {:>9} | {:>10} {:>10}",
        "target", "RPS", "avg us", "p99 us", "agent avg", "agent p99"
    );
    for &t in targets {
        let cfg = KvConfig {
            system,
            workload: wl,
            target_rps: t,
            server_cores: if system == System::Ix { 6 } else { 8 },
            ..KvConfig::default()
        };
        let r = run_kv(&cfg);
        println!(
            "{:>8.0}K | {:>8.0}K | {:>9.1} {:>9.1} | {:>10.1} {:>10.1}{}",
            t / 1e3,
            r.rps / 1e3,
            r.avg_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.agent_avg_ns as f64 / 1e3,
            r.agent_p99_ns as f64 / 1e3,
            if r.shed > 0 { "  (overload)" } else { "" },
        );
    }
}

fn main() {
    ix_bench::banner(
        "Figure 5",
        "memcached latency vs throughput, ETC and USR (SLA: p99 <= 500us)",
    );
    let linux_targets: &[f64] = &[100e3, 200e3, 300e3, 400e3, 500e3, 600e3, 700e3];
    let ix_targets: &[f64] = &[
        100e3, 400e3, 800e3, 1200e3, 1600e3, 2000e3, 2300e3,
    ];
    for wl in [WorkloadKind::Etc, WorkloadKind::Usr] {
        sweep(System::Linux, wl, linux_targets);
        sweep(System::Ix, wl, ix_targets);
    }
    println!();
    println!("Paper (Table 2 SLA capacities): ETC-Linux 550K, ETC-IX 1550K, USR-Linux 500K, USR-IX 1800K.");
}
