//! Fig 5 — "Average and 99th percentile latency as a function of
//! throughput for two memcached workloads" (ETC and USR), Linux vs IX.
//!
//! Paper shape: IX halves the unloaded latency and sustains 2.8× (ETC)
//! and 3.6× (USR) the RPS of Linux at the 500 µs 99th-percentile SLA.
//! Linux runs 8 cores; IX runs 6 (application lock contention stops IX
//! gaining beyond 6, §5.5).

use ix_apps::harness::{run_kv, KvConfig, KvResult, System};
use ix_apps::workload::WorkloadKind;
use ix_sim::Nanos;

fn print_series(system: System, wl: WorkloadKind, rows: &[(f64, &KvResult)]) {
    println!(
        "--- {} / {:?} ({} cores)",
        system.name(),
        wl,
        if system == System::Ix { 6 } else { 8 }
    );
    println!(
        "{:>9} | {:>9} | {:>9} {:>9} | {:>10} {:>10}",
        "target", "RPS", "avg us", "p99 us", "agent avg", "agent p99"
    );
    for &(t, r) in rows {
        println!(
            "{:>8.0}K | {:>8.0}K | {:>9.1} {:>9.1} | {:>10.1} {:>10.1}{}",
            t / 1e3,
            r.rps / 1e3,
            r.avg_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.agent_avg_ns as f64 / 1e3,
            r.agent_p99_ns as f64 / 1e3,
            if r.shed > 0 { "  (overload)" } else { "" },
        );
    }
}

fn main() {
    ix_bench::banner(
        "Figure 5",
        "memcached latency vs throughput, ETC and USR (SLA: p99 <= 500us)",
    );
    let quick = ix_bench::sweep::quick();
    let linux_targets: &[f64] = if quick {
        &[200e3, 500e3]
    } else {
        &[100e3, 200e3, 300e3, 400e3, 500e3, 600e3, 700e3]
    };
    let ix_targets: &[f64] = if quick {
        &[400e3, 1600e3]
    } else {
        &[100e3, 400e3, 800e3, 1200e3, 1600e3, 2000e3, 2300e3]
    };
    // Each (system, workload, target) point is a full independent
    // simulation (~7s serial each) — this figure dominates the suite's
    // runtime, so farm all 28 points across cores.
    let mut points: Vec<(System, WorkloadKind, f64)> = Vec::new();
    for wl in [WorkloadKind::Etc, WorkloadKind::Usr] {
        for &t in linux_targets {
            points.push((System::Linux, wl, t));
        }
        for &t in ix_targets {
            points.push((System::Ix, wl, t));
        }
    }
    let outcome = ix_bench::sweep::run(&points, |&(system, wl, t)| {
        let mut cfg = KvConfig {
            system,
            workload: wl,
            target_rps: t,
            server_cores: if system == System::Ix { 6 } else { 8 },
            ..KvConfig::default()
        };
        if ix_bench::sweep::quick() {
            cfg.warmup = Nanos::from_millis(4);
            cfg.measure = Nanos::from_millis(8);
        }
        run_kv(&cfg)
    });
    let mut i = 0;
    for wl in [WorkloadKind::Etc, WorkloadKind::Usr] {
        for (system, targets) in [(System::Linux, linux_targets), (System::Ix, ix_targets)] {
            let rows: Vec<(f64, &KvResult)> = targets
                .iter()
                .map(|&t| {
                    let r = &outcome.results[i];
                    i += 1;
                    (t, r)
                })
                .collect();
            print_series(system, wl, &rows);
        }
    }
    println!();
    println!("Paper (Table 2 SLA capacities): ETC-Linux 550K, ETC-IX 1550K, USR-Linux 500K, USR-IX 1800K.");
    ix_bench::sweep::record("fig5_memcached", &outcome);
}
