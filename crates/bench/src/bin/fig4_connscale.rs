//! Fig 4 — "Connection scalability for the 10GbE and 4x10GbE
//! configurations": messages/sec vs total established connections
//! (log-scale x), plus the §5.4 cache-miss analysis.
//!
//! Paper shape: throughput rises with concurrency, peaks, then falls as
//! the TCP connection state outgrows the L3 cache; at 250k connections
//! IX delivers 47% of its peak; L3 misses/message go from 1.4 (≤10k
//! connections, DDIO keeps everything in cache) to ~25 at 250k.

use ix_apps::harness::{run_connscale, ConnScaleConfig, System};

const COLUMNS: [(System, usize); 4] = [
    (System::Ix, 1),
    (System::Ix, 4),
    (System::Linux, 1),
    (System::Linux, 4),
];

fn main() {
    ix_bench::banner("Figure 4", "Echo messages/sec vs connection count (64B RPC)");
    let conn_counts: &[usize] = if ix_bench::sweep::quick() {
        &[100, 10_000]
    } else {
        &[100, 1_000, 10_000, 50_000, 100_000, 250_000, 500_000]
    };
    let mut points: Vec<(usize, System, usize)> = Vec::new();
    for &n in conn_counts {
        for (sys, ports) in COLUMNS {
            points.push((n, sys, ports));
        }
    }
    let outcome = ix_bench::sweep::run(&points, |&(n, sys, ports)| {
        let cfg = ConnScaleConfig {
            system: sys,
            server_ports: ports,
            total_conns: n,
            // Few connections bound concurrency by themselves.
            outstanding_per_thread: if n < 1_000 { 1 } else { 3 },
            // The 18-host fleet saturates below 500k connections; the
            // half-million point doubles the client machines (paper
            // §5.4 tops out at 18x24 threads — connection counts past
            // 250k need a larger fleet).
            n_clients: if n > 250_000 { 36 } else { ConnScaleConfig::default().n_clients },
            ..ConnScaleConfig::default()
        };
        run_connscale(&cfg)
    });
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10} | {:>9}",
        "conns", "IX-10G", "IX-40G", "Linux-10G", "Linux-40G", "miss/msg"
    );
    let mut ix40_series = Vec::new();
    for (ni, &n) in conn_counts.iter().enumerate() {
        let mut row = format!("{n:>8} |");
        let mut misses = 0.0;
        for (i, &(sys, ports)) in COLUMNS.iter().enumerate() {
            let r = &outcome.results[ni * COLUMNS.len() + i];
            row += &format!(" {:>9.2}M", r.msgs_per_sec / 1e6);
            misses = r.misses_per_msg;
            if (sys, ports) == (System::Ix, 4) {
                ix40_series.push((n, r.msgs_per_sec));
            }
        }
        println!("{row} | {misses:>9.1}");
    }
    println!();
    if let Some(&(_, peak)) = ix40_series
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    {
        if let Some(&(_, at250k)) = ix40_series.iter().find(|(n, _)| *n == 250_000) {
            println!(
                "IX-40G at 250k connections: {:.0}% of peak (paper: 47%)",
                100.0 * at250k / peak
            );
        }
    }
    println!("Paper: misses/msg 1.4 below ~10k connections, ~25 at 250k (DDIO model).");
    // Peak-RSS-style accounting, per point: summed per-core mbuf pool
    // high-water marks plus flow-table / TCB-slab occupancy. Printed
    // after the figure rows so those stay byte-identical across runs.
    println!();
    println!(
        "{:>8} | {:>10} | {:>9} {:>9} {:>10} {:>8}",
        "conns", "system", "mbuf_peak", "tcb_live", "slab_slots", "tcb_MiB"
    );
    for (ni, &n) in conn_counts.iter().enumerate() {
        for (i, &(sys, ports)) in COLUMNS.iter().enumerate() {
            let r = &outcome.results[ni * COLUMNS.len() + i];
            println!(
                "{:>8} | {:>6}-{}0G | {:>9} {:>9} {:>10} {:>8.2}",
                n,
                sys.name(),
                ports,
                r.mbuf_peak,
                r.tcb_mem.live,
                r.tcb_mem.slab_slots,
                r.tcb_mem.bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }
    ix_bench::sweep::record("fig4_connscale", &outcome);
}
