//! Fig 8 — legitimate goodput and tail latency under adversarial traffic
//! (beyond the paper's evaluation; ROADMAP "adversarial traffic").
//! A fixed memcached USR load runs against the server while an attacker
//! host floods it with raw spoofed frames at a multiple of the
//! legitimate packet rate; rows compare IX with the pre-stack filter
//! (subnet drop rule + SYN challenge on the service port), IX without
//! it, and the Linux baseline model.
//!
//! Expected shape: unfiltered systems collapse as the flood grows —
//! every SYN costs a TCB + SYN-ACK + an ARP-parked reply, rings
//! tail-drop legitimate frames, and 200 ms RTO stalls eat the window.
//! Filtered IX drops the flood at the RX ring before any buffer is
//! allocated, keeping goodput within a few percent of the no-attack
//! baseline; its TCB slab never grows with the attack because SYN
//! cookies defer all connection state to a valid third ACK.

use ix_apps::attack::AttackKind;
use ix_apps::harness::{run_adversarial, AdversarialConfig, System};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    system: System,
    filtered: bool,
    attack: Option<AttackKind>,
    /// Attack packet rate as a multiple of the legitimate request rate.
    ratio: f64,
}

impl Scenario {
    fn name(self) -> String {
        let sys = if self.filtered {
            format!("{}+filter", self.system.name())
        } else {
            self.system.name().to_string()
        };
        match self.attack {
            None => format!("{sys} / no attack"),
            Some(k) => format!("{sys} / {} {}x", k.name(), self.ratio),
        }
    }
}

const S: fn(System, bool, Option<AttackKind>, f64) -> Scenario =
    |system, filtered, attack, ratio| Scenario { system, filtered, attack, ratio };

fn main() {
    ix_bench::banner(
        "Figure 8",
        "legitimate memcached goodput and p99 under flood attack: \
         IX+filter vs IX vs Linux (6 cores, USR)",
    );
    let syn = Some(AttackKind::SynFlood);
    let scenarios: Vec<Scenario> = if ix_bench::sweep::quick() {
        vec![
            S(System::Ix, true, None, 0.0),
            S(System::Ix, true, syn, 4.0),
            S(System::Ix, false, syn, 4.0),
        ]
    } else {
        vec![
            // No-attack baselines every retention number is relative to.
            S(System::Ix, true, None, 0.0),
            S(System::Ix, false, None, 0.0),
            S(System::Linux, false, None, 0.0),
            // SYN flood sweep: the headline comparison.
            S(System::Ix, true, syn, 1.0),
            S(System::Ix, false, syn, 1.0),
            S(System::Linux, false, syn, 1.0),
            S(System::Ix, true, syn, 4.0),
            S(System::Ix, false, syn, 4.0),
            S(System::Linux, false, syn, 4.0),
            S(System::Ix, true, syn, 8.0),
            S(System::Ix, false, syn, 8.0),
            S(System::Linux, false, syn, 8.0),
            S(System::Ix, true, syn, 32.0),
            S(System::Ix, false, syn, 32.0),
            S(System::Linux, false, syn, 32.0),
            // Other shapes at 4x: stateless storms and off-port UDP.
            S(System::Ix, true, Some(AttackKind::AckStorm), 4.0),
            S(System::Ix, false, Some(AttackKind::AckStorm), 4.0),
            S(System::Ix, true, Some(AttackKind::UdpBlast), 4.0),
            S(System::Ix, false, Some(AttackKind::UdpBlast), 4.0),
        ]
    };

    let base = AdversarialConfig::default();
    let outcome = ix_bench::sweep::run(&scenarios, |&sc| {
        run_adversarial(&AdversarialConfig {
            system: sc.system,
            filtered: sc.filtered,
            attack: sc.attack.map(|k| (k, sc.ratio * base.target_rps)),
            ..AdversarialConfig::default()
        })
    });

    println!(
        "{:<26} {:>8} {:>9} {:>9} {:>9} {:>10} {:>9} {:>7}",
        "scenario", "Krps", "p99(us)", "atk-sent", "filtered", "ring-drop", "cookies", "slab"
    );
    let mut json_rows: Vec<String> = Vec::new();
    let mut baselines: Vec<(String, f64)> = Vec::new();
    for (sc, r) in scenarios.iter().zip(outcome.results.iter()) {
        println!(
            "{:<26} {:>8.0} {:>9.1} {:>9} {:>9} {:>10} {:>9} {:>7}",
            sc.name(),
            r.rps / 1e3,
            r.p99_ns as f64 / 1e3,
            r.attack_sent,
            r.filter.0,
            r.nic_ring_drops,
            r.tcp.syn_cookies_accepted,
            r.slab_high_water,
        );
        let sys_key = format!("{}{}", sc.system.name(), if sc.filtered { "+filter" } else { "" });
        if sc.attack.is_none() {
            baselines.push((sys_key.clone(), r.rps));
        }
        json_rows.push(format!(
            "{{\"scenario\": \"{}\", \"system\": \"{}\", \"attack\": \"{}\", \
             \"ratio\": {}, \"krps\": {:.1}, \"p99_us\": {:.2}, \"shed\": {}, \
             \"attack_sent\": {}, \"filter_drops\": {}, \"filter_drop_allocs\": {}, \
             \"nic_ring_drops\": {}, \"syn_cookies_sent\": {}, \
             \"syn_cookies_accepted\": {}, \"syn_cookies_rejected\": {}, \
             \"synrcvd_overflow_drops\": {}, \"rst_tx\": {}, \"slab_high_water\": {}}}",
            ix_bench::report::json_escape(&sc.name()),
            ix_bench::report::json_escape(&sys_key),
            sc.attack.map_or("none", |k| k.name()),
            sc.ratio,
            r.rps / 1e3,
            r.p99_ns as f64 / 1e3,
            r.shed,
            r.attack_sent,
            r.filter.0,
            r.filter.3,
            r.nic_ring_drops,
            r.tcp.syn_cookies_sent,
            r.tcp.syn_cookies_accepted,
            r.tcp.syn_cookies_rejected,
            r.tcp.synrcvd_overflow_drops,
            r.tcp.rst_tx,
            r.slab_high_water,
        ));
    }

    // Headline: filtered-IX goodput retention at the heaviest flood,
    // relative to its own no-attack baseline (the acceptance criterion),
    // and the zero-allocation invariant for every dropped frame.
    let retention = |key: &str| -> Option<f64> {
        let base = baselines.iter().find(|(k, _)| k == key)?.1;
        let worst = scenarios
            .iter()
            .zip(outcome.results.iter())
            .filter(|(sc, _)| {
                sc.attack == Some(AttackKind::SynFlood)
                    && format!("{}{}", sc.system.name(), if sc.filtered { "+filter" } else { "" })
                        == key
            })
            .map(|(_, r)| r.rps)
            .fold(f64::INFINITY, f64::min);
        (worst.is_finite() && base > 0.0).then(|| worst / base)
    };
    if let Some(f) = retention("IX+filter") {
        println!("\nfiltered IX worst-case goodput retention under SYN flood: {:.1}%", f * 100.0);
    }
    let drop_allocs: u64 = outcome.results.iter().map(|r| r.filter.3).sum();
    let drops: u64 = outcome.results.iter().map(|r| r.filter.0).sum();
    println!("filter drops: {drops} frames, {drop_allocs} pool allocations (invariant: 0)");
    assert_eq!(drop_allocs, 0, "dropped frames must never touch the mbuf pool");

    let suffix = if ix_bench::sweep::quick() { "_quick" } else { "" };
    ix_bench::report::update_section(
        &format!("fig8_adversarial{suffix}"),
        &format!("[{}]", json_rows.join(", ")),
    );
    ix_bench::sweep::record("fig8_adversarial", &outcome);
}
