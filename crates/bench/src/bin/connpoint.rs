//! One Fig-4 point: `connpoint <ix|linux> <ports> <conns>`.
use ix_apps::harness::{run_connscale, ConnScaleConfig, System};

fn main() {
    let a: Vec<String> = std::env::args().collect();
    let system = if a[1] == "ix" { System::Ix } else { System::Linux };
    let cfg = ConnScaleConfig {
        system,
        server_ports: a[2].parse().expect("ports"),
        total_conns: a[3].parse().expect("conns"),
        ..ConnScaleConfig::default()
    };
    let r = run_connscale(&cfg);
    println!(
        "{}-{}G conns={} -> {:.2}M msg/s rtt_avg={:.1}us misses/msg={:.1} server_conns={}",
        system.name(),
        if a[2] == "1" { 10 } else { 40 },
        a[3],
        r.msgs_per_sec / 1e6,
        r.rtt_avg_ns as f64 / 1e3,
        r.misses_per_msg,
        r.server_conns
    );
}
