//! One-off KV point runner for calibration: `kvpoint <ix|linux> <etc|usr> <rps>`.
use ix_apps::harness::{run_kv, KvConfig, System};
use ix_apps::workload::WorkloadKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let system = match args[1].as_str() {
        "ix" => System::Ix,
        "linux" => System::Linux,
        other => panic!("unknown system {other}"),
    };
    let wl = match args[2].as_str() {
        "etc" => WorkloadKind::Etc,
        _ => WorkloadKind::Usr,
    };
    let rps: f64 = args[3].parse().expect("rps");
    let cfg = KvConfig {
        system,
        workload: wl,
        target_rps: rps,
        server_cores: if system == System::Ix { 6 } else { 8 },
        ..KvConfig::default()
    };
    let r = run_kv(&cfg);
    println!(
        "{} {:?} target {:.0}K -> rps {:.0}K avg {:.1}us p99 {:.1}us agent {:.1}/{:.1}us shed {}",
        system.name(), wl, rps / 1e3, r.rps / 1e3,
        r.avg_ns as f64 / 1e3, r.p99_ns as f64 / 1e3,
        r.agent_avg_ns as f64 / 1e3, r.agent_p99_ns as f64 / 1e3, r.shed
    );
    println!("  {}", r.debug);
    println!("  store: ops={} lock_wait_total={:.1}ms", r.store_ops, r.store_lock_wait_ns as f64 / 1e6);
}
