//! Fig 3c — "Different message sizes s (n=1)": goodput vs message size.
//!
//! Paper shape: IX-40G reaches 34.5 Gbps of goodput at s=8KB (wire
//! throughput 37.9 of a possible 39.7 Gbps); IX-10G approaches the
//! 10GbE ceiling; Linux stays far below at every size.

use ix_apps::harness::{run_echo, EchoConfig, System};

fn main() {
    ix_bench::banner("Figure 3c", "Echo goodput (Gbps) vs message size (n=1, 8 cores)");
    let sizes: &[usize] = &[64, 256, 1_024, 4_096, 8_192];
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "size(B)", "IX-10G", "IX-40G", "Linux-10G", "Linux-40G", "mTCP-10G"
    );
    for &s in sizes {
        let mut row = format!("{s:>8} |");
        for (sys, ports) in [
            (System::Ix, 1),
            (System::Ix, 4),
            (System::Linux, 1),
            (System::Linux, 4),
            (System::Mtcp, 1),
        ] {
            // Large messages at n=1 need fewer conns to fill the pipe but
            // more per-conn work; keep the default fleet.
            let cfg = EchoConfig {
                system: sys,
                server_cores: 8,
                server_ports: ports,
                n_per_conn: 1,
                msg_size: s,
                ..EchoConfig::default()
            };
            let r = run_echo(&cfg);
            row += &format!(" {:>9.2}G", r.goodput_gbps);
            if matches!((sys, ports), (System::Ix, 4) | (System::Linux, 4)) {
                row += " |";
            }
        }
        println!("{row}");
    }
    println!();
    println!("Paper: IX-40G @8KB = 34.5 Gbps goodput (37.9 Gbps wire of 39.7 possible).");
}
