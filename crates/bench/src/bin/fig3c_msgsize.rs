//! Fig 3c — "Different message sizes s (n=1)": goodput vs message size.
//!
//! Paper shape: IX-40G reaches 34.5 Gbps of goodput at s=8KB (wire
//! throughput 37.9 of a possible 39.7 Gbps); IX-10G approaches the
//! 10GbE ceiling; Linux stays far below at every size.

use ix_apps::harness::{run_echo, EchoConfig, System};

const COLUMNS: [(System, usize); 5] = [
    (System::Ix, 1),
    (System::Ix, 4),
    (System::Linux, 1),
    (System::Linux, 4),
    (System::Mtcp, 1),
];

fn main() {
    ix_bench::banner("Figure 3c", "Echo goodput (Gbps) vs message size (n=1, 8 cores)");
    let sizes: &[usize] =
        if ix_bench::sweep::quick() { &[64, 8_192] } else { &[64, 256, 1_024, 4_096, 8_192] };
    let mut points: Vec<(usize, System, usize)> = Vec::new();
    for &s in sizes {
        for (sys, ports) in COLUMNS {
            points.push((s, sys, ports));
        }
    }
    // Large messages at n=1 need fewer conns to fill the pipe but more
    // per-conn work; keep the default fleet.
    let outcome = ix_bench::sweep::run(&points, |&(s, sys, ports)| {
        let cfg = EchoConfig {
            system: sys,
            server_cores: 8,
            server_ports: ports,
            n_per_conn: 1,
            msg_size: s,
            ..EchoConfig::default()
        };
        run_echo(&cfg)
    });
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "size(B)", "IX-10G", "IX-40G", "Linux-10G", "Linux-40G", "mTCP-10G"
    );
    for (si, &s) in sizes.iter().enumerate() {
        let mut row = format!("{s:>8} |");
        for (i, &(sys, ports)) in COLUMNS.iter().enumerate() {
            let r = &outcome.results[si * COLUMNS.len() + i];
            row += &format!(" {:>9.2}G", r.goodput_gbps);
            if matches!((sys, ports), (System::Ix, 4) | (System::Linux, 4)) {
                row += " |";
            }
        }
        println!("{row}");
    }
    println!();
    println!("Paper: IX-40G @8KB = 34.5 Gbps goodput (37.9 Gbps wire of 39.7 possible).");
    ix_bench::sweep::record("fig3c_msgsize", &outcome);
}
