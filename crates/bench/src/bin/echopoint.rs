//! One echo point runner: `echopoint <ix|linux|mtcp> <cores> <ports> <msg> <n>`.
use ix_apps::harness::{run_echo, EchoConfig, System};

fn main() {
    let a: Vec<String> = std::env::args().collect();
    let system = match a[1].as_str() {
        "ix" => System::Ix,
        "linux" => System::Linux,
        _ => System::Mtcp,
    };
    let cfg = EchoConfig {
        system,
        server_cores: a[2].parse().expect("cores"),
        server_ports: a[3].parse().expect("ports"),
        msg_size: a[4].parse().expect("msg"),
        n_per_conn: a[5].parse().expect("n"),
        ..EchoConfig::default()
    };
    let r = run_echo(&cfg);
    println!(
        "{} cores={} ports={} s={} n={} -> {:.2}M msg/s {:.2}Gbps rtt_avg={:.1}us p99={:.1}us",
        system.name(), a[2], a[3], a[4], a[5],
        r.msgs_per_sec / 1e6, r.goodput_gbps,
        r.rtt_avg_ns as f64 / 1e3, r.rtt_p99_ns as f64 / 1e3
    );
}
