//! Fig 3b — "n round-trips per connection (s=64B)": messages/sec vs the
//! number of synchronous RPCs each connection performs before the RST
//! close, at 8 server cores.
//!
//! Paper shape at n=1024: IX-10G delivers 8.8M msgs/s (line rate),
//! 1.9× mTCP and 8.8× Linux; IX-40G is 2.3× IX-10G at n=1 and 1.3× at
//! n=1024.

use ix_apps::harness::{run_echo, EchoConfig, System};

const COLUMNS: [(System, usize); 5] = [
    (System::Ix, 1),
    (System::Ix, 4),
    (System::Linux, 1),
    (System::Linux, 4),
    (System::Mtcp, 1),
];

fn main() {
    ix_bench::banner(
        "Figure 3b",
        "Echo messages/sec vs round trips per connection (s=64B, 8 cores)",
    );
    let ns: &[usize] = if ix_bench::sweep::quick() { &[1, 1024] } else { &[1, 8, 64, 256, 1024] };
    let mut points: Vec<(usize, System, usize)> = Vec::new();
    for &n in ns {
        for (sys, ports) in COLUMNS {
            points.push((n, sys, ports));
        }
    }
    let outcome = ix_bench::sweep::run(&points, |&(n, sys, ports)| {
        let cfg = EchoConfig {
            system: sys,
            server_cores: 8,
            server_ports: ports,
            n_per_conn: n,
            msg_size: 64,
            ..EchoConfig::default()
        };
        run_echo(&cfg)
    });
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "n", "IX-10G", "IX-40G", "Linux-10G", "Linux-40G", "mTCP-10G"
    );
    let mut at_1024 = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        let mut row = format!("{n:>6} |");
        for (i, &(sys, ports)) in COLUMNS.iter().enumerate() {
            let r = &outcome.results[ni * COLUMNS.len() + i];
            row += &format!(" {:>9.2}M", r.msgs_per_sec / 1e6);
            if matches!((sys, ports), (System::Ix, 4) | (System::Linux, 4)) {
                row += " |";
            }
            if n == 1024 {
                at_1024.push((sys, ports, r.msgs_per_sec));
            }
        }
        println!("{row}");
    }
    println!();
    if let [ix10, _ix40, lnx10, _lnx40, mtcp] = at_1024.as_slice() {
        println!(
            "n=1024 ratios: IX-10G/mTCP = {:.2}x (paper 1.9x), IX-10G/Linux = {:.2}x (paper 8.8x)",
            ix10.2 / mtcp.2,
            ix10.2 / lnx10.2
        );
    }
    ix_bench::sweep::record("fig3b_roundtrips", &outcome);
}
