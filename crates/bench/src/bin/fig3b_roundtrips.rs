//! Fig 3b — "n round-trips per connection (s=64B)": messages/sec vs the
//! number of synchronous RPCs each connection performs before the RST
//! close, at 8 server cores.
//!
//! Paper shape at n=1024: IX-10G delivers 8.8M msgs/s (line rate),
//! 1.9× mTCP and 8.8× Linux; IX-40G is 2.3× IX-10G at n=1 and 1.3× at
//! n=1024.

use ix_apps::harness::{run_echo, EchoConfig, System};

fn main() {
    ix_bench::banner(
        "Figure 3b",
        "Echo messages/sec vs round trips per connection (s=64B, 8 cores)",
    );
    let ns: &[usize] = &[1, 8, 64, 256, 1024];
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "n", "IX-10G", "IX-40G", "Linux-10G", "Linux-40G", "mTCP-10G"
    );
    let mut at_1024 = Vec::new();
    for &n in ns {
        let mut row = format!("{n:>6} |");
        for (sys, ports) in [
            (System::Ix, 1),
            (System::Ix, 4),
            (System::Linux, 1),
            (System::Linux, 4),
            (System::Mtcp, 1),
        ] {
            let cfg = EchoConfig {
                system: sys,
                server_cores: 8,
                server_ports: ports,
                n_per_conn: n,
                msg_size: 64,
                ..EchoConfig::default()
            };
            let r = run_echo(&cfg);
            row += &format!(" {:>9.2}M", r.msgs_per_sec / 1e6);
            if matches!((sys, ports), (System::Ix, 4) | (System::Linux, 4)) {
                row += " |";
            }
            if n == 1024 {
                at_1024.push((sys, ports, r.msgs_per_sec));
            }
        }
        println!("{row}");
    }
    println!();
    if let [ix10, _ix40, lnx10, _lnx40, mtcp] = at_1024.as_slice() {
        println!(
            "n=1024 ratios: IX-10G/mTCP = {:.2}x (paper 1.9x), IX-10G/Linux = {:.2}x (paper 8.8x)",
            ix10.2 / mtcp.2,
            ix10.2 / lnx10.2
        );
    }
}
