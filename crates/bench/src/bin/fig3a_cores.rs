//! Fig 3a — "Multi-core scalability (n=1, s=64B)": messages (=
//! connections) per second vs server cores, for IX/Linux at 10GbE and
//! 4x10GbE and mTCP at 10GbE.
//!
//! Paper shape: IX saturates the 10GbE link with only 3 cores; mTCP
//! needs all 8; Linux stays low and flat-ish; IX on 4x10GbE scales
//! linearly to ~3.8M connections/s at 8 cores.

use ix_apps::harness::{run_echo, EchoConfig, System};

const COLUMNS: [(System, usize); 5] = [
    (System::Ix, 1),
    (System::Ix, 4),
    (System::Linux, 1),
    (System::Linux, 4),
    (System::Mtcp, 1),
];

fn main() {
    ix_bench::banner(
        "Figure 3a",
        "Echo connections/sec vs server cores (n=1, s=64B; RST close + reopen)",
    );
    let cores: &[usize] =
        if ix_bench::sweep::quick() { &[1, 8] } else { &[1, 2, 3, 4, 6, 8] };
    let mut points: Vec<(usize, System, usize)> = Vec::new();
    for &c in cores {
        for (sys, ports) in COLUMNS {
            points.push((c, sys, ports));
        }
    }
    let outcome = ix_bench::sweep::run(&points, |&(c, sys, ports)| {
        let cfg = EchoConfig {
            system: sys,
            server_cores: c,
            server_ports: ports,
            n_per_conn: 1,
            msg_size: 64,
            ..EchoConfig::default()
        };
        run_echo(&cfg)
    });
    println!(
        "{:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "cores", "IX-10G", "IX-40G", "Linux-10G", "Linux-40G", "mTCP-10G"
    );
    for (ci, &c) in cores.iter().enumerate() {
        let mut row = format!("{c:>5} |");
        for (i, &(sys, ports)) in COLUMNS.iter().enumerate() {
            let r = &outcome.results[ci * COLUMNS.len() + i];
            row += &format!(" {:>9.2}M", r.msgs_per_sec / 1e6);
            if (sys, ports) == (System::Ix, 4) || (sys, ports) == (System::Linux, 4) {
                row += " |";
            }
        }
        println!("{row}");
    }
    println!();
    println!("Paper: IX-10G saturates at 3 cores; IX-40G linear to ~3.8M conn/s at 8 cores.");
    ix_bench::sweep::record("fig3a_cores", &outcome);
}
