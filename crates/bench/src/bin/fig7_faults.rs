//! Fig 7 — fault injection and recovery (beyond the paper's evaluation;
//! ROADMAP "failure scenarios"). Continuous 64 B echo load against an
//! IX server while the fault plane injects link loss, link flaps, and a
//! NIC RX-queue hang; reports the goodput dip, 99th-percentile latency,
//! and time-to-recover per scenario, plus the TCP recovery counters and
//! — for the hang — the IXCP watchdog's re-steer counters.
//!
//! Expected shape: Bernoulli loss up to 5% costs goodput but never
//! stalls (RTO + fast retransmit repair every hole); a flap dips
//! goodput to near zero for its duration and recovers within a few RTO
//! backoffs of the link returning; a permanently hung queue strands its
//! RSS flow groups until the queue-hang watchdog re-steers them to
//! healthy queues, after which goodput returns above 80% of baseline.

use ix_apps::harness::{run_fault_recovery, EngineTuning, FaultRecoveryConfig, System};
use ix_faults::{FaultPlan, LinkFaults, NicFaults};
use ix_sim::Nanos;
use ix_tcp::StackConfig;

/// One sweep scenario: what to inject on the server's cable/NIC.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    /// No faults: the reference point every dip is relative to.
    None,
    /// Independent per-frame loss at this rate, both directions.
    Loss(f64),
    /// One link flap of this many milliseconds starting at 10 ms.
    FlapMs(u64),
    /// RX queue 0 hangs at 10 ms and never recovers by itself; the
    /// IXCP watchdog (1 ms period) must re-steer its flow groups.
    Hang,
}

impl Scenario {
    fn name(self) -> String {
        match self {
            Scenario::None => "baseline".into(),
            Scenario::Loss(p) => format!("loss {:.1}%", p * 100.0),
            Scenario::FlapMs(ms) => format!("flap {ms} ms"),
            Scenario::Hang => "queue hang + watchdog".into(),
        }
    }

    fn plan(self, server_port: u16) -> FaultPlan {
        const FAULT_FROM_NS: u64 = 10_000_000;
        match self {
            Scenario::None => FaultPlan::none(),
            Scenario::Loss(p) => FaultPlan::new(0xf7)
                .with_link(server_port, LinkFaults { loss: p, ..LinkFaults::default() }),
            Scenario::FlapMs(ms) => FaultPlan::new(0xf7).with_link(
                server_port,
                LinkFaults {
                    down_windows: vec![(FAULT_FROM_NS, FAULT_FROM_NS + ms * 1_000_000)],
                    ..LinkFaults::default()
                },
            ),
            Scenario::Hang => {
                let mut nic = NicFaults::default();
                nic.rx_hangs.insert(0, vec![(FAULT_FROM_NS, u64::MAX)]);
                FaultPlan::new(0xf7).with_nic(server_port, nic)
            }
        }
    }
}

fn main() {
    ix_bench::banner(
        "Figure 7",
        "echo goodput dip and time-to-recover under injected faults (IX, 4 cores)",
    );
    let scenarios: &[Scenario] = if ix_bench::sweep::quick() {
        &[Scenario::None, Scenario::Loss(0.01), Scenario::Hang]
    } else {
        &[
            Scenario::None,
            Scenario::Loss(0.001),
            Scenario::Loss(0.01),
            Scenario::Loss(0.05),
            Scenario::FlapMs(1),
            Scenario::FlapMs(4),
            Scenario::Hang,
        ]
    };
    let outcome = ix_bench::sweep::run(scenarios, |&sc| {
        let cfg = FaultRecoveryConfig {
            system: System::Ix,
            // Millisecond RTO floor: recovery timescales must fit the
            // 40 ms window (the default 200 ms floor would not).
            tuning: EngineTuning {
                stack: StackConfig::low_latency(),
                ..EngineTuning::default()
            },
            watchdog_period: match sc {
                Scenario::Hang => Some(Nanos::from_millis(1)),
                _ => None,
            },
            // Bernoulli loss has no onset: it degrades the whole run,
            // so there is no clean pre-fault baseline and the dip /
            // time-to-recover metrics do not apply (goodput and p99
            // against the fault-free scenario are the measurements).
            fault_from: match sc {
                Scenario::Loss(_) => Nanos(0),
                _ => FaultRecoveryConfig::default().fault_from,
            },
            ..FaultRecoveryConfig::default()
        };
        run_fault_recovery(&cfg, |server_port| sc.plan(server_port))
    });

    println!(
        "{:<22} {:>9} {:>9} {:>6} {:>11} {:>8} {:>6} {:>8} {:>8}",
        "scenario", "Kmsg/s", "p99(us)", "dip", "recover", "drops", "retx", "rto", "fastrtx"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (sc, r) in scenarios.iter().zip(outcome.results.iter()) {
        let continuous = matches!(sc, Scenario::Loss(_));
        let recover = match (continuous, r.stalled, r.recover_ns) {
            (true, ..) => "cont.".to_string(),
            (_, true, _) => "STALLED".to_string(),
            (_, false, Some(ns)) => format!("{:.1} ms", ns as f64 / 1e6),
            (_, false, None) => "no dip".to_string(),
        };
        println!(
            "{:<22} {:>9.0} {:>9.1} {:>6} {:>11} {:>8} {:>6} {:>8} {:>8}",
            sc.name(),
            r.msgs_per_sec / 1e3,
            r.rtt_p99_ns as f64 / 1e3,
            if continuous { "-".to_string() } else { format!("{:.2}", r.dip_frac) },
            recover,
            r.faults.dropped_total(),
            r.tcp.retransmits,
            r.tcp.rto_fires,
            r.tcp.fast_retransmits,
        );
        if let Some(w) = r.watchdog {
            println!(
                "{:<22} watchdog: {} scans, {} hangs, {} buckets re-steered, {} flows migrated, {} frames discarded",
                "", w.scans, w.hangs_detected, w.buckets_resteered, w.flows_migrated, w.frames_discarded
            );
        }
        let wd = match r.watchdog {
            Some(w) => format!(
                "{{\"hangs\": {}, \"buckets\": {}, \"flows\": {}, \"discarded\": {}}}",
                w.hangs_detected, w.buckets_resteered, w.flows_migrated, w.frames_discarded
            ),
            None => "null".to_string(),
        };
        json_rows.push(format!(
            "{{\"scenario\": \"{}\", \"kmsgs_per_sec\": {:.1}, \"p99_us\": {:.2}, \
             \"dip_frac\": {:.4}, \"recover_ms\": {}, \"stalled\": {}, \"wire_drops\": {}, \
             \"retransmits\": {}, \"rto_fires\": {}, \"fast_retransmits\": {}, \
             \"max_recovery_us\": {:.1}, \"watchdog\": {}}}",
            ix_bench::report::json_escape(&sc.name()),
            r.msgs_per_sec / 1e3,
            r.rtt_p99_ns as f64 / 1e3,
            r.dip_frac,
            r.recover_ns.map_or("null".to_string(), |ns| format!("{:.1}", ns as f64 / 1e6)),
            r.stalled,
            r.faults.dropped_total(),
            r.tcp.retransmits,
            r.tcp.rto_fires,
            r.tcp.fast_retransmits,
            r.tcp.max_recovery_ns as f64 / 1e3,
            wd,
        ));
    }

    // Headline claims the acceptance gate checks: nothing stalls at
    // ≤5% loss, and the watchdog restores the hung queue's traffic.
    // A scenario counts as stalled if it never returned above the 80%
    // recovery threshold, or if its final window moved no bytes at all
    // (continuous-loss scenarios have no threshold; dead silence is
    // their stall signal).
    let stalled: Vec<String> = scenarios
        .iter()
        .zip(outcome.results.iter())
        .filter(|(_, r)| r.stalled || r.per_window_rx_bytes.last().copied().unwrap_or(0) == 0)
        .map(|(sc, _)| sc.name())
        .collect();
    if stalled.is_empty() {
        println!("\nall scenarios recovered (no permanently stalled connections)");
    } else {
        println!("\nSTALLED scenarios: {}", stalled.join(", "));
    }

    let suffix = if ix_bench::sweep::quick() { "_quick" } else { "" };
    ix_bench::report::update_section(
        &format!("fig7_faults{suffix}"),
        &format!("[{}]", json_rows.join(", ")),
    );
    ix_bench::sweep::record("fig7_faults", &outcome);
}
