//! Fig 6 — "99th percentile latency as a function of throughput for USR
//! workload from Fig 5, for different values of the batch bound B."
//!
//! Paper shape: at low load, B has no impact on tail latency (adaptive
//! batching never delays pending packets); at high load, larger B
//! improves throughput — +29% from B=1 to B=16 — and B ≥ 16 saturates.

use ix_apps::harness::{run_kv, EngineTuning, KvConfig, System};
use ix_apps::workload::WorkloadKind;
use ix_core::params::CostParams;
use ix_tcp::StackConfig;

/// One full B-sweep; `batch_rx` toggles the staged RX pipeline
/// (DESIGN.md §5j) so the headline can be compared with it on and off.
fn sweep(batch_rx: bool, record_as: &str) {
    let bounds: &[usize] = &[1, 2, 8, 16, 64];
    let targets: &[f64] = if ix_bench::sweep::quick() {
        &[200e3, 2000e3]
    } else {
        &[200e3, 800e3, 1400e3, 2000e3]
    };
    let mut points: Vec<(f64, usize)> = Vec::new();
    for &t in targets {
        for &b in bounds {
            points.push((t, b));
        }
    }
    let outcome = ix_bench::sweep::run(&points, |&(t, b)| {
        let tuning = EngineTuning {
            ix: CostParams::with_batch_bound(b),
            stack: StackConfig { batch_rx, ..StackConfig::default() },
            ..EngineTuning::default()
        };
        let cfg = KvConfig {
            system: System::Ix,
            workload: WorkloadKind::Usr,
            target_rps: t,
            server_cores: 6,
            tuning,
            ..KvConfig::default()
        };
        run_kv(&cfg)
    });
    println!(
        "{:>9} | {}",
        "target",
        bounds
            .iter()
            .map(|b| format!("{:>16}", format!("B={b} p99(us)")))
            .collect::<String>()
    );
    let mut max_rps = vec![0.0f64; bounds.len()];
    for (ti, &t) in targets.iter().enumerate() {
        let mut row = format!("{:>8.0}K |", t / 1e3);
        for (i, best) in max_rps.iter_mut().enumerate() {
            let r = &outcome.results[ti * bounds.len() + i];
            let sat = r.rps < t * 0.95;
            row += &format!(
                "{:>16}",
                if sat {
                    format!("({:.0}K max)", r.rps / 1e3)
                } else {
                    format!("{:.1}", r.agent_p99_ns as f64 / 1e3)
                }
            );
            *best = best.max(r.rps);
        }
        println!("{row}");
    }
    println!();
    for (i, &b) in bounds.iter().enumerate() {
        println!("B={b:<3} max sustained ≈ {:>7.0}K RPS", max_rps[i] / 1e3);
    }
    if max_rps[0] > 0.0 {
        let b16 = max_rps[bounds.iter().position(|&b| b == 16).expect("16 present")];
        println!(
            "B=16 vs B=1 throughput [batch_rx={batch_rx}]: +{:.0}% (paper: +29%)",
            100.0 * (b16 / max_rps[0] - 1.0)
        );
    }
    ix_bench::sweep::record(record_as, &outcome);
}

fn main() {
    ix_bench::banner(
        "Figure 6",
        "memcached USR p99 latency vs throughput for batch bounds B (IX, 6 cores)",
    );
    sweep(false, "fig6_batchbound");
    println!();
    println!("-- same sweep with the staged RX pipeline (batch_rx) on --");
    sweep(true, "fig6_batchbound_batchrx");
}
