//! Parallel sweep runner for the figure binaries.
//!
//! Every figure in the suite is a sweep over independent simulation
//! points: each point builds its own `Simulator`, runs to completion,
//! and returns a plain-data result row. Nothing is shared between
//! points, so they farm out across cores with `std::thread::scope` —
//! no crates.io dependency, no unsafe, no channels-of-channels.
//!
//! Determinism: workers pull point *indices* from an atomic counter and
//! write results back into an index-addressed slot vector, so the
//! reassembled output is byte-identical to a serial run no matter how
//! the OS schedules the workers. `IX_SWEEP_THREADS=1` forces the serial
//! path (used by the determinism CI check on single-core hosts).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::report;

/// Worker count: `IX_SWEEP_THREADS` override, else the host parallelism.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("IX_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True when `IX_SWEEP_QUICK=1`: figure binaries shrink their sweeps to a
/// smoke-sized subset so CI can bound wall-clock.
pub fn quick() -> bool {
    std::env::var("IX_SWEEP_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The result of a sweep: rows in point order plus timing metadata.
pub struct SweepOutcome<R> {
    /// One result per input point, in input order.
    pub results: Vec<R>,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Maps `f` over `points` in parallel and reassembles results in input
/// order. `f` must be self-contained per point (the figure harnesses
/// construct their whole simulated testbed inside the closure).
pub fn run<P, R, F>(points: &[P], f: F) -> SweepOutcome<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = threads().min(points.len()).max(1);
    let start = Instant::now();
    let results: Vec<R> = if n == 1 {
        points.iter().map(&f).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = points.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let r = f(&points[i]);
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every sweep point produces a result")
            })
            .collect()
    };
    SweepOutcome {
        results,
        wall: start.elapsed(),
        threads: n,
    }
}

/// Records a sweep's timing under `sweep_<figure>` in `BENCH_sim.json`
/// and prints a one-line summary.
pub fn record<R>(figure: &str, outcome: &SweepOutcome<R>) {
    let wall_ms = outcome.wall.as_secs_f64() * 1e3;
    let pps = outcome.results.len() as f64 / outcome.wall.as_secs_f64().max(1e-9);
    println!(
        "[sweep] {figure}: {} points in {:.1} ms on {} thread(s) ({:.2} points/s)",
        outcome.results.len(),
        wall_ms,
        outcome.threads,
        pps
    );
    let value = format!(
        "{{\"points\": {}, \"threads\": {}, \"wall_ms\": {:.1}, \"points_per_sec\": {:.3}, \"quick\": {}}}",
        outcome.results.len(),
        outcome.threads,
        wall_ms,
        pps,
        quick()
    );
    // Quick (CI smoke) runs land under their own key so they never
    // clobber a recorded full-length sweep.
    let suffix = if quick() { "_quick" } else { "" };
    report::update_section(&format!("sweep_{figure}{suffix}"), &value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let points: Vec<u64> = (0..257).collect();
        let out = run(&points, |&p| p * 3 + 1);
        assert_eq!(out.results.len(), points.len());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let out = run(&[] as &[u32], |&p| p);
        assert!(out.results.is_empty());
        assert_eq!(out.threads, 1);
        let out = run(&[7u32], |&p| p + 1);
        assert_eq!(out.results, vec![8]);
    }

    #[test]
    fn thread_env_override_forces_serial() {
        // The serial path must produce identical output to the parallel
        // path; exercise it directly rather than via the env var (tests
        // share a process, so setting env vars here would race).
        let points: Vec<u32> = (0..64).collect();
        let serial: Vec<u32> = points.iter().map(|&p| p ^ 0xa5).collect();
        let par = run(&points, |&p| p ^ 0xa5);
        assert_eq!(par.results, serial);
    }
}
