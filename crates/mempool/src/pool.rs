//! Fixed-size object pools provisioned in page-sized blocks.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use crate::mbuf::{Mbuf, MBUF_DATA_SIZE};

/// Simulated large-page size: IX allocates dataplane memory exclusively in
/// 2 MB pages (§4.2).
pub const LARGE_PAGE: usize = 2 * 1024 * 1024;

/// Allocation statistics for a pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Buffers returned to the free list.
    pub frees: u64,
    /// Allocations denied because the pool was at capacity.
    pub exhausted: u64,
    /// Currently outstanding objects.
    pub outstanding: u64,
    /// High-water mark of outstanding objects.
    pub peak_outstanding: u64,
}

/// The shared free list behind a pool. `Mbuf::drop` pushes storage back
/// here, so the list must be reference-counted and interior-mutable.
///
/// The list owns the outstanding/peak accounting so the pool's alloc hot
/// path is a single `RefCell` borrow: one pop, one counter bump.
///
/// Storage is `Arc<[u8]>` because delivered payloads are handed to the
/// application as refcounted `Bytes` views (`Mbuf::as_bytes`). An mbuf
/// dropped while a view is still alive parks its storage on `deferred`;
/// the buffer rejoins `free` once the last view releases it (checked
/// when the free list runs dry), so a view can never observe the pool
/// scribbling over bytes it is still reading.
#[derive(Debug, Default)]
pub struct FreeList {
    free: Vec<Arc<[u8]>>,
    /// Recycled storage still aliased by a live `Bytes` view; swept back
    /// into `free` once unique.
    deferred: Vec<Arc<[u8]>>,
    /// Buffers materialized so far; grows in large-page blocks up to
    /// `capacity`.
    provisioned: usize,
    /// The configured capacity in buffers.
    capacity: usize,
    outstanding: u64,
    peak_outstanding: u64,
}

impl FreeList {
    /// Pops a buffer and charges it as outstanding, in one pass. Backing
    /// storage is materialized on demand one simulated 2 MB large page
    /// at a time (§4.2: the dataplane grows its mbuf region in large
    /// pages), so a testbed of many shards only pays — in allocation and
    /// page-fault cost — for the buffers its workload actually touches.
    fn take(&mut self) -> Option<Arc<[u8]>> {
        if self.free.is_empty() {
            self.sweep_deferred();
        }
        if self.free.is_empty() && self.provisioned < self.capacity {
            let block = (self.capacity - self.provisioned).min(LARGE_PAGE / MBUF_DATA_SIZE);
            self.free.reserve(block);
            for _ in 0..block {
                self.free.push(Arc::from(vec![0u8; MBUF_DATA_SIZE]));
            }
            self.provisioned += block;
        }
        let storage = self.free.pop()?;
        self.outstanding += 1;
        if self.outstanding > self.peak_outstanding {
            self.peak_outstanding = self.outstanding;
        }
        Some(storage)
    }

    /// Moves parked storage whose last view has dropped back to `free`.
    fn sweep_deferred(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            if Arc::strong_count(&self.deferred[i]) == 1 {
                let storage = self.deferred.swap_remove(i);
                self.free.push(storage);
            } else {
                i += 1;
            }
        }
    }

    pub(crate) fn recycle(&mut self, storage: Arc<[u8]>) {
        debug_assert!(self.outstanding > 0, "free without matching alloc");
        self.outstanding -= 1;
        if Arc::strong_count(&storage) == 1 {
            self.free.push(storage);
        } else {
            self.deferred.push(storage);
        }
    }
}

/// A pool of MTU-sized packet buffers for one hardware thread.
///
/// Capacity is expressed in buffers; backing storage is provisioned on
/// demand in simulated 2 MB large-page blocks (§4.2), and once a buffer
/// is materialized it recycles through the free list forever — the
/// steady-state alloc path never touches the global allocator. When the
/// pool is exhausted, `alloc` returns `None` — the NIC model translates
/// that into a packet drop, exactly what a real NIC does when the host
/// is out of receive buffers.
#[derive(Debug)]
pub struct MbufPool {
    list: Rc<RefCell<FreeList>>,
    capacity: usize,
    stats: PoolStats,
}

impl MbufPool {
    /// Creates a pool of `capacity` mbufs.
    pub fn new(capacity: usize) -> MbufPool {
        MbufPool {
            list: Rc::new(RefCell::new(FreeList {
                free: Vec::new(),
                deferred: Vec::new(),
                provisioned: 0,
                capacity,
                outstanding: 0,
                peak_outstanding: 0,
            })),
            capacity,
            stats: PoolStats::default(),
        }
    }

    /// Creates a pool sized in simulated 2 MB large pages.
    pub fn with_large_pages(pages: usize) -> MbufPool {
        MbufPool::new(pages * (LARGE_PAGE / MBUF_DATA_SIZE))
    }

    /// Allocates an mbuf, or `None` if the pool is exhausted. One borrow,
    /// one pop: the free list carries the outstanding/peak bookkeeping.
    pub fn alloc(&mut self) -> Option<Mbuf> {
        match self.list.borrow_mut().take() {
            Some(storage) => {
                self.stats.allocs += 1;
                Some(Mbuf::from_storage(storage, Rc::downgrade(&self.list)))
            }
            None => {
                self.stats.exhausted += 1;
                None
            }
        }
    }

    /// Allocates up to `n` mbufs in one free-list transaction, appending
    /// them to `out`; returns how many were delivered (short on
    /// exhaustion). This is the bulk ring-refill shape of a polled RX
    /// path (IX §3: batching amortizes per-packet costs at every stage,
    /// buffer management included) — one borrow for the whole batch
    /// instead of one per buffer.
    pub fn alloc_batch(&mut self, n: usize, out: &mut Vec<Mbuf>) -> usize {
        let mut got = 0;
        {
            let mut list = self.list.borrow_mut();
            out.reserve(n);
            while got < n {
                let Some(storage) = list.take() else { break };
                out.push(Mbuf::from_storage(storage, Rc::downgrade(&self.list)));
                got += 1;
            }
        }
        self.stats.allocs += got as u64;
        self.stats.exhausted += (n - got) as u64;
        got
    }

    /// Allocates an mbuf pre-filled with `data`.
    pub fn alloc_with(&mut self, data: &[u8]) -> Option<Mbuf> {
        let mut m = self.alloc()?;
        m.extend_from_slice(data);
        Some(m)
    }

    /// Allocates an empty mbuf with exactly `headroom` bytes reserved in
    /// front of the data region. The zero-copy transmit path sizes this
    /// to Eth+IP+L4 so the payload lands once in the tail and every
    /// header prepend fits without moving it.
    pub fn alloc_with_headroom(&mut self, headroom: usize) -> Option<Mbuf> {
        let mut m = self.alloc()?;
        m.set_headroom(headroom);
        Some(m)
    }

    /// The configured capacity in buffers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffers currently available (capacity minus outstanding; unfilled
    /// headroom is materialized on demand).
    pub fn available(&self) -> usize {
        let list = self.list.borrow();
        list.capacity - list.outstanding as usize
    }

    /// A snapshot of allocation statistics (outstanding/peak/frees come
    /// from the free-list state at call time).
    pub fn stats(&self) -> PoolStats {
        let list = self.list.borrow();
        PoolStats {
            outstanding: list.outstanding,
            peak_outstanding: list.peak_outstanding,
            frees: self.stats.allocs - list.outstanding,
            ..self.stats
        }
    }
}

/// A generic fixed-capacity object pool with free-list recycling, used for
/// hot-path bookkeeping objects other than packet buffers (TCP protocol
/// control blocks, timer entries).
///
/// Objects are reset with the caller-supplied closure on release, so an
/// `alloc` always observes a clean object — the same discipline the
/// original's inlined allocation routines rely on.
#[derive(Debug)]
pub struct ObjectPool<T> {
    free: Vec<T>,
    make: fn() -> T,
    capacity: usize,
    outstanding: usize,
}

impl<T> ObjectPool<T> {
    /// Creates a pool of `capacity` objects built with `make`.
    pub fn new(capacity: usize, make: fn() -> T) -> ObjectPool<T> {
        let mut free = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            free.push(make());
        }
        ObjectPool {
            free,
            make,
            capacity,
            outstanding: 0,
        }
    }

    /// Takes an object from the pool, or `None` when exhausted.
    pub fn take(&mut self) -> Option<T> {
        let obj = self.free.pop()?;
        self.outstanding += 1;
        Some(obj)
    }

    /// Returns an object to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more objects are returned than were taken.
    pub fn put(&mut self, obj: T) {
        assert!(self.outstanding > 0, "put without matching take");
        self.outstanding -= 1;
        self.free.push(obj);
    }

    /// Objects currently checked out.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grows the pool by `n` fresh objects (control-plane resource grant).
    pub fn grow(&mut self, n: usize) {
        for _ in 0..n {
            self.free.push((self.make)());
        }
        self.capacity += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut pool = MbufPool::new(4);
        assert_eq!(pool.available(), 4);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.stats().outstanding, 2);
        drop(a);
        assert_eq!(pool.available(), 3);
        drop(b);
        assert_eq!(pool.available(), 4);
        let s = pool.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.peak_outstanding, 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = MbufPool::new(2);
        let _a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert!(pool.alloc().is_none());
        assert_eq!(pool.stats().exhausted, 1);
    }

    #[test]
    fn recycled_buffer_is_reusable() {
        let mut pool = MbufPool::new(1);
        let mut m = pool.alloc().unwrap();
        m.extend_from_slice(b"dirty");
        drop(m);
        let m2 = pool.alloc().unwrap();
        // A fresh mbuf starts empty with default headroom regardless of
        // what the previous user wrote.
        assert!(m2.is_empty());
        assert_eq!(m2.headroom(), crate::MBUF_DEFAULT_HEADROOM);
    }

    #[test]
    fn aliased_recycle_defers_until_view_drops() {
        let mut pool = MbufPool::new(1);
        let m = pool.alloc().unwrap();
        let view = m.as_bytes();
        drop(m);
        // The buffer is back from the pool's perspective...
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.available(), 1);
        // ...but cannot be handed out while the view still reads it.
        assert!(pool.alloc().is_none(), "aliased storage must not be reissued");
        drop(view);
        assert!(pool.alloc().is_some(), "storage reusable once the view drops");
    }

    #[test]
    fn orphan_mbuf_after_pool_drop_is_safe() {
        let mut pool = MbufPool::new(1);
        let m = pool.alloc().unwrap();
        drop(pool);
        drop(m); // Must not panic; storage goes to the global allocator.
    }

    #[test]
    fn alloc_with_copies_data() {
        let mut pool = MbufPool::new(1);
        let m = pool.alloc_with(b"abc").unwrap();
        assert_eq!(m.data(), b"abc");
    }

    #[test]
    fn alloc_with_headroom_reserves_front() {
        let mut pool = MbufPool::new(1);
        let mut m = pool.alloc_with_headroom(94).unwrap();
        assert_eq!(m.headroom(), 94);
        assert!(m.is_empty());
        m.extend_from_slice(b"data");
        m.prepend(94);
        assert_eq!(m.len(), 98);
    }

    #[test]
    fn large_page_sizing() {
        let pool = MbufPool::with_large_pages(1);
        assert_eq!(pool.capacity(), LARGE_PAGE / MBUF_DATA_SIZE);
    }

    #[test]
    fn object_pool_take_put() {
        let mut pool: ObjectPool<Vec<u8>> = ObjectPool::new(2, Vec::new);
        let a = pool.take().unwrap();
        let _b = pool.take().unwrap();
        assert!(pool.take().is_none());
        assert_eq!(pool.outstanding(), 2);
        pool.put(a);
        assert_eq!(pool.outstanding(), 1);
        assert!(pool.take().is_some());
    }

    #[test]
    fn object_pool_grow() {
        let mut pool: ObjectPool<u32> = ObjectPool::new(0, || 0);
        assert!(pool.take().is_none());
        pool.grow(3);
        assert_eq!(pool.capacity(), 3);
        assert!(pool.take().is_some());
    }

    #[test]
    #[should_panic(expected = "put without matching take")]
    fn object_pool_double_put_panics() {
        let mut pool: ObjectPool<u32> = ObjectPool::new(1, || 0);
        pool.put(5);
    }
}
