//! Per-hardware-thread memory pools and mbufs.
//!
//! From the paper (§4.2): *"All hot-path data objects are allocated from
//! per hardware thread memory pools. Each memory pool is structured as
//! arrays of identically sized objects, provisioned in page-sized blocks.
//! Free objects are tracked with a simple free list ... Mbufs, the storage
//! object for network packets, are stored as contiguous chunks of
//! bookkeeping data and MTU-sized buffers, and are used for both receiving
//! and transmitting packets."*
//!
//! This crate reproduces that allocator: [`MbufPool`] provisions
//! fixed-size buffers in page-sized blocks and recycles them through a
//! free list; [`Mbuf`] is the packet storage object, with headroom
//! management so protocol headers can be prepended without copying — the
//! mechanism behind IX's zero-copy API.
//!
//! Pools are intentionally *not* thread-safe: one pool per elastic thread
//! is the paper's design (no synchronization or coherence traffic on the
//! hot path), and the simulation is single-threaded.

pub mod mbuf;
pub mod pool;

pub use mbuf::{Mbuf, MBUF_DATA_SIZE, MBUF_DEFAULT_HEADROOM};
pub use pool::{MbufPool, ObjectPool, PoolStats};
