//! The mbuf: packet storage with headroom for zero-copy header prepends.

use std::cell::RefCell;
use std::rc::Weak;
use std::sync::Arc;

use ix_testkit::Bytes;

use crate::pool::FreeList;

/// Bytes of packet data an mbuf can hold. Sized to one MTU frame plus
/// slack, like the 2 KB mbufs of the original (one MTU-sized buffer per
/// mbuf, §4.2).
pub const MBUF_DATA_SIZE: usize = 2048;

/// Default headroom reserved at allocation so Ethernet + IP + TCP headers
/// can be prepended to a payload without moving it.
pub const MBUF_DEFAULT_HEADROOM: usize = 128;

thread_local! {
    /// Shared zero-length storage swapped in on drop so returning the
    /// real storage to the pool doesn't allocate a replacement.
    static EMPTY_STORAGE: Arc<[u8]> = Arc::from(&[][..]);
}

fn empty_storage() -> Arc<[u8]> {
    EMPTY_STORAGE.with(Arc::clone)
}

/// A network packet buffer drawn from an [`crate::MbufPool`].
///
/// Layout: `[ headroom | data (offset..offset+len) | tailroom ]`.
/// Protocol layers *prepend* headers by growing into the headroom and
/// *append* payload by growing into the tailroom; neither moves bytes
/// already written, which is what makes the transmit path zero-copy.
///
/// Storage is an `Arc<[u8]>` so a received payload can be handed to the
/// application as a refcounted [`Bytes`] view ([`Mbuf::as_bytes`]) while
/// the stack retains the mbuf until `recv_done` credits it — the RX half
/// of the paper's zero-copy API. Mutators require unique storage (they
/// panic if a view is still alive), preserving the shared-immutability
/// contract; `pull`/`truncate`/`clear` only move the view window and
/// stay legal on aliased storage.
///
/// Dropping an mbuf returns its storage to the owning pool's free list
/// (if the pool is still alive), modeling the `recv_done` recycle path.
#[derive(Debug)]
pub struct Mbuf {
    buf: Arc<[u8]>,
    offset: usize,
    len: usize,
    owner: Weak<RefCell<FreeList>>,
}

impl Mbuf {
    /// Creates an mbuf from raw storage; used by the pool only.
    pub(crate) fn from_storage(buf: Arc<[u8]>, owner: Weak<RefCell<FreeList>>) -> Mbuf {
        Mbuf {
            buf,
            offset: MBUF_DEFAULT_HEADROOM,
            len: 0,
            owner,
        }
    }

    /// Creates a pool-less mbuf (storage from the global allocator).
    /// Convenient for tests and for hosts that do not model memory
    /// pressure.
    pub fn standalone() -> Mbuf {
        Mbuf {
            buf: Arc::from(vec![0u8; MBUF_DATA_SIZE]),
            offset: MBUF_DEFAULT_HEADROOM,
            len: 0,
            owner: Weak::new(),
        }
    }

    /// Unique access to the backing storage, for the mutating builders.
    ///
    /// # Panics
    ///
    /// Panics if a [`Bytes`] view of this storage is still alive: the
    /// zero-copy contract makes delivered payload immutable until the
    /// consumer releases it.
    fn storage_mut(&mut self) -> &mut [u8] {
        Arc::get_mut(&mut self.buf).expect("mbuf storage aliased by a live Bytes view")
    }

    /// Current data length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mbuf holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes available in front of the data for header prepends.
    pub fn headroom(&self) -> usize {
        self.offset
    }

    /// Bytes available after the data for appends.
    pub fn tailroom(&self) -> usize {
        self.buf.len() - self.offset - self.len
    }

    /// The packet data.
    pub fn data(&self) -> &[u8] {
        &self.buf[self.offset..self.offset + self.len]
    }

    /// Mutable access to the packet data.
    ///
    /// # Panics
    ///
    /// Panics if a [`Bytes`] view of this storage is still alive.
    pub fn data_mut(&mut self) -> &mut [u8] {
        let (offset, len) = (self.offset, self.len);
        &mut self.storage_mut()[offset..offset + len]
    }

    /// A refcounted view of the current data region, sharing this mbuf's
    /// storage (no copy). This is the `recv{cookie, mbuf ptr, mbuf len}`
    /// pointer of Table 1: the consumer parses in place and the storage
    /// returns to the pool only after both the view and the mbuf are
    /// released.
    pub fn as_bytes(&self) -> Bytes {
        Bytes::from_shared(Arc::clone(&self.buf), self.offset, self.len)
    }

    /// Number of live aliases of this storage (the mbuf itself counts as
    /// one); used by the zero-copy tests to pin view lifetimes.
    pub fn storage_refs(&self) -> usize {
        Arc::strong_count(&self.buf)
    }

    /// Resets to an empty buffer with the default headroom.
    pub fn clear(&mut self) {
        self.offset = MBUF_DEFAULT_HEADROOM;
        self.len = 0;
    }

    /// Repositions the start of the (empty) data region so `n` bytes of
    /// headroom are available for header prepends. The transmit path uses
    /// this to reserve exactly Eth+IP+L4 worth of room before writing the
    /// payload into the tail, so every header prepend lands in-place.
    ///
    /// # Panics
    ///
    /// Panics if the mbuf already holds data or `n` exceeds the storage
    /// size.
    pub fn set_headroom(&mut self, n: usize) {
        assert!(self.len == 0, "set_headroom on non-empty mbuf");
        assert!(n <= self.buf.len(), "headroom {n} > storage {}", self.buf.len());
        self.offset = n;
    }

    /// Grows the data region forward by `n` bytes (into the headroom) and
    /// returns the newly exposed prefix for a header encoder to fill.
    ///
    /// # Panics
    ///
    /// Panics if the headroom is smaller than `n`.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.offset, "insufficient headroom: {} < {n}", self.offset);
        self.offset -= n;
        self.len += n;
        let start = self.offset;
        &mut self.storage_mut()[start..start + n]
    }

    /// Drops `n` bytes from the front of the data (e.g. a parsed header),
    /// returning them to the headroom.
    ///
    /// # Panics
    ///
    /// Panics if the mbuf holds fewer than `n` bytes.
    pub fn pull(&mut self, n: usize) {
        assert!(n <= self.len, "pull {n} > len {}", self.len);
        self.offset += n;
        self.len -= n;
    }

    /// Appends `bytes` to the data region.
    ///
    /// # Panics
    ///
    /// Panics if the tailroom is smaller than `bytes.len()`.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        assert!(
            bytes.len() <= self.tailroom(),
            "insufficient tailroom: {} < {}",
            self.tailroom(),
            bytes.len()
        );
        let start = self.offset + self.len;
        self.storage_mut()[start..start + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
    }

    /// Grows the data region backward by `n` zero-initialized bytes and
    /// returns the newly exposed suffix.
    ///
    /// # Panics
    ///
    /// Panics if the tailroom is smaller than `n`.
    pub fn append(&mut self, n: usize) -> &mut [u8] {
        assert!(n <= self.tailroom(), "insufficient tailroom");
        let start = self.offset + self.len;
        self.len += n;
        let region = &mut self.storage_mut()[start..start + n];
        region.fill(0);
        region
    }

    /// Truncates the data region to `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current length.
    pub fn truncate(&mut self, n: usize) {
        assert!(n <= self.len);
        self.len = n;
    }
}

impl Drop for Mbuf {
    fn drop(&mut self) {
        if let Some(list) = self.owner.upgrade() {
            // Hand the storage back to the pool's free list. A still-live
            // Bytes view defers the actual reuse (the free list parks
            // aliased storage until the last view drops).
            let storage = std::mem::replace(&mut self.buf, empty_storage());
            list.borrow_mut().recycle(storage);
        }
    }
}

impl Clone for Mbuf {
    /// Deep copy into standalone storage. Real IX never copies packet
    /// payloads; the simulation uses clone only where the physical world
    /// would (DMA onto the wire).
    fn clone(&self) -> Mbuf {
        let mut m = Mbuf::standalone();
        m.offset = self.offset;
        m.len = self.len;
        let (offset, len) = (self.offset, self.len);
        m.storage_mut()[offset..offset + len].copy_from_slice(self.data());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_and_pull() {
        let mut m = Mbuf::standalone();
        m.extend_from_slice(b"payload");
        let hdr = m.prepend(4);
        hdr.copy_from_slice(b"HDR!");
        assert_eq!(m.data(), b"HDR!payload");
        assert_eq!(m.headroom(), MBUF_DEFAULT_HEADROOM - 4);
        m.pull(4);
        assert_eq!(m.data(), b"payload");
        assert_eq!(m.headroom(), MBUF_DEFAULT_HEADROOM);
    }

    #[test]
    fn append_and_truncate() {
        let mut m = Mbuf::standalone();
        m.append(8).copy_from_slice(b"abcdefgh");
        assert_eq!(m.len(), 8);
        m.truncate(3);
        assert_eq!(m.data(), b"abc");
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.headroom(), MBUF_DEFAULT_HEADROOM);
    }

    #[test]
    fn tailroom_accounting() {
        let mut m = Mbuf::standalone();
        let initial = m.tailroom();
        assert_eq!(initial, MBUF_DATA_SIZE - MBUF_DEFAULT_HEADROOM);
        m.extend_from_slice(&[0u8; 100]);
        assert_eq!(m.tailroom(), initial - 100);
    }

    #[test]
    fn set_headroom_repositions_empty_buffer() {
        let mut m = Mbuf::standalone();
        m.set_headroom(94);
        assert_eq!(m.headroom(), 94);
        assert_eq!(m.tailroom(), MBUF_DATA_SIZE - 94);
        m.extend_from_slice(b"payload");
        let hdr = m.prepend(94);
        assert_eq!(hdr.len(), 94);
        assert_eq!(m.headroom(), 0);
    }

    #[test]
    #[should_panic(expected = "set_headroom on non-empty mbuf")]
    fn set_headroom_with_data_panics() {
        let mut m = Mbuf::standalone();
        m.extend_from_slice(b"x");
        m.set_headroom(10);
    }

    #[test]
    #[should_panic(expected = "insufficient headroom")]
    fn prepend_beyond_headroom_panics() {
        let mut m = Mbuf::standalone();
        m.prepend(MBUF_DEFAULT_HEADROOM + 1);
    }

    #[test]
    #[should_panic(expected = "insufficient tailroom")]
    fn extend_beyond_tailroom_panics() {
        let mut m = Mbuf::standalone();
        m.extend_from_slice(&vec![0u8; MBUF_DATA_SIZE]);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Mbuf::standalone();
        a.extend_from_slice(b"original");
        let b = a.clone();
        a.data_mut()[0] = b'X';
        assert_eq!(b.data(), b"original");
    }

    #[test]
    fn as_bytes_shares_storage_and_tracks_window() {
        let mut m = Mbuf::standalone();
        m.extend_from_slice(b"headerpayload");
        m.pull(6);
        let view = m.as_bytes();
        assert_eq!(&view[..], b"payload");
        assert_eq!(m.storage_refs(), 2, "mbuf + view alias one storage");
        // Window-only ops stay legal while the view is alive.
        m.pull(3);
        assert_eq!(m.data(), b"load");
        assert_eq!(&view[..], b"payload", "view is immutable under pull");
        drop(view);
        assert_eq!(m.storage_refs(), 1);
    }

    #[test]
    #[should_panic(expected = "aliased by a live Bytes view")]
    fn mutation_under_live_view_panics() {
        let mut m = Mbuf::standalone();
        m.extend_from_slice(b"data");
        let _view = m.as_bytes();
        m.extend_from_slice(b"more");
    }
}
