//! Property tests (ix-testkit harness) for the memory manager: the pool
//! never over-allocates, recycling is exact, and mbuf headroom/tailroom
//! arithmetic matches a byte-level reference model under arbitrary
//! prepend/append/pull/truncate programs.

use ix_mempool::{Mbuf, MbufPool, ObjectPool, MBUF_DATA_SIZE, MBUF_DEFAULT_HEADROOM};
use ix_testkit::prelude::*;

/// One step of an mbuf manipulation program. Sizes are raw draws; the
/// interpreter clamps them against the current head/tail room so every
/// program is valid (panics stay covered by unit tests).
#[derive(Debug, Clone)]
enum MbufOp {
    Extend(usize),
    Prepend(usize),
    Append(usize),
    Pull(usize),
    Truncate(usize),
}

fn mbuf_op() -> impl Strategy<Value = MbufOp> {
    prop_oneof![
        (0usize..600).prop_map(MbufOp::Extend),
        (0usize..80).prop_map(MbufOp::Prepend),
        (0usize..600).prop_map(MbufOp::Append),
        (0usize..600).prop_map(MbufOp::Pull),
        (0usize..2048).prop_map(MbufOp::Truncate),
    ]
}

props! {
    #![config(cases = 96)]

    /// The mbuf agrees with a plain `Vec<u8>` model of its data under
    /// arbitrary op programs, and headroom+len+tailroom always equals
    /// the fixed storage size.
    #[test]
    fn mbuf_matches_reference_model(
        ops in collection::vec(mbuf_op(), 0..60),
        fill in any::<u8>(),
    ) {
        let mut m = Mbuf::standalone();
        let mut model: Vec<u8> = Vec::new();
        let mut next = fill;
        for op in ops {
            match op {
                MbufOp::Extend(n) => {
                    let n = n.min(m.tailroom());
                    let chunk: Vec<u8> = (0..n)
                        .map(|_| {
                            next = next.wrapping_add(1);
                            next
                        })
                        .collect();
                    m.extend_from_slice(&chunk);
                    model.extend_from_slice(&chunk);
                }
                MbufOp::Prepend(n) => {
                    let n = n.min(m.headroom());
                    let slot = m.prepend(n);
                    for b in slot.iter_mut() {
                        next = next.wrapping_add(1);
                        *b = next;
                    }
                    let mut front = m.data()[..n].to_vec();
                    front.extend_from_slice(&model);
                    model = front;
                }
                MbufOp::Append(n) => {
                    let n = n.min(m.tailroom());
                    let slot = m.append(n);
                    for b in slot.iter_mut() {
                        next = next.wrapping_add(1);
                        *b = next;
                    }
                    let start = model.len();
                    model.extend_from_slice(&m.data()[start..start + n]);
                }
                MbufOp::Pull(n) => {
                    let n = n.min(m.len());
                    m.pull(n);
                    model.drain(..n);
                }
                MbufOp::Truncate(n) => {
                    if n <= m.len() {
                        m.truncate(n);
                        model.truncate(n);
                    }
                }
            }
            prop_assert_eq!(m.data(), &model[..]);
            prop_assert_eq!(m.len(), model.len());
            prop_assert_eq!(
                m.headroom() + m.len() + m.tailroom(),
                MBUF_DATA_SIZE,
                "storage accounting drifted"
            );
        }
    }

    /// Pool accounting under arbitrary alloc/free interleavings: never
    /// more than `capacity` mbufs outstanding, every free is recycled,
    /// and a drained pool refuses cleanly instead of growing.
    #[test]
    fn pool_alloc_free_accounting(
        capacity in 1usize..48,
        program in collection::vec(any::<bool>(), 1..200),
    ) {
        let mut pool = MbufPool::new(capacity);
        let mut held: Vec<Mbuf> = Vec::new();
        for alloc in program {
            if alloc {
                match pool.alloc() {
                    Some(m) => {
                        prop_assert!(held.len() < capacity, "over-allocated");
                        held.push(m);
                    }
                    None => prop_assert_eq!(held.len(), capacity, "refused early"),
                }
            } else if let Some(m) = held.pop() {
                drop(m); // Returns to the pool's free list.
            }
            prop_assert_eq!(pool.available(), capacity - held.len());
        }
        // Dropping everything restores full capacity.
        held.clear();
        prop_assert_eq!(pool.available(), capacity);
        let stats = pool.stats();
        prop_assert_eq!(stats.allocs, stats.frees, "every alloc returned");
        prop_assert_eq!(stats.outstanding, 0);
    }

    /// A fresh allocation always starts with the default headroom and no
    /// data, and `alloc_with` copies exactly the given bytes.
    #[test]
    fn alloc_with_copies_exactly(payload in collection::vec(any::<u8>(), 0..256)) {
        let mut pool = MbufPool::new(4);
        let plain = pool.alloc().expect("capacity");
        prop_assert_eq!(plain.len(), 0);
        prop_assert_eq!(plain.headroom(), MBUF_DEFAULT_HEADROOM);
        drop(plain);
        let filled = pool.alloc_with(&payload).expect("capacity");
        prop_assert_eq!(filled.data(), &payload[..]);
    }

    /// `ObjectPool` take/put round-trips objects and tracks outstanding
    /// counts exactly.
    #[test]
    fn object_pool_accounting(
        capacity in 1usize..32,
        takes in 0usize..64,
    ) {
        let mut pool: ObjectPool<Vec<u8>> = ObjectPool::new(capacity, Vec::new);
        let mut held = Vec::new();
        for _ in 0..takes {
            match pool.take() {
                Some(v) => held.push(v),
                None => break,
            }
        }
        prop_assert_eq!(held.len(), takes.min(capacity));
        prop_assert_eq!(pool.outstanding(), held.len());
        let n = held.len();
        for v in held.drain(..) {
            pool.put(v);
        }
        prop_assert_eq!(pool.outstanding(), 0);
        let _ = n;
    }
}
