//! The dataplane API: batched system calls and event conditions
//! (Table 1 of the paper), and the application trait all three execution
//! models drive.
//!
//! The paper's API is asynchronous and batched: the application writes an
//! array of system calls, yields to the dataplane with `run_io`, and on
//! return finds the array overwritten with return codes plus a second
//! array of event conditions. [`UserCtx`] is that pair of arrays;
//! [`IxApp::on_cycle`] is one `run_io` round trip as seen from user code.

use ix_testkit::Bytes;
use ix_net::ip::Ipv4Addr;
use ix_tcp::{FlowId, StackError, TcpEvent};

/// Event conditions are exactly the stack's upcall events — the dataplane
/// copies them into the user-visible array unchanged (zero-copy for
/// `recv`: the mbuf is mapped read-only into the application).
pub type EventCond = TcpEvent;

/// A batched system call (Table 1).
///
/// `Sendv` carries a scatter-gather array of reference-counted buffers:
/// the zero-copy transmit contract is that the application must keep the
/// contents immutable until the peer acknowledges them (§3), which
/// `Bytes`' shared immutability models directly.
#[derive(Debug, Clone)]
pub enum Syscall {
    /// Open a connection to `dst`; `cookie` identifies it in events.
    Connect {
        /// Opaque user value returned in `connected`/`recv`/... events.
        cookie: u64,
        /// Destination address.
        dst_ip: Ipv4Addr,
        /// Destination port.
        dst_port: u16,
    },
    /// Accept a knocked connection, attaching a cookie.
    Accept {
        /// The flow handle from the `knock` event.
        handle: FlowId,
        /// Opaque user value for subsequent events.
        cookie: u64,
    },
    /// Transmit a scatter-gather array of data.
    Sendv {
        /// The flow handle.
        handle: FlowId,
        /// Scatter-gather list; entries are immutable shared buffers.
        sg: Vec<Bytes>,
    },
    /// Advance the receive window and free message buffers.
    RecvDone {
        /// The flow handle.
        handle: FlowId,
        /// Bytes consumed.
        bytes: u32,
    },
    /// Close or reject a connection (FIN path).
    Close {
        /// The flow handle.
        handle: FlowId,
    },
    /// Abortive close (RST), as the §5.3 benchmarks use. The original
    /// exposes this through `close` flags; a separate variant is clearer.
    Abort {
        /// The flow handle.
        handle: FlowId,
    },
}

/// The return code the dataplane writes back over a batched system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallResult {
    /// `connect` accepted; the eventual outcome arrives as a `connected`
    /// event carrying the cookie.
    InProgress,
    /// `sendv`: how many bytes the TCP stack accepted, as constrained by
    /// the sliding window (§4.3: "It returns the number of bytes that
    /// were accepted and sent by the TCP stack").
    Sent(u32),
    /// Success with nothing else to report.
    Ok,
    /// The call failed validation or execution.
    Err(StackError),
}

/// One run-to-completion cycle's user-space view: consumed event
/// conditions in, batched system calls out.
#[derive(Debug, Default)]
pub struct UserCtx {
    /// Current virtual time, ns.
    pub now_ns: u64,
    /// Event conditions produced by the dataplane this cycle.
    pub events: Vec<EventCond>,
    /// Return codes for the *previous* cycle's syscall batch, in order.
    pub results: Vec<SyscallResult>,
    /// The syscall batch to submit on yield.
    pub syscalls: Vec<Syscall>,
    /// User-mode CPU consumed by the application this cycle, ns. The
    /// application model charges its compute here; the engine bills it
    /// to the user domain (this is how the §5.5 kernel/user split is
    /// measured).
    pub user_ns: u64,
}

impl UserCtx {
    /// Charges `ns` of application CPU time to this cycle.
    pub fn charge(&mut self, ns: u64) {
        self.user_ns += ns;
    }

    /// Queues a syscall and returns its index in the batch (its result
    /// arrives at the same index next cycle).
    pub fn syscall(&mut self, s: Syscall) -> usize {
        self.syscalls.push(s);
        self.syscalls.len() - 1
    }
}

/// An application running in the dataplane's user domain (ring 3 in the
/// real system).
///
/// Implementations must be engine-agnostic: the IX dataplane, the Linux
/// model, and the mTCP model all drive this trait, so one benchmark
/// binary runs on all three systems (as in §5).
pub trait IxApp {
    /// One cycle: consume `ctx.events`/`ctx.results`, emit
    /// `ctx.syscalls`, charge `ctx.user_ns`.
    fn on_cycle(&mut self, ctx: &mut UserCtx);

    /// True when the app wants another cycle scheduled even with no
    /// network input (e.g. an open-loop load generator with due
    /// arrivals). `now_ns` lets pacing apps answer precisely.
    fn wants_cycle(&self, _now_ns: u64) -> bool {
        false
    }

    /// If the app knows when it next needs to run (open-loop pacing),
    /// the wake-up deadline in ns; engines arm a timer for it.
    fn next_deadline_ns(&self) -> Option<u64> {
        None
    }

    /// Downcast support for tests and benchmark harnesses that need the
    /// concrete application type back from the engine.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_batches_syscalls_in_order() {
        let mut ctx = UserCtx::default();
        let i0 = ctx.syscall(Syscall::Close {
            handle: FlowId { key: 1, gen: 1 },
        });
        let i1 = ctx.syscall(Syscall::RecvDone {
            handle: FlowId { key: 1, gen: 1 },
            bytes: 64,
        });
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(ctx.syscalls.len(), 2);
    }

    #[test]
    fn charge_accumulates() {
        let mut ctx = UserCtx::default();
        ctx.charge(100);
        ctx.charge(250);
        assert_eq!(ctx.user_ns, 350);
    }

    #[test]
    fn sendv_scatter_gather_is_cheap_to_clone() {
        let big = Bytes::from(vec![0u8; 1 << 20]);
        let s = Syscall::Sendv {
            handle: FlowId { key: 9, gen: 1 },
            sg: vec![big.clone(), big.slice(0..100)],
        };
        // Cloning the syscall clones refcounts, not megabytes.
        let s2 = s.clone();
        match (s, s2) {
            (Syscall::Sendv { sg: a, .. }, Syscall::Sendv { sg: b, .. }) => {
                assert_eq!(a[0].as_ptr(), b[0].as_ptr(), "shared storage");
            }
            _ => unreachable!(),
        }
    }
}
