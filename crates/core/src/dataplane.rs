//! Elastic threads and the run-to-completion cycle (Fig 1b).
//!
//! Each elastic thread makes exclusive use of one hardware thread and one
//! NIC queue pair per port (§4.1). An iteration executes the six steps of
//! Fig 1b:
//!
//! 1. poll the RX descriptor ring(s) and replenish buffer descriptors
//!    (with ≥32-descriptor PCIe doorbell coalescing, §6);
//! 2. run a *bounded* batch of packets (≤ B) through the TCP/IP stack,
//!    generating event conditions;
//! 3. cross into user mode and let the application consume all event
//!    conditions and emit batched system calls;
//! 4. process the batched system calls;
//! 5. run kernel timers;
//! 6. place outgoing frames on the TX descriptor ring and ring the
//!    doorbell; reclaim completed descriptors.
//!
//! Batching is *adaptive*: the batch is whatever has accumulated, up to
//! B — the thread never waits to fill a batch (§3), so at low load the
//! batch size is 1 and latency is minimal, while under load batches grow
//! and amortize the fixed costs. All CPU work is charged to the thread's
//! core, split between the kernel (dataplane) and user domains — the
//! measurement behind the §5.5 "75% kernel time on Linux vs <10% on IX"
//! result.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ix_nic::cache::DdioModel;
use ix_nic::host::{CoreRef, CpuDomain};
use ix_nic::nic::{Nic, NicRef, QueueId};
use ix_sim::{Nanos, Simulator};
use ix_tcp::{StackConfig, TcpShard};

use crate::api::{IxApp, Syscall, SyscallResult, UserCtx};
use crate::params::CostParams;

/// Counters for one elastic thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataplaneStats {
    /// Run-to-completion iterations executed.
    pub iterations: u64,
    /// Packets polled from RX rings.
    pub rx_packets: u64,
    /// Frames pushed to TX rings.
    pub tx_packets: u64,
    /// Event conditions delivered to the application.
    pub events: u64,
    /// Batched system calls processed.
    pub syscalls: u64,
    /// Iterations whose batch hit the bound B.
    pub full_batches: u64,
    /// TX frames dropped because the ring was full.
    pub tx_ring_drops: u64,
    /// Sum of batch sizes (for average batch size).
    pub batch_sum: u64,
    /// Cycles in which a per-iteration scratch buffer (RX frame batch,
    /// TX staging, event/result/syscall vectors) had to grow. Warm-up
    /// cycles establish the high-water capacities; steady state is
    /// pinned at 0 growths per cycle by `dataplane_e2e`.
    pub scratch_allocs: u64,
}

/// One elastic thread: a hardware thread + NIC queue(s) + a TCP shard +
/// the application's per-thread event loop.
pub struct ElasticThread {
    /// Thread index within its dataplane.
    pub id: usize,
    cost: CostParams,
    /// The TCP/IP shard owned by this thread.
    pub shard: TcpShard,
    app: Box<dyn IxApp>,
    /// `(nic, queue)` pairs served by this thread (one per port).
    queues: Vec<(NicRef, QueueId)>,
    core: CoreRef,
    ddio: Option<DdioModel>,
    /// Host-wide connection count (shared across threads) for the DDIO
    /// working-set model.
    host_conns: Rc<Cell<u64>>,
    my_conns_last: u64,
    pending_results: Vec<SyscallResult>,
    iteration_scheduled: bool,
    idle_wake: Option<ix_sim::EventId>,
    /// Round-robin cursor for TX queue selection.
    tx_cursor: usize,
    /// Descriptors consumed since the last replenish doorbell.
    rx_since_replenish: Vec<usize>,
    /// Set by the control plane to quiesce this thread (revocation).
    pub parked: bool,
    /// Reusable per-cycle scratch: the polled RX frame batch.
    rx_scratch: Vec<ix_mempool::Mbuf>,
    /// Reusable per-cycle scratch: TX frames routed to their queues,
    /// handed to the commit closure and returned after the drain.
    out_scratch: Vec<(NicRef, QueueId, ix_mempool::Mbuf)>,
    /// Capacity recycled into the shard's TX queue each cycle.
    tx_scratch: Vec<ix_mempool::Mbuf>,
    /// Capacity recycled into the shard's event queue each cycle.
    events_scratch: Vec<ix_tcp::TcpEvent>,
    /// Capacity recycled into `pending_results` each cycle.
    results_scratch: Vec<SyscallResult>,
    /// Capacity recycled into the user context's syscall batch.
    syscalls_scratch: Vec<Syscall>,
    /// Reusable dedup list of NICs kicked by the commit closure.
    kicked_scratch: Vec<NicRef>,
    /// High-water sum of scratch capacities; growth past it counts one
    /// `scratch_allocs` (ping-ponging buffers of unequal capacity stay
    /// under the mark, so only real reallocation registers).
    scratch_cap_hwm: usize,
    /// Counters.
    pub stats: DataplaneStats,
}

/// Shared handle to an elastic thread.
pub type ThreadRef = Rc<RefCell<ElasticThread>>;

impl ElasticThread {
    /// Creates a thread; [`Dataplane::launch`] wires it to the NIC.
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: usize,
        cost: CostParams,
        shard: TcpShard,
        app: Box<dyn IxApp>,
        queues: Vec<(NicRef, QueueId)>,
        core: CoreRef,
        ddio: Option<DdioModel>,
        host_conns: Rc<Cell<u64>>,
    ) -> ElasticThread {
        let nq = queues.len();
        ElasticThread {
            id,
            cost,
            shard,
            app,
            queues,
            core,
            ddio,
            host_conns,
            my_conns_last: 0,
            pending_results: Vec::new(),
            iteration_scheduled: false,
            idle_wake: None,
            tx_cursor: 0,
            rx_since_replenish: vec![0; nq],
            parked: false,
            rx_scratch: Vec::new(),
            out_scratch: Vec::new(),
            tx_scratch: Vec::new(),
            events_scratch: Vec::new(),
            results_scratch: Vec::new(),
            syscalls_scratch: Vec::new(),
            kicked_scratch: Vec::new(),
            scratch_cap_hwm: 0,
            stats: DataplaneStats::default(),
        }
    }

    /// Mutable access to the application (for test/bench inspection).
    pub fn app_mut(&mut self) -> &mut dyn IxApp {
        self.app.as_mut()
    }

    /// The `(nic, queue)` pairs this thread serves (control-plane view).
    pub fn queues(&self) -> &[(NicRef, QueueId)] {
        &self.queues
    }

    /// Schedules an iteration at the earliest instant the core is free.
    /// Idempotent: a pending iteration absorbs later triggers.
    pub fn schedule_iteration(th: &ThreadRef, sim: &mut Simulator) {
        let start = {
            let mut t = th.borrow_mut();
            if t.iteration_scheduled || t.parked {
                return;
            }
            t.iteration_scheduled = true;
            if let Some(w) = t.idle_wake.take() {
                sim.cancel(w);
            }
            let busy = t.core.borrow().busy_until;
            sim.now().max(busy)
        };
        let th = th.clone();
        sim.schedule_at(start, move |sim| ElasticThread::run_iteration(&th, sim));
    }

    /// One run-to-completion cycle.
    fn run_iteration(th: &ThreadRef, sim: &mut Simulator) {
        let now = sim.now();
        let now_ns = now.as_nanos();
        let mut t = th.borrow_mut();
        t.iteration_scheduled = false;
        if t.parked {
            return;
        }
        t.stats.iterations += 1;
        // Fixed per-iteration work and per-packet work accumulate
        // separately: per-packet work gets the cold-batch scaling.
        let mut kernel: u64 = t.cost.poll_ns;
        let mut kernel_pkt: u64 = 0;

        // (1) Poll RX rings, round-robin across ports, bounded by B.
        // Frames accumulate into the thread's reusable scratch batch.
        let bound = t.cost.batch_bound;
        let mut frames = std::mem::take(&mut t.rx_scratch);
        debug_assert!(frames.is_empty());
        let nq = t.queues.len();
        'poll: for round in 0.. {
            let mut any = false;
            for qi in 0..nq {
                if frames.len() >= bound {
                    break 'poll;
                }
                let (nic, q) = t.queues[qi].clone();
                // A hung RX queue (fault plane) stops draining: frames
                // stay in the ring until the window ends or the control
                // plane re-steers the flow groups away.
                if nic.borrow().rx_queue_hung(now_ns, q) {
                    continue;
                }
                let f = nic.borrow_mut().rx_ring(q).poll();
                if let Some(f) = f {
                    t.rx_since_replenish[qi] += 1;
                    frames.push(f);
                    any = true;
                }
            }
            if !any {
                break;
            }
            let _ = round;
        }
        let batch = frames.len();
        t.stats.batch_sum += batch as u64;
        if batch >= bound {
            t.stats.full_batches += 1;
        }
        t.stats.rx_packets += batch as u64;
        // Replenish descriptors with doorbell coalescing (§6).
        for qi in 0..nq {
            let pending = t.rx_since_replenish[qi];
            if pending >= t.cost.rx_replenish_batch || (pending > 0 && t.cost.rx_replenish_batch <= 1) {
                let (nic, q) = t.queues[qi].clone();
                nic.borrow_mut().rx_ring(q).replenish(pending);
                t.rx_since_replenish[qi] = 0;
                kernel += t.cost.pcie_doorbell_ns;
            }
        }

        // DDIO / connection working-set penalty (§5.4).
        let ddio_penalty = match (&t.ddio, t.cost.use_ddio_model) {
            (Some(m), true) => m.penalty_ns(t.host_conns.get()),
            _ => 0,
        };

        // (2) Protocol processing: the whole polled batch goes through
        // the stack in one call (the staged pipeline when `batch_rx` is
        // on, the per-frame path otherwise). Per-packet CPU cost is
        // charged identically either way.
        for f in &frames {
            kernel_pkt += t.cost.rx_cost(f.len()) + ddio_penalty;
        }
        t.shard.input_batch(now_ns, &mut frames);
        t.rx_scratch = frames; // drained; capacity retained

        // (3) User-mode application processing. The event/result/syscall
        // vectors ping-pong between the shard/thread and the user
        // context so steady-state cycles reallocate nothing.
        let recycled_events = std::mem::take(&mut t.events_scratch);
        let events = t.shard.take_events_swap(recycled_events);
        let recycled_results = std::mem::take(&mut t.results_scratch);
        let results = std::mem::replace(&mut t.pending_results, recycled_results);
        let run_app = !events.is_empty() || !results.is_empty() || t.app.wants_cycle(now_ns);
        let mut user: u64 = 0;
        if run_app {
            kernel += 2 * t.cost.vmx_transition_ns + t.cost.event_ns * events.len() as u64;
            t.stats.events += events.len() as u64;
            let mut ctx = UserCtx {
                now_ns,
                events,
                results,
                syscalls: std::mem::take(&mut t.syscalls_scratch),
                user_ns: 0,
            };
            t.app.on_cycle(&mut ctx);
            user += ctx.user_ns;

            // (4) Batched system calls.
            t.stats.syscalls += ctx.syscalls.len() as u64;
            for s in ctx.syscalls.drain(..) {
                kernel_pkt += t.cost.syscall_ns;
                let r = ElasticThread::dispatch(&mut t, now_ns, s);
                t.pending_results.push(r);
            }
            let UserCtx { mut events, mut results, syscalls, .. } = ctx;
            events.clear();
            results.clear();
            t.events_scratch = events;
            t.results_scratch = results;
            t.syscalls_scratch = syscalls;
        } else {
            // Nothing ran: hand the (empty) buffers straight back.
            t.events_scratch = events;
            t.results_scratch = results;
        }

        // (5) Kernel timers.
        kernel += t.cost.timer_pass_ns;
        t.shard.advance_timers(now_ns);

        // (6) Transmit: end-of-cycle ACKs reflect recv_done credits.
        t.shard.end_cycle(now_ns);
        let recycled_tx = std::mem::take(&mut t.tx_scratch);
        let mut tx = t.shard.take_tx_swap(recycled_tx);
        let mut out = std::mem::take(&mut t.out_scratch);
        debug_assert!(out.is_empty());
        for f in tx.drain(..) {
            kernel_pkt += t.cost.tx_cost(f.len());
            let (nic, q) = t.queues[t.tx_cursor % nq].clone();
            t.tx_cursor = t.tx_cursor.wrapping_add(1);
            out.push((nic, q, f));
        }
        t.tx_scratch = tx; // drained; capacity recycled into the shard
        if !out.is_empty() {
            kernel += t.cost.pcie_doorbell_ns;
        }

        // Update the host-wide connection count for the DDIO model.
        let fc = t.shard.flow_count() as u64;
        let prev = t.my_conns_last;
        // `host_conns` always includes this thread's previous count, so
        // subtract-then-add cannot underflow.
        t.host_conns.set(t.host_conns.get() - prev + fc);
        t.my_conns_last = fc;

        // Cold-batch scaling of the per-packet work (§3).
        let scale = 1.0 + t.cost.cold_batch_penalty / batch.max(1) as f64;
        kernel += (kernel_pkt as f64 * scale).round() as u64;
        // Charge the core: kernel then user (order does not matter for
        // the end time; the split feeds the §5.5 measurement).
        let mid = t.core.borrow_mut().run(now, Nanos(kernel), CpuDomain::Kernel);
        let end = t.core.borrow_mut().run(mid, Nanos(user), CpuDomain::User);
        t.stats.tx_packets += out.len() as u64;
        // Scratch-growth accounting: any reallocation this cycle pushed
        // the capacity sum past its high-water mark.
        let cap_now = t.rx_scratch.capacity()
            + out.capacity()
            + t.tx_scratch.capacity()
            + t.events_scratch.capacity()
            + t.results_scratch.capacity()
            + t.syscalls_scratch.capacity()
            + t.kicked_scratch.capacity()
            + t.pending_results.capacity();
        if cap_now > t.scratch_cap_hwm {
            t.stats.scratch_allocs += 1;
            t.scratch_cap_hwm = cap_now;
        }
        drop(t);

        // Outputs become visible at the end of the cycle.
        let th2 = th.clone();
        sim.schedule_at(end, move |sim| {
            let mut out = out;
            let mut kicked = {
                let mut t = th2.borrow_mut();
                let mut kicked = std::mem::take(&mut t.kicked_scratch);
                debug_assert!(kicked.is_empty());
                for (nic, q, f) in out.drain(..) {
                    if nic.borrow_mut().tx_ring(q).push(f).is_err() {
                        t.stats.tx_ring_drops += 1;
                    }
                    nic.borrow_mut().tx_ring(q).reclaim();
                    if !kicked.iter().any(|n| Rc::ptr_eq(n, &nic)) {
                        kicked.push(nic);
                    }
                }
                t.out_scratch = out; // drained; capacity retained
                kicked
            };
            for nic in kicked.drain(..) {
                Nic::kick_tx(&nic, sim);
            }
            th2.borrow_mut().kicked_scratch = kicked;
            ElasticThread::post_cycle(&th2, sim);
        });
    }

    /// After a cycle commits: either chain the next iteration (work is
    /// pending) or go quiescent and arm a timer wake-up.
    fn post_cycle(th: &ThreadRef, sim: &mut Simulator) {
        let (more, wake_in) = {
            let t = th.borrow();
            if t.parked {
                (false, None)
            } else {
                let now_ns = sim.now().as_nanos();
                let rx_pending = t.queues.iter().any(|(nic, q)| {
                    let mut n = nic.borrow_mut();
                    // Backlog on a hung queue cannot be drained by
                    // iterating; sleep and let the notify edge (or the
                    // watchdog) wake us instead of busy-spinning.
                    n.rx_ring(*q).pending() > 0 && !n.rx_queue_hung(now_ns, *q)
                });
                let more = rx_pending
                    || !t.shard.quiescent()
                    || t.app.wants_cycle(sim.now().as_nanos())
                    || !t.pending_results.is_empty();
                let mut wake: Option<u64> = t.shard.next_timer_ns();
                if let Some(d) = t.app.next_deadline_ns() {
                    let rel = d.saturating_sub(sim.now().as_nanos()).max(1);
                    wake = Some(wake.map_or(rel, |w| w.min(rel)));
                }
                (more, wake)
            }
        };
        if more {
            ElasticThread::schedule_iteration(th, sim);
        } else if let Some(ns) = wake_in {
            // Quiescent state: "hyperthread-friendly polling" — the wake
            // is free in virtual time; only real work costs CPU.
            let th2 = th.clone();
            let id = sim.schedule_in(Nanos(ns.max(1)), move |sim| {
                th2.borrow_mut().idle_wake = None;
                ElasticThread::schedule_iteration(&th2, sim);
            });
            th.borrow_mut().idle_wake = Some(id);
        }
    }

    /// Synchronously completes in-flight user-level work before the
    /// control plane parks this thread (the Exokernel-style revocation
    /// protocol of §4.1): pending syscall results are delivered, the
    /// application flushes its buffered writes into the TCP stack, and
    /// the produced frames are committed — so migration finds every byte
    /// inside the (migratable) protocol state rather than stranded in
    /// user space. Control-plane transitions are rare and coarse-grained
    /// (§4.4), so their CPU cost is not charged to the measured domains.
    pub(crate) fn drain_user_work(th: &ThreadRef, sim: &mut Simulator) {
        for _ in 0..32 {
            let (out, kick) = {
                let mut t = th.borrow_mut();
                let now_ns = sim.now().as_nanos();
                let events = t.shard.take_events();
                let results = std::mem::take(&mut t.pending_results);
                if events.is_empty() && results.is_empty() {
                    break;
                }
                let mut ctx = UserCtx {
                    now_ns,
                    events,
                    results,
                    syscalls: Vec::new(),
                    user_ns: 0,
                };
                t.app.on_cycle(&mut ctx);
                for s in ctx.syscalls {
                    let r = ElasticThread::dispatch(&mut t, now_ns, s);
                    t.pending_results.push(r);
                }
                t.shard.advance_timers(now_ns);
                t.shard.end_cycle(now_ns);
                let tx = t.shard.take_tx();
                let nq = t.queues.len();
                let mut out: Vec<(NicRef, QueueId, ix_mempool::Mbuf)> = Vec::new();
                for f in tx {
                    let (nic, q) = t.queues[t.tx_cursor % nq].clone();
                    t.tx_cursor = t.tx_cursor.wrapping_add(1);
                    out.push((nic, q, f));
                }
                (out, !t.queues.is_empty())
            };
            let mut kicked: Vec<NicRef> = Vec::new();
            for (nic, q, f) in out {
                let _ = nic.borrow_mut().tx_ring(q).push(f);
                nic.borrow_mut().tx_ring(q).reclaim();
                if !kicked.iter().any(|n| Rc::ptr_eq(n, &nic)) {
                    kicked.push(nic);
                }
            }
            if kick {
                for nic in kicked {
                    Nic::kick_tx(&nic, sim);
                }
            }
        }
    }

    /// Executes one validated system call against the shard. Validation
    /// failures return errors rather than corrupting state — the §4.5
    /// security property that "no sequence of batched system calls ...
    /// can be used to violate correct adherence to TCP".
    fn dispatch(t: &mut ElasticThread, now_ns: u64, s: Syscall) -> SyscallResult {
        match s {
            Syscall::Connect { cookie, dst_ip, dst_port } => {
                match t.shard.connect(now_ns, dst_ip, dst_port, cookie) {
                    Ok(_) => SyscallResult::InProgress,
                    Err(e) => SyscallResult::Err(e),
                }
            }
            Syscall::Accept { handle, cookie } => match t.shard.accept(handle, cookie) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            },
            Syscall::Sendv { handle, sg } => {
                let mut total: u32 = 0;
                for chunk in &sg {
                    // Zero-copy: the stack's retransmit queue slices the
                    // app's own refcounted block (`sendv` semantics, §3 —
                    // the buffer stays shared and immutable until acked).
                    match t.shard.send_bytes(now_ns, handle, chunk) {
                        Ok(n) => {
                            total += n as u32;
                            if n < chunk.len() {
                                break; // Window exhausted: partial send.
                            }
                        }
                        Err(e) => {
                            if total == 0 {
                                return SyscallResult::Err(e);
                            }
                            break;
                        }
                    }
                }
                SyscallResult::Sent(total)
            }
            Syscall::RecvDone { handle, bytes } => {
                match t.shard.recv_done(now_ns, handle, bytes) {
                    Ok(()) => SyscallResult::Ok,
                    Err(e) => SyscallResult::Err(e),
                }
            }
            Syscall::Close { handle } => match t.shard.close(now_ns, handle) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            },
            Syscall::Abort { handle } => match t.shard.abort(now_ns, handle) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            },
        }
    }
}

impl std::fmt::Debug for ElasticThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticThread")
            .field("id", &self.id)
            .field("stats", &self.stats)
            .finish()
    }
}

/// A dataplane: one application, N elastic threads on N hardware threads
/// (§4.1: "Each IX dataplane supports a single, multithreaded
/// application").
pub struct Dataplane {
    /// The elastic threads.
    pub threads: Vec<ThreadRef>,
    /// Host-wide live connection count (for the DDIO model and stats).
    pub host_conns: Rc<Cell<u64>>,
}

impl Dataplane {
    /// Launches a dataplane on `host`, with one elastic thread per entry
    /// of `cores`; thread *i* serves RSS queue *i* of every port of the
    /// host and runs the application built by `app_factory(i)`.
    ///
    /// `listen_port`, if set, is opened on every thread (flow-consistent
    /// hashing keeps each connection on one thread).
    pub fn launch(
        sim: &mut Simulator,
        host: &ix_nic::host::Host,
        n_threads: usize,
        cost: CostParams,
        stack_cfg: StackConfig,
        listen_port: Option<u16>,
        mut app_factory: impl FnMut(usize) -> Box<dyn IxApp>,
    ) -> Dataplane {
        assert!(n_threads <= host.cores.len(), "not enough hardware threads");
        let n_queues = host.nics[0].borrow().queues();
        assert!(n_threads <= n_queues, "not enough NIC queues");
        let host_conns = Rc::new(Cell::new(0u64));
        let ddio = DdioModel::new(host.nics[0].borrow().params());
        // Restrict RSS to the queues that have elastic threads behind
        // them: redirection entry i -> queue (i % n_threads).
        for nic in &host.nics {
            nic.borrow_mut()
                .set_redirection((0..128).map(|i| i % n_threads).collect());
        }
        let mut threads = Vec::with_capacity(n_threads);
        for i in 0..n_threads {
            let mut shard = TcpShard::new(stack_cfg.clone(), host.ip, host.mac);
            if let Some(p) = listen_port {
                shard.listen(p);
            }
            // RSS steering oracle for outbound connections (§4.4): the
            // reply arrives on the queue the local NIC's RSS assigns.
            let nic0 = host.nics[0].clone();
            let local_ip = host.ip;
            shard.set_steering(
                i,
                Rc::new(move |remote_ip, remote_port, local_port| {
                    nic0.borrow()
                        .queue_for_flow(remote_ip, local_ip, remote_port, local_port)
                }),
            );
            let queues: Vec<(NicRef, QueueId)> =
                host.nics.iter().map(|n| (n.clone(), i)).collect();
            let th = Rc::new(RefCell::new(ElasticThread::new(
                i,
                cost.clone(),
                shard,
                app_factory(i),
                queues.clone(),
                host.cores[i].clone(),
                Some(ddio.clone()),
                host_conns.clone(),
            )));
            // RX notify: wake the thread when a frame lands on its
            // queue. Weak capture: the NIC must not keep the engine (and
            // its memory pools) alive — the notify edge would otherwise
            // close an Rc cycle through the thread's queue list.
            for (nic, q) in &queues {
                let th2 = Rc::downgrade(&th);
                nic.borrow_mut().set_notify(
                    *q,
                    Rc::new(move |sim: &mut Simulator, _q| {
                        if let Some(th) = th2.upgrade() {
                            ElasticThread::schedule_iteration(&th, sim);
                        }
                    }),
                );
            }
            threads.push(th);
        }
        // Kick every thread once so pacing apps (load generators) start.
        for th in &threads {
            ElasticThread::schedule_iteration(th, sim);
        }
        Dataplane { threads, host_conns }
    }

    /// Seeds the ARP tables of every thread (fabric bring-up helper).
    pub fn seed_arp(&self, ip: ix_net::Ipv4Addr, mac: ix_net::MacAddr) {
        for th in &self.threads {
            th.borrow_mut().shard.arp_seed(ip, mac);
        }
    }

    /// Aggregated statistics over all elastic threads.
    pub fn stats(&self) -> DataplaneStats {
        let mut s = DataplaneStats::default();
        for th in &self.threads {
            let t = th.borrow();
            s.iterations += t.stats.iterations;
            s.rx_packets += t.stats.rx_packets;
            s.tx_packets += t.stats.tx_packets;
            s.events += t.stats.events;
            s.syscalls += t.stats.syscalls;
            s.full_batches += t.stats.full_batches;
            s.tx_ring_drops += t.stats.tx_ring_drops;
            s.batch_sum += t.stats.batch_sum;
            s.scratch_allocs += t.stats.scratch_allocs;
        }
        s
    }

    /// Aggregated mbuf-pool churn (allocs/frees/exhaustions, outstanding
    /// and peak) over every elastic thread's shard pool.
    pub fn mbuf_stats(&self) -> ix_mempool::PoolStats {
        let mut agg = ix_mempool::PoolStats::default();
        for th in &self.threads {
            let p = th.borrow().shard.pool_stats();
            agg.allocs += p.allocs;
            agg.frees += p.frees;
            agg.exhausted += p.exhausted;
            agg.outstanding += p.outstanding;
            agg.peak_outstanding += p.peak_outstanding;
        }
        agg
    }

    /// Total kernel (dataplane) and user CPU nanoseconds across threads.
    pub fn cpu_split(&self) -> (u64, u64) {
        let mut k = 0;
        let mut u = 0;
        for th in &self.threads {
            let t = th.borrow();
            let c = t.core.borrow();
            k += c.kernel_ns;
            u += c.user_ns;
        }
        (k, u)
    }

    /// Pokes every thread (e.g. after enqueuing external work).
    pub fn kick(&self, sim: &mut Simulator) {
        for th in &self.threads {
            ElasticThread::schedule_iteration(th, sim);
        }
    }
}
