//! The IX dataplane operating system — the paper's primary contribution.
//!
//! IX separates the **control plane** (a full Linux kernel plus the IXCP
//! policy daemon; here [`ixcp`]) from per-application **dataplanes**:
//! protected, single-address-space library OSes that run the TCP/IP stack
//! and the application on dedicated hardware threads with dedicated NIC
//! queues. This crate implements the dataplane architecture of §3–§4:
//!
//! * [`api`] — the native, zero-copy syscall / event-condition interface
//!   of Table 1 (`connect`, `accept`, `sendv`, `recv_done`, `close`; and
//!   `knock`, `connected`, `recv`, `sent`, `dead`), plus the protection
//!   model's syscall validation.
//! * [`dataplane`] — elastic threads running the Fig 1b run-to-completion
//!   cycle with adaptive, bounded batching; per-thread memory pools,
//!   queues, and timers; VMX-transition cost accounting; CPU-time split
//!   between dataplane ("kernel") and application ("user") domains.
//! * [`libix`] — the user-level `libix` library: a libevent-like
//!   event-loop API with transmit coalescing and flow-control-aware
//!   buffering (§4.3), so legacy-style applications port easily.
//! * [`ixcp`] — the control plane: coarse-grained allocation of cores and
//!   NIC queues to dataplanes, elastic-thread addition/revocation with
//!   RSS flow-group migration (§4.4), and queue-depth monitoring.
//! * [`rcu`] — read-copy-update for the one shared dataplane structure,
//!   the ARP table: coherence-free reads, quiescent-period reclamation
//!   tied to run-to-completion cycle boundaries (§4.4).
//! * [`params`] — the calibrated CPU cost model (what replaces the Xeon
//!   E5-2665 of the testbed).
//!
//! The execution substrate (cores, NICs, switch, virtual time) comes from
//! [`ix_nic`] and [`ix_sim`]; the protocol logic from [`ix_tcp`]. The
//! Linux and mTCP baselines in `ix-baselines` drive the *same*
//! application trait ([`api::IxApp`]) so every experiment runs identical
//! application code on all three systems, as §5 does.

pub mod api;
pub mod dataplane;
pub mod ixcp;
pub mod libix;
pub mod params;
pub mod rcu;

pub use api::{EventCond, IxApp, Syscall, SyscallResult, UserCtx};
pub use dataplane::{Dataplane, DataplaneStats, ElasticThread};
pub use ixcp::{
    start_elastic_controller, start_queue_watchdog, start_queue_watchdog_with_health, ControlPlane,
    DataplaneId, ElasticConfig, ElasticRef, ElasticStats, FilterControl, WatchdogHealth,
    WatchdogRef, WatchdogStats,
};
pub use libix::{ConnCtx, Libix, LibixHandler};
pub use params::CostParams;
pub use rcu::Rcu;
