//! Read-copy-update for shared dataplane structures (§4.4).
//!
//! IX keeps almost everything per-thread; the ARP table is the notable
//! shared structure, "protected by RCU locks ... RCU objects are garbage
//! collected after a quiescent period that spans the time it takes each
//! elastic thread to finish a run to completion cycle."
//!
//! [`Rcu`] reproduces those semantics in simulation form: readers take
//! reference-counted snapshots (a coherence-free read in the real
//! system), writers install new versions, and retired versions are
//! reclaimed only after every registered reader has passed a quiescent
//! point (its cycle boundary) at or after the retirement epoch.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A reader registration handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaderId(usize);

/// An RCU-protected value.
#[derive(Debug)]
pub struct Rcu<T> {
    current: RefCell<Rc<T>>,
    /// Global epoch, bumped on every update.
    epoch: Cell<u64>,
    /// Last epoch at which each reader passed a quiescent point.
    readers: RefCell<Vec<u64>>,
    /// Versions awaiting reclamation: `(retired_at_epoch, value)`.
    retired: RefCell<Vec<(u64, Rc<T>)>>,
}

impl<T> Rcu<T> {
    /// Creates an RCU cell with an initial value.
    pub fn new(value: T) -> Rcu<T> {
        Rcu {
            current: RefCell::new(Rc::new(value)),
            epoch: Cell::new(0),
            readers: RefCell::new(Vec::new()),
            retired: RefCell::new(Vec::new()),
        }
    }

    /// Registers a reader (one per elastic thread).
    pub fn register_reader(&self) -> ReaderId {
        let mut r = self.readers.borrow_mut();
        r.push(self.epoch.get());
        ReaderId(r.len() - 1)
    }

    /// Takes a snapshot — the coherence-free common-case read.
    pub fn read(&self) -> Rc<T> {
        self.current.borrow().clone()
    }

    /// Installs a new version computed from the current one; the old
    /// version is retired, not freed (readers may still hold it).
    pub fn update(&self, f: impl FnOnce(&T) -> T) {
        let new = {
            let cur = self.current.borrow();
            Rc::new(f(&cur))
        };
        let old = std::mem::replace(&mut *self.current.borrow_mut(), new);
        let e = self.epoch.get() + 1;
        self.epoch.set(e);
        self.retired.borrow_mut().push((e, old));
    }

    /// A reader declares a quiescent point (end of its run-to-completion
    /// cycle): it holds no snapshot from before this call.
    pub fn quiescent(&self, id: ReaderId) {
        self.readers.borrow_mut()[id.0] = self.epoch.get();
    }

    /// Reclaims retired versions all readers have quiesced past.
    /// Returns how many versions were freed.
    pub fn reclaim(&self) -> usize {
        let min_epoch = {
            let r = self.readers.borrow();
            r.iter().copied().min().unwrap_or(self.epoch.get())
        };
        let mut retired = self.retired.borrow_mut();
        let before = retired.len();
        retired.retain(|(e, _)| *e > min_epoch);
        before - retired.len()
    }

    /// Number of retired-but-unreclaimed versions (for tests/metrics).
    pub fn retired_len(&self) -> usize {
        self.retired.borrow().len()
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sees_latest() {
        let rcu = Rcu::new(1u32);
        assert_eq!(*rcu.read(), 1);
        rcu.update(|v| v + 10);
        assert_eq!(*rcu.read(), 11);
    }

    #[test]
    fn old_snapshot_survives_update() {
        let rcu = Rcu::new(vec![1, 2, 3]);
        let snap = rcu.read();
        rcu.update(|_| vec![9]);
        assert_eq!(*snap, vec![1, 2, 3], "reader's view is stable");
        assert_eq!(*rcu.read(), vec![9]);
    }

    #[test]
    fn reclaim_waits_for_all_readers() {
        let rcu = Rcu::new(0u32);
        let r1 = rcu.register_reader();
        let r2 = rcu.register_reader();
        rcu.update(|v| v + 1);
        assert_eq!(rcu.retired_len(), 1);
        // Nobody has quiesced since the update: nothing reclaimable.
        assert_eq!(rcu.reclaim(), 0);
        rcu.quiescent(r1);
        assert_eq!(rcu.reclaim(), 0, "r2 still outstanding");
        rcu.quiescent(r2);
        assert_eq!(rcu.reclaim(), 1, "all readers quiesced");
        assert_eq!(rcu.retired_len(), 0);
    }

    #[test]
    fn multiple_versions_reclaimed_in_epochs() {
        let rcu = Rcu::new(0u32);
        let r = rcu.register_reader();
        rcu.update(|v| v + 1); // epoch 1
        rcu.quiescent(r);
        rcu.update(|v| v + 1); // epoch 2
        assert_eq!(rcu.retired_len(), 2);
        // Reader quiesced at epoch 1: only the version retired at 1 frees.
        assert_eq!(rcu.reclaim(), 1);
        rcu.quiescent(r);
        assert_eq!(rcu.reclaim(), 1);
    }

    #[test]
    fn no_readers_reclaims_immediately() {
        let rcu = Rcu::new(0u32);
        rcu.update(|v| v + 1);
        assert_eq!(rcu.reclaim(), 1);
    }
}
