//! `libix`: the user-level library over the raw dataplane API (§4.3).
//!
//! From the paper: *"We built a user-level library, called libix, which
//! abstracts away the complexity of our low-level API. It provides a
//! compatible programming model for legacy applications ... libix
//! automatically coalesces multiple write requests into single sendv
//! system calls during each batching round ... Coalescing also
//! facilitates transmit flow control because we can use the transmit
//! vector to keep track of outgoing data buffers and, if necessary,
//! reissue writes when the transmit window has more available space, as
//! notified by the sent event condition. Our buffer sizing policy is
//! currently very basic; we enforce a maximum pending send byte limit."*
//!
//! [`Libix`] implements exactly that: applications implement
//! [`LibixHandler`] (a libevent-flavoured callback interface), and
//! `Libix` turns it into an [`IxApp`], managing cookie→connection state,
//! write coalescing, partial-send reissue on `sent` events, and the
//! pending-byte cap.

use std::collections::hash_map::Entry;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::collections::VecDeque;

use ix_testkit::Bytes;
use ix_tcp::{DeadReason, FlowId};

use crate::api::{EventCond, IxApp, Syscall, SyscallResult, UserCtx};

/// Default cap on bytes buffered per connection awaiting window space
/// (the §4.3 "maximum pending send byte limit"; sized to cover bulk
/// NetPIPE messages).
pub const DEFAULT_MAX_PENDING: usize = 2 * 1024 * 1024;

/// Per-connection user-level state.
#[derive(Debug)]
pub struct Conn {
    /// Kernel flow handle.
    pub handle: FlowId,
    /// libix cookie (also the key in the connection table).
    pub cookie: u64,
    /// Application tag (e.g. a request-state index).
    pub user: u64,
    /// Writes accepted by libix but not yet accepted by the TCP stack.
    pending: VecDeque<Bytes>,
    pending_bytes: usize,
    /// The stack currently has window space (last `sendv` was not
    /// truncated and no `sent` wait is outstanding).
    writable: bool,
    closing: bool,
}

impl Conn {
    /// Bytes buffered awaiting window space.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }
}

/// Actions a handler can take on a connection during a callback.
pub struct ConnCtx<'a> {
    /// The connection.
    pub conn: &'a mut Conn,
    actions: &'a mut Vec<Action>,
    max_pending: usize,
    /// Virtual time, ns.
    pub now_ns: u64,
    /// Accumulated application CPU charge for this cycle, ns.
    pub charge_ns: &'a mut u64,
}

#[derive(Debug)]
enum Action {
    Close(u64),
    Abort(u64),
    Connect { dst_ip: ix_net::Ipv4Addr, dst_port: u16, user: u64 },
    Write { cookie: u64, data: Bytes },
}

impl ConnCtx<'_> {
    /// Queues `data` for transmission; returns `false` (dropping nothing,
    /// accepting nothing) if the pending-byte cap would be exceeded —
    /// the paper's "maximum pending send byte limit".
    pub fn write(&mut self, data: Bytes) -> bool {
        if self.conn.pending_bytes + data.len() > self.max_pending {
            return false;
        }
        self.conn.pending_bytes += data.len();
        self.conn.pending.push_back(data);
        true
    }

    /// Requests a graceful close after pending data drains.
    pub fn close(&mut self) {
        self.conn.closing = true;
        if self.conn.pending.is_empty() {
            self.actions.push(Action::Close(self.conn.cookie));
        }
    }

    /// Hard-closes with RST immediately (the §5.3 benchmark pattern).
    pub fn abort(&mut self) {
        self.conn.closing = true;
        self.conn.pending.clear();
        self.conn.pending_bytes = 0;
        self.actions.push(Action::Abort(self.conn.cookie));
    }

    /// Charges application CPU time.
    pub fn charge(&mut self, ns: u64) {
        *self.charge_ns += ns;
    }

    /// Queues data on a *different* connection (by cookie); applied when
    /// actions run at the end of the cycle.
    pub fn write_to(&mut self, cookie: u64, data: Bytes) {
        self.actions.push(Action::Write { cookie, data });
    }
}

/// Global (per-thread) actions available outside connection callbacks.
pub struct LibixCtx<'a> {
    actions: &'a mut Vec<Action>,
    next_user: u64,
    /// Virtual time, ns.
    pub now_ns: u64,
    /// Accumulated application CPU charge, ns.
    pub charge_ns: &'a mut u64,
}

impl LibixCtx<'_> {
    /// Initiates an outbound connection; `user` tags it for callbacks.
    pub fn connect(&mut self, dst_ip: ix_net::Ipv4Addr, dst_port: u16, user: u64) {
        self.actions.push(Action::Connect { dst_ip, dst_port, user });
        self.next_user += 1;
    }

    /// Queues data on an existing connection from outside a connection
    /// callback (timer-paced senders); silently dropped if the cookie is
    /// gone or over the pending cap by the time actions apply.
    pub fn write_to(&mut self, cookie: u64, data: Bytes) {
        self.actions.push(Action::Write { cookie, data });
    }

    /// Charges application CPU time.
    pub fn charge(&mut self, ns: u64) {
        *self.charge_ns += ns;
    }
}

/// The libevent-flavoured callback interface applications implement.
///
/// All callbacks default to no-ops so simple apps implement only what
/// they need.
pub trait LibixHandler {
    /// A remote peer connected (already accepted by libix).
    fn on_accept(&mut self, _ctx: &mut ConnCtx<'_>) {}
    /// A local `connect` completed (`ok`) or failed.
    fn on_connected(&mut self, _ctx: &mut ConnCtx<'_>, _ok: bool) {}
    /// Data arrived: a refcounted view aliasing the receive mbuf's own
    /// storage, so the handler parses in place — and may retain O(1)
    /// sub-slices — without a copy. libix issues `recv_done` when the
    /// callback returns, matching the libevent compatibility layer's
    /// copy-free common case.
    fn on_data(&mut self, _ctx: &mut ConnCtx<'_>, _data: &Bytes) {}
    /// Previously written bytes were acknowledged / window opened.
    fn on_sent(&mut self, _ctx: &mut ConnCtx<'_>) {}
    /// The connection died (peer close, reset, or timeout). libix
    /// removes the connection after this returns; for `PeerFin` it also
    /// issues the local close unless the handler already did.
    fn on_dead(&mut self, _ctx: &mut ConnCtx<'_>, _reason: DeadReason) {}
    /// Called once per cycle before event dispatch; pacing apps (load
    /// generators) initiate connections and record time here.
    fn on_tick(&mut self, _ctx: &mut LibixCtx<'_>) {}
    /// See [`IxApp::wants_cycle`].
    fn wants_tick(&self, _now_ns: u64) -> bool {
        false
    }
    /// See [`IxApp::next_deadline_ns`].
    fn next_deadline_ns(&self) -> Option<u64> {
        None
    }
}

/// The adapter from [`LibixHandler`] to the raw dataplane [`IxApp`].
pub struct Libix<H: LibixHandler + 'static> {
    handler: H,
    /// Connection table. Unordered: per-cycle flush order (and
    /// therefore packet order) is kept deterministic by flushing the
    /// sorted `dirty` set, never by iterating this map.
    conns: HashMap<u64, Conn>,
    /// Cookies whose `(pending, writable)` state may have changed this
    /// cycle: the flush pass visits only these (in cookie order)
    /// instead of scanning every connection. At 250k mostly-idle
    /// connections that scan *was* the per-cycle cost.
    dirty: BTreeSet<u64>,
    /// Flow-handle → cookie map: events generated by the dataplane
    /// *before* an `accept`/`connect` cookie attachment executes carry a
    /// stale cookie (the knock/data race within one batch); resolving by
    /// flow handle recovers them.
    by_flow: HashMap<FlowId, u64>,
    next_cookie: u64,
    /// `(cookie, bytes_submitted)` per Sendv in last cycle's batch,
    /// aligned with the syscall indices, for result pairing.
    submitted: Vec<SubmitRecord>,
    max_pending: usize,
    /// Counters.
    pub stats: LibixStats,
}

#[derive(Debug, Clone, Copy)]
enum SubmitRecord {
    Sendv { cookie: u64, bytes: usize },
    Other,
}

/// libix-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LibixStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections opened.
    pub connected: u64,
    /// Bytes delivered to `on_data`.
    pub bytes_in: u64,
    /// Bytes fully accepted by the stack.
    pub bytes_out: u64,
    /// Writes rejected by the pending cap.
    pub cap_rejections: u64,
    /// Partial sendv results (window-limited) that were re-queued.
    pub partial_sends: u64,
    /// Connections adopted after control-plane flow migration.
    pub adopted: u64,
}

impl<H: LibixHandler + 'static> Libix<H> {
    /// Wraps a handler with the default pending cap.
    pub fn new(handler: H) -> Libix<H> {
        Libix {
            handler,
            conns: HashMap::new(),
            dirty: BTreeSet::new(),
            by_flow: HashMap::new(),
            next_cookie: 1,
            submitted: Vec::new(),
            max_pending: DEFAULT_MAX_PENDING,
            stats: LibixStats::default(),
        }
    }

    /// Access the wrapped handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the wrapped handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Live connection count.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Diagnostic dump of per-connection user-level state, in cookie
    /// order (sorted explicitly: the map itself is unordered).
    pub fn debug_conns(&self) -> Vec<String> {
        let mut conns: Vec<&Conn> = self.conns.values().collect();
        conns.sort_unstable_by_key(|c| c.cookie);
        conns
            .into_iter()
            .map(|c| {
                format!(
                    "cookie={} user={} handle=({:x},{}) pending={} writable={} closing={}",
                    c.cookie, c.user, c.handle.key, c.handle.gen, c.pending_bytes, c.writable, c.closing
                )
            })
            .collect()
    }

    fn flush_conn(conn: &mut Conn, out: &mut Vec<Syscall>, submitted: &mut Vec<SubmitRecord>) {
        if conn.pending.is_empty() || !conn.writable {
            return;
        }
        // Coalesce every pending buffer into ONE sendv (§4.3).
        let sg: Vec<Bytes> = conn.pending.iter().cloned().collect();
        let bytes: usize = sg.iter().map(Bytes::len).sum();
        out.push(Syscall::Sendv { handle: conn.handle, sg });
        submitted.push(SubmitRecord::Sendv { cookie: conn.cookie, bytes });
        // Optimistically mark unwritable until the result confirms full
        // acceptance; partial results re-arm on `sent`.
        conn.writable = false;
    }

    /// Resolves an event's connection: by cookie if known, else by flow
    /// handle (events raced ahead of the cookie attachment).
    fn resolve(&self, cookie: u64, flow: FlowId) -> Option<u64> {
        match self.conns.get(&cookie) {
            // The handle must match: a migrated flow can carry a cookie
            // that collides with an unrelated local connection (cookies
            // are per-thread counters).
            Some(c) if c.handle == flow => Some(cookie),
            _ => self.by_flow.get(&flow).copied(),
        }
    }

    fn apply_send_result(&mut self, cookie: u64, accepted: usize, submitted_bytes: usize) {
        let Some(conn) = self.conns.get_mut(&cookie) else { return };
        // Drop `accepted` bytes from the front of the pending queue.
        let mut left = accepted;
        while left > 0 {
            let front = conn.pending.front_mut().expect("accepted ≤ pending");
            if front.len() <= left {
                left -= front.len();
                conn.pending.pop_front();
            } else {
                let keep = front.slice(left..);
                *front = keep;
                left = 0;
            }
        }
        conn.pending_bytes -= accepted;
        self.stats.bytes_out += accepted as u64;
        if accepted == submitted_bytes {
            conn.writable = true;
        } else {
            self.stats.partial_sends += 1;
            // Window-limited: wait for a `sent` event to reissue.
        }
    }
}

impl<H: LibixHandler + 'static> IxApp for Libix<H> {
    fn on_cycle(&mut self, ctx: &mut UserCtx) {
        let mut actions: Vec<Action> = Vec::new();

        // Pair last cycle's syscall results.
        let records = std::mem::take(&mut self.submitted);
        for (i, rec) in records.into_iter().enumerate() {
            if let SubmitRecord::Sendv { cookie, bytes } = rec {
                let accepted = match ctx.results.get(i) {
                    Some(SyscallResult::Sent(n)) => *n as usize,
                    _ => 0,
                };
                self.apply_send_result(cookie, accepted, bytes);
            }
        }

        // Pacing hook.
        {
            let mut lctx = LibixCtx {
                actions: &mut actions,
                next_user: 0,
                now_ns: ctx.now_ns,
                charge_ns: &mut ctx.user_ns,
            };
            self.handler.on_tick(&mut lctx);
        }

        // Event dispatch.
        let events = std::mem::take(&mut ctx.events);
        for ev in events {
            match ev {
                EventCond::Knock { flow, .. } => {
                    let cookie = self.next_cookie;
                    self.next_cookie += 1;
                    ctx.syscalls.push(Syscall::Accept { handle: flow, cookie });
                    self.submitted.push(SubmitRecord::Other);
                    let conn = Conn {
                        handle: flow,
                        cookie,
                        user: 0,
                        pending: VecDeque::new(),
                        pending_bytes: 0,
                        writable: true,
                        closing: false,
                    };
                    self.conns.insert(cookie, conn);
                    self.by_flow.insert(flow, cookie);
                    self.stats.accepted += 1;
                    let conn = self.conns.get_mut(&cookie).expect("inserted");
                    let mut cctx = ConnCtx {
                        conn,
                        actions: &mut actions,
                        max_pending: self.max_pending,
                        now_ns: ctx.now_ns,
                        charge_ns: &mut ctx.user_ns,
                    };
                    self.handler.on_accept(&mut cctx);
                    self.dirty.insert(cookie);
                }
                EventCond::Connected { flow, cookie, ok } => {
                    if ok {
                        self.by_flow.insert(flow, cookie);
                    }
                    if let Entry::Occupied(mut e) = self.conns.entry(cookie) {
                        e.get_mut().handle = flow;
                        self.stats.connected += ok as u64;
                        let conn = e.get_mut();
                        let mut cctx = ConnCtx {
                            conn,
                            actions: &mut actions,
                            max_pending: self.max_pending,
                            now_ns: ctx.now_ns,
                            charge_ns: &mut ctx.user_ns,
                        };
                        self.handler.on_connected(&mut cctx, ok);
                        if !ok {
                            e.remove();
                        } else {
                            self.dirty.insert(cookie);
                        }
                    }
                }
                EventCond::Recv { cookie, flow, payload } => {
                    let n = payload.len() as u32;
                    let resolved = self.resolve(cookie, flow);
                    let cookie = if let Some(c) = resolved {
                        c
                    } else {
                        // A flow migrated here by the control plane
                        // (§4.4): in the real system the multithreaded
                        // application shares its address space, so the
                        // cookie still resolves; our per-thread app model
                        // instead *adopts* the connection, re-attaching a
                        // local cookie.
                        let cookie = self.next_cookie;
                        self.next_cookie += 1;
                        ctx.syscalls.push(Syscall::Accept { handle: flow, cookie });
                        self.submitted.push(SubmitRecord::Other);
                        self.conns.insert(
                            cookie,
                            Conn {
                                handle: flow,
                                cookie,
                                user: 0,
                                pending: VecDeque::new(),
                                pending_bytes: 0,
                                writable: true,
                                closing: false,
                            },
                        );
                        self.by_flow.insert(flow, cookie);
                        self.stats.adopted += 1;
                        let conn = self.conns.get_mut(&cookie).expect("inserted");
                        let mut cctx = ConnCtx {
                            conn,
                            actions: &mut actions,
                            max_pending: self.max_pending,
                            now_ns: ctx.now_ns,
                            charge_ns: &mut ctx.user_ns,
                        };
                        self.handler.on_accept(&mut cctx);
                        cookie
                    };
                    let handle = if let Some(conn) = self.conns.get_mut(&cookie) {
                        self.stats.bytes_in += n as u64;
                        let mut cctx = ConnCtx {
                            conn,
                            actions: &mut actions,
                            max_pending: self.max_pending,
                            now_ns: ctx.now_ns,
                            charge_ns: &mut ctx.user_ns,
                        };
                        self.handler.on_data(&mut cctx, &payload);
                        self.dirty.insert(cookie);
                        Some(conn.handle)
                    } else {
                        None
                    };
                    // The libevent-compatible layer consumes the buffer
                    // when the callback returns: credit the window (the
                    // stack frees the mbuf when the credit covers it).
                    drop(payload);
                    if let Some(handle) = handle {
                        ctx.syscalls.push(Syscall::RecvDone { handle, bytes: n });
                        self.submitted.push(SubmitRecord::Other);
                    }
                }
                EventCond::Sent { cookie, flow, .. } => {
                    let Some(cookie) = self.resolve(cookie, flow) else {
                        continue; // Window update for a flow this app
                                  // never adopted; nothing to re-flush.
                    };
                    if let Some(conn) = self.conns.get_mut(&cookie) {
                        conn.writable = true;
                        let mut cctx = ConnCtx {
                            conn,
                            actions: &mut actions,
                            max_pending: self.max_pending,
                            now_ns: ctx.now_ns,
                            charge_ns: &mut ctx.user_ns,
                        };
                        self.handler.on_sent(&mut cctx);
                        self.dirty.insert(cookie);
                    }
                }
                EventCond::Dead { cookie, flow, reason } => {
                    let Some(cookie) = self.resolve(cookie, flow) else {
                        continue; // Unknown (never-adopted) flow died.
                    };
                    self.by_flow.remove(&flow);
                    if let Some(mut conn) = self.conns.remove(&cookie) {
                        let was_closing = conn.closing;
                        let handle = conn.handle;
                        let mut cctx = ConnCtx {
                            conn: &mut conn,
                            actions: &mut actions,
                            max_pending: self.max_pending,
                            now_ns: ctx.now_ns,
                            charge_ns: &mut ctx.user_ns,
                        };
                        self.handler.on_dead(&mut cctx, reason);
                        if reason == DeadReason::PeerFin && !was_closing && !conn.closing {
                            // Default close-on-FIN for servers.
                            ctx.syscalls.push(Syscall::Close { handle });
                            self.submitted.push(SubmitRecord::Other);
                        }
                    }
                }
            }
        }

        // Apply deferred actions.
        for a in actions {
            match a {
                Action::Close(cookie) => {
                    if let Some(conn) = self.conns.remove(&cookie) {
                        self.by_flow.remove(&conn.handle);
                        ctx.syscalls.push(Syscall::Close { handle: conn.handle });
                        self.submitted.push(SubmitRecord::Other);
                    }
                }
                Action::Abort(cookie) => {
                    if let Some(conn) = self.conns.remove(&cookie) {
                        self.by_flow.remove(&conn.handle);
                        ctx.syscalls.push(Syscall::Abort { handle: conn.handle });
                        self.submitted.push(SubmitRecord::Other);
                    }
                }
                Action::Write { cookie, data } => {
                    if let Some(conn) = self.conns.get_mut(&cookie) {
                        if conn.pending_bytes + data.len() <= self.max_pending {
                            conn.pending_bytes += data.len();
                            conn.pending.push_back(data);
                            self.dirty.insert(cookie);
                        } else {
                            self.stats.cap_rejections += 1;
                        }
                    }
                }
                Action::Connect { dst_ip, dst_port, user } => {
                    let cookie = self.next_cookie;
                    self.next_cookie += 1;
                    self.conns.insert(
                        cookie,
                        Conn {
                            handle: FlowId { key: 0, gen: 0 },
                            cookie,
                            user,
                            pending: VecDeque::new(),
                            pending_bytes: 0,
                            writable: true,
                            closing: false,
                        },
                    );
                    ctx.syscalls.push(Syscall::Connect { cookie, dst_ip, dst_port });
                    self.submitted.push(SubmitRecord::Other);
                }
            }
        }

        // Transmit coalescing: one sendv per connection with new data.
        // Only connections whose (pending, writable) state could have
        // changed this cycle are visited, in cookie order — identical
        // syscall order to a full scan of a cookie-sorted table,
        // because `flush_conn` no-ops on every undisturbed connection.
        // A conn made flushable but not dirty cannot exist: every path
        // that queues pending data or re-arms `writable` while data is
        // pending marks the cookie above (result pairing alone never
        // does both — full acceptance drains pending, partial leaves
        // `writable` false until its `sent` event).
        let mut new_syscalls: Vec<Syscall> = Vec::new();
        for cookie in std::mem::take(&mut self.dirty) {
            if let Some(conn) = self.conns.get_mut(&cookie) {
                Libix::<H>::flush_conn(conn, &mut new_syscalls, &mut self.submitted);
            }
        }
        ctx.syscalls.extend(new_syscalls);
    }

    fn wants_cycle(&self, now_ns: u64) -> bool {
        self.handler.wants_tick(now_ns)
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        self.handler.next_deadline_ns()
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl<H: LibixHandler + std::fmt::Debug> std::fmt::Debug for Libix<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Libix")
            .field("conns", &self.conns.len())
            .field("stats", &self.stats)
            .finish()
    }
}
