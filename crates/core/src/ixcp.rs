//! IXCP — the control plane (§4.1).
//!
//! In the real system the control plane is the full Linux kernel plus the
//! IXCP user-level daemon: it initializes devices, allocates whole cores,
//! large-page memory, and NIC hardware queues to dataplanes, monitors
//! their load, and elastically adds or revokes hardware threads using a
//! protocol similar to Exokernel's resource revocation. The paper leaves
//! sophisticated *policies* to future work and evaluates static
//! configurations; this module implements the *mechanisms*:
//!
//! * registry of dataplanes and their resource grants,
//! * elastic thread addition and revocation with RSS flow-group
//!   migration (reprogramming the NIC redirection table and moving the
//!   affected protocol control blocks between shards, §4.4),
//! * queue-depth monitoring — the congestion signal the paper says a
//!   dataplane can raise so the control plane allocates more resources
//!   (§3).

use ix_sim::Simulator;
use ix_tcp::Tcb;

use crate::dataplane::{Dataplane, ElasticThread};

/// Identifies a registered dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataplaneId(pub usize);

/// A queue-depth observation for one dataplane.
#[derive(Debug, Clone, Copy, Default)]
pub struct CongestionReport {
    /// Deepest RX ring backlog across queues.
    pub max_rx_backlog: usize,
    /// Total frames waiting across queues.
    pub total_rx_backlog: usize,
    /// RX descriptor-exhaustion drops so far (queues "build up only at
    /// the NIC edge", §3 — this is that edge overflowing).
    pub rx_drops: u64,
}

/// The control plane: owns the dataplane registry and the elastic
/// scaling mechanism.
#[derive(Default)]
pub struct ControlPlane {
    dataplanes: Vec<Dataplane>,
}

impl ControlPlane {
    /// Creates an empty control plane.
    pub fn new() -> ControlPlane {
        ControlPlane::default()
    }

    /// Registers a dataplane, transferring ownership of its handle.
    pub fn register(&mut self, dp: Dataplane) -> DataplaneId {
        self.dataplanes.push(dp);
        DataplaneId(self.dataplanes.len() - 1)
    }

    /// Access a registered dataplane.
    pub fn dataplane(&self, id: DataplaneId) -> &Dataplane {
        &self.dataplanes[id.0]
    }

    /// Number of *active* (non-parked) elastic threads.
    pub fn active_threads(&self, id: DataplaneId) -> usize {
        self.dataplanes[id.0]
            .threads
            .iter()
            .filter(|t| !t.borrow().parked)
            .count()
    }

    /// Samples RX queue depths — the §3 congestion signal.
    pub fn monitor(&self, id: DataplaneId) -> CongestionReport {
        let mut rep = CongestionReport::default();
        for th in &self.dataplanes[id.0].threads {
            let t = th.borrow();
            for (nic, q) in t.queues().to_vec() {
                let mut n = nic.borrow_mut();
                let ring = n.rx_ring(q);
                rep.max_rx_backlog = rep.max_rx_backlog.max(ring.pending());
                rep.total_rx_backlog += ring.pending();
                rep.rx_drops += ring.drops;
            }
        }
        rep
    }

    /// Changes the number of active elastic threads to `n`, migrating
    /// RSS flow groups and live connections (§4.4). Threads `0..n`
    /// become active; the rest are parked.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataplane's thread count.
    pub fn set_active_threads(&mut self, sim: &mut Simulator, id: DataplaneId, n: usize) {
        let dp = &self.dataplanes[id.0];
        assert!(n >= 1 && n <= dp.threads.len(), "bad thread count {n}");
        let now_ns = sim.now().as_nanos();

        // 1. Reprogram the RSS redirection tables: bucket i -> queue
        //    (i % n). New packets immediately steer to active threads.
        let nics: Vec<_> = dp.threads[0].borrow().queues().iter().map(|(nic, _)| nic.clone()).collect();
        for nic in &nics {
            nic.borrow_mut()
                .set_redirection((0..128).map(|i| i % n).collect());
        }

        // 2. Quiesce the threads being revoked: pull any frames still in
        //    their RX rings through their own stacks, then let the
        //    application drain its in-flight results and buffered writes
        //    into TCP (the Exokernel-style revocation handshake). Only
        //    then park.
        for (i, th) in dp.threads.iter().enumerate() {
            if i < n {
                th.borrow_mut().parked = false;
                continue;
            }
            {
                let mut t = th.borrow_mut();
                let queues = t.queues().to_vec();
                for (nic, q) in queues {
                    loop {
                        let frame = nic.borrow_mut().rx_ring(q).poll();
                        let Some(frame) = frame else { break };
                        t.shard.input(now_ns, frame);
                    }
                    let mut nn = nic.borrow_mut();
                    let un = nn.rx_ring(q).unreplenished();
                    nn.rx_ring(q).replenish(un);
                }
            }
            ElasticThread::drain_user_work(th, sim);
            th.borrow_mut().parked = true;
        }

        // 3. Migrate existing flows so each lives on the shard its
        //    bucket now maps to.
        let steer_nic = nics[0].clone();
        let mut moving: Vec<(usize, Vec<Tcb>)> = Vec::new();
        for (i, th) in dp.threads.iter().enumerate() {
            let mut t = th.borrow_mut();
            let local_ip = t.shard.local_ip;
            let nic = steer_nic.clone();
            let extracted = t.shard.extract_flows(|tcb| {
                let q = nic.borrow().queue_for_flow(
                    tcb.remote_ip,
                    local_ip,
                    tcb.remote_port,
                    tcb.local_port,
                );
                q != i
            });
            if !extracted.is_empty() {
                moving.push((i, extracted));
            }
        }
        for (_, flows) in moving {
            for tcb in flows {
                let th = {
                    let local_ip = dp.threads[0].borrow().shard.local_ip;
                    let q = steer_nic.borrow().queue_for_flow(
                        tcb.remote_ip,
                        local_ip,
                        tcb.remote_port,
                        tcb.local_port,
                    );
                    dp.threads[q].clone()
                };
                th.borrow_mut().shard.absorb_flows(now_ns, vec![tcb]);
            }
        }

        // 4. Wake the active threads so adopted flows make progress.
        for th in dp.threads.iter().take(n) {
            ElasticThread::schedule_iteration(th, sim);
        }
    }
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("dataplanes", &self.dataplanes.len())
            .finish()
    }
}
