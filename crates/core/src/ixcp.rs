//! IXCP — the control plane (§4.1).
//!
//! In the real system the control plane is the full Linux kernel plus the
//! IXCP user-level daemon: it initializes devices, allocates whole cores,
//! large-page memory, and NIC hardware queues to dataplanes, monitors
//! their load, and elastically adds or revokes hardware threads using a
//! protocol similar to Exokernel's resource revocation. The paper leaves
//! sophisticated *policies* to future work and evaluates static
//! configurations; this module implements the *mechanisms*:
//!
//! * registry of dataplanes and their resource grants,
//! * elastic thread addition and revocation with RSS flow-group
//!   migration (reprogramming the NIC redirection table and moving the
//!   affected protocol control blocks between shards, §4.4),
//! * queue-depth monitoring — the congestion signal the paper says a
//!   dataplane can raise so the control plane allocates more resources
//!   (§3).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ix_net::filter::FilterPolicy;
use ix_nic::nic::NicRef;
use ix_sim::{Nanos, Simulator};
use ix_tcp::Tcb;

use crate::dataplane::{Dataplane, ElasticThread, ThreadRef};
use crate::rcu::Rcu;

/// Identifies a registered dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataplaneId(pub usize);

/// A queue-depth observation for one dataplane.
#[derive(Debug, Clone, Copy, Default)]
pub struct CongestionReport {
    /// Deepest RX ring backlog across queues.
    pub max_rx_backlog: usize,
    /// Total frames waiting across queues.
    pub total_rx_backlog: usize,
    /// RX descriptor-exhaustion drops so far (queues "build up only at
    /// the NIC edge", §3 — this is that edge overflowing).
    pub rx_drops: u64,
}

/// Counters from the queue-hang watchdog (graceful degradation: a
/// non-draining RX queue gets its RSS flow groups re-steered to healthy
/// queues, reusing the §4.4 migration mechanism).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Sampling passes executed.
    pub scans: u64,
    /// Hangs detected: a queue with backlog that polled nothing for a
    /// whole period.
    pub hangs_detected: u64,
    /// RSS redirection buckets moved off hung queues.
    pub buckets_resteered: u64,
    /// Live connections migrated to healthy shards.
    pub flows_migrated: u64,
    /// Frames discarded from hung rings at re-steer time (the wedged DMA
    /// consumer cannot poll them; modelled as a queue reset, recovered by
    /// TCP retransmission).
    pub frames_discarded: u64,
}

/// Shared handle to the watchdog's counters.
pub type WatchdogRef = Rc<RefCell<WatchdogStats>>;

/// The control plane: owns the dataplane registry and the elastic
/// scaling mechanism.
#[derive(Default)]
pub struct ControlPlane {
    dataplanes: Vec<Dataplane>,
}

impl ControlPlane {
    /// Creates an empty control plane.
    pub fn new() -> ControlPlane {
        ControlPlane::default()
    }

    /// Registers a dataplane, transferring ownership of its handle.
    pub fn register(&mut self, dp: Dataplane) -> DataplaneId {
        self.dataplanes.push(dp);
        DataplaneId(self.dataplanes.len() - 1)
    }

    /// Access a registered dataplane.
    pub fn dataplane(&self, id: DataplaneId) -> &Dataplane {
        &self.dataplanes[id.0]
    }

    /// Number of *active* (non-parked) elastic threads.
    pub fn active_threads(&self, id: DataplaneId) -> usize {
        self.dataplanes[id.0]
            .threads
            .iter()
            .filter(|t| !t.borrow().parked)
            .count()
    }

    /// Samples RX queue depths — the §3 congestion signal.
    pub fn monitor(&self, id: DataplaneId) -> CongestionReport {
        let mut rep = CongestionReport::default();
        for th in &self.dataplanes[id.0].threads {
            let t = th.borrow();
            for (nic, q) in t.queues().to_vec() {
                let mut n = nic.borrow_mut();
                let ring = n.rx_ring(q);
                rep.max_rx_backlog = rep.max_rx_backlog.max(ring.pending());
                rep.total_rx_backlog += ring.pending();
                rep.rx_drops += ring.drops;
            }
        }
        rep
    }

    /// Changes the number of active elastic threads to `n`, migrating
    /// RSS flow groups and live connections (§4.4). Threads `0..n`
    /// become active; the rest are parked.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataplane's thread count.
    pub fn set_active_threads(&mut self, sim: &mut Simulator, id: DataplaneId, n: usize) {
        let dp = &self.dataplanes[id.0];
        assert!(n >= 1 && n <= dp.threads.len(), "bad thread count {n}");
        let now_ns = sim.now().as_nanos();

        // 1. Reprogram the RSS redirection tables: bucket i -> queue
        //    (i % n). New packets immediately steer to active threads.
        let nics: Vec<_> = dp.threads[0].borrow().queues().iter().map(|(nic, _)| nic.clone()).collect();
        for nic in &nics {
            nic.borrow_mut()
                .set_redirection((0..128).map(|i| i % n).collect());
        }

        // 2. Quiesce the threads being revoked: pull any frames still in
        //    their RX rings through their own stacks, then let the
        //    application drain its in-flight results and buffered writes
        //    into TCP (the Exokernel-style revocation handshake). Only
        //    then park.
        for (i, th) in dp.threads.iter().enumerate() {
            if i < n {
                th.borrow_mut().parked = false;
                continue;
            }
            {
                let mut t = th.borrow_mut();
                let queues = t.queues().to_vec();
                for (nic, q) in queues {
                    loop {
                        let frame = nic.borrow_mut().rx_ring(q).poll();
                        let Some(frame) = frame else { break };
                        t.shard.input(now_ns, frame);
                    }
                    let mut nn = nic.borrow_mut();
                    let un = nn.rx_ring(q).unreplenished();
                    nn.rx_ring(q).replenish(un);
                }
            }
            ElasticThread::drain_user_work(th, sim);
            th.borrow_mut().parked = true;
        }

        // 3. Migrate existing flows so each lives on the shard its
        //    bucket now maps to.
        let steer_nic = nics[0].clone();
        let mut moving: Vec<(usize, Vec<Tcb>)> = Vec::new();
        for (i, th) in dp.threads.iter().enumerate() {
            let mut t = th.borrow_mut();
            let local_ip = t.shard.local_ip;
            let nic = steer_nic.clone();
            let extracted = t.shard.extract_flows(|remote_ip, remote_port, local_port| {
                let q = nic.borrow().queue_for_flow(remote_ip, local_ip, remote_port, local_port);
                q != i
            });
            if !extracted.is_empty() {
                moving.push((i, extracted));
            }
        }
        for (_, flows) in moving {
            for tcb in flows {
                let th = {
                    let local_ip = dp.threads[0].borrow().shard.local_ip;
                    let q = steer_nic.borrow().queue_for_flow(
                        tcb.remote_ip,
                        local_ip,
                        tcb.remote_port,
                        tcb.local_port,
                    );
                    dp.threads[q].clone()
                };
                th.borrow_mut().shard.absorb_flows(now_ns, vec![tcb]);
            }
        }

        // 4. Wake the active threads so adopted flows make progress.
        for th in dp.threads.iter().take(n) {
            ElasticThread::schedule_iteration(th, sim);
        }
    }

    /// Starts a periodic watchdog over the dataplane's RX queues. Every
    /// `period_ns` it samples each queue's poll progress; a queue that
    /// holds a backlog across a whole period without draining a single
    /// frame is declared hung, and its RSS flow groups are re-steered to
    /// the healthy queues (the §4.4 migration mechanism driven by a
    /// health signal instead of a scaling decision). The watchdog stops
    /// rescheduling itself once the next tick would land past
    /// `deadline_ns`, so bounded experiment runs still drain to
    /// completion.
    ///
    /// Returns a shared handle to the watchdog's counters.
    pub fn start_queue_watchdog(
        &self,
        sim: &mut Simulator,
        id: DataplaneId,
        period_ns: u64,
        deadline_ns: u64,
    ) -> WatchdogRef {
        start_queue_watchdog(sim, &self.dataplanes[id.0], period_ns, deadline_ns)
    }
}

/// Standalone form of [`ControlPlane::start_queue_watchdog`] for callers
/// that hold a [`Dataplane`] directly (experiment harnesses).
pub fn start_queue_watchdog(
    sim: &mut Simulator,
    dp: &Dataplane,
    period_ns: u64,
    deadline_ns: u64,
) -> WatchdogRef {
    let threads = Rc::new(dp.threads.clone());
    let stats: WatchdogRef = Rc::new(RefCell::new(WatchdogStats::default()));
    let last = Rc::new(RefCell::new(HashMap::new()));
    let (t, l, s) = (threads, last, stats.clone());
    sim.schedule_in(Nanos(period_ns), move |sim| {
        watchdog_tick(sim, t, l, s, period_ns, deadline_ns);
    });
    stats
}

/// Last-sample memory per `(thread, queue-slot)`: frames polled so far
/// and the ring backlog at that instant.
type WatchdogSamples = Rc<RefCell<HashMap<(usize, usize), (u64, usize)>>>;

/// One watchdog pass: sample every queue, detect hangs, re-steer, and
/// reschedule while within the deadline.
fn watchdog_tick(
    sim: &mut Simulator,
    threads: Rc<Vec<ThreadRef>>,
    last: WatchdogSamples,
    stats: WatchdogRef,
    period_ns: u64,
    deadline_ns: u64,
) {
    stats.borrow_mut().scans += 1;
    // Sample every queue first, then re-steer all hung threads in ONE
    // pass. Re-steering per detection handled simultaneous hangs badly:
    // the first re-steer only knew about the first hung queue, so it
    // happily rotated buckets onto the *other* wedged queue — traffic
    // moved from one black hole into another and stayed stalled until
    // (at best) a later tick.
    let mut hung: Vec<usize> = Vec::new();
    for (ti, th) in threads.iter().enumerate() {
        if th.borrow().parked {
            continue;
        }
        let queues = th.borrow().queues().to_vec();
        for (pi, (nic, q)) in queues.iter().enumerate() {
            let (pending, received) = {
                let mut n = nic.borrow_mut();
                let r = n.rx_ring(*q);
                (r.pending(), r.received)
            };
            // Frames polled out so far; if this stands still across a
            // period while a backlog sits in the ring, nothing is
            // draining the queue.
            let polled = received - pending as u64;
            let prev = last.borrow_mut().insert((ti, pi), (polled, pending));
            if let Some((prev_polled, prev_pending)) = prev {
                if pending > 0 && prev_pending > 0 && polled == prev_polled {
                    stats.borrow_mut().hangs_detected += 1;
                    if !hung.contains(&ti) {
                        hung.push(ti);
                    }
                }
            }
        }
    }
    if !hung.is_empty() {
        resteer_hung_queues(sim, &threads, &hung, &stats);
    }
    if sim.now().as_nanos() + period_ns <= deadline_ns {
        sim.schedule_in(Nanos(period_ns), move |sim| {
            watchdog_tick(sim, threads, last, stats, period_ns, deadline_ns);
        });
    }
}

/// Moves every RSS bucket of every `hung` thread's queues to the
/// healthy active queues (round-robin), resets the wedged ring(s), and
/// migrates the hung shards' connections to their new owners.
///
/// All simultaneously hung queues are handled in one pass so the
/// `healthy` set excludes *every* wedged thread: re-steering them one
/// at a time could round-robin a bucket from hung queue A onto
/// still-hung queue B, stranding roughly `1/healthy` of A's traffic in
/// a second black hole.
fn resteer_hung_queues(
    sim: &mut Simulator,
    threads: &[ThreadRef],
    hung: &[usize],
    stats: &WatchdogRef,
) {
    let now_ns = sim.now().as_nanos();
    let healthy: Vec<usize> = threads
        .iter()
        .enumerate()
        .filter(|(i, t)| !hung.contains(i) && !t.borrow().parked)
        .map(|(i, _)| i)
        .collect();
    if healthy.is_empty() {
        return; // Nowhere to move traffic: degraded until the hang ends.
    }
    // 1. Reprogram every port identically (multi-port hosts hash a flow
    //    the same way on each member, so the tables must agree) and
    //    reset the wedged rings. Each NIC's table is walked once per
    //    hung thread, but the first walk already moves every bucket
    //    pointing at *any* hung queue, so later walks move nothing.
    let mut moved = 0u64;
    let mut discarded = 0u64;
    for &h in hung {
        let queues = threads[h].borrow().queues().to_vec();
        for (nic, q) in &queues {
            let mut map = nic.borrow().redirection().to_vec();
            let mut rr = 0usize;
            for e in map.iter_mut() {
                if hung.contains(e) {
                    *e = healthy[rr % healthy.len()];
                    rr += 1;
                    moved += 1;
                }
            }
            let mut n = nic.borrow_mut();
            n.set_redirection(map);
            // 2. Discard frames wedged behind the stuck DMA consumer:
            //    they cannot be polled during the hang, and replaying
            //    them after migration would resurrect stale segments on
            //    the wrong shard. TCP retransmission recovers the loss.
            let ring = n.rx_ring(*q);
            while ring.poll().is_some() {
                discarded += 1;
            }
            let un = ring.unreplenished();
            ring.replenish(un);
        }
    }
    if moved == 0 {
        return; // Already re-steered by an earlier detection.
    }
    {
        let mut s = stats.borrow_mut();
        s.buckets_resteered += moved;
        s.frames_discarded += discarded;
    }
    // 3. Migrate each hung shard's connections to the shards their
    //    buckets now map to (same mechanism as elastic revocation).
    for &h in hung {
        let queues = threads[h].borrow().queues().to_vec();
        let steer_nic = queues[0].0.clone();
        let local_ip = threads[h].borrow().shard.local_ip;
        let extracted = {
            let nic = steer_nic.clone();
            threads[h].borrow_mut().shard.extract_flows(|remote_ip, remote_port, local_port| {
                nic.borrow().queue_for_flow(remote_ip, local_ip, remote_port, local_port) != h
            })
        };
        for tcb in extracted {
            let q = steer_nic.borrow().queue_for_flow(
                tcb.remote_ip,
                local_ip,
                tcb.remote_port,
                tcb.local_port,
            );
            stats.borrow_mut().flows_migrated += 1;
            threads[q].borrow_mut().shard.absorb_flows(now_ns, vec![tcb]);
        }
    }
    // 4. Wake the healthy threads so adopted flows make progress.
    for th in threads.iter() {
        if !th.borrow().parked {
            ElasticThread::schedule_iteration(th, sim);
        }
    }
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("dataplanes", &self.dataplanes.len())
            .finish()
    }
}

/// IXCP's handle on a dataplane's pre-stack filter: the rule table lives
/// in an [`Rcu`] cell owned here; every elastic thread's NIC queues and
/// TCP shard hold `Rc` snapshots of the current version. Updating rules
/// is a pure control-plane action — build the new table, publish it,
/// swap the snapshots — and the hot path never sees anything but an
/// immutable object it already holds, exactly the paper's "commutative
/// API calls + RCU for the rare shared state" recipe (§4.3).
pub struct FilterControl {
    rcu: Rcu<FilterPolicy>,
    readers: Vec<crate::rcu::ReaderId>,
    nics: Vec<NicRef>,
    threads: Vec<ThreadRef>,
}

impl FilterControl {
    /// Publishes `policy` to every NIC port and shard of `dp` and
    /// returns the control handle. One RCU reader is registered per
    /// elastic thread (the real system's per-core quiescence bookkeeping).
    pub fn install(dp: &Dataplane, policy: FilterPolicy) -> FilterControl {
        let rcu = Rcu::new(policy);
        let mut nics: Vec<NicRef> = Vec::new();
        for th in &dp.threads {
            for (nic, _q) in th.borrow().queues() {
                if !nics.iter().any(|n| Rc::ptr_eq(n, nic)) {
                    nics.push(nic.clone());
                }
            }
        }
        let readers = dp.threads.iter().map(|_| rcu.register_reader()).collect();
        let fc = FilterControl { rcu, readers, nics, threads: dp.threads.clone() };
        fc.publish();
        fc
    }

    /// Pushes the current snapshot into every NIC and shard.
    fn publish(&self) {
        let snap = self.rcu.read();
        for nic in &self.nics {
            nic.borrow_mut().set_filter(Some(snap.clone()));
        }
        for th in &self.threads {
            th.borrow_mut().shard.set_filter_policy(Some(snap.clone()));
        }
    }

    /// Replaces the rule table: `f` builds the successor from the
    /// current version (add/remove rules, rebuild from scratch — the
    /// policy is a value). The new snapshot is republished and the old
    /// version reclaimed.
    pub fn update(&self, f: impl FnOnce(&FilterPolicy) -> FilterPolicy) {
        self.rcu.update(f);
        self.publish();
        // Control-plane actions run between run-to-completion cycles in
        // the single-threaded simulation, so every registered reader is
        // at a quiescent point the moment the snapshots are swapped;
        // retired versions reclaim immediately.
        for r in &self.readers {
            self.rcu.quiescent(*r);
        }
        self.rcu.reclaim();
    }

    /// Removes the filter from every NIC and shard (the dataplane
    /// returns to the exact unfiltered hot path).
    pub fn uninstall(&self) {
        for nic in &self.nics {
            nic.borrow_mut().set_filter(None);
        }
        for th in &self.threads {
            th.borrow_mut().shard.set_filter_policy(None);
        }
    }

    /// The current policy snapshot (what the hot path is classifying
    /// with).
    pub fn snapshot(&self) -> Rc<FilterPolicy> {
        self.rcu.read()
    }

    /// Retired-but-unreclaimed policy versions (tests pin this at 0
    /// after `update`).
    pub fn retired_len(&self) -> usize {
        self.rcu.retired_len()
    }
}

impl std::fmt::Debug for FilterControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterControl")
            .field("rules", &self.rcu.read().rule_count())
            .field("nics", &self.nics.len())
            .field("threads", &self.threads.len())
            .finish()
    }
}
