//! IXCP — the control plane (§4.1).
//!
//! In the real system the control plane is the full Linux kernel plus the
//! IXCP user-level daemon: it initializes devices, allocates whole cores,
//! large-page memory, and NIC hardware queues to dataplanes, monitors
//! their load, and elastically adds or revokes hardware threads using a
//! protocol similar to Exokernel's resource revocation. The paper leaves
//! sophisticated *policies* to future work and evaluates static
//! configurations; this module implements the *mechanisms*:
//!
//! * registry of dataplanes and their resource grants,
//! * elastic thread addition and revocation with RSS flow-group
//!   migration (reprogramming the NIC redirection table and moving the
//!   affected protocol control blocks between shards, §4.4),
//! * queue-depth monitoring — the congestion signal the paper says a
//!   dataplane can raise so the control plane allocates more resources
//!   (§3),
//! * the **elastic control loop** ([`start_elastic_controller`]): the
//!   policy the paper left to future work — per-epoch queue-delay
//!   sampling against a tail-latency SLA proxy, hysteresis-gated core
//!   add/revoke with a bounded per-epoch migration rate, retry/backoff
//!   when the watchdog flags a target core hung, and a last-resort
//!   admission gate that sheds *new* connections at the NIC filter when
//!   every core is saturated (graceful overload degradation).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use ix_net::filter::{FilterPolicy, RuleAction};
use ix_net::ip::IpProto;
use ix_nic::nic::NicRef;
use ix_sim::{Nanos, Simulator};
use ix_tcp::Tcb;

use crate::dataplane::{Dataplane, ElasticThread, ThreadRef};
use crate::rcu::Rcu;

/// Identifies a registered dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataplaneId(pub usize);

/// A queue-depth observation for one dataplane.
#[derive(Debug, Clone, Copy, Default)]
pub struct CongestionReport {
    /// Deepest RX ring backlog across queues.
    pub max_rx_backlog: usize,
    /// Total frames waiting across queues.
    pub total_rx_backlog: usize,
    /// RX descriptor-exhaustion drops so far (queues "build up only at
    /// the NIC edge", §3 — this is that edge overflowing).
    pub rx_drops: u64,
}

/// Counters from the queue-hang watchdog (graceful degradation: a
/// non-draining RX queue gets its RSS flow groups re-steered to healthy
/// queues, reusing the §4.4 migration mechanism).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Sampling passes executed.
    pub scans: u64,
    /// Hangs detected: a queue with backlog that polled nothing for a
    /// whole period.
    pub hangs_detected: u64,
    /// RSS redirection buckets moved off hung queues.
    pub buckets_resteered: u64,
    /// Live connections migrated to healthy shards.
    pub flows_migrated: u64,
    /// Frames discarded from hung rings at re-steer time (the wedged DMA
    /// consumer cannot poll them; modelled as a queue reset, recovered by
    /// TCP retransmission).
    pub frames_discarded: u64,
}

/// Shared handle to the watchdog's counters.
pub type WatchdogRef = Rc<RefCell<WatchdogStats>>;

/// The watchdog's published health verdicts: the thread indices flagged
/// hung by the most recent scan (empty when every queue is draining).
/// The elastic controller consults this before activating a core or
/// steering flow groups toward it — migrating traffic onto a wedged
/// queue would just move it into a black hole, so the controller backs
/// off and retries instead.
pub type WatchdogHealth = Rc<RefCell<Vec<usize>>>;

/// The control plane: owns the dataplane registry and the elastic
/// scaling mechanism.
#[derive(Default)]
pub struct ControlPlane {
    dataplanes: Vec<Dataplane>,
}

impl ControlPlane {
    /// Creates an empty control plane.
    pub fn new() -> ControlPlane {
        ControlPlane::default()
    }

    /// Registers a dataplane, transferring ownership of its handle.
    pub fn register(&mut self, dp: Dataplane) -> DataplaneId {
        self.dataplanes.push(dp);
        DataplaneId(self.dataplanes.len() - 1)
    }

    /// Access a registered dataplane.
    pub fn dataplane(&self, id: DataplaneId) -> &Dataplane {
        &self.dataplanes[id.0]
    }

    /// Number of *active* (non-parked) elastic threads.
    pub fn active_threads(&self, id: DataplaneId) -> usize {
        self.dataplanes[id.0]
            .threads
            .iter()
            .filter(|t| !t.borrow().parked)
            .count()
    }

    /// Samples RX queue depths — the §3 congestion signal.
    pub fn monitor(&self, id: DataplaneId) -> CongestionReport {
        let mut rep = CongestionReport::default();
        for th in &self.dataplanes[id.0].threads {
            let t = th.borrow();
            for (nic, q) in t.queues().to_vec() {
                let mut n = nic.borrow_mut();
                let ring = n.rx_ring(q);
                rep.max_rx_backlog = rep.max_rx_backlog.max(ring.pending());
                rep.total_rx_backlog += ring.pending();
                rep.rx_drops += ring.drops;
            }
        }
        rep
    }

    /// Changes the number of active elastic threads to `n`, migrating
    /// RSS flow groups and live connections (§4.4). Threads `0..n`
    /// become active; the rest are parked.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataplane's thread count.
    pub fn set_active_threads(&mut self, sim: &mut Simulator, id: DataplaneId, n: usize) {
        set_active_threads(sim, &self.dataplanes[id.0], n, None);
    }

    /// Starts a periodic watchdog over the dataplane's RX queues. Every
    /// `period_ns` it samples each queue's poll progress; a queue that
    /// holds a backlog across a whole period without draining a single
    /// frame is declared hung, and its RSS flow groups are re-steered to
    /// the healthy queues (the §4.4 migration mechanism driven by a
    /// health signal instead of a scaling decision). The watchdog stops
    /// rescheduling itself once the next tick would land past
    /// `deadline_ns`, so bounded experiment runs still drain to
    /// completion.
    ///
    /// Returns a shared handle to the watchdog's counters.
    pub fn start_queue_watchdog(
        &self,
        sim: &mut Simulator,
        id: DataplaneId,
        period_ns: u64,
        deadline_ns: u64,
    ) -> WatchdogRef {
        start_queue_watchdog(sim, &self.dataplanes[id.0], period_ns, deadline_ns)
    }
}

/// Every distinct NIC port the dataplane's threads serve. RSS tables
/// must be reprogrammed identically on all of them (a flow hashes the
/// same way on every member port).
fn dataplane_nics(threads: &[ThreadRef]) -> Vec<NicRef> {
    let mut nics: Vec<NicRef> = Vec::new();
    for th in threads {
        for (nic, _q) in th.borrow().queues() {
            if !nics.iter().any(|n| Rc::ptr_eq(n, nic)) {
                nics.push(nic.clone());
            }
        }
    }
    nics
}

/// Pulls every frame still sitting in `th`'s RX rings through its own
/// shard and replenishes the consumed descriptors. Frames that were
/// steered before a redirection-table reprogram belong to the *old*
/// owner: processing them here (instead of extracting the flows first)
/// is what keeps a bucket move invisible to the byte stream.
fn drain_rings_through_own_shard(th: &ThreadRef, now_ns: u64) {
    let mut t = th.borrow_mut();
    let queues = t.queues().to_vec();
    for (nic, q) in queues {
        loop {
            let frame = nic.borrow_mut().rx_ring(q).poll();
            let Some(frame) = frame else { break };
            t.shard.input(now_ns, frame);
        }
        let mut nn = nic.borrow_mut();
        let un = nn.rx_ring(q).unreplenished();
        nn.rx_ring(q).replenish(un);
    }
}

/// Migrates every flow whose RSS bucket no longer maps to the shard
/// holding it (§4.4): the redirection table is read once, each
/// mis-steered *bucket* is drained from its current owner in bulk via
/// the per-bucket flow-table index (no per-flow Toeplitz hashing, no
/// table scan), and each destination absorbs its whole batch in one
/// call (single table reservation, batched timer re-arm). When a
/// [`FilterControl`] is supplied, the current policy snapshot is
/// republished to every destination shard — a rule update published
/// while the migration was in flight must not leave adopted flows
/// classified by a stale snapshot. Returns the number of flows moved.
pub fn migrate_mismatched_flows(
    now_ns: u64,
    threads: &[ThreadRef],
    filter: Option<&FilterControl>,
) -> u64 {
    let (batches, moved) = extract_mismatched_batches(threads);
    absorb_mismatched_batches(now_ns, threads, batches, filter);
    moved
}

/// Extract half of [`migrate_mismatched_flows`]: drains every
/// mis-steered bucket from its current owner into one batch per
/// destination queue. Buckets land in (source thread, bucket,
/// insertion-order) order — a function of the flows' history alone,
/// so migration order is layout-independent. Each batch is pre-sized
/// from the O(1) bucket-index populations and filled by
/// `extract_bucket_into`, so a 250k-TCB move writes each TCB into its
/// destination batch exactly once — no intermediate per-bucket `Vec`,
/// no growth re-copies.
fn extract_mismatched_batches(threads: &[ThreadRef]) -> (Vec<Vec<Tcb>>, u64) {
    let steer_nic = threads[0].borrow().queues()[0].0.clone();
    let map: Vec<usize> = steer_nic.borrow().redirection().to_vec();
    let mut counts = vec![0usize; threads.len()];
    for (i, th) in threads.iter().enumerate() {
        let t = th.borrow();
        for (b, &q) in map.iter().enumerate() {
            if q != i {
                counts[q] += t.shard.bucket_len(b as u16);
            }
        }
    }
    let mut batches: Vec<Vec<Tcb>> = counts.into_iter().map(Vec::with_capacity).collect();
    let mut moved = 0u64;
    for (i, th) in threads.iter().enumerate() {
        let mut t = th.borrow_mut();
        for (b, &q) in map.iter().enumerate() {
            if q == i {
                continue;
            }
            let before = batches[q].len();
            t.shard.extract_bucket_into(b as u16, &mut batches[q]);
            moved += (batches[q].len() - before) as u64;
        }
    }
    (batches, moved)
}

/// Absorb half of [`migrate_mismatched_flows`]: each destination
/// adopts its whole batch in one call (single table reservation,
/// batched timer re-arm), then gets the current filter snapshot
/// republished when one is supplied.
fn absorb_mismatched_batches(
    now_ns: u64,
    threads: &[ThreadRef],
    batches: Vec<Vec<Tcb>>,
    filter: Option<&FilterControl>,
) {
    for (q, batch) in batches.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        threads[q].borrow_mut().shard.absorb_flows(now_ns, batch);
        if let Some(fc) = filter {
            fc.republish_shard(&threads[q]);
        }
    }
}

/// Host-side measurement of one bulk migration pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrateReport {
    /// Live flows moved between shards.
    pub moved: u64,
    /// Host wall-clock nanoseconds for the whole pass
    /// (`extract_ns + absorb_ns`).
    pub host_ns: u64,
    /// Host nanoseconds draining mis-steered buckets from their owners
    /// (bucket-list walks, table removes, batch timer cancels). Reads
    /// scattered cold flow state — the latency-bound half.
    pub extract_ns: u64,
    /// Host nanoseconds adopting the batches at their destinations
    /// (one reservation, streaming inserts, batched timer re-arm).
    pub absorb_ns: u64,
}

/// Reprograms every NIC redirection table to `map`, quiesces all
/// threads (RX rings drained through their own shards, user work
/// flushed), runs one bulk [`migrate_mismatched_flows`] pass under a
/// host wall clock, and wakes every thread that now owns buckets. This
/// is the timed migration entry point the fig9-scale harness drives;
/// [`set_active_threads`] composes the same steps with its
/// parking policy.
pub fn reprogram_and_migrate(
    sim: &mut Simulator,
    dp: &Dataplane,
    map: Vec<usize>,
    filter: Option<&FilterControl>,
) -> MigrateReport {
    assert_eq!(map.len(), 128, "82599 redirection table has 128 entries");
    let now_ns = sim.now().as_nanos();
    for nic in dataplane_nics(&dp.threads) {
        nic.borrow_mut().set_redirection(map.clone());
    }
    for th in &dp.threads {
        drain_rings_through_own_shard(th, now_ns);
        ElasticThread::drain_user_work(th, sim);
    }
    let t0 = std::time::Instant::now();
    let (batches, moved) = extract_mismatched_batches(&dp.threads);
    let extract_ns = t0.elapsed().as_nanos() as u64;
    let t1 = std::time::Instant::now();
    absorb_mismatched_batches(now_ns, &dp.threads, batches, filter);
    let absorb_ns = t1.elapsed().as_nanos() as u64;
    for (i, th) in dp.threads.iter().enumerate() {
        if map.contains(&i) && !th.borrow().parked {
            ElasticThread::schedule_iteration(th, sim);
        }
    }
    MigrateReport { moved, host_ns: extract_ns + absorb_ns, extract_ns, absorb_ns }
}

/// Standalone form of [`ControlPlane::set_active_threads`] for callers
/// that hold a [`Dataplane`] directly (experiment harnesses). `filter`,
/// when supplied, is republished to migration destinations.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the dataplane's thread count.
pub fn set_active_threads(
    sim: &mut Simulator,
    dp: &Dataplane,
    n: usize,
    filter: Option<&FilterControl>,
) {
    assert!(n >= 1 && n <= dp.threads.len(), "bad thread count {n}");
    let now_ns = sim.now().as_nanos();

    // 1. Reprogram the RSS redirection tables: bucket i -> queue
    //    (i % n). New packets immediately steer to active threads.
    let nics = dataplane_nics(&dp.threads);
    for nic in &nics {
        nic.borrow_mut()
            .set_redirection((0..128).map(|i| i % n).collect());
    }

    // 2. Quiesce the threads being revoked: pull any frames still in
    //    their RX rings through their own stacks, then let the
    //    application drain its in-flight results and buffered writes
    //    into TCP (the Exokernel-style revocation handshake). Only
    //    then park.
    //    Threads that stay active quiesce the same way: frames already
    //    steered into their rings and application work already queued
    //    must reach their stacks *before* the flow table reshuffles, or
    //    a migrated flow would leave orphaned events behind.
    for (i, th) in dp.threads.iter().enumerate() {
        drain_rings_through_own_shard(th, now_ns);
        ElasticThread::drain_user_work(th, sim);
        th.borrow_mut().parked = i >= n;
    }

    // 3. Migrate existing flows so each lives on the shard its bucket
    //    now maps to.
    migrate_mismatched_flows(now_ns, &dp.threads, filter);

    // 4. Wake the active threads so adopted flows make progress.
    for th in dp.threads.iter().take(n) {
        ElasticThread::schedule_iteration(th, sim);
    }
}

/// Standalone form of [`ControlPlane::start_queue_watchdog`] for callers
/// that hold a [`Dataplane`] directly (experiment harnesses).
pub fn start_queue_watchdog(
    sim: &mut Simulator,
    dp: &Dataplane,
    period_ns: u64,
    deadline_ns: u64,
) -> WatchdogRef {
    start_queue_watchdog_with_health(sim, dp, period_ns, deadline_ns, None).0
}

/// Like [`start_queue_watchdog`], but also returns the shared health
/// handle the watchdog publishes its per-scan hung-thread verdicts
/// through (the elastic controller's input), and accepts the
/// dataplane's [`FilterControl`] so re-steer migrations republish the
/// policy snapshot to destination shards.
pub fn start_queue_watchdog_with_health(
    sim: &mut Simulator,
    dp: &Dataplane,
    period_ns: u64,
    deadline_ns: u64,
    filter: Option<Rc<FilterControl>>,
) -> (WatchdogRef, WatchdogHealth) {
    let stats: WatchdogRef = Rc::new(RefCell::new(WatchdogStats::default()));
    let health: WatchdogHealth = Rc::new(RefCell::new(Vec::new()));
    let ctx = WatchdogCtx {
        threads: Rc::new(dp.threads.clone()),
        last: Rc::new(RefCell::new(HashMap::new())),
        stats: stats.clone(),
        health: health.clone(),
        filter,
        period_ns,
        deadline_ns,
    };
    sim.schedule_in(Nanos(period_ns), move |sim| watchdog_tick(sim, ctx));
    (stats, health)
}

/// Last-sample memory per `(thread, queue-slot)`: frames polled so far
/// and the ring backlog at that instant.
type WatchdogSamples = Rc<RefCell<HashMap<(usize, usize), (u64, usize)>>>;

/// Everything one watchdog pass needs (bundled so the self-rescheduling
/// closure moves one value).
struct WatchdogCtx {
    threads: Rc<Vec<ThreadRef>>,
    last: WatchdogSamples,
    stats: WatchdogRef,
    health: WatchdogHealth,
    filter: Option<Rc<FilterControl>>,
    period_ns: u64,
    deadline_ns: u64,
}

/// One watchdog pass: sample every queue, detect hangs, publish the
/// verdicts, re-steer, and reschedule while within the deadline.
fn watchdog_tick(sim: &mut Simulator, ctx: WatchdogCtx) {
    ctx.stats.borrow_mut().scans += 1;
    // Sample every queue first, then re-steer all hung threads in ONE
    // pass. Re-steering per detection handled simultaneous hangs badly:
    // the first re-steer only knew about the first hung queue, so it
    // happily rotated buckets onto the *other* wedged queue — traffic
    // moved from one black hole into another and stayed stalled until
    // (at best) a later tick.
    let mut hung: Vec<usize> = Vec::new();
    for (ti, th) in ctx.threads.iter().enumerate() {
        if th.borrow().parked {
            continue;
        }
        let queues = th.borrow().queues().to_vec();
        for (pi, (nic, q)) in queues.iter().enumerate() {
            let (pending, received) = {
                let mut n = nic.borrow_mut();
                let r = n.rx_ring(*q);
                (r.pending(), r.received)
            };
            // Frames polled out so far; if this stands still across a
            // period while a backlog sits in the ring, nothing is
            // draining the queue.
            let polled = received - pending as u64;
            let prev = ctx.last.borrow_mut().insert((ti, pi), (polled, pending));
            if let Some((prev_polled, prev_pending)) = prev {
                if pending > 0 && prev_pending > 0 && polled == prev_polled {
                    ctx.stats.borrow_mut().hangs_detected += 1;
                    if !hung.contains(&ti) {
                        hung.push(ti);
                    }
                }
            }
        }
    }
    // Publish this scan's verdicts (clearing recovered threads) so the
    // elastic controller never steers flow groups toward a wedged core.
    *ctx.health.borrow_mut() = hung.clone();
    if !hung.is_empty() {
        resteer_hung_queues(sim, &ctx.threads, &hung, &ctx.stats, ctx.filter.as_deref());
    }
    if sim.now().as_nanos() + ctx.period_ns <= ctx.deadline_ns {
        let period_ns = ctx.period_ns;
        sim.schedule_in(Nanos(period_ns), move |sim| watchdog_tick(sim, ctx));
    }
}

/// Moves every RSS bucket of every `hung` thread's queues to the
/// healthy active queues (round-robin), resets the wedged ring(s), and
/// migrates the hung shards' connections to their new owners.
///
/// All simultaneously hung queues are handled in one pass so the
/// `healthy` set excludes *every* wedged thread: re-steering them one
/// at a time could round-robin a bucket from hung queue A onto
/// still-hung queue B, stranding roughly `1/healthy` of A's traffic in
/// a second black hole.
fn resteer_hung_queues(
    sim: &mut Simulator,
    threads: &[ThreadRef],
    hung: &[usize],
    stats: &WatchdogRef,
    filter: Option<&FilterControl>,
) {
    let now_ns = sim.now().as_nanos();
    let healthy: Vec<usize> = threads
        .iter()
        .enumerate()
        .filter(|(i, t)| !hung.contains(i) && !t.borrow().parked)
        .map(|(i, _)| i)
        .collect();
    if healthy.is_empty() {
        return; // Nowhere to move traffic: degraded until the hang ends.
    }
    // 1. Reprogram every port identically (multi-port hosts hash a flow
    //    the same way on each member, so the tables must agree) and
    //    reset the wedged rings. Each NIC's table is walked once per
    //    hung thread, but the first walk already moves every bucket
    //    pointing at *any* hung queue, so later walks move nothing.
    let mut moved = 0u64;
    let mut discarded = 0u64;
    for &h in hung {
        let queues = threads[h].borrow().queues().to_vec();
        for (nic, q) in &queues {
            let mut map = nic.borrow().redirection().to_vec();
            let mut rr = 0usize;
            for e in map.iter_mut() {
                if hung.contains(e) {
                    *e = healthy[rr % healthy.len()];
                    rr += 1;
                    moved += 1;
                }
            }
            let mut n = nic.borrow_mut();
            n.set_redirection(map);
            // 2. Discard frames wedged behind the stuck DMA consumer:
            //    they cannot be polled during the hang, and replaying
            //    them after migration would resurrect stale segments on
            //    the wrong shard. TCP retransmission recovers the loss.
            let ring = n.rx_ring(*q);
            while ring.poll().is_some() {
                discarded += 1;
            }
            let un = ring.unreplenished();
            ring.replenish(un);
        }
    }
    if moved == 0 {
        return; // Already re-steered by an earlier detection.
    }
    {
        let mut s = stats.borrow_mut();
        s.buckets_resteered += moved;
        s.frames_discarded += discarded;
    }
    // 3. Migrate each hung shard's connections to the shards their
    //    buckets now map to (same mechanism as elastic revocation).
    stats.borrow_mut().flows_migrated += migrate_mismatched_flows(now_ns, threads, filter);
    // 4. Wake the healthy threads so adopted flows make progress.
    for th in threads.iter() {
        if !th.borrow().parked {
            ElasticThread::schedule_iteration(th, sim);
        }
    }
}

// ---------------------------------------------------------------------
// The elastic control loop (§4.4 mechanisms + the policy the paper left
// to future work).
// ---------------------------------------------------------------------

/// Tuning for the elastic controller. All thresholds are expressed
/// through one queue-delay SLA proxy: a core's backlog (frames waiting
/// in its RX rings) times the estimated per-frame service time is the
/// latency a newly arrived request will see before processing even
/// starts — the §3 observation that queues "build up only at the NIC
/// edge" makes this the one place tail latency is forecastable.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Sampling/decision period.
    pub epoch_ns: u64,
    /// Queue-delay SLA proxy target: a core whose backlog exceeds this
    /// is violating; sustained violation adds a core.
    pub sla_ns: u64,
    /// Estimated service time per backlogged frame (converts ring depth
    /// into queueing delay).
    pub per_frame_ns: u64,
    /// Consecutive over-SLA epochs before a core is added (hysteresis:
    /// a one-epoch blip must not trigger a migration storm).
    pub add_epochs: u32,
    /// Consecutive idle epochs before a core is revoked. Much longer
    /// than `add_epochs`: growing late costs SLA violations, shrinking
    /// late only costs energy.
    pub revoke_epochs: u32,
    /// Revocation headroom: one fewer core must hold the projected
    /// delay under `sla_ns / revoke_headroom` before a revoke starts,
    /// so add and revoke thresholds never chatter against each other.
    pub revoke_headroom: u32,
    /// Never revoke below this many active threads.
    pub min_active: usize,
    /// Bounded migration rate: at most this many RSS redirection
    /// buckets move per epoch, so a scaling decision never migrates the
    /// whole connection table in one burst.
    pub max_buckets_per_epoch: usize,
    /// Epochs to wait before retrying an add whose target core the
    /// watchdog flagged hung.
    pub hung_backoff_epochs: u32,
    /// Graceful overload degradation: when every core is active and the
    /// delay proxy exceeds `shed_sla_ns`, publish a [`RuleAction::DropSyn`]
    /// rule for this port via the dataplane's [`FilterControl`] —
    /// shedding *new* connections at the NIC edge instead of letting
    /// established-flow latency collapse. Requires a filter handle.
    pub shed_port: Option<u16>,
    /// Queue-delay level that turns the admission gate on (only with
    /// every core already active).
    pub shed_sla_ns: u64,
    /// Consecutive calm epochs before the admission gate lifts —
    /// deliberately shorter than `revoke_epochs`: a closed gate turns
    /// away legitimate connections, so it reopens as soon as the
    /// overload clearly passes, while core revocation stays
    /// conservative.
    pub shed_calm_epochs: u32,
}

impl Default for ElasticConfig {
    fn default() -> ElasticConfig {
        ElasticConfig {
            epoch_ns: 50_000,
            sla_ns: 100_000,
            per_frame_ns: 1_000,
            add_epochs: 2,
            revoke_epochs: 20,
            revoke_headroom: 4,
            min_active: 1,
            max_buckets_per_epoch: 16,
            hung_backoff_epochs: 8,
            shed_port: None,
            shed_sla_ns: 200_000,
            shed_calm_epochs: 6,
        }
    }
}

/// Counters from the elastic control loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElasticStats {
    /// Decision epochs executed.
    pub epochs: u64,
    /// Cores added (spike absorption).
    pub adds: u64,
    /// Core revocations decided (idle consolidation).
    pub revokes: u64,
    /// Revoked threads fully drained and parked.
    pub parks: u64,
    /// Adds deferred because the watchdog flagged the target core hung
    /// (each defer backs off `hung_backoff_epochs` before retrying).
    pub add_retries: u64,
    /// RSS redirection buckets moved (rate-bounded per epoch).
    pub buckets_moved: u64,
    /// Live connections migrated between shards.
    pub flows_migrated: u64,
    /// Admission gate turn-ons / turn-offs.
    pub shed_enables: u64,
    /// See `shed_enables`.
    pub shed_disables: u64,
    /// Epochs the admission gate spent active.
    pub shed_epochs: u64,
    /// Epochs where the delay proxy exceeded the SLA.
    pub sla_violation_epochs: u64,
    /// Σ (unparked threads) over epochs — the busy-cores × time energy
    /// proxy (multiply by `epoch_ns` for core-nanoseconds). A static
    /// allocation pays `threads × epochs`.
    pub busy_core_epochs: u64,
    /// High-water mark of the queue-delay proxy.
    pub max_delay_ns: u64,
}

/// Shared handle to the controller's counters.
pub type ElasticRef = Rc<RefCell<ElasticStats>>;

/// Mutable decision state between epochs.
#[derive(Debug, Default)]
struct ElasticState {
    target_active: usize,
    over_streak: u32,
    idle_streak: u32,
    shed_over_streak: u32,
    shed_calm_streak: u32,
    /// Epochs left before a hung-target add may be retried.
    backoff: u32,
    shed_on: bool,
}

/// Everything one controller epoch needs (bundled so the
/// self-rescheduling closure moves one value).
struct ElasticCtx {
    threads: Rc<Vec<ThreadRef>>,
    cfg: ElasticConfig,
    filter: Option<Rc<FilterControl>>,
    health: Option<WatchdogHealth>,
    stats: ElasticRef,
    state: Rc<RefCell<ElasticState>>,
    deadline_ns: u64,
}

/// Starts the elastic control loop over `dp`: every `cfg.epoch_ns` it
/// samples per-core queue depth, converts it to the queue-delay SLA
/// proxy, and issues hysteresis-gated core add / revoke commands with a
/// bounded per-epoch migration rate. `filter` enables the overload
/// admission gate (and keeps migration destinations' policy snapshots
/// fresh); `health` is the watchdog's published hung-set, consulted
/// before steering flow groups toward a core. The controller initial
/// target is the currently unparked thread count; it stops rescheduling
/// once the next epoch would land past `deadline_ns`.
pub fn start_elastic_controller(
    sim: &mut Simulator,
    dp: &Dataplane,
    cfg: ElasticConfig,
    filter: Option<Rc<FilterControl>>,
    health: Option<WatchdogHealth>,
    deadline_ns: u64,
) -> ElasticRef {
    let stats: ElasticRef = Rc::new(RefCell::new(ElasticStats::default()));
    let target = dp.threads.iter().filter(|t| !t.borrow().parked).count().max(1);
    let ctx = ElasticCtx {
        threads: Rc::new(dp.threads.clone()),
        cfg: cfg.clone(),
        filter,
        health,
        stats: stats.clone(),
        state: Rc::new(RefCell::new(ElasticState {
            target_active: target,
            ..ElasticState::default()
        })),
        deadline_ns,
    };
    sim.schedule_in(Nanos(cfg.epoch_ns), move |sim| elastic_tick(sim, ctx));
    stats
}

/// One controller epoch: sample, decide, converge, park, gate.
fn elastic_tick(sim: &mut Simulator, ctx: ElasticCtx) {
    let now_ns = sim.now().as_nanos();
    let n = ctx.threads.len();
    let cfg = &ctx.cfg;
    let hung: Vec<usize> =
        ctx.health.as_ref().map(|h| h.borrow().clone()).unwrap_or_default();

    // --- Sample: per-core RX backlog over the unparked threads. The
    //     signal is the ring-depth high-water mark since the previous
    //     epoch, not the instantaneous depth: run-to-completion drains
    //     the ring at every iteration, so a point sample reads ~0 even
    //     on a core whose bursts queue far past the SLA. ---
    let mut max_pending = 0usize;
    let mut total_pending = 0usize;
    let mut busy = 0usize;
    for th in ctx.threads.iter() {
        let t = th.borrow();
        if t.parked {
            continue;
        }
        busy += 1;
        let mut mine = 0usize;
        for (nic, q) in t.queues() {
            mine += nic.borrow_mut().rx_ring(*q).take_depth_hwm();
        }
        max_pending = max_pending.max(mine);
        total_pending += mine;
    }
    let max_delay = max_pending as u64 * cfg.per_frame_ns;

    let mut wake_new: Option<usize> = None;
    {
        let mut st = ctx.stats.borrow_mut();
        let mut s = ctx.state.borrow_mut();
        st.epochs += 1;
        st.busy_core_epochs += busy as u64;
        st.max_delay_ns = st.max_delay_ns.max(max_delay);
        if s.backoff > 0 {
            s.backoff -= 1;
        }

        // --- Hysteresis bookkeeping. ---
        if max_delay > cfg.sla_ns {
            st.sla_violation_epochs += 1;
            s.over_streak += 1;
            s.idle_streak = 0;
        } else {
            s.over_streak = 0;
            // Idle iff one fewer core would still hold the delay proxy
            // with `revoke_headroom` to spare.
            let projected = if s.target_active > 1 {
                total_pending as u64 * cfg.per_frame_ns / (s.target_active as u64 - 1)
            } else {
                u64::MAX
            };
            if projected.saturating_mul(cfg.revoke_headroom.max(1) as u64) <= cfg.sla_ns {
                s.idle_streak += 1;
            } else {
                s.idle_streak = 0;
            }
        }

        // --- Scale decision. ---
        if s.over_streak >= cfg.add_epochs && s.target_active < n && s.backoff == 0 {
            // Threads activate in index order, so the add target is the
            // first parked index.
            let next = s.target_active;
            if hung.contains(&next) {
                // The watchdog says this core is a black hole: defer the
                // add and back off before retrying rather than migrating
                // flow groups into it.
                st.add_retries += 1;
                s.backoff = cfg.hung_backoff_epochs;
            } else {
                s.target_active += 1;
                st.adds += 1;
                s.over_streak = 0;
                wake_new = Some(next);
            }
        } else if s.idle_streak >= cfg.revoke_epochs && s.target_active > cfg.min_active.max(1)
        {
            s.target_active -= 1;
            st.revokes += 1;
            s.idle_streak = 0;
        }
    }
    if let Some(next) = wake_new {
        ctx.threads[next].borrow_mut().parked = false;
        ElasticThread::schedule_iteration(&ctx.threads[next], sim);
    }

    // --- Converge the redirection tables toward bucket b → b % target,
    //     at most `max_buckets_per_epoch` buckets per epoch, then drain
    //     and migrate exactly the flows those buckets carried. ---
    let target = ctx.state.borrow().target_active;
    let (moved_buckets, sources) =
        converge_buckets(&ctx.threads, target, cfg.max_buckets_per_epoch, &hung);
    if moved_buckets > 0 {
        ctx.stats.borrow_mut().buckets_moved += moved_buckets;
        for &i in &sources {
            if !ctx.threads[i].borrow().parked {
                // Quiesce the source before its flows leave: frames in
                // its ring and application work already queued must go
                // through its own stack first, or the migrated flows
                // would leave orphaned events (and un-sent replies)
                // behind.
                drain_rings_through_own_shard(&ctx.threads[i], now_ns);
                ElasticThread::drain_user_work(&ctx.threads[i], sim);
            }
        }
        let flows = migrate_mismatched_flows(now_ns, &ctx.threads, ctx.filter.as_deref());
        ctx.stats.borrow_mut().flows_migrated += flows;
        for th in ctx.threads.iter() {
            if !th.borrow().parked {
                ElasticThread::schedule_iteration(th, sim);
            }
        }
    }

    // --- Park revoked threads once fully drained: no buckets steer to
    //     them, their rings are empty, and their shards hold no flows
    //     (the Exokernel-style revocation handshake completes here). ---
    let map = dataplane_nics(&ctx.threads)[0].borrow().redirection().to_vec();
    for i in target..n {
        let th = &ctx.threads[i];
        if th.borrow().parked || map.contains(&i) {
            continue;
        }
        let (flows, backlog) = {
            let t = th.borrow();
            let mut backlog = 0usize;
            for (nic, q) in t.queues() {
                backlog += nic.borrow_mut().rx_ring(*q).pending();
            }
            (t.shard.flow_count(), backlog)
        };
        if flows == 0 && backlog == 0 {
            ElasticThread::drain_user_work(th, sim);
            th.borrow_mut().parked = true;
            ctx.stats.borrow_mut().parks += 1;
        }
    }

    // --- Admission gate (graceful overload degradation). ---
    if let (Some(port), Some(fc)) = (cfg.shed_port, ctx.filter.as_ref()) {
        let mut st = ctx.stats.borrow_mut();
        let mut s = ctx.state.borrow_mut();
        let saturated = s.target_active == n;
        if saturated && max_delay > cfg.shed_sla_ns {
            s.shed_over_streak += 1;
            s.shed_calm_streak = 0;
        } else {
            s.shed_over_streak = 0;
            if max_delay <= cfg.sla_ns / 2 {
                s.shed_calm_streak += 1;
            } else {
                s.shed_calm_streak = 0;
            }
        }
        if !s.shed_on && s.shed_over_streak >= cfg.add_epochs {
            // Every core is active and still drowning: shed new
            // connections at the NIC edge so established flows keep
            // their latency. Established traffic passes untouched.
            s.shed_on = true;
            st.shed_enables += 1;
            fc.update(|p| p.clone().rule_port(IpProto::Tcp, port, RuleAction::DropSyn));
        } else if s.shed_on && s.shed_calm_streak >= cfg.shed_calm_epochs {
            // Sustained calm: lift the gate (explicit Pass overrides the
            // DropSyn rule; last writer wins in the rule table).
            s.shed_on = false;
            st.shed_disables += 1;
            fc.update(|p| p.clone().rule_port(IpProto::Tcp, port, RuleAction::Pass));
        }
        if s.shed_on {
            st.shed_epochs += 1;
        }
    }

    if now_ns + cfg.epoch_ns <= ctx.deadline_ns {
        let epoch_ns = cfg.epoch_ns;
        sim.schedule_in(Nanos(epoch_ns), move |sim| elastic_tick(sim, ctx));
    }
}

/// Moves up to `budget` RSS buckets toward the canonical map
/// `bucket b → queue (b % target)`, reprogramming every NIC port
/// identically. Buckets whose wanted owner is in `skip` (hung) stay
/// where they are and retry next epoch. Returns the number of buckets
/// moved and the distinct old owners they moved away from (whose rings
/// must drain before their flows migrate).
fn converge_buckets(
    threads: &[ThreadRef],
    target: usize,
    budget: usize,
    skip: &[usize],
) -> (u64, Vec<usize>) {
    let nics = dataplane_nics(threads);
    let mut map = nics[0].borrow().redirection().to_vec();
    let mut moved = 0u64;
    let mut sources: Vec<usize> = Vec::new();
    for (b, e) in map.iter_mut().enumerate() {
        if moved as usize >= budget {
            break;
        }
        let want = b % target;
        if *e != want && !skip.contains(&want) {
            if !sources.contains(e) {
                sources.push(*e);
            }
            *e = want;
            moved += 1;
        }
    }
    if moved > 0 {
        for nic in &nics {
            nic.borrow_mut().set_redirection(map.clone());
        }
    }
    (moved, sources)
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("dataplanes", &self.dataplanes.len())
            .finish()
    }
}

/// IXCP's handle on a dataplane's pre-stack filter: the rule table lives
/// in an [`Rcu`] cell owned here; every elastic thread's NIC queues and
/// TCP shard hold `Rc` snapshots of the current version. Updating rules
/// is a pure control-plane action — build the new table, publish it,
/// swap the snapshots — and the hot path never sees anything but an
/// immutable object it already holds, exactly the paper's "commutative
/// API calls + RCU for the rare shared state" recipe (§4.3).
pub struct FilterControl {
    rcu: Rcu<FilterPolicy>,
    readers: Vec<crate::rcu::ReaderId>,
    nics: Vec<NicRef>,
    threads: Vec<ThreadRef>,
    /// False after [`uninstall`](FilterControl::uninstall): updates keep
    /// versioning the table but nothing is published — an `update`
    /// racing an uninstall must not resurrect the filter on the hot
    /// path, and a migration absorb must not re-arm a retired policy.
    installed: Cell<bool>,
}

impl FilterControl {
    /// Publishes `policy` to every NIC port and shard of `dp` and
    /// returns the control handle. One RCU reader is registered per
    /// elastic thread (the real system's per-core quiescence bookkeeping).
    pub fn install(dp: &Dataplane, policy: FilterPolicy) -> FilterControl {
        let rcu = Rcu::new(policy);
        let nics = dataplane_nics(&dp.threads);
        let readers = dp.threads.iter().map(|_| rcu.register_reader()).collect();
        let fc = FilterControl {
            rcu,
            readers,
            nics,
            threads: dp.threads.clone(),
            installed: Cell::new(true),
        };
        fc.publish();
        fc
    }

    /// Pushes the current snapshot into every NIC and shard.
    fn publish(&self) {
        let snap = self.rcu.read();
        for nic in &self.nics {
            nic.borrow_mut().set_filter(Some(snap.clone()));
        }
        for th in &self.threads {
            th.borrow_mut().shard.set_filter_policy(Some(snap.clone()));
        }
    }

    /// Replaces the rule table: `f` builds the successor from the
    /// current version (add/remove rules, rebuild from scratch — the
    /// policy is a value). The new snapshot is republished and the old
    /// version reclaimed.
    pub fn update(&self, f: impl FnOnce(&FilterPolicy) -> FilterPolicy) {
        self.rcu.update(f);
        if self.installed.get() {
            self.publish();
        }
        // Control-plane actions run between run-to-completion cycles in
        // the single-threaded simulation, so every registered reader is
        // at a quiescent point the moment the snapshots are swapped;
        // retired versions reclaim immediately.
        for r in &self.readers {
            self.rcu.quiescent(*r);
        }
        self.rcu.reclaim();
    }

    /// Re-pushes the current snapshot into one shard. The §4.4
    /// migration absorb path calls this for every destination: a rule
    /// update published while the migration was in flight would
    /// otherwise leave the adopted flows classified by whatever stale
    /// snapshot the destination captured before the update. No-op after
    /// [`uninstall`](FilterControl::uninstall).
    pub fn republish_shard(&self, th: &ThreadRef) {
        if !self.installed.get() {
            return;
        }
        th.borrow_mut().shard.set_filter_policy(Some(self.rcu.read()));
    }

    /// Removes the filter from every NIC and shard (the dataplane
    /// returns to the exact unfiltered hot path). Later `update`s keep
    /// versioning the rule table without publishing it.
    pub fn uninstall(&self) {
        self.installed.set(false);
        for nic in &self.nics {
            nic.borrow_mut().set_filter(None);
        }
        for th in &self.threads {
            th.borrow_mut().shard.set_filter_policy(None);
        }
    }

    /// The current policy snapshot (what the hot path is classifying
    /// with).
    pub fn snapshot(&self) -> Rc<FilterPolicy> {
        self.rcu.read()
    }

    /// Retired-but-unreclaimed policy versions (tests pin this at 0
    /// after `update`).
    pub fn retired_len(&self) -> usize {
        self.rcu.retired_len()
    }
}

impl std::fmt::Debug for FilterControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterControl")
            .field("rules", &self.rcu.read().rule_count())
            .field("nics", &self.nics.len())
            .field("threads", &self.threads.len())
            .finish()
    }
}
