//! The IX dataplane CPU cost model.
//!
//! These constants replace the testbed's Xeon E5-2665 @ 2.4 GHz. They are
//! calibrated so the headline shapes of §5 reproduce:
//!
//! * IX-to-IX unloaded one-way latency ≈ 5.7 µs at 64 B (Fig 2): the
//!   fabric contributes ≈ 2.6 µs (see `ix_nic::params`), leaving ≈ 1.5 µs
//!   of processing per side.
//! * 64 B echo saturates 10GbE (8.8 M msgs/s) with a handful of cores
//!   (Fig 3a/3b): per-message dataplane work of well under 1 µs-core
//!   once batching amortizes fixed costs.
//! * The kernel/user CPU split for memcached lands at < 10% dataplane
//!   time (§5.5) because the dataplane path is short.

/// CPU costs (in nanoseconds of a nominal full-speed core) for dataplane
/// operations.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Fixed cost of one run-to-completion iteration: polling the RX
    /// descriptor rings (Fig 1b step 1), even when empty.
    pub poll_ns: u64,
    /// Protocol processing per received packet (Fig 1b step 2): driver
    /// demultiplex + TCP/IP state machine.
    pub rx_pkt_ns: u64,
    /// Additional per-byte receive cost (checksum verify is modeled as
    /// NIC-offloaded; this covers cache-line touches of the payload).
    pub rx_byte_ns_x1000: u64,
    /// One protection-domain crossing in VMX non-root mode (§6: "on the
    /// order of a single L3 cache miss"). Charged twice per cycle with
    /// user work (steps 3 entry and exit).
    pub vmx_transition_ns: u64,
    /// Delivering one event condition to user space (array write +
    /// cookie-based dispatch).
    pub event_ns: u64,
    /// Validating and executing one batched system call (step 4),
    /// excluding per-packet transmit work it triggers.
    pub syscall_ns: u64,
    /// Running the timer wheel (step 5) per iteration.
    pub timer_pass_ns: u64,
    /// Transmit path per packet (step 6): descriptor write + bookkeeping.
    pub tx_pkt_ns: u64,
    /// Additional per-byte transmit cost ×1000 (zero-copy: no payload
    /// copy, only segmentation bookkeeping; nonzero to bound the 8 KB
    /// message results of Fig 3c).
    pub tx_byte_ns_x1000: u64,
    /// One PCIe doorbell write (§6: coalescing these on the RX replenish
    /// path was required to scale).
    pub pcie_doorbell_ns: u64,
    /// Replenish descriptors in batches of at least this many to coalesce
    /// doorbell writes (§6: 32). Setting it to 1 reproduces the §6
    /// bottleneck for the ablation bench.
    pub rx_replenish_batch: usize,
    /// Upper bound B on packets processed per iteration (§5.1: B = 64
    /// maximizes microbenchmark throughput; Fig 6 sweeps it).
    pub batch_bound: usize,
    /// Per-connection hot state for the DDIO working-set model (shared
    /// with `ix_nic::cache`).
    pub use_ddio_model: bool,
    /// Cold-batch penalty: per-packet work in a batch of `b` costs
    /// `(1 + cold_batch_penalty / b)×` the warm cost, modeling the
    /// instruction-cache, prefetch, and branch-predictor warmup the
    /// paper credits batching with (§3: "batching improves packet rate
    /// because it amortizes system call transition overheads and
    /// improves instruction cache locality, prefetching effectiveness,
    /// and branch prediction accuracy").
    pub cold_batch_penalty: f64,
    /// Ablation: disable the zero-copy API and charge a user-copy per
    /// byte in both directions (what a POSIX read/write interface would
    /// cost, §3/§6).
    pub copy_api: bool,
    /// Copy cost per byte × 1000 when `copy_api` is set.
    pub copy_byte_ns_x1000: u64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            poll_ns: 60,
            rx_pkt_ns: 300,
            rx_byte_ns_x1000: 150, // 0.15 ns/byte.
            vmx_transition_ns: 40,
            event_ns: 25,
            syscall_ns: 60,
            timer_pass_ns: 40,
            tx_pkt_ns: 220,
            tx_byte_ns_x1000: 150,
            pcie_doorbell_ns: 250,
            rx_replenish_batch: 32,
            batch_bound: 64,
            use_ddio_model: true,
            cold_batch_penalty: 0.42,
            copy_api: false,
            copy_byte_ns_x1000: 350,
        }
    }
}

impl CostParams {
    /// Receive-side cost for one packet of `len` payload-carrying bytes.
    pub fn rx_cost(&self, len: usize) -> u64 {
        let copy = if self.copy_api {
            (len as u64 * self.copy_byte_ns_x1000) / 1000
        } else {
            0
        };
        self.rx_pkt_ns + (len as u64 * self.rx_byte_ns_x1000) / 1000 + copy
    }

    /// Transmit-side cost for one packet of `len` bytes.
    pub fn tx_cost(&self, len: usize) -> u64 {
        let copy = if self.copy_api {
            (len as u64 * self.copy_byte_ns_x1000) / 1000
        } else {
            0
        };
        self.tx_pkt_ns + (len as u64 * self.tx_byte_ns_x1000) / 1000 + copy
    }

    /// A cost profile with the given batch bound (Fig 6's B sweep).
    pub fn with_batch_bound(b: usize) -> CostParams {
        CostParams {
            batch_bound: b,
            ..CostParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_message_cost_supports_line_rate() {
        // A 64B echo costs roughly rx + tx + syscall + event + its share
        // of fixed costs. With B=64 batching the fixed costs amortize;
        // the per-message marginal cost must stay below ~1 µs-core so a
        // few cores can drive 8.8M msgs/s (Fig 3a/3b).
        let p = CostParams::default();
        let per_msg = p.rx_cost(64) + p.tx_cost(64) + p.syscall_ns + p.event_ns;
        assert!(per_msg < 1_000, "per-message cost {per_msg} ns too high");
    }

    #[test]
    fn unloaded_side_cost_matches_fig2() {
        // One unloaded message: full fixed costs, batch of 1.
        let p = CostParams::default();
        let side = p.poll_ns
            + p.rx_cost(64)
            + 2 * p.vmx_transition_ns
            + p.event_ns
            + p.syscall_ns
            + p.timer_pass_ns
            + p.tx_cost(64)
            + p.pcie_doorbell_ns;
        // Each side contributes ~1-1.6 µs; with the ~2.6 µs fabric and
        // the application's own work this lands near the paper's 5.7 µs
        // one-way figure.
        assert!(side > 800 && side < 1_800, "side cost {side}");
    }

    #[test]
    fn helpers_scale_with_bytes() {
        let p = CostParams::default();
        assert!(p.rx_cost(1460) > p.rx_cost(64));
        assert_eq!(p.rx_cost(0), p.rx_pkt_ns);
        assert!(p.tx_cost(8192) > p.tx_cost(64) + 1_000);
    }
}
