//! Golden-trace regression: one TCP connection's full lifecycle —
//! handshake, a 16-byte echo round trip, graceful FIN teardown — run
//! through the complete simulated stack (libix, dataplane, TCP shard,
//! NIC rings, switch). The exact `(simulated-time, event)` sequence is
//! pinned; any change to protocol timing, batching, the event order, or
//! the RNG stream shows up here as a diff against the golden trace.
//!
//! If a deliberate change shifts the trace, re-pin it from the test's
//! failure output — but explain the shift in the commit message.

use std::cell::RefCell;
use std::rc::Rc;

use ix_core::dataplane::Dataplane;
use ix_core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix_core::params::CostParams;
use ix_nic::fabric::Fabric;
use ix_nic::params::MachineParams;
use ix_sim::{Nanos, Simulator};
use ix_tcp::{DeadReason, StackConfig};
use ix_testkit::Bytes;

const MSG: usize = 16;

type Trace = Rc<RefCell<Vec<(u64, String)>>>;

fn record(trace: &Trace, now: u64, event: impl Into<String>) {
    trace.borrow_mut().push((now, event.into()));
}

/// Server: echo the message once, record accept/data/teardown.
struct TraceServer {
    trace: Trace,
}

impl LibixHandler for TraceServer {
    fn on_accept(&mut self, ctx: &mut ConnCtx<'_>) {
        record(&self.trace, ctx.now_ns, "server: accept");
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        record(&self.trace, ctx.now_ns, format!("server: data({})", data.len()));
        let reply = Bytes::copy_from_slice(data);
        assert!(ctx.write(reply));
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, reason: DeadReason) {
        record(&self.trace, ctx.now_ns, format!("server: dead({reason:?})"));
    }
}

/// Client: connect once, send one message, close gracefully on the
/// full echo.
struct TraceClient {
    server: ix_net::Ipv4Addr,
    started: bool,
    got: usize,
    trace: Trace,
}

impl LibixHandler for TraceClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            ctx.connect(self.server, 9000, 0);
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "connect failed");
        record(&self.trace, ctx.now_ns, "client: connected");
        assert!(ctx.write(Bytes::from(vec![0x5au8; MSG])));
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        record(&self.trace, ctx.now_ns, format!("client: data({})", data.len()));
        self.got += data.len();
        assert!(self.got <= MSG);
        if self.got == MSG {
            record(&self.trace, ctx.now_ns, "client: close");
            ctx.close();
        }
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, reason: DeadReason) {
        record(&self.trace, ctx.now_ns, format!("client: dead({reason:?})"));
    }

    fn wants_tick(&self, _now: u64) -> bool {
        !self.started
    }
}

/// Runs the scenario to quiescence and returns the recorded trace.
fn run_scenario() -> Vec<(u64, String)> {
    let mut sim = Simulator::new(7);
    let mut fabric = Fabric::new(8, MachineParams::default());
    let client = fabric.add_host(1, 2, 0);
    let server = fabric.add_host(1, 8, 0);
    let server_ip = fabric.host(server).ip;
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));

    let t = trace.clone();
    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        1,
        CostParams::default(),
        StackConfig::default(),
        Some(9000),
        move |_| Box::new(Libix::new(TraceServer { trace: t.clone() })),
    );
    let t = trace.clone();
    let cdp = Dataplane::launch(
        &mut sim,
        fabric.host(client),
        1,
        CostParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(TraceClient {
                server: server_ip,
                started: false,
                got: 0,
                trace: t.clone(),
            }))
        },
    );
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    cdp.seed_arp(fabric.host(server).ip, fabric.host(server).mac);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(50).as_nanos()));
    let recorded = trace.borrow().clone();
    recorded
}

#[test]
fn tcp_lifecycle_matches_golden_trace() {
    let got = run_scenario();
    let rendered: Vec<String> =
        got.iter().map(|(t, e)| format!("{t} {e}")).collect();
    // Pinned from a run at the current engine parameters. Notable
    // checkpoints: SYN→SYN/ACK→ACK completes by ~10.8 µs of simulated
    // time (client sees `connected` first — its ACK is in flight while
    // the server's accept upcall waits for the next dataplane cycle);
    // one 16 B echo round trip lands at ~23.5 µs; the client's graceful
    // close delivers `PeerFin` to the server ~5.8 µs later. The client
    // side ends at `close` — a locally-initiated teardown retires the
    // connection without a further upcall.
    let golden = [
        "10818 client: connected",
        "16880 server: accept",
        "17608 server: data(16)",
        "23450 client: data(16)",
        "23450 client: close",
        "29298 server: dead(PeerFin)",
    ];
    assert_eq!(
        rendered,
        golden,
        "\ntrace diverged from golden; actual:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn tcp_lifecycle_trace_is_reproducible() {
    assert_eq!(run_scenario(), run_scenario());
}
