//! End-to-end dataplane tests: IX client and IX server over the
//! simulated fabric (NIC rings, RSS, switch, virtual time), exercising
//! the full Fig 1b cycle on both ends.

use std::cell::RefCell;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix_core::dataplane::Dataplane;
use ix_core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix_core::params::CostParams;
use ix_core::ixcp::ControlPlane;
use ix_nic::fabric::Fabric;
use ix_nic::params::MachineParams;
use ix_sim::{Nanos, Simulator};
use ix_tcp::StackConfig;

/// Echoes every received byte back, charging a small service cost.
struct EchoServer {
    service_ns: u64,
}

impl LibixHandler for EchoServer {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        ctx.charge(self.service_ns);
        let reply = Bytes::copy_from_slice(data);
        assert!(ctx.write(reply));
    }
}

/// Shared measurement results for the ping client.
#[derive(Debug, Default)]
struct PingStats {
    rtts_ns: Vec<u64>,
    done: bool,
}

/// Opens `conns` connections; on each, ping-pongs a `msg`-byte message
/// `reps` times, then aborts (RST), as the §5.3 echo benchmark does.
struct PingClient {
    server: ix_net::Ipv4Addr,
    port: u16,
    msg: usize,
    reps: usize,
    conns: usize,
    started: usize,
    /// Per-connection state: bytes of the current reply received, reps
    /// completed, send timestamp.
    inflight: std::collections::HashMap<u64, (usize, usize, u64)>,
    results: Rc<RefCell<PingStats>>,
    finished_conns: usize,
}

impl PingClient {
    fn fire(&mut self, ctx: &mut ConnCtx<'_>) {
        let user = ctx.conn.user;
        let st = self.inflight.get_mut(&user).expect("tracked");
        st.2 = ctx.now_ns;
        let payload = Bytes::from(vec![0x5au8; self.msg]);
        assert!(ctx.write(payload));
    }
}

impl LibixHandler for PingClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        while self.started < self.conns {
            let user = self.started as u64;
            self.inflight.insert(user, (0, 0, 0));
            ctx.connect(self.server, self.port, user);
            self.started += 1;
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "connect failed");
        self.fire(ctx);
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let user = ctx.conn.user;
        let now = ctx.now_ns;
        let msg = self.msg;
        let st = self.inflight.get_mut(&user).expect("tracked");
        st.0 += data.len();
        assert!(st.0 <= msg, "over-delivery");
        if st.0 == msg {
            st.0 = 0;
            st.1 += 1;
            self.results.borrow_mut().rtts_ns.push(now - st.2);
            if st.1 >= self.reps {
                ctx.abort();
                self.finished_conns += 1;
                if self.finished_conns == self.conns {
                    self.results.borrow_mut().done = true;
                }
            } else {
                self.fire(ctx);
            }
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        self.started < self.conns
    }
}

/// Builds a 2-host fabric (client, server), both running IX.
fn setup(
    server_threads: usize,
    msg: usize,
    reps: usize,
    conns: usize,
) -> (Simulator, Fabric, Dataplane, Dataplane, Rc<RefCell<PingStats>>) {
    let mut sim = Simulator::new(7);
    let mut fabric = Fabric::new(8, MachineParams::default());
    let client = fabric.add_host(1, 2, 0);
    let server = fabric.add_host(1, 8, 0);
    let results = Rc::new(RefCell::new(PingStats::default()));
    let server_ip = fabric.host(server).ip;

    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        server_threads,
        CostParams::default(),
        StackConfig::default(),
        Some(9000),
        |_| Box::new(Libix::new(EchoServer { service_ns: 150 })),
    );
    let r2 = results.clone();
    let cdp = Dataplane::launch(
        &mut sim,
        fabric.host(client),
        1,
        CostParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(PingClient {
                server: server_ip,
                port: 9000,
                msg,
                reps,
                conns,
                started: 0,
                inflight: Default::default(),
                results: r2.clone(),
                finished_conns: 0,
            }))
        },
    );
    // Seed ARP both ways (bring-up; ARP itself is tested in ix-tcp).
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    cdp.seed_arp(fabric.host(server).ip, fabric.host(server).mac);
    (sim, fabric, sdp, cdp, results)
}

#[test]
fn single_echo_rtt_near_paper_figure() {
    let (mut sim, _fabric, _s, _c, results) = setup(1, 64, 1, 1);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(50).as_nanos()));
    let r = results.borrow();
    assert!(r.done, "echo did not complete");
    assert_eq!(r.rtts_ns.len(), 1);
    let rtt = r.rtts_ns[0];
    // Fig 2: IX one-way ≈ 5.7 µs for 64 B ⇒ RTT ≈ 11.4 µs. Allow a band:
    // the measured RTT includes connection warmup effects.
    assert!(rtt > 6_000 && rtt < 25_000, "RTT {rtt} ns out of band");
}

#[test]
fn pipelined_echoes_complete_exactly() {
    let (mut sim, _fabric, sdp, _c, results) = setup(2, 64, 200, 4);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(200).as_nanos()));
    let r = results.borrow();
    assert!(r.done, "run incomplete: {} rtts", r.rtts_ns.len());
    assert_eq!(r.rtts_ns.len(), 200 * 4);
    // No packet loss end to end: server saw traffic, no ring drops.
    let st = sdp.stats();
    assert!(st.rx_packets > 0);
    assert_eq!(st.tx_ring_drops, 0);
}

#[test]
fn rss_spreads_connections_across_elastic_threads() {
    let (mut sim, _fabric, sdp, _c, results) = setup(4, 64, 2, 32);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(100).as_nanos()));
    assert!(results.borrow().done);
    let busy: Vec<u64> = sdp
        .threads
        .iter()
        .map(|t| t.borrow().stats.rx_packets)
        .collect();
    let active = busy.iter().filter(|&&p| p > 0).count();
    assert!(active >= 3, "RSS spread used only {active}/4 threads: {busy:?}");
}

#[test]
fn kernel_dominates_dataplane_but_split_is_tracked() {
    let (mut sim, _fabric, sdp, _c, results) = setup(1, 64, 500, 2);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(200).as_nanos()));
    assert!(results.borrow().done);
    let (kernel, user) = sdp.cpu_split();
    assert!(kernel > 0 && user > 0);
    // The echo app charges 150 ns/request vs ~1 µs dataplane work: the
    // dataplane share is large for a trivial app, but bounded.
    let share = kernel as f64 / (kernel + user) as f64;
    assert!(share > 0.5 && share < 0.99, "kernel share {share}");
}

#[test]
fn adaptive_batching_stays_small_when_unloaded() {
    let (mut sim, _fabric, sdp, _c, results) = setup(1, 64, 50, 1);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(100).as_nanos()));
    assert!(results.borrow().done);
    let st = sdp.stats();
    // One connection ping-ponging: each iteration sees ~1 packet. "We
    // never wait to batch requests" (§3).
    let avg_batch = st.batch_sum as f64 / st.iterations.max(1) as f64;
    assert!(avg_batch < 3.0, "unloaded batch size {avg_batch}");
    assert_eq!(st.full_batches, 0);
}

#[test]
fn steady_state_runs_without_scratch_reallocation() {
    let (mut sim, _fabric, sdp, _c, results) = setup(2, 64, 500, 4);
    // Warmup: the per-cycle scratch buffers grow to their high-water
    // capacity during the first bursts of traffic.
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(2).as_nanos()));
    let warm = sdp.stats();
    assert!(warm.iterations > 100, "warmup saw only {} cycles", warm.iterations);
    // Steady state: thousands more run-to-completion cycles, zero
    // further scratch reallocation (ISSUE 10 satellite pin).
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(500).as_nanos()));
    let r = results.borrow();
    assert!(r.done, "run incomplete: {} rtts", r.rtts_ns.len());
    let st = sdp.stats();
    assert!(st.iterations > warm.iterations, "no cycles ran after warmup");
    assert_eq!(
        st.scratch_allocs, warm.scratch_allocs,
        "scratch buffers reallocated in steady state ({} cycles)",
        st.iterations - warm.iterations
    );
}

#[test]
fn ixcp_revocation_migrates_flows_and_traffic_continues() {
    let (mut sim, _fabric, sdp, _c, results) = setup(4, 64, 400, 16);
    // Let traffic start on 4 threads.
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(5).as_nanos()));
    let mut cp = ControlPlane::new();
    let id = cp.register(sdp);
    assert_eq!(cp.active_threads(id), 4);
    // Revoke two threads mid-run; flows must migrate and finish.
    cp.set_active_threads(&mut sim, id, 2);
    assert_eq!(cp.active_threads(id), 2);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(400).as_nanos()));
    assert!(
        results.borrow().done,
        "traffic stalled after revocation: {} rtts",
        results.borrow().rtts_ns.len()
    );
    // Parked threads hold no flows.
    for th in cp.dataplane(id).threads.iter().skip(2) {
        assert_eq!(th.borrow().shard.flow_count(), 0, "parked thread kept flows");
    }
    // And the control plane can give them back.
    cp.set_active_threads(&mut sim, id, 4);
    assert_eq!(cp.active_threads(id), 4);
}

#[test]
fn queue_monitoring_reports_backlog() {
    let (mut sim, _fabric, sdp, _c, results) = setup(1, 64, 50, 1);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(100).as_nanos()));
    assert!(results.borrow().done);
    let mut cp = ControlPlane::new();
    let id = cp.register(sdp);
    let rep = cp.monitor(id);
    // Quiescent now: no backlog, and no drops ever happened.
    assert_eq!(rep.total_rx_backlog, 0);
    assert_eq!(rep.rx_drops, 0);
}
