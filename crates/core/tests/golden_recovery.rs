//! Golden recovery trace: one TCP connection hit by two scripted,
//! RNG-free frame drops ([`ix_faults::LinkFaults::scripted_drops`]) and
//! recovering through both loss-recovery mechanisms in sequence —
//! first a retransmission **timeout** on a lone 16-byte segment (no
//! duplicate ACKs possible), then a **fast retransmit** when the first
//! segment of an 8×MSS burst is dropped and the trailing segments
//! generate duplicate ACKs. The `(simulated-time, event)` sequence is
//! pinned; any change to RTO arithmetic, dup-ACK detection, the fault
//! plane's hook order, or the recovery counters shows up as a diff.
//!
//! If a deliberate change shifts the trace, re-pin it from the test's
//! failure output — but explain the shift in the commit message.

use std::cell::RefCell;
use std::rc::Rc;

use ix_core::dataplane::Dataplane;
use ix_core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix_core::params::CostParams;
use ix_faults::{FaultPlan, LinkFaults};
use ix_nic::fabric::Fabric;
use ix_nic::params::MachineParams;
use ix_sim::{Nanos, Simulator};
use ix_tcp::{DeadReason, StackConfig, StackStats};
use ix_testkit::Bytes;

const MSG: usize = 16;
/// Burst sized so the drop of its first segment leaves seven trailing
/// segments — more than the three duplicate ACKs fast retransmit needs.
const BURST: usize = 8 * 1460;

type Trace = Rc<RefCell<Vec<(u64, String)>>>;

fn record(trace: &Trace, now: u64, event: impl Into<String>) {
    trace.borrow_mut().push((now, event.into()));
}

/// Server: echo everything, record accept/teardown.
struct TraceServer {
    trace: Trace,
}

impl LibixHandler for TraceServer {
    fn on_accept(&mut self, ctx: &mut ConnCtx<'_>) {
        record(&self.trace, ctx.now_ns, "server: accept");
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let reply = Bytes::copy_from_slice(data);
        assert!(ctx.write(reply));
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, reason: DeadReason) {
        record(&self.trace, ctx.now_ns, format!("server: dead({reason:?})"));
    }
}

/// Client: one 16-byte echo (its request frame is scripted to drop, so
/// it completes via RTO), then one 8×MSS echo (its first segment is
/// scripted to drop, so it completes via fast retransmit), then close.
struct TraceClient {
    server: ix_net::Ipv4Addr,
    started: bool,
    got: usize,
    trace: Trace,
}

impl LibixHandler for TraceClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            ctx.connect(self.server, 9000, 0);
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "connect failed");
        record(&self.trace, ctx.now_ns, "client: connected");
        assert!(ctx.write(Bytes::from(vec![0x5au8; MSG])));
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let before = self.got;
        self.got += data.len();
        assert!(self.got <= MSG + BURST, "over-delivery at {}", self.got);
        if before < MSG && self.got >= MSG {
            record(&self.trace, ctx.now_ns, "client: echo#1 complete");
            assert!(ctx.write(Bytes::from(vec![0xa5u8; BURST])));
        }
        if self.got == MSG + BURST {
            record(&self.trace, ctx.now_ns, "client: echo#2 complete");
            ctx.close();
        }
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, reason: DeadReason) {
        record(&self.trace, ctx.now_ns, format!("client: dead({reason:?})"));
    }

    fn wants_tick(&self, _now: u64) -> bool {
        !self.started
    }
}

/// A stack tuned so both recovery paths are reachable: a short RTO
/// floor keeps the timeout episode inside the run window, and a large
/// scaled receive window keeps the advertised-window field saturated at
/// the 16-bit cap so out-of-order arrivals do not perturb it (the
/// dup-ACK test requires an unchanged window).
fn config() -> StackConfig {
    let mut cfg = StackConfig::low_latency();
    cfg.recv_window = 1_000_000;
    cfg.window_scale = 2;
    cfg
}

/// Runs the scenario with the given scripted drops (per-link frame
/// indices on the client's cable) and returns the recorded trace plus
/// the client-side stack stats.
fn run_scenario(drops: &[u64]) -> (Vec<(u64, String)>, StackStats) {
    let mut sim = Simulator::new(7);
    let mut fabric = Fabric::new(8, MachineParams::default());
    let client = fabric.add_host(1, 2, 0);
    let server = fabric.add_host(1, 8, 0);
    let server_ip = fabric.host(server).ip;
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));

    let client_port = fabric.host_port(client, 0);
    let plan = FaultPlan::new(1).with_link(
        client_port,
        LinkFaults { scripted_drops: drops.to_vec(), ..LinkFaults::default() },
    );
    fabric.install_faults(plan);

    let t = trace.clone();
    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        1,
        CostParams::default(),
        config(),
        Some(9000),
        move |_| Box::new(Libix::new(TraceServer { trace: t.clone() })),
    );
    let t = trace.clone();
    let cdp = Dataplane::launch(
        &mut sim,
        fabric.host(client),
        1,
        CostParams::default(),
        config(),
        None,
        move |_| {
            Box::new(Libix::new(TraceClient {
                server: server_ip,
                started: false,
                got: 0,
                trace: t.clone(),
            }))
        },
    );
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    cdp.seed_arp(fabric.host(server).ip, fabric.host(server).mac);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(80).as_nanos()));

    let mut stats = StackStats::default();
    for th in &cdp.threads {
        stats.absorb(&th.borrow().shard.stats);
    }
    let recorded = trace.borrow().clone();
    (recorded, stats)
}

/// Per-link frame indices (both directions of the client's cable) of
/// the two scripted drops, pinned from an unfaulted run's frame order:
/// index 3 is the client's lone 16-byte request (frames 0–2 are the
/// handshake), index 13 is the first segment of the 8×MSS burst.
const DROPS: [u64; 2] = [3, 13];

#[test]
fn rto_then_fast_retransmit_matches_golden_trace() {
    let (got, stats) = run_scenario(&DROPS);
    let rendered: Vec<String> = got.iter().map(|(t, e)| format!("{t} {e}")).collect();
    // Pinned from a run at the current engine parameters. Notable
    // checkpoints: the handshake completes unfaulted (drops start at
    // frame index 3); echo#1 lands at ~1.03 ms — dominated by the ~1 ms
    // RTO floor the dropped request had to wait out; echo#2 lands only
    // ~105 µs later despite its own head-of-burst drop, because dup
    // ACKs triggered fast retransmit within round-trip time.
    let golden = [
        "10830 client: connected",
        "16893 server: accept",
        "1031935 client: echo#1 complete",
        "1136986 client: echo#2 complete",
        "1143012 server: dead(PeerFin)",
    ];
    assert_eq!(
        rendered,
        golden,
        "\ntrace diverged from golden; actual:\n{}",
        rendered.join("\n")
    );
    // Episode 1: the lone 16 B segment can only recover by timeout.
    assert_eq!(stats.rto_fires, 1, "stats: {stats:?}");
    // Episode 2: the burst's trailing segments produce dup ACKs and the
    // head is fast-retransmitted without waiting for the RTO (the
    // dup-ACK counter re-arms once during the episode, so the counter
    // reads 2 for this single loss).
    assert_eq!(stats.fast_retransmits, 2, "stats: {stats:?}");
    // Recovery episodes are measured from the loss *signal* (RTO fire
    // or dup-ACK trip) to the cumulative ACK that covers the recovery
    // point, so both episodes close within round-trip times — orders of
    // magnitude under the ~1 ms RTO floor the first loss waited out.
    assert!(
        stats.max_recovery_ns > 0
            && stats.max_recovery_ns < Nanos::from_micros(200).as_nanos(),
        "stats: {stats:?}"
    );
}

#[test]
fn recovery_trace_is_reproducible() {
    assert_eq!(run_scenario(&DROPS), run_scenario(&DROPS));
}

#[test]
fn no_drops_means_no_recovery_counters() {
    let (_, stats) = run_scenario(&[]);
    assert_eq!(stats.rto_fires, 0);
    assert_eq!(stats.fast_retransmits, 0);
    assert_eq!(stats.max_recovery_ns, 0);
}
