//! Elastic control loop tests: SLA-driven core add under a load spike,
//! idle consolidation back to the floor, bounded per-epoch migration
//! rate, hung-target backoff, the graceful-overload admission gate, and
//! the RCU filter lifecycle across migration.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ix_core::dataplane::Dataplane;
use ix_core::ixcp::{set_active_threads, start_elastic_controller, FilterControl};
use ix_core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix_core::params::CostParams;
use ix_core::{ElasticConfig, ElasticRef, WatchdogHealth};
use ix_net::filter::{FilterPolicy, RuleAction};
use ix_net::ip::IpProto;
use ix_nic::fabric::Fabric;
use ix_nic::params::MachineParams;
use ix_sim::{Nanos, SimTime, Simulator};
use ix_tcp::StackConfig;
use ix_testkit::Bytes;

const PORT: u16 = 9000;

/// Echoes every byte back, charging `service_ns` per request — the knob
/// that saturates a core.
struct EchoServer {
    service_ns: u64,
}

impl LibixHandler for EchoServer {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        ctx.charge(self.service_ns);
        let reply = Bytes::copy_from_slice(data);
        assert!(ctx.write(reply));
    }
}

#[derive(Debug, Default)]
struct PingStats {
    rtts_ns: Vec<u64>,
    done: bool,
}

/// Closed-loop ping-pong client: `conns` connections, `reps` echoes
/// each. Any reset or lost byte leaves `done` false.
struct PingClient {
    server: ix_net::Ipv4Addr,
    msg: usize,
    reps: usize,
    conns: usize,
    started: usize,
    inflight: std::collections::HashMap<u64, (usize, usize, u64)>,
    results: Rc<RefCell<PingStats>>,
    finished: usize,
}

impl PingClient {
    fn fire(&mut self, ctx: &mut ConnCtx<'_>) {
        let user = ctx.conn.user;
        let st = self.inflight.get_mut(&user).expect("tracked");
        st.2 = ctx.now_ns;
        assert!(ctx.write(Bytes::from(vec![0x5au8; self.msg])));
    }
}

impl LibixHandler for PingClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        while self.started < self.conns {
            let user = self.started as u64;
            self.inflight.insert(user, (0, 0, 0));
            ctx.connect(self.server, PORT, user);
            self.started += 1;
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "connect failed");
        self.fire(ctx);
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let user = ctx.conn.user;
        let now = ctx.now_ns;
        let msg = self.msg;
        let st = self.inflight.get_mut(&user).expect("tracked");
        st.0 += data.len();
        assert!(st.0 <= msg, "over-delivery");
        if st.0 == msg {
            st.0 = 0;
            st.1 += 1;
            self.results.borrow_mut().rtts_ns.push(now - st.2);
            if st.1 >= self.reps {
                ctx.abort();
                self.finished += 1;
                if self.finished == self.conns {
                    self.results.borrow_mut().done = true;
                }
            } else {
                self.fire(ctx);
            }
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        self.started < self.conns
    }
}

/// 2-host fabric: a 1-thread IX client driving a `server_threads` IX
/// server whose echo handler charges `service_ns` per request.
fn setup(
    server_threads: usize,
    service_ns: u64,
    reps: usize,
    conns: usize,
) -> (Simulator, Fabric, Dataplane, Rc<RefCell<PingStats>>) {
    let mut sim = Simulator::new(7);
    let mut fabric = Fabric::new(8, MachineParams::default());
    let client = fabric.add_host(1, 2, 0);
    let server = fabric.add_host(1, 8, 0);
    let results = Rc::new(RefCell::new(PingStats::default()));
    let server_ip = fabric.host(server).ip;
    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        server_threads,
        CostParams::default(),
        StackConfig::default(),
        Some(PORT),
        move |_| Box::new(Libix::new(EchoServer { service_ns })),
    );
    let r2 = results.clone();
    let cdp = Dataplane::launch(
        &mut sim,
        fabric.host(client),
        1,
        CostParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(PingClient {
                server: server_ip,
                msg: 64,
                reps,
                conns,
                started: 0,
                inflight: Default::default(),
                results: r2.clone(),
                finished: 0,
            }))
        },
    );
    sdp.seed_arp(fabric.host(client).ip, fabric.host(client).mac);
    cdp.seed_arp(fabric.host(server).ip, fabric.host(server).mac);
    (sim, fabric, sdp, results)
}

/// Controller tuning that trips on the closed-loop backlog the tests
/// generate: over-SLA at >5 backlogged frames, fast consolidation.
fn test_cfg() -> ElasticConfig {
    ElasticConfig {
        epoch_ns: 50_000,
        sla_ns: 25_000,
        per_frame_ns: 5_000,
        add_epochs: 2,
        revoke_epochs: 4,
        revoke_headroom: 4,
        min_active: 1,
        max_buckets_per_epoch: 32,
        hung_backoff_epochs: 8,
        shed_port: None,
        shed_sla_ns: 50_000,
        shed_calm_epochs: 4,
    }
}

fn unparked(dp: &Dataplane) -> usize {
    dp.threads.iter().filter(|t| !t.borrow().parked).count()
}

#[test]
fn spike_adds_cores_then_idle_consolidates_without_loss() {
    let (mut sim, _fabric, sdp, results) = setup(4, 5_000, 60, 32);
    // Start consolidated on one core; the controller must grow.
    set_active_threads(&mut sim, &sdp, 1, None);
    let stats: ElasticRef =
        start_elastic_controller(&mut sim, &sdp, test_cfg(), None, None, Nanos::from_millis(40).as_nanos());
    sim.run_until(SimTime(Nanos::from_millis(40).as_nanos()));

    let r = results.borrow();
    assert!(r.done, "traffic lost under elastic scaling: {} rtts", r.rtts_ns.len());
    assert_eq!(r.rtts_ns.len(), 60 * 32);
    let s = *stats.borrow();
    assert!(s.adds >= 1, "spike never added a core: {s:?}");
    assert!(s.revokes >= 1, "idle never consolidated: {s:?}");
    assert!(s.parks >= 1, "revoked cores never parked: {s:?}");
    assert!(s.flows_migrated >= 1, "scaling moved no flows: {s:?}");
    assert!(s.buckets_moved >= 1);
    assert!(s.sla_violation_epochs >= 1);
    // Fully consolidated at the end: back to the 1-core floor, and the
    // parked cores hold no flows.
    assert_eq!(unparked(&sdp), 1, "did not consolidate: {s:?}");
    for th in sdp.threads.iter().skip(1) {
        assert_eq!(th.borrow().shard.flow_count(), 0, "parked thread kept flows");
    }
    // Energy proxy: strictly cheaper than a static 4-core allocation.
    assert!(s.busy_core_epochs < 4 * s.epochs, "no energy win: {s:?}");
}

#[test]
fn migration_rate_is_bounded_per_epoch() {
    let (mut sim, _fabric, sdp, results) = setup(4, 5_000, 60, 32);
    set_active_threads(&mut sim, &sdp, 1, None);
    let mut cfg = test_cfg();
    cfg.max_buckets_per_epoch = 8;
    let budget = cfg.max_buckets_per_epoch;
    let epoch = cfg.epoch_ns;
    let stats =
        start_elastic_controller(&mut sim, &sdp, cfg, None, None, Nanos::from_millis(40).as_nanos());
    // Snapshot the redirection table just after every controller epoch.
    let snaps: Rc<RefCell<Vec<Vec<usize>>>> = Rc::new(RefCell::new(Vec::new()));
    let nic = sdp.threads[0].borrow().queues()[0].0.clone();
    for k in 0..400u64 {
        let snaps = snaps.clone();
        let nic = nic.clone();
        sim.schedule_in(Nanos(k * epoch + 1), move |_| {
            snaps.borrow_mut().push(nic.borrow().redirection().to_vec());
        });
    }
    sim.run_until(SimTime(Nanos::from_millis(40).as_nanos()));

    assert!(results.borrow().done);
    assert!(stats.borrow().buckets_moved > 0, "no resharding happened");
    let snaps = snaps.borrow();
    let mut max_step = 0usize;
    for w in snaps.windows(2) {
        let diff = w[0].iter().zip(w[1].iter()).filter(|(a, b)| a != b).count();
        max_step = max_step.max(diff);
    }
    assert!(max_step > 0);
    assert!(
        max_step <= budget,
        "migration burst of {max_step} buckets exceeds per-epoch budget {budget}"
    );
}

#[test]
fn hung_add_target_defers_with_backoff_then_retries() {
    let (mut sim, _fabric, sdp, results) = setup(4, 5_000, 120, 32);
    set_active_threads(&mut sim, &sdp, 1, None);
    // The watchdog (simulated here) reports core 1 hung: adds must
    // defer rather than steer flow groups into a black hole.
    let health: WatchdogHealth = Rc::new(RefCell::new(vec![1]));
    let stats = start_elastic_controller(
        &mut sim,
        &sdp,
        test_cfg(),
        None,
        Some(health.clone()),
        Nanos::from_millis(60).as_nanos(),
    );
    // Just before the verdict clears, the fleet must still be 1 core.
    let probe: Rc<Cell<usize>> = Rc::new(Cell::new(0));
    {
        let probe = probe.clone();
        let threads = sdp.threads.clone();
        sim.schedule_in(Nanos(1_990_000), move |_| {
            probe.set(threads.iter().filter(|t| !t.borrow().parked).count());
        });
    }
    sim.schedule_in(Nanos(2_000_000), move |_| health.borrow_mut().clear());
    sim.run_until(SimTime(Nanos::from_millis(60).as_nanos()));

    assert!(results.borrow().done);
    let s = *stats.borrow();
    assert!(s.add_retries >= 1, "hung target never deferred an add: {s:?}");
    assert_eq!(probe.get(), 1, "added a core while its target was hung");
    assert!(s.adds >= 1, "add never retried after the verdict cleared: {s:?}");
}

/// Dials `want` connections starting at `at_ns`; redials on failure
/// (a shed SYN that exhausts its retries) until each one lands.
struct LateDialer {
    server: ix_net::Ipv4Addr,
    at_ns: u64,
    want: usize,
    launched: usize,
    next_user: u64,
    ok: Rc<Cell<usize>>,
    failed: Rc<Cell<usize>>,
}

impl LibixHandler for LateDialer {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if ctx.now_ns >= self.at_ns && self.launched < self.want {
            ctx.connect(self.server, PORT, self.next_user);
            self.next_user += 1;
            self.launched += 1;
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        if ok {
            self.ok.set(self.ok.get() + 1);
            ctx.abort();
        } else {
            self.failed.set(self.failed.get() + 1);
            self.launched -= 1;
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        self.ok.get() < self.want
    }
}

#[test]
fn admission_gate_sheds_new_connections_under_saturation() {
    let mut sim = Simulator::new(7);
    let mut fabric = Fabric::new(8, MachineParams::default());
    let client = fabric.add_host(1, 2, 0);
    let late = fabric.add_host(1, 2, 0);
    let server = fabric.add_host(1, 8, 0);
    let server_ip = fabric.host(server).ip;
    let results = Rc::new(RefCell::new(PingStats::default()));
    // One server core, 10 µs of work per echo, 16 closed-loop conns:
    // permanently saturated with no spare core to add.
    let sdp = Dataplane::launch(
        &mut sim,
        fabric.host(server),
        1,
        CostParams::default(),
        StackConfig::default(),
        Some(PORT),
        |_| Box::new(Libix::new(EchoServer { service_ns: 10_000 })),
    );
    let r2 = results.clone();
    let cdp = Dataplane::launch(
        &mut sim,
        fabric.host(client),
        1,
        CostParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(PingClient {
                server: server_ip,
                msg: 64,
                reps: 60,
                conns: 16,
                started: 0,
                inflight: Default::default(),
                results: r2.clone(),
                finished: 0,
            }))
        },
    );
    let ok = Rc::new(Cell::new(0usize));
    let failed = Rc::new(Cell::new(0usize));
    let (ok2, failed2) = (ok.clone(), failed.clone());
    // The late dialer retries SYNs quickly so it reconnects promptly
    // once the gate lifts.
    let ldp = Dataplane::launch(
        &mut sim,
        fabric.host(late),
        1,
        CostParams::default(),
        StackConfig {
            syn_rto_ns: 200_000,
            ..StackConfig::default()
        },
        None,
        move |_| {
            Box::new(Libix::new(LateDialer {
                server: server_ip,
                at_ns: 1_000_000,
                want: 2,
                launched: 0,
                next_user: 0,
                ok: ok2.clone(),
                failed: failed2.clone(),
            }))
        },
    );
    for dp in [&cdp, &ldp] {
        sdp.seed_arp(
            fabric.host(if std::ptr::eq(dp, &cdp) { client } else { late }).ip,
            fabric.host(if std::ptr::eq(dp, &cdp) { client } else { late }).mac,
        );
        dp.seed_arp(fabric.host(server).ip, fabric.host(server).mac);
    }

    let fc = Rc::new(FilterControl::install(&sdp, FilterPolicy::new()));
    // The epoch exceeds the closed-loop burst period (~170 us) so every
    // epoch's ring high-water mark sees a burst; a shorter epoch would
    // alias and keep resetting the shed hysteresis streak.
    let cfg = ElasticConfig {
        epoch_ns: 200_000,
        sla_ns: 50_000,
        per_frame_ns: 10_000,
        add_epochs: 2,
        revoke_epochs: 4,
        revoke_headroom: 4,
        min_active: 1,
        max_buckets_per_epoch: 32,
        hung_backoff_epochs: 8,
        shed_port: Some(PORT),
        shed_sla_ns: 80_000,
        shed_calm_epochs: 4,
    };
    let stats = start_elastic_controller(
        &mut sim,
        &sdp,
        cfg,
        Some(fc.clone()),
        None,
        Nanos::from_millis(40).as_nanos(),
    );
    sim.run_until(SimTime(Nanos::from_millis(40).as_nanos()));

    // Established traffic rode out the overload untouched.
    let r = results.borrow();
    assert!(r.done, "established flows starved: {} rtts", r.rtts_ns.len());
    let s = *stats.borrow();
    assert!(s.shed_enables >= 1, "gate never engaged: {s:?}");
    assert!(s.shed_epochs >= 1);
    assert!(s.shed_disables >= 1, "gate never lifted after calm: {s:?}");
    // SYNs really were dropped at the NIC edge, pre-allocation.
    let nic = sdp.threads[0].borrow().queues()[0].0.clone();
    let fs = nic.borrow().filter_stats_total();
    assert!(fs.drops >= 1, "no SYN was shed: {fs:?}");
    assert_eq!(fs.drop_allocs, 0);
    // And the shed dialer eventually got in once the gate lifted.
    assert_eq!(ok.get(), 2, "late dials never completed (failed {})", failed.get());
}

#[test]
fn filter_republish_reaches_migration_destination() {
    let (mut sim, _fabric, sdp, results) = setup(2, 150, 800, 8);
    let fc = FilterControl::install(&sdp, FilterPolicy::new());
    // Establish flows on both threads, then consolidate onto core 0.
    sim.run_until(SimTime(Nanos::from_millis(1).as_nanos()));
    set_active_threads(&mut sim, &sdp, 1, Some(&fc));
    // A rule update lands while core 1 is parked; separately, core 1's
    // snapshot is forced stale (what a mid-migration capture looks like).
    fc.update(|p| p.clone().rule_port(IpProto::Tcp, 1234, RuleAction::Drop));
    let stale = Rc::new(FilterPolicy::new());
    sdp.threads[1]
        .borrow_mut()
        .shard
        .set_filter_policy(Some(stale.clone()));
    // Re-expanding migrates flows back to core 1; the absorb must
    // republish the *current* snapshot to the destination shard.
    set_active_threads(&mut sim, &sdp, 2, Some(&fc));
    {
        let th = sdp.threads[1].borrow();
        assert!(th.shard.flow_count() > 0, "no flows migrated to the destination");
        let got = th.shard.filter_policy().expect("destination lost its policy");
        assert!(
            Rc::ptr_eq(got, &fc.snapshot()),
            "destination classifies with a stale filter snapshot"
        );
        assert!(!Rc::ptr_eq(got, &stale));
    }
    sim.run_until(SimTime(Nanos::from_millis(30).as_nanos()));
    assert!(results.borrow().done);
}

#[test]
fn rcu_reclaims_under_update_and_uninstall_without_resurrection() {
    let (mut sim, _fabric, sdp, results) = setup(2, 150, 10, 4);
    sim.run_until(SimTime(Nanos::from_millis(20).as_nanos()));
    assert!(results.borrow().done);

    let fc = FilterControl::install(&sdp, FilterPolicy::new());
    // A held snapshot stays readable across updates (grace period),
    // while every retired version is reclaimed once readers quiesce.
    let held = fc.snapshot();
    for port in 1..=3u16 {
        fc.update(|p| p.clone().rule_port(IpProto::Tcp, port, RuleAction::Drop));
        assert_eq!(fc.retired_len(), 0, "retired version leaked");
    }
    assert_eq!(held.rule_count(), 0, "held snapshot mutated under updates");
    assert_eq!(fc.snapshot().rule_count(), 3);
    // Shards and NICs track the newest version.
    let nic = sdp.threads[0].borrow().queues()[0].0.clone();
    assert!(Rc::ptr_eq(nic.borrow().filter().expect("nic filter"), &fc.snapshot()));

    // Concurrent update/uninstall race, serialized both ways. Uninstall
    // first: a later update must NOT resurrect the filter on the hot
    // path, and republish must stay a no-op.
    fc.uninstall();
    fc.update(|p| p.clone().rule_port(IpProto::Tcp, 4, RuleAction::Drop));
    fc.republish_shard(&sdp.threads[0]);
    assert!(nic.borrow().filter().is_none(), "update resurrected the NIC filter");
    for th in sdp.threads.iter() {
        assert!(th.borrow().shard.filter_policy().is_none(), "shard filter resurrected");
    }
    assert_eq!(fc.retired_len(), 0);
    // The rule table itself kept versioning (snapshot still advances).
    assert_eq!(fc.snapshot().rule_count(), 4);
    drop(held);
}

#[test]
fn inert_controller_is_byte_identical_to_no_controller() {
    // Controller enabled but thresholds unreachable: the run must be
    // bit-for-bit the run with no controller at all (determinism pin
    // for every pre-existing figure).
    let run = |elastic: bool| -> Vec<u64> {
        let (mut sim, _fabric, sdp, results) = setup(4, 5_000, 40, 16);
        if elastic {
            let cfg = ElasticConfig {
                sla_ns: u64::MAX,
                min_active: 4,
                ..test_cfg()
            };
            let _ = start_elastic_controller(
                &mut sim,
                &sdp,
                cfg,
                None,
                None,
                Nanos::from_millis(30).as_nanos(),
            );
        }
        sim.run_until(SimTime(Nanos::from_millis(30).as_nanos()));
        assert!(results.borrow().done);
        let r = results.borrow().rtts_ns.clone();
        r
    };
    assert_eq!(run(false), run(true), "inert controller perturbed the run");
}
