//! The paper's baselines: simulated Linux and mTCP network stacks.
//!
//! §5 compares IX against a tuned Linux 3.16 kernel and against mTCP, the
//! state-of-the-art user-level TCP stack of the time. Both baselines here
//! drive the *same* protocol logic ([`ix_tcp::TcpShard`]) and the *same*
//! application trait ([`ix_core::IxApp`]) as the IX dataplane — what
//! differs is the execution model, which is precisely the paper's thesis:
//!
//! * [`linux`] — interrupt-driven kernel stack: NAPI interrupt coalescing
//!   and softirq batches, scheduler wake-ups of blocked application
//!   threads, per-call `epoll`/`read`/`write` system calls with user-copy
//!   costs, kernel socket buffering on both sides, and immediate ACKs
//!   from softirq context. Tuned as §5.1 describes: threads pinned,
//!   interrupts affinitized to the RSS queue's core.
//! * [`mtcp`] — user-level stack with *aggressive batching*: a dedicated
//!   per-core TCP thread exchanges batches with the application thread at
//!   coarse granularity, eliminating per-packet syscalls (high
//!   throughput) at the price of queueing latency in both directions —
//!   "which comes at the expense of higher latency than both IX and
//!   Linux" (§5.2).

pub mod linux;
pub mod mtcp;

pub use linux::{LinuxHost, LinuxParams};
pub use mtcp::{MtcpHost, MtcpParams};
