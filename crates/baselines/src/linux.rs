//! The Linux kernel networking model (the paper's primary baseline).
//!
//! Models a tuned Linux 3.16 setup per §5.1: application threads pinned
//! one per core, NIC interrupts affinitized to the core owning the RSS
//! queue, interrupt moderation configured, `SO_REUSEPORT`-style parallel
//! accept (each core's shard listens independently). The phenomena that
//! separate Linux from IX in the paper are all mechanisms here, not fudge
//! factors:
//!
//! * **Interrupt-driven receive**: a frame arrival raises a hardirq
//!   (subject to moderation), whose softirq (NAPI) processes up to a
//!   budget of packets, ACKing immediately from kernel context —
//!   independent of application progress (contrast §3).
//! * **Scheduler wake-ups**: the application blocks in `epoll_wait`; data
//!   readiness wakes it after a scheduling delay, and the woken thread
//!   pays context-switch and per-syscall costs (`epoll_wait`, `read`,
//!   `write`) plus user-copy per byte — the overheads IX's batched,
//!   zero-copy API eliminates.
//! * **Kernel socket buffering**: `write` copies into a kernel send
//!   buffer that drains as the window opens ("conventional OSes buffer
//!   send data beyond raw TCP constraints", §4.3); receive data waits in
//!   kernel buffers until `read`, which is when the window is credited.
//!
//! CPU time is split between [`CpuDomain::Kernel`] (interrupts, softirq,
//! syscall work) and [`CpuDomain::User`] (application work) — this split
//! is the §5.5 measurement that shows memcached spending ~75% of its CPU
//! in the Linux kernel.

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix_core::api::{EventCond, IxApp, Syscall, SyscallResult, UserCtx};
use ix_nic::host::{CoreRef, CpuDomain};
use ix_nic::nic::{Nic, NicRef, QueueId};
use ix_sim::{Nanos, SimTime, Simulator};
use ix_tcp::{AckPolicy, FlowId, StackConfig, TcpShard};

/// Cost and behaviour parameters of the Linux model.
#[derive(Debug, Clone)]
pub struct LinuxParams {
    /// Interrupt delivery latency from NIC assertion to handler entry.
    pub irq_latency_ns: u64,
    /// CPU cost of the hardirq handler.
    pub hardirq_ns: u64,
    /// Minimum spacing between interrupts per queue (interrupt
    /// moderation / ITR, tuned per §5.1).
    pub irq_moderation_ns: u64,
    /// Per-packet kernel receive processing in softirq (driver + IP +
    /// TCP + socket demux + skb management + locking).
    pub softirq_pkt_ns: u64,
    /// Cost of a GRO-coalesced continuation packet: frames after the
    /// first for the *same flow* within one NAPI batch are merged by
    /// generic receive offload and cost only this much. Irrelevant for
    /// small-RPC workloads (one frame per flow per batch); essential for
    /// single-flow bulk transfers (NetPIPE, Fig 2).
    pub gro_pkt_ns: u64,
    /// NAPI poll budget per softirq pass.
    pub napi_budget: usize,
    /// Scheduler wake-up latency: readiness to the thread running.
    pub sched_wakeup_ns: u64,
    /// Context-switch CPU cost when the app thread resumes.
    pub ctx_switch_ns: u64,
    /// Base cost of any system call (entry/exit, spectre-era era
    /// mitigations excluded: 2014 kernel).
    pub syscall_ns: u64,
    /// `epoll_wait` base cost plus per-returned-event cost.
    pub epoll_wait_ns: u64,
    /// Per-event `epoll` bookkeeping.
    pub epoll_event_ns: u64,
    /// `read()` per call, excluding the copy.
    pub read_ns: u64,
    /// `write()` per call, excluding the copy.
    pub write_ns: u64,
    /// User↔kernel copy cost per byte × 1000.
    pub copy_byte_ns_x1000: u64,
    /// Transmit path per packet (socket → qdisc → driver → ring).
    pub tx_pkt_ns: u64,
    /// Kernel send-buffer capacity per socket (`wmem`).
    pub sndbuf: usize,
    /// Timer tick period (jiffy; HZ=1000).
    pub jiffy_ns: u64,
}

impl Default for LinuxParams {
    fn default() -> LinuxParams {
        LinuxParams {
            irq_latency_ns: 1_800,
            hardirq_ns: 700,
            irq_moderation_ns: 12_000,
            softirq_pkt_ns: 3_200,
            gro_pkt_ns: 350,
            napi_budget: 64,
            sched_wakeup_ns: 5_500,
            ctx_switch_ns: 1_300,
            syscall_ns: 120,
            epoll_wait_ns: 450,
            epoll_event_ns: 180,
            read_ns: 450,
            write_ns: 650,
            copy_byte_ns_x1000: 350,
            tx_pkt_ns: 900,
            sndbuf: 256 * 1024,
            jiffy_ns: 1_000_000,
        }
    }
}

/// Extracts a cheap flow key (src ip ⊕ ports) from a raw frame for GRO
/// batching; 0 when the frame is not TCP/IPv4.
fn flow_key_of(data: &[u8]) -> u64 {
    use ix_net::eth::EthHeader;
    if data.len() < EthHeader::LEN + 24 {
        return 0;
    }
    if u16::from_be_bytes([data[12], data[13]]) != 0x0800 {
        return 0;
    }
    let ip = &data[EthHeader::LEN..];
    if ip[9] != 6 {
        return 0;
    }
    let ihl = (ip[0] & 0x0f) as usize * 4;
    if ip.len() < ihl + 4 {
        return 0;
    }
    let src = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]) as u64;
    let ports = u32::from_be_bytes([ip[ihl], ip[ihl + 1], ip[ihl + 2], ip[ihl + 3]]) as u64;
    (src << 32) | ports | 1
}

/// Kernel-side send buffer for one socket.
#[derive(Debug, Default)]
struct KernelSndBuf {
    chunks: VecDeque<Bytes>,
    bytes: usize,
    /// The app was told the buffer is full and awaits a `Sent` event.
    app_waiting: bool,
}

/// One Linux core: RSS queue, softirq context, and a pinned application
/// thread with its event loop.
pub struct LinuxCore {
    /// Core index (equals the RSS queue it owns).
    pub id: usize,
    params: LinuxParams,
    /// The kernel TCP shard for this core's flows.
    pub shard: TcpShard,
    app: Box<dyn IxApp>,
    queues: Vec<(NicRef, QueueId)>,
    core: CoreRef,
    /// Events awaiting the application (socket readiness queue).
    app_events: Vec<EventCond>,
    pending_results: Vec<SyscallResult>,
    sndbufs: HashMap<u64, KernelSndBuf>,
    /// Application thread is blocked in `epoll_wait`.
    app_blocked: bool,
    /// An app-run event is scheduled.
    app_scheduled: bool,
    /// A softirq pass is scheduled (interrupts disabled meanwhile).
    softirq_scheduled: bool,
    /// Last interrupt time per queue index, for moderation.
    last_irq: Vec<SimTime>,
    /// Timer tick armed.
    tick_armed: bool,
    idle_wake: Option<ix_sim::EventId>,
    /// NICs with freshly pushed TX descriptors awaiting a doorbell.
    pending_kicks: Vec<NicRef>,
    /// Counters.
    pub stats: LinuxStats,
}

/// Counters for the Linux model.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinuxStats {
    /// Hardirqs taken.
    pub interrupts: u64,
    /// Softirq passes.
    pub softirqs: u64,
    /// Packets processed in softirq.
    pub rx_packets: u64,
    /// Frames transmitted.
    pub tx_packets: u64,
    /// Application wake-ups (epoll returns).
    pub wakeups: u64,
    /// System calls issued by the application.
    pub syscalls: u64,
    /// Bytes copied between user and kernel space.
    pub bytes_copied: u64,
}

/// Shared handle.
pub type LinuxCoreRef = Rc<RefCell<LinuxCore>>;

impl LinuxCore {
    /// Interrupt entry: a frame arrived on this core's queue.
    fn on_rx(this: &LinuxCoreRef, sim: &mut Simulator, qi: usize) {
        let fire_at = {
            let mut t = this.borrow_mut();
            if t.softirq_scheduled {
                return; // NAPI already polling; interrupts masked.
            }
            t.softirq_scheduled = true;
            let earliest = t.last_irq[qi] + Nanos(t.params.irq_moderation_ns);
            let at = (sim.now() + Nanos(t.params.irq_latency_ns)).max(earliest);
            t.last_irq[qi] = at;
            t.stats.interrupts += 1;
            at
        };
        let this = this.clone();
        sim.schedule_at(fire_at, move |sim| LinuxCore::softirq(&this, sim));
    }

    /// One NAPI pass: hardirq cost + up to `napi_budget` packets.
    fn softirq(this: &LinuxCoreRef, sim: &mut Simulator) {
        let now = sim.now();
        let now_ns = now.as_nanos();
        let mut t = this.borrow_mut();
        t.stats.softirqs += 1;
        let mut kernel = t.params.hardirq_ns;
        let budget = t.params.napi_budget;
        let mut frames = Vec::new();
        'outer: loop {
            let mut any = false;
            for qi in 0..t.queues.len() {
                if frames.len() >= budget {
                    break 'outer;
                }
                let (nic, q) = t.queues[qi].clone();
                let f = {
                    let mut n = nic.borrow_mut();
                    let f = n.rx_ring(q).poll();
                    if f.is_some() {
                        n.rx_ring(q).replenish(1);
                    }
                    f
                };
                if let Some(f) = f {
                    frames.push(f);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        t.stats.rx_packets += frames.len() as u64;
        // GRO: within this NAPI batch, the first frame of each flow pays
        // the full stack path; same-flow continuations are coalesced.
        let mut seen_flows: Vec<u64> = Vec::with_capacity(frames.len().min(16));
        for f in frames {
            let key = flow_key_of(f.data());
            if key != 0 && seen_flows.contains(&key) {
                kernel += t.params.gro_pkt_ns;
            } else {
                kernel += t.params.softirq_pkt_ns;
                if key != 0 {
                    seen_flows.push(key);
                }
            }
            t.shard.input(now_ns, f);
        }
        // Kernel timers piggyback on softirq.
        t.shard.advance_timers(now_ns);
        // Stack events → socket readiness; Sent events drain sndbufs.
        let events = t.shard.take_events();
        LinuxCore::absorb_stack_events(&mut t, now_ns, events);
        // Transmit anything the stack produced (ACKs, retransmits,
        // sndbuf drains) from softirq context.
        kernel += LinuxCore::flush_tx(&mut t);
        let end = t.core.borrow_mut().run(now, Nanos(kernel), CpuDomain::Kernel);
        let more_rx = t
            .queues
            .iter()
            .any(|(nic, q)| nic.borrow_mut().rx_ring(*q).pending() > 0);
        // Wake the app if it is blocked in epoll OR sleeping until a
        // pacing deadline (data readiness preempts the timed sleep).
        let wake_app = !t.app_events.is_empty()
            && (t.app_blocked || t.idle_wake.is_some())
            && !(t.app_scheduled && t.idle_wake.is_none());
        if wake_app {
            if let Some(w) = t.idle_wake.take() {
                sim.cancel(w);
            }
            t.app_blocked = false;
            t.app_scheduled = true;
        }
        let kicks = std::mem::take(&mut t.pending_kicks);
        drop(t);
        for nic in kicks {
            Nic::kick_tx(&nic, sim);
        }
        if wake_app {
            // Scheduler wake-up: the thread starts after the delay, once
            // the core is free.
            let delay = this.borrow().params.sched_wakeup_ns;
            let this2 = this.clone();
            sim.schedule_at(end + Nanos(delay), move |sim| LinuxCore::app_run(&this2, sim));
        }
        if more_rx {
            // Budget exhausted: NAPI re-polls without a new interrupt.
            let this2 = this.clone();
            sim.schedule_at(end, move |sim| LinuxCore::softirq(&this2, sim));
        } else {
            this.borrow_mut().softirq_scheduled = false;
            LinuxCore::ensure_tick(this, sim);
        }
    }

    /// Maps stack upcalls to application-visible events, intercepting
    /// `Sent` to drain the kernel send buffers.
    fn absorb_stack_events(t: &mut LinuxCore, now_ns: u64, events: Vec<EventCond>) {
        for ev in events {
            match ev {
                EventCond::Sent { flow, cookie, bytes_acked, .. } => {
                    // Window opened: push buffered bytes into the stack.
                    let mut freed = false;
                    if let Some(buf) = t.sndbufs.get_mut(&flow.key) {
                        let had = buf.bytes;
                        Self::drain_sndbuf(&mut t.shard, now_ns, flow, buf);
                        freed = buf.bytes < had || buf.bytes == 0;
                    }
                    // The app sees a Sent only if it was waiting for
                    // buffer space (EPOLLOUT semantics).
                    let waiting = t
                        .sndbufs
                        .get_mut(&flow.key)
                        .map(|b| {
                            let w = b.app_waiting && freed;
                            if w {
                                b.app_waiting = false;
                            }
                            w
                        })
                        .unwrap_or(false);
                    if waiting {
                        let window = t
                            .sndbufs
                            .get(&flow.key)
                            .map(|b| (t.params.sndbuf - b.bytes) as u32)
                            .unwrap_or(0);
                        t.app_events.push(EventCond::Sent { flow, cookie, bytes_acked, window });
                    }
                }
                EventCond::Dead { flow, .. } => {
                    t.sndbufs.remove(&flow.key);
                    t.app_events.push(ev);
                }
                other => t.app_events.push(other),
            }
        }
    }

    fn drain_sndbuf(shard: &mut TcpShard, now_ns: u64, flow: FlowId, buf: &mut KernelSndBuf) {
        while let Some(front) = buf.chunks.front_mut() {
            match shard.send(now_ns, flow, front) {
                Ok(0) => break,
                Ok(n) if n < front.len() => {
                    let rest = front.slice(n..);
                    *front = rest;
                    buf.bytes -= n;
                    break;
                }
                Ok(n) => {
                    buf.bytes -= n;
                    buf.chunks.pop_front();
                }
                Err(_) => {
                    buf.chunks.clear();
                    buf.bytes = 0;
                    break;
                }
            }
        }
    }

    /// Pushes stack-produced frames to the NIC (charged by the caller).
    fn flush_tx(t: &mut LinuxCore) -> u64 {
        let tx = t.shard.take_tx();
        if tx.is_empty() {
            return 0;
        }
        let mut cost = 0;
        let nq = t.queues.len();
        let mut kick: Vec<NicRef> = Vec::new();
        for (i, f) in tx.into_iter().enumerate() {
            cost += t.params.tx_pkt_ns;
            let (nic, q) = t.queues[i % nq].clone();
            let _ = nic.borrow_mut().tx_ring(q).push(f);
            nic.borrow_mut().tx_ring(q).reclaim();
            if !kick.iter().any(|n| Rc::ptr_eq(n, &nic)) {
                kick.push(nic);
            }
            t.stats.tx_packets += 1;
        }
        t.pending_kicks.extend(kick);
        cost
    }

    /// The application thread runs: `epoll_wait` returned.
    fn app_run(this: &LinuxCoreRef, sim: &mut Simulator) {
        let now = sim.now();
        let now_ns = now.as_nanos();
        let mut t = this.borrow_mut();
        t.app_scheduled = false;
        t.stats.wakeups += 1;
        let events = std::mem::take(&mut t.app_events);
        let results = std::mem::take(&mut t.pending_results);
        // Kernel-side costs of waking and harvesting events.
        let mut kernel = t.params.ctx_switch_ns
            + t.params.syscall_ns
            + t.params.epoll_wait_ns
            + t.params.epoll_event_ns * events.len() as u64;
        // Per-socket read() costs: one syscall per ready socket per wake
        // (the application drains each socket with a single read), plus
        // the user copy per byte.
        let mut read_sockets: Vec<u64> = Vec::new();
        for ev in &events {
            if let EventCond::Recv { payload, flow, .. } = ev {
                if !read_sockets.contains(&flow.key) {
                    read_sockets.push(flow.key);
                    kernel += t.params.syscall_ns + t.params.read_ns;
                    t.stats.syscalls += 1;
                }
                // Linux copies every received byte across the kernel
                // boundary at read() — the cost IX's zero-copy recv
                // avoids by construction.
                kernel += (payload.len() as u64 * t.params.copy_byte_ns_x1000) / 1000;
                t.stats.bytes_copied += payload.len() as u64;
            }
        }
        let mut ctx = UserCtx {
            now_ns,
            events,
            results,
            syscalls: Vec::new(),
            user_ns: 0,
        };
        t.app.on_cycle(&mut ctx);
        let user = ctx.user_ns;
        // Application system calls, one kernel crossing each.
        for s in ctx.syscalls {
            t.stats.syscalls += 1;
            kernel += t.params.syscall_ns;
            let r = LinuxCore::dispatch(&mut t, now_ns, s, &mut kernel);
            t.pending_results.push(r);
        }
        kernel += LinuxCore::flush_tx(&mut t);
        let mid = t.core.borrow_mut().run(now, Nanos(kernel), CpuDomain::Kernel);
        let end = t.core.borrow_mut().run(mid, Nanos(user), CpuDomain::User);
        drop(t);
        let this2 = this.clone();
        sim.schedule_at(end, move |sim| LinuxCore::app_epilogue(&this2, sim));
    }

    /// After the app slice: kick TX, decide whether to loop or block.
    fn app_epilogue(this: &LinuxCoreRef, sim: &mut Simulator) {
        let kicks = {
            let mut t = this.borrow_mut();
            std::mem::take(&mut t.pending_kicks)
        };
        for nic in kicks {
            Nic::kick_tx(&nic, sim);
        }
        let (rerun, wake_in) = {
            let t = this.borrow();
            let more = !t.app_events.is_empty()
                || !t.pending_results.is_empty()
                || t.app.wants_cycle(sim.now().as_nanos());
            let mut wake = None;
            if let Some(d) = t.app.next_deadline_ns() {
                wake = Some(d.saturating_sub(sim.now().as_nanos()).max(1));
            }
            (more, wake)
        };
        if rerun {
            let mut t = this.borrow_mut();
            if !t.app_scheduled {
                t.app_scheduled = true;
                drop(t);
                let this2 = this.clone();
                // Immediate re-loop: the thread did not block.
                sim.schedule_at(sim.now(), move |sim| LinuxCore::app_run(&this2, sim));
            }
        } else {
            let mut t = this.borrow_mut();
            t.app_blocked = true;
            if let Some(ns) = wake_in {
                if let Some(w) = t.idle_wake.take() {
                    sim.cancel(w);
                }
                t.app_blocked = false;
                t.app_scheduled = true;
                drop(t);
                let this2 = this.clone();
                let id = sim.schedule_in(Nanos(ns), move |sim| {
                    this2.borrow_mut().idle_wake = None;
                    LinuxCore::app_run(&this2, sim);
                });
                this.borrow_mut().idle_wake = Some(id);
            }
        }
        LinuxCore::ensure_tick(this, sim);
    }

    /// Executes one syscall with Linux semantics: `Sendv` copies into the
    /// kernel send buffer; everything else passes through to the stack.
    fn dispatch(t: &mut LinuxCore, now_ns: u64, s: Syscall, kernel: &mut u64) -> SyscallResult {
        match s {
            Syscall::Sendv { handle, sg } => {
                *kernel += t.params.write_ns;
                let total: usize = sg.iter().map(Bytes::len).sum();
                let buf = t.sndbufs.entry(handle.key).or_default();
                let space = t.params.sndbuf.saturating_sub(buf.bytes);
                let mut accept = total.min(space);
                let accepted = accept;
                *kernel += (accepted as u64 * t.params.copy_byte_ns_x1000) / 1000;
                t.stats.bytes_copied += accepted as u64;
                for chunk in sg {
                    if accept == 0 {
                        break;
                    }
                    let take = accept.min(chunk.len());
                    buf.chunks.push_back(chunk.slice(..take));
                    buf.bytes += take;
                    accept -= take;
                }
                if accepted < total {
                    buf.app_waiting = true;
                }
                // Drain as much as the window allows right now.
                let buf = t.sndbufs.get_mut(&handle.key).expect("present");
                Self::drain_sndbuf(&mut t.shard, now_ns, handle, buf);
                SyscallResult::Sent(accepted as u32)
            }
            Syscall::Connect { cookie, dst_ip, dst_port } => {
                match t.shard.connect(now_ns, dst_ip, dst_port, cookie) {
                    Ok(_) => SyscallResult::InProgress,
                    Err(e) => SyscallResult::Err(e),
                }
            }
            Syscall::Accept { handle, cookie } => match t.shard.accept(handle, cookie) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            },
            Syscall::RecvDone { handle, bytes } => {
                match t.shard.recv_done(now_ns, handle, bytes) {
                    Ok(()) => SyscallResult::Ok,
                    Err(e) => SyscallResult::Err(e),
                }
            }
            Syscall::Close { handle } => {
                t.sndbufs.remove(&handle.key);
                match t.shard.close(now_ns, handle) {
                    Ok(()) => SyscallResult::Ok,
                    Err(e) => SyscallResult::Err(e),
                }
            }
            Syscall::Abort { handle } => {
                t.sndbufs.remove(&handle.key);
                match t.shard.abort(now_ns, handle) {
                    Ok(()) => SyscallResult::Ok,
                    Err(e) => SyscallResult::Err(e),
                }
            }
        }
    }

    /// Arms the periodic timer tick while the core has live state.
    fn ensure_tick(this: &LinuxCoreRef, sim: &mut Simulator) {
        let arm = {
            let t = this.borrow();
            !t.tick_armed && (t.shard.flow_count() > 0 || t.shard.next_timer_ns().is_some())
        };
        if !arm {
            return;
        }
        this.borrow_mut().tick_armed = true;
        let jiffy = this.borrow().params.jiffy_ns;
        let this2 = this.clone();
        sim.schedule_in(Nanos(jiffy), move |sim| LinuxCore::tick(&this2, sim));
    }

    /// The timer softirq: advance the wheel, flush retransmissions.
    fn tick(this: &LinuxCoreRef, sim: &mut Simulator) {
        let now = sim.now();
        let now_ns = now.as_nanos();
        {
            let mut t = this.borrow_mut();
            t.tick_armed = false;
            t.shard.advance_timers(now_ns);
            let events = t.shard.take_events();
            let had_events = !events.is_empty();
            LinuxCore::absorb_stack_events(&mut t, now_ns, events);
            let cost = 300 + LinuxCore::flush_tx(&mut t);
            t.core.borrow_mut().run(now, Nanos(cost), CpuDomain::Kernel);
            let wake = had_events
                && (t.app_blocked || t.idle_wake.is_some())
                && !(t.app_scheduled && t.idle_wake.is_none());
            if wake {
                if let Some(w) = t.idle_wake.take() {
                    sim.cancel(w);
                }
                t.app_blocked = false;
                t.app_scheduled = true;
                let delay = t.params.sched_wakeup_ns;
                drop(t);
                let this2 = this.clone();
                sim.schedule_in(Nanos(delay), move |sim| LinuxCore::app_run(&this2, sim));
            }
        }
        let kicks = {
            let mut t = this.borrow_mut();
            std::mem::take(&mut t.pending_kicks)
        };
        for nic in kicks {
            Nic::kick_tx(&nic, sim);
        }
        LinuxCore::ensure_tick(this, sim);
    }
}

impl std::fmt::Debug for LinuxCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinuxCore")
            .field("id", &self.id)
            .field("stats", &self.stats)
            .finish()
    }
}

/// A host running the Linux model: one pinned app thread + softirq
/// context per core.
pub struct LinuxHost {
    /// Per-core state.
    pub cores: Vec<LinuxCoreRef>,
}

impl LinuxHost {
    /// Launches the Linux model on `host` with `n_cores` cores.
    pub fn launch(
        sim: &mut Simulator,
        host: &ix_nic::host::Host,
        n_cores: usize,
        params: LinuxParams,
        mut stack_cfg: StackConfig,
        listen_port: Option<u16>,
        mut app_factory: impl FnMut(usize) -> Box<dyn IxApp>,
    ) -> LinuxHost {
        assert!(n_cores <= host.cores.len());
        // The kernel uses classic delayed ACKs with a short piggyback
        // window, window scaling (wscale 7, as Linux 3.16 negotiates),
        // and tcp_rmem-sized receive buffers.
        stack_cfg.ack_policy = AckPolicy::Delayed(100_000);
        stack_cfg.window_scale = 7;
        stack_cfg.recv_window = stack_cfg.recv_window.max(512 * 1024);
        for nic in &host.nics {
            nic.borrow_mut()
                .set_redirection((0..128).map(|i| i % n_cores).collect());
        }
        let mut cores = Vec::with_capacity(n_cores);
        for i in 0..n_cores {
            let mut shard = TcpShard::new(stack_cfg.clone(), host.ip, host.mac);
            if let Some(p) = listen_port {
                shard.listen(p);
            }
            let nic0 = host.nics[0].clone();
            let local_ip = host.ip;
            shard.set_steering(
                i,
                Rc::new(move |rip, rport, lport| {
                    nic0.borrow().queue_for_flow(rip, local_ip, rport, lport)
                }),
            );
            let queues: Vec<(NicRef, QueueId)> =
                host.nics.iter().map(|n| (n.clone(), i)).collect();
            let lc = Rc::new(RefCell::new(LinuxCore {
                id: i,
                params: params.clone(),
                shard,
                app: app_factory(i),
                queues: queues.clone(),
                core: host.cores[i].clone(),
                app_events: Vec::new(),
                pending_results: Vec::new(),
                sndbufs: HashMap::new(),
                app_blocked: true,
                app_scheduled: false,
                softirq_scheduled: false,
                last_irq: vec![SimTime::ZERO; queues.len()],
                tick_armed: false,
                idle_wake: None,
                pending_kicks: Vec::new(),
                stats: LinuxStats::default(),
            }));
            for (qi, (nic, q)) in queues.iter().enumerate() {
                // Weak capture: see ix_core::dataplane — the notify edge
                // must not close an Rc cycle through the engine.
                let lc2 = Rc::downgrade(&lc);
                nic.borrow_mut().set_notify(
                    *q,
                    Rc::new(move |sim: &mut Simulator, _| {
                        if let Some(lc) = lc2.upgrade() {
                            LinuxCore::on_rx(&lc, sim, qi);
                        }
                    }),
                );
            }
            cores.push(lc);
        }
        // Prime pacing apps (load generators).
        for lc in &cores {
            let wants = lc.borrow().app.wants_cycle(sim.now().as_nanos());
            if wants {
                let mut t = lc.borrow_mut();
                t.app_blocked = false;
                t.app_scheduled = true;
                drop(t);
                let lc2 = lc.clone();
                sim.schedule_at(sim.now(), move |sim| LinuxCore::app_run(&lc2, sim));
            }
        }
        LinuxHost { cores }
    }

    /// Seeds ARP on every core's shard.
    pub fn seed_arp(&self, ip: ix_net::Ipv4Addr, mac: ix_net::MacAddr) {
        for c in &self.cores {
            c.borrow_mut().shard.arp_seed(ip, mac);
        }
    }

    /// Aggregate kernel/user CPU split across cores.
    pub fn cpu_split(&self) -> (u64, u64) {
        let mut k = 0;
        let mut u = 0;
        for c in &self.cores {
            let t = c.borrow();
            let core = t.core.borrow();
            k += core.kernel_ns;
            u += core.user_ns;
        }
        (k, u)
    }

    /// Aggregate stats.
    pub fn stats(&self) -> LinuxStats {
        let mut s = LinuxStats::default();
        for c in &self.cores {
            let t = c.borrow();
            s.interrupts += t.stats.interrupts;
            s.softirqs += t.stats.softirqs;
            s.rx_packets += t.stats.rx_packets;
            s.tx_packets += t.stats.tx_packets;
            s.wakeups += t.stats.wakeups;
            s.syscalls += t.stats.syscalls;
            s.bytes_copied += t.stats.bytes_copied;
        }
        s
    }
}
