//! The mTCP model: a user-level TCP stack with aggressive batching.
//!
//! mTCP [Jeong et al., NSDI '14] dedicates a per-core TCP thread that
//! polls the NIC (via DPDK/PSIO) and exchanges *batches* of events and
//! requests with the application thread at coarse granularity. This
//! eliminates per-packet system calls and achieves high packet rates, but
//! as the paper notes (§2.3, §5.2): "This aggressive batching amortizes
//! switching overheads at the expense of higher latency."
//!
//! The model: the TCP context polls and processes packets promptly
//! (polling, like IX), but completed events are *buffered* and handed to
//! the application only at batch boundaries — at most once per
//! [`MtcpParams::quantum_ns`] — and the application's responses are
//! likewise dispatched at the end of its slice. Both contexts share the
//! core (mTCP pins the TCP thread and the app thread to the same core's
//! hyperthread pair; we charge one core).

use std::cell::RefCell;
use std::rc::Rc;

use ix_core::api::{EventCond, IxApp, Syscall, SyscallResult, UserCtx};
use ix_nic::host::{CoreRef, CpuDomain};
use ix_nic::nic::{Nic, NicRef, QueueId};
use ix_sim::{Nanos, SimTime, Simulator};
use ix_tcp::{AckPolicy, StackConfig, TcpShard};

/// Cost and behaviour parameters of the mTCP model.
#[derive(Debug, Clone)]
pub struct MtcpParams {
    /// Batch-exchange period between the TCP thread and the app thread:
    /// the app sees events at most this often. mTCP's event loop blocks
    /// in `mtcp_epoll_wait` with batched wake-ups; larger values raise
    /// throughput and latency together.
    pub quantum_ns: u64,
    /// Per-packet receive processing in the TCP thread (user-level
    /// stack, no syscalls, but a general-purpose design with per-flow
    /// locking between its threads).
    pub rx_pkt_ns: u64,
    /// Per-byte receive cost × 1000.
    pub rx_byte_ns_x1000: u64,
    /// Per-packet transmit cost.
    pub tx_pkt_ns: u64,
    /// Per-event cost of moving one event through the shared queues.
    pub event_ns: u64,
    /// Per-request cost of moving one app request to the TCP thread.
    pub request_ns: u64,
    /// Context-switch cost at each batch boundary (two per exchange).
    pub switch_ns: u64,
    /// Fixed cost of one TCP-thread poll pass.
    pub poll_ns: u64,
    /// RX batch bound per poll pass.
    pub batch: usize,
}

impl Default for MtcpParams {
    fn default() -> MtcpParams {
        MtcpParams {
            quantum_ns: 50_000,
            rx_pkt_ns: 620,
            rx_byte_ns_x1000: 200,
            tx_pkt_ns: 420,
            event_ns: 120,
            request_ns: 120,
            switch_ns: 1_000,
            poll_ns: 80,
            batch: 64,
        }
    }
}

/// One mTCP core: TCP thread + application thread pair.
pub struct MtcpCore {
    /// Core index (equals the RSS queue it owns).
    pub id: usize,
    params: MtcpParams,
    /// The user-level TCP shard of the TCP thread.
    pub shard: TcpShard,
    app: Box<dyn IxApp>,
    queues: Vec<(NicRef, QueueId)>,
    core: CoreRef,
    /// Events buffered for the next app batch.
    evq: Vec<EventCond>,
    pending_results: Vec<SyscallResult>,
    /// The last time an app slice started (batch pacing).
    last_app: SimTime,
    app_scheduled: bool,
    tcp_scheduled: bool,
    idle_wake: Option<ix_sim::EventId>,
    /// NICs with freshly pushed TX descriptors awaiting a doorbell.
    pending_kicks: Vec<NicRef>,
    /// Counters.
    pub stats: MtcpStats,
}

/// Counters for the mTCP model.
#[derive(Debug, Clone, Copy, Default)]
pub struct MtcpStats {
    /// TCP-thread poll passes.
    pub polls: u64,
    /// Packets received.
    pub rx_packets: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Application batches delivered.
    pub app_batches: u64,
    /// Events delivered to the application.
    pub events: u64,
}

/// Shared handle.
pub type MtcpCoreRef = Rc<RefCell<MtcpCore>>;

impl MtcpCore {
    /// Schedules a TCP-thread pass as soon as the core frees up.
    fn schedule_tcp(this: &MtcpCoreRef, sim: &mut Simulator) {
        let start = {
            let mut t = this.borrow_mut();
            if t.tcp_scheduled {
                return;
            }
            t.tcp_scheduled = true;
            if let Some(w) = t.idle_wake.take() {
                sim.cancel(w);
            }
            let busy = t.core.borrow().busy_until;
            sim.now().max(busy)
        };
        let this = this.clone();
        sim.schedule_at(start, move |sim| MtcpCore::tcp_pass(&this, sim));
    }

    /// One TCP-thread pass: poll RX, run the stack, buffer events, flush
    /// transmit. No application interaction here — that is the point.
    fn tcp_pass(this: &MtcpCoreRef, sim: &mut Simulator) {
        let now = sim.now();
        let now_ns = now.as_nanos();
        let mut t = this.borrow_mut();
        t.tcp_scheduled = false;
        t.stats.polls += 1;
        let mut cost = t.params.poll_ns;
        let batch = t.params.batch;
        let mut frames = Vec::new();
        'outer: loop {
            let mut any = false;
            for qi in 0..t.queues.len() {
                if frames.len() >= batch {
                    break 'outer;
                }
                let (nic, q) = t.queues[qi].clone();
                let f = {
                    let mut n = nic.borrow_mut();
                    let f = n.rx_ring(q).poll();
                    if f.is_some() {
                        n.rx_ring(q).replenish(1);
                    }
                    f
                };
                if let Some(f) = f {
                    frames.push(f);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        t.stats.rx_packets += frames.len() as u64;
        for f in frames {
            cost += t.params.rx_pkt_ns + (f.len() as u64 * t.params.rx_byte_ns_x1000) / 1000;
            t.shard.input(now_ns, f);
        }
        t.shard.advance_timers(now_ns);
        // Buffer events for the app's next batch boundary.
        let events = t.shard.take_events();
        cost += t.params.event_ns * events.len() as u64;
        t.evq.extend(events);
        cost += MtcpCore::flush_tx(&mut t);
        let end = t.core.borrow_mut().run(now, Nanos(cost), CpuDomain::Kernel);
        let kicks = std::mem::take(&mut t.pending_kicks);
        // Decide follow-ups.
        let rx_pending = t
            .queues
            .iter()
            .any(|(nic, q)| nic.borrow_mut().rx_ring(*q).pending() > 0);
        let want_app = !t.evq.is_empty()
            || !t.pending_results.is_empty()
            || t.app.wants_cycle(now_ns);
        // The app thread wakes on a fixed period grid (batched epoll
        // wake-ups), not on demand: this is where mTCP's latency goes.
        let q = t.params.quantum_ns;
        let next_boundary = SimTime((end.as_nanos() / q + 1) * q);
        let app_at = next_boundary.max(end);
        let schedule_app = want_app && !t.app_scheduled;
        if schedule_app {
            t.app_scheduled = true;
        }
        let mut wake: Option<u64> = t.shard.next_timer_ns();
        if let Some(d) = t.app.next_deadline_ns() {
            let rel = d.saturating_sub(now_ns).max(1);
            wake = Some(wake.map_or(rel, |w| w.min(rel)));
        }
        drop(t);
        for nic in kicks {
            Nic::kick_tx(&nic, sim);
        }
        if schedule_app {
            let this2 = this.clone();
            sim.schedule_at(app_at, move |sim| MtcpCore::app_slice(&this2, sim));
        }
        if rx_pending {
            MtcpCore::schedule_tcp(this, sim);
        } else if !schedule_app {
            if let Some(ns) = wake {
                let this2 = this.clone();
                let id = sim.schedule_in(Nanos(ns.max(1)), move |sim| {
                    this2.borrow_mut().idle_wake = None;
                    MtcpCore::schedule_tcp(&this2, sim);
                });
                this.borrow_mut().idle_wake = Some(id);
            }
        }
    }

    /// One application slice at a batch boundary: consume all buffered
    /// events, run the handler, dispatch its batched requests.
    fn app_slice(this: &MtcpCoreRef, sim: &mut Simulator) {
        let now = sim.now();
        let now_ns = now.as_nanos();
        let mut t = this.borrow_mut();
        t.app_scheduled = false;
        t.last_app = now;
        t.stats.app_batches += 1;
        let events = std::mem::take(&mut t.evq);
        let results = std::mem::take(&mut t.pending_results);
        t.stats.events += events.len() as u64;
        // Two context switches per exchange (into and out of the app).
        let mut kernel = 2 * t.params.switch_ns + t.params.event_ns * events.len() as u64;
        let mut ctx = UserCtx {
            now_ns,
            events,
            results,
            syscalls: Vec::new(),
            user_ns: 0,
        };
        t.app.on_cycle(&mut ctx);
        let user = ctx.user_ns;
        for s in ctx.syscalls {
            kernel += t.params.request_ns;
            let r = MtcpCore::dispatch(&mut t, now_ns, s);
            t.pending_results.push(r);
        }
        kernel += MtcpCore::flush_tx(&mut t);
        let mid = t.core.borrow_mut().run(now, Nanos(kernel), CpuDomain::Kernel);
        let end = t.core.borrow_mut().run(mid, Nanos(user), CpuDomain::User);
        let _ = end;
        let kicks = std::mem::take(&mut t.pending_kicks);
        drop(t);
        for nic in kicks {
            Nic::kick_tx(&nic, sim);
        }
        // The TCP thread resumes control of the core.
        MtcpCore::schedule_tcp(this, sim);
    }

    fn dispatch(t: &mut MtcpCore, now_ns: u64, s: Syscall) -> SyscallResult {
        match s {
            Syscall::Connect { cookie, dst_ip, dst_port } => {
                match t.shard.connect(now_ns, dst_ip, dst_port, cookie) {
                    Ok(_) => SyscallResult::InProgress,
                    Err(e) => SyscallResult::Err(e),
                }
            }
            Syscall::Accept { handle, cookie } => match t.shard.accept(handle, cookie) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            },
            Syscall::Sendv { handle, sg } => {
                let mut total = 0u32;
                for chunk in &sg {
                    match t.shard.send(now_ns, handle, chunk) {
                        Ok(n) => {
                            total += n as u32;
                            if n < chunk.len() {
                                break;
                            }
                        }
                        Err(e) => {
                            if total == 0 {
                                return SyscallResult::Err(e);
                            }
                            break;
                        }
                    }
                }
                SyscallResult::Sent(total)
            }
            Syscall::RecvDone { handle, bytes } => {
                match t.shard.recv_done(now_ns, handle, bytes) {
                    Ok(()) => SyscallResult::Ok,
                    Err(e) => SyscallResult::Err(e),
                }
            }
            Syscall::Close { handle } => match t.shard.close(now_ns, handle) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            },
            Syscall::Abort { handle } => match t.shard.abort(now_ns, handle) {
                Ok(()) => SyscallResult::Ok,
                Err(e) => SyscallResult::Err(e),
            },
        }
    }

    fn flush_tx(t: &mut MtcpCore) -> u64 {
        let tx = t.shard.take_tx();
        if tx.is_empty() {
            return 0;
        }
        let mut cost = 0;
        let nq = t.queues.len();
        for (i, f) in tx.into_iter().enumerate() {
            cost += t.params.tx_pkt_ns;
            let (nic, q) = t.queues[i % nq].clone();
            let _ = nic.borrow_mut().tx_ring(q).push(f);
            nic.borrow_mut().tx_ring(q).reclaim();
            t.pending_kicks.push(nic);
            t.stats.tx_packets += 1;
        }
        cost
    }
}

impl MtcpCore {
    /// The hardware thread this core pair runs on (for CPU accounting).
    pub fn core_ref(&self) -> &CoreRef {
        &self.core
    }
}

impl std::fmt::Debug for MtcpCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MtcpCore")
            .field("id", &self.id)
            .field("stats", &self.stats)
            .finish()
    }
}

/// A host running the mTCP model.
pub struct MtcpHost {
    /// Per-core state.
    pub cores: Vec<MtcpCoreRef>,
}

impl MtcpHost {
    /// Launches the mTCP model on `host` with `n_cores` cores.
    pub fn launch(
        sim: &mut Simulator,
        host: &ix_nic::host::Host,
        n_cores: usize,
        params: MtcpParams,
        mut stack_cfg: StackConfig,
        listen_port: Option<u16>,
        mut app_factory: impl FnMut(usize) -> Box<dyn IxApp>,
    ) -> MtcpHost {
        assert!(n_cores <= host.cores.len());
        stack_cfg.ack_policy = AckPolicy::Delayed(100_000);
        for nic in &host.nics {
            nic.borrow_mut()
                .set_redirection((0..128).map(|i| i % n_cores).collect());
        }
        let mut cores = Vec::with_capacity(n_cores);
        for i in 0..n_cores {
            let mut shard = TcpShard::new(stack_cfg.clone(), host.ip, host.mac);
            if let Some(p) = listen_port {
                shard.listen(p);
            }
            let nic0 = host.nics[0].clone();
            let local_ip = host.ip;
            shard.set_steering(
                i,
                Rc::new(move |rip, rport, lport| {
                    nic0.borrow().queue_for_flow(rip, local_ip, rport, lport)
                }),
            );
            let queues: Vec<(NicRef, QueueId)> =
                host.nics.iter().map(|n| (n.clone(), i)).collect();
            let mc = Rc::new(RefCell::new(MtcpCore {
                id: i,
                params: params.clone(),
                shard,
                app: app_factory(i),
                queues: queues.clone(),
                core: host.cores[i].clone(),
                evq: Vec::new(),
                pending_results: Vec::new(),
                last_app: SimTime::ZERO,
                app_scheduled: false,
                tcp_scheduled: false,
                idle_wake: None,
                pending_kicks: Vec::new(),
                stats: MtcpStats::default(),
            }));
            for (nic, q) in &queues {
                // Weak capture: the notify edge must not close an Rc
                // cycle through the engine (see ix_core::dataplane).
                let mc2 = Rc::downgrade(&mc);
                nic.borrow_mut().set_notify(
                    *q,
                    Rc::new(move |sim: &mut Simulator, _| {
                        if let Some(mc) = mc2.upgrade() {
                            MtcpCore::schedule_tcp(&mc, sim);
                        }
                    }),
                );
            }
            MtcpCore::schedule_tcp(&mc, sim);
            cores.push(mc);
        }
        MtcpHost { cores }
    }

    /// Seeds ARP on every core's shard.
    pub fn seed_arp(&self, ip: ix_net::Ipv4Addr, mac: ix_net::MacAddr) {
        for c in &self.cores {
            c.borrow_mut().shard.arp_seed(ip, mac);
        }
    }

    /// Aggregate stats.
    pub fn stats(&self) -> MtcpStats {
        let mut s = MtcpStats::default();
        for c in &self.cores {
            let t = c.borrow();
            s.polls += t.stats.polls;
            s.rx_packets += t.stats.rx_packets;
            s.tx_packets += t.stats.tx_packets;
            s.app_batches += t.stats.app_batches;
            s.events += t.stats.events;
        }
        s
    }
}
