//! Golden-trace regressions for the baseline execution models: the same
//! TCP-lifecycle scenario pinned for the IX dataplane in
//! `ix-core/tests/golden_trace.rs` — handshake, one 16-byte echo round
//! trip, graceful FIN teardown — run on the Linux kernel model and on
//! the mTCP model (with a Linux client, as §5.1's testbed always uses).
//!
//! The `(simulated-time, event)` sequences are pinned byte for byte, so
//! any change to interrupt coalescing, softirq batching, scheduler
//! wake-up latency, syscall billing, or mTCP's batch cadence shows up
//! here as a diff — exactly as the IX trace pins the dataplane's run-to-
//! completion cycle. Comparing the three traces is Figure 2 in
//! miniature: the same six application upcalls, at very different
//! simulated times.
//!
//! If a deliberate change shifts a trace, re-pin it from the failure
//! output and explain the shift in the commit message.

use std::cell::RefCell;
use std::rc::Rc;

use ix_baselines::linux::{LinuxHost, LinuxParams};
use ix_baselines::mtcp::{MtcpHost, MtcpParams};
use ix_core::api::IxApp;
use ix_core::libix::{ConnCtx, Libix, LibixCtx, LibixHandler};
use ix_nic::fabric::Fabric;
use ix_nic::params::MachineParams;
use ix_sim::{Nanos, Simulator};
use ix_tcp::{DeadReason, StackConfig};
use ix_testkit::Bytes;

const MSG: usize = 16;

type Trace = Rc<RefCell<Vec<(u64, String)>>>;

fn record(trace: &Trace, now: u64, event: impl Into<String>) {
    trace.borrow_mut().push((now, event.into()));
}

/// Server: echo the message once, record accept/data/teardown.
struct TraceServer {
    trace: Trace,
}

impl LibixHandler for TraceServer {
    fn on_accept(&mut self, ctx: &mut ConnCtx<'_>) {
        record(&self.trace, ctx.now_ns, "server: accept");
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        record(&self.trace, ctx.now_ns, format!("server: data({})", data.len()));
        let reply = Bytes::copy_from_slice(data);
        assert!(ctx.write(reply));
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, reason: DeadReason) {
        record(&self.trace, ctx.now_ns, format!("server: dead({reason:?})"));
    }
}

/// Client: connect once, send one message, close gracefully on the
/// full echo.
struct TraceClient {
    server: ix_net::Ipv4Addr,
    started: bool,
    got: usize,
    trace: Trace,
}

impl LibixHandler for TraceClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            ctx.connect(self.server, 9000, 0);
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "connect failed");
        record(&self.trace, ctx.now_ns, "client: connected");
        assert!(ctx.write(Bytes::from(vec![0x5au8; MSG])));
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        record(&self.trace, ctx.now_ns, format!("client: data({})", data.len()));
        self.got += data.len();
        assert!(self.got <= MSG);
        if self.got == MSG {
            record(&self.trace, ctx.now_ns, "client: close");
            ctx.close();
        }
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, reason: DeadReason) {
        record(&self.trace, ctx.now_ns, format!("client: dead({reason:?})"));
    }

    fn wants_tick(&self, _now: u64) -> bool {
        !self.started
    }
}

/// Which baseline runs the server side.
#[derive(Clone, Copy)]
enum ServerModel {
    Linux,
    Mtcp,
}

/// Runs the lifecycle scenario (client always on the Linux model, per
/// the paper's testbed) and returns the recorded trace.
fn run_scenario(server_model: ServerModel) -> Vec<(u64, String)> {
    let mut sim = Simulator::new(7);
    let mut fabric = Fabric::new(8, MachineParams::default());
    let client = fabric.add_host(1, 2, 0);
    let server = fabric.add_host(1, 8, 0);
    let server_ip = fabric.host(server).ip;
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));

    let t = trace.clone();
    enum Engine {
        Linux(LinuxHost),
        Mtcp(MtcpHost),
    }
    let engine = match server_model {
        ServerModel::Linux => Engine::Linux(LinuxHost::launch(
            &mut sim,
            fabric.host(server),
            1,
            LinuxParams::default(),
            StackConfig::default(),
            Some(9000),
            move |_| Box::new(Libix::new(TraceServer { trace: t.clone() })) as Box<dyn IxApp>,
        )),
        ServerModel::Mtcp => Engine::Mtcp(MtcpHost::launch(
            &mut sim,
            fabric.host(server),
            1,
            MtcpParams::default(),
            StackConfig::default(),
            Some(9000),
            move |_| Box::new(Libix::new(TraceServer { trace: t.clone() })) as Box<dyn IxApp>,
        )),
    };
    let t = trace.clone();
    let ch = LinuxHost::launch(
        &mut sim,
        fabric.host(client),
        1,
        LinuxParams::default(),
        StackConfig::default(),
        None,
        move |_| {
            Box::new(Libix::new(TraceClient {
                server: server_ip,
                started: false,
                got: 0,
                trace: t.clone(),
            })) as Box<dyn IxApp>
        },
    );
    let (cip, cmac) = {
        let c = fabric.host(client);
        (c.ip, c.mac)
    };
    match &engine {
        Engine::Linux(l) => l.seed_arp(cip, cmac),
        Engine::Mtcp(m) => m.seed_arp(cip, cmac),
    }
    ch.seed_arp(fabric.host(server).ip, fabric.host(server).mac);
    sim.run_until(ix_sim::SimTime(Nanos::from_millis(50).as_nanos()));
    let recorded = trace.borrow().clone();
    recorded
}

fn render(trace: &[(u64, String)]) -> Vec<String> {
    trace.iter().map(|(t, e)| format!("{t} {e}")).collect()
}

#[test]
fn linux_lifecycle_matches_golden_trace() {
    let rendered = render(&run_scenario(ServerModel::Linux));
    // Pinned from a run at the current Linux-model parameters. The same
    // six upcalls as the IX golden trace, but each separated by IRQ
    // coalescing, softirq scheduling, a scheduler wake-up of the blocked
    // app thread, and per-call syscall costs on both hosts: the
    // handshake completes at ~28.5 µs (IX: ~10.8 µs), the echo round
    // trip at ~68 µs (IX: ~23.5 µs), teardown lands at ~87 µs (IX:
    // ~29.3 µs) — the ~3x RTT gap of Figure 2.
    let golden = [
        "28538 client: connected",
        "33872 server: accept",
        "47913 server: data(16)",
        "67983 client: data(16)",
        "67983 client: close",
        "87382 server: dead(PeerFin)",
    ];
    assert_eq!(
        rendered,
        golden,
        "\ntrace diverged from golden; actual:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn mtcp_lifecycle_matches_golden_trace() {
    let rendered = render(&run_scenario(ServerModel::Mtcp));
    // Pinned from a run at the current mTCP-model parameters. mTCP's
    // batched thread handoffs quantize every server-side step to its
    // 50 µs batch boundary (accept and the data upcall coalesce into
    // one batch at t=50 µs; teardown waits for the next boundary at
    // t=100 µs) — per-packet costs amortized away, latency paid in
    // queueing: "at the expense of higher latency" (§5.2).
    let golden = [
        "23862 client: connected",
        "50000 server: accept",
        "50000 server: data(16)",
        "65650 client: data(16)",
        "65650 client: close",
        "100000 server: dead(PeerFin)",
    ];
    assert_eq!(
        rendered,
        golden,
        "\ntrace diverged from golden; actual:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn baseline_lifecycle_traces_are_reproducible() {
    assert_eq!(run_scenario(ServerModel::Linux), run_scenario(ServerModel::Linux));
    assert_eq!(run_scenario(ServerModel::Mtcp), run_scenario(ServerModel::Mtcp));
}
