//! The mutilate-style load generator (§5.5).
//!
//! "We use the mutilate load-generator to place a selected load on the
//! server in terms of requests per second (RPS) and measure response
//! latency. mutilate coordinates a large number of client threads across
//! multiple machines to generate the desired RPS load, while a separate
//! unloaded client measures latency by issuing one request at the time.
//! ... clients are permitted to pipeline up to four requests per
//! connection if needed to keep up with their target request rate."
//!
//! [`MutilateClient`] is one coordinated load thread: open-loop Poisson
//! arrivals at a per-thread target rate, spread over its connections
//! with a pipeline bound of four. [`MutilateAgent`] is the unloaded
//! latency sampler. Both feed a shared [`LoadStats`].

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use ix_testkit::Bytes;
use ix_core::libix::{ConnCtx, LibixCtx, LibixHandler};
use ix_sim::{Histogram, Nanos, SimRng, Simulator};

use crate::workload::{proto, Workload};

/// Per-window latency series — the time-resolved view the elastic
/// controller experiments need (a single whole-run histogram hides
/// exactly the transient the spike is about).
#[derive(Debug)]
pub struct LoadSeries {
    /// Series start (virtual time).
    pub start_ns: u64,
    /// Window width.
    pub window_ns: u64,
    /// One open-loop latency histogram per window.
    pub windows: Vec<Histogram>,
    /// Completions per window.
    pub counts: Vec<u64>,
}

impl LoadSeries {
    fn record(&mut self, now_ns: u64, latency_ns: u64) {
        if now_ns < self.start_ns {
            return;
        }
        let idx = ((now_ns - self.start_ns) / self.window_ns) as usize;
        if let Some(h) = self.windows.get_mut(idx) {
            h.record(Nanos(latency_ns));
            self.counts[idx] += 1;
        }
    }
}

/// Shared measurement sink for a memcached experiment.
#[derive(Debug)]
pub struct LoadStats {
    /// Latency across all load-generator requests (windowed).
    pub latency: Histogram,
    /// Wire+server portion only (issue to response), for diagnostics.
    pub net_latency: Histogram,
    /// Latency from the unloaded agent (windowed) — the paper's
    /// reported metric.
    pub agent_latency: Histogram,
    /// Requests completed inside the window.
    pub completed: u64,
    /// Requests completed overall.
    pub completed_total: u64,
    /// Requests dropped because the client backlog exceeded its bound
    /// (the generator has fallen hopelessly behind its target).
    pub shed: u64,
    /// Measurement window start.
    pub window_start_ns: u64,
    /// Measurement window end.
    pub window_end_ns: u64,
    /// Optional per-window latency series (off by default; enabling it
    /// changes no RNG draw and no packet, only bookkeeping).
    pub series: Option<LoadSeries>,
}

impl LoadStats {
    /// Creates a sink for the given measurement window.
    pub fn new(window_start_ns: u64, window_end_ns: u64) -> Rc<RefCell<LoadStats>> {
        Rc::new(RefCell::new(LoadStats {
            latency: Histogram::new(),
            net_latency: Histogram::new(),
            agent_latency: Histogram::new(),
            completed: 0,
            completed_total: 0,
            shed: 0,
            window_start_ns,
            window_end_ns,
            series: None,
        }))
    }

    /// Turns on the per-window latency series covering
    /// `[start_ns, end_ns)` in `window_ns` slices.
    pub fn enable_series(&mut self, start_ns: u64, end_ns: u64, window_ns: u64) {
        let n = (end_ns.saturating_sub(start_ns)).div_ceil(window_ns) as usize;
        self.series = Some(LoadSeries {
            start_ns,
            window_ns,
            windows: (0..n).map(|_| Histogram::new()).collect(),
            counts: vec![0; n],
        });
    }

    fn in_window(&self, now_ns: u64) -> bool {
        now_ns >= self.window_start_ns && now_ns < self.window_end_ns
    }
}

/// An in-flight request awaiting its response on a connection.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    seq: u64,
    /// Arrival time of the *intent* (for open-loop latency accounting,
    /// which includes client-side queueing).
    arrived_at: u64,
    /// When the request was actually written to the connection.
    issued_at: u64,
}

#[derive(Debug, Default)]
struct ConnIo {
    rx: Vec<u8>,
    fifo: VecDeque<Outstanding>,
}

/// One coordinated load-generation thread.
pub struct MutilateClient {
    server: ix_net::Ipv4Addr,
    port: u16,
    /// Connections this thread maintains.
    pub conns: usize,
    /// Pipeline bound per connection (the paper: 4).
    pub pipeline: usize,
    /// Target request rate for this thread, requests/second.
    pub rate_rps: f64,
    workload: Workload,
    rng: SimRng,
    stats: Rc<RefCell<LoadStats>>,
    io: HashMap<u64, ConnIo>,
    ready: Vec<u64>,
    /// user -> libix cookie, filled at on_connected.
    cookies: HashMap<u64, u64>,
    rr: usize,
    opened: usize,
    next_seq: u64,
    next_arrival_ns: u64,
    /// Arrivals waiting for pipeline capacity.
    backlog: VecDeque<u64>,
    /// Shed requests beyond this backlog depth.
    pub backlog_cap: usize,
    started: bool,
    /// Stop issuing at this time.
    pub stop_at_ns: u64,
    /// Deliveries parsed entirely in place from the zero-copy `Bytes`
    /// view (no response byte was staged anywhere).
    pub inplace_parses: u64,
    /// Byte-copy passes into a connection's reassembly buffer, taken
    /// only when a response straddles a delivery boundary.
    pub spill_copies: u64,
    /// MMPP burst modulation: while the shared flag is set, arrivals
    /// come at the second element's rate instead of `rate_rps`. One
    /// flag drives the whole fleet so a spike hits every client in the
    /// same virtual instant. `None` leaves the arrival process (and its
    /// RNG draw sequence) exactly as before.
    pub burst: Option<(Rc<Cell<bool>>, f64)>,
}

impl MutilateClient {
    /// Creates a load thread.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        server: ix_net::Ipv4Addr,
        port: u16,
        conns: usize,
        rate_rps: f64,
        workload: Workload,
        rng: SimRng,
        stats: Rc<RefCell<LoadStats>>,
    ) -> MutilateClient {
        MutilateClient {
            server,
            port,
            conns,
            pipeline: 4,
            rate_rps,
            workload,
            rng,
            stats,
            io: HashMap::new(),
            ready: Vec::new(),
            cookies: HashMap::new(),
            rr: 0,
            opened: 0,
            next_seq: 1,
            next_arrival_ns: 0,
            backlog: VecDeque::new(),
            backlog_cap: 4096,
            started: false,
            stop_at_ns: u64::MAX,
            inplace_parses: 0,
            spill_copies: 0,
            burst: None,
        }
    }

    /// Builds the next request and records it on `user`'s FIFO.
    fn build(&mut self, user: u64, arrived_at: u64, now_ns: u64) -> Bytes {
        let op = self.workload.next_op(&mut self.rng);
        let key = Workload::key_bytes(op.key, op.key_len);
        let seq = self.next_seq;
        self.next_seq += 1;
        let req = if op.is_get {
            proto::encode_request(proto::OP_GET, seq, &key, &vec![0u8; op.val_len])
        } else {
            proto::encode_request(proto::OP_SET, seq, &key, &vec![b'w'; op.val_len])
        };
        let io = self.io.get_mut(&user).expect("tracked");
        io.fifo.push_back(Outstanding { seq, arrived_at, issued_at: now_ns });
        Bytes::from(req)
    }

    /// Drains the backlog onto connections with pipeline capacity,
    /// round-robin; `write` sends bytes to a cookie.
    fn drain_backlog(&mut self, now_ns: u64, mut write: impl FnMut(u64, Bytes)) {
        if self.ready.is_empty() {
            return;
        }
        'outer: while let Some(&arrived) = self.backlog.front() {
            // Find a connection with room, starting at the RR cursor.
            for probe in 0..self.ready.len() {
                let idx = (self.rr + probe) % self.ready.len();
                let user = self.ready[idx];
                let room = self
                    .io
                    .get(&user)
                    .map(|io| io.fifo.len() < self.pipeline)
                    .unwrap_or(false);
                if room {
                    self.rr = (idx + 1) % self.ready.len();
                    self.backlog.pop_front();
                    let req = self.build(user, arrived, now_ns);
                    let cookie = *self.cookies.get(&user).expect("connected");
                    write(cookie, req);
                    continue 'outer;
                }
            }
            break; // Everything is pipeline-full.
        }
    }
}

impl LibixHandler for MutilateClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            // Let the connection ramp complete before the open loop
            // starts (mutilate's own warmup behaviour).
            self.next_arrival_ns = ctx.now_ns
                + 2_000_000
                + self.rng.exponential(1e9 / self.rate_rps.max(1.0)) as u64;
            for user in 0..self.conns as u64 {
                self.io.insert(user, ConnIo::default());
                ctx.connect(self.server, self.port, user);
                self.opened += 1;
            }
        }
        // Open-loop arrivals since the last tick. The modulating state
        // (MMPP) is read per arrival: a flag flip mid-backlog changes
        // the rate of every gap drawn after it.
        while self.next_arrival_ns <= ctx.now_ns && ctx.now_ns < self.stop_at_ns {
            let rate = match &self.burst {
                Some((flag, hi_rps)) if flag.get() => *hi_rps,
                _ => self.rate_rps,
            };
            let gap = self.rng.exponential(1e9 / rate.max(1.0)) as u64;
            let arrived = self.next_arrival_ns;
            self.next_arrival_ns += gap.max(1);
            if self.backlog.len() >= self.backlog_cap {
                self.stats.borrow_mut().shed += 1;
                continue;
            }
            self.backlog.push_back(arrived);
        }
        // Issue onto idle connections right away (open loop).
        ctx.charge(120);
        let now = ctx.now_ns;
        self.drain_backlog(now, |cookie, req| ctx.write_to(cookie, req));
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "mutilate connect failed");
        self.ready.push(ctx.conn.user);
        self.cookies.insert(ctx.conn.user, ctx.conn.cookie);
        let me = ctx.conn.cookie;
        let now = ctx.now_ns;
        self.drain_backlog(now, |cookie, req| {
            if cookie == me {
                // Writing to the own conn directly avoids a deferred
                // action round trip.
                ctx.write(req);
            } else {
                ctx.write_to(cookie, req);
            }
        });
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let user = ctx.conn.user;
        let now = ctx.now_ns;
        let Some(io) = self.io.get_mut(&user) else { return };
        // Contiguous fast path: nothing buffered for this connection, so
        // responses parse directly from the delivered view — in place,
        // zero staging copies. Only a genuine straddle spills into the
        // per-connection reassembly buffer.
        let spilled = !io.rx.is_empty();
        if spilled {
            self.spill_copies += 1;
            io.rx.extend_from_slice(data);
        }
        let mut consumed = 0usize;
        let mut completed = 0u32;
        loop {
            let (seq, total) = {
                let rest = if spilled { &io.rx[consumed..] } else { &data[consumed..] };
                let Some(h) = proto::decode_response_header(rest) else { break };
                if rest.len() < h.total_len() {
                    break;
                }
                (h.seq, h.total_len())
            };
            let out = io.fifo.pop_front().expect("response matches a request");
            debug_assert_eq!(out.seq, seq, "responses must be in order");
            consumed += total;
            completed += 1;
            let mut st = self.stats.borrow_mut();
            st.completed_total += 1;
            // Gate on the request's arrival instant so ramp-up backlogs
            // cannot leak giant latencies into the window.
            if st.in_window(out.arrived_at) {
                st.completed += 1;
                // Open-loop latency includes client-side queueing.
                st.latency.record(ix_sim::Nanos(now - out.arrived_at));
                st.net_latency.record(ix_sim::Nanos(now - out.issued_at));
            }
            if let Some(series) = st.series.as_mut() {
                series.record(now, now - out.arrived_at);
            }
        }
        if spilled {
            if consumed > 0 {
                io.rx.drain(..consumed);
            }
        } else if consumed < data.len() {
            self.spill_copies += 1;
            io.rx.extend_from_slice(&data[consumed..]);
        } else {
            self.inplace_parses += 1;
        }
        ctx.charge(250 * completed as u64);
        // Capacity freed: pull from the backlog.
        let me = ctx.conn.cookie;
        let now2 = ctx.now_ns;
        self.drain_backlog(now2, |cookie, req| {
            if cookie == me {
                ctx.write(req);
            } else {
                ctx.write_to(cookie, req);
            }
        });
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, reason: ix_tcp::DeadReason) {
        panic!("mutilate connection died mid-run: {reason:?} (user {})", ctx.conn.user);
    }

    fn wants_tick(&self, now_ns: u64) -> bool {
        !self.started || (self.next_arrival_ns <= now_ns && now_ns < self.stop_at_ns)
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        if self.started && self.next_arrival_ns < self.stop_at_ns {
            Some(self.next_arrival_ns)
        } else {
            None
        }
    }
}

/// The unloaded latency-measuring client: one connection, one request
/// outstanding at a time, paced slowly.
pub struct MutilateAgent {
    server: ix_net::Ipv4Addr,
    port: u16,
    workload: Workload,
    rng: SimRng,
    stats: Rc<RefCell<LoadStats>>,
    /// Pause between samples.
    pub gap_ns: u64,
    started: bool,
    rx: Vec<u8>,
    sent_at: u64,
    next_fire_ns: u64,
    awaiting: Option<u64>,
    next_seq: u64,
    cookie: Option<u64>,
    /// Stop sampling at this time.
    pub stop_at_ns: u64,
}

impl MutilateAgent {
    /// Creates the sampling agent.
    pub fn new(
        server: ix_net::Ipv4Addr,
        port: u16,
        workload: Workload,
        rng: SimRng,
        stats: Rc<RefCell<LoadStats>>,
    ) -> MutilateAgent {
        MutilateAgent {
            server,
            port,
            workload,
            rng,
            stats,
            gap_ns: 50_000,
            started: false,
            rx: Vec::new(),
            sent_at: 0,
            next_fire_ns: 0,
            awaiting: None,
            next_seq: 1,
            cookie: None,
            stop_at_ns: u64::MAX,
        }
    }

    /// Builds the next request and marks it outstanding.
    fn build_request(&mut self, now_ns: u64) -> Bytes {
        let op = self.workload.next_op(&mut self.rng);
        let key = Workload::key_bytes(op.key, op.key_len);
        let seq = self.next_seq;
        self.next_seq += 1;
        let req = if op.is_get {
            proto::encode_request(proto::OP_GET, seq, &key, &vec![0u8; op.val_len])
        } else {
            proto::encode_request(proto::OP_SET, seq, &key, &vec![b'w'; op.val_len])
        };
        self.sent_at = now_ns;
        self.awaiting = Some(seq);
        Bytes::from(req)
    }
}

impl LibixHandler for MutilateAgent {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started {
            self.started = true;
            ctx.connect(self.server, self.port, 0);
            return;
        }
        // Timer-paced sampling between responses.
        if let Some(cookie) = self.cookie {
            if self.awaiting.is_none() && self.next_fire_ns <= ctx.now_ns && ctx.now_ns < self.stop_at_ns
            {
                let req = self.build_request(ctx.now_ns);
                ctx.write_to(cookie, req);
            }
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "agent connect failed");
        self.cookie = Some(ctx.conn.cookie);
        let req = self.build_request(ctx.now_ns);
        ctx.write(req);
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        // Contiguous fast path: the agent keeps one request in flight, so
        // the response almost always arrives whole — parse the delivered
        // view in place; only a genuine straddle spills into `rx`.
        let seq = if self.rx.is_empty() {
            match proto::decode_response_header(data) {
                Some(h) if data.len() >= h.total_len() => {
                    if data.len() > h.total_len() {
                        self.rx.extend_from_slice(&data[h.total_len()..]);
                    }
                    h.seq
                }
                _ => {
                    self.rx.extend_from_slice(data);
                    return;
                }
            }
        } else {
            self.rx.extend_from_slice(data);
            let Some(h) = proto::decode_response_header(&self.rx) else { return };
            if self.rx.len() < h.total_len() {
                return;
            }
            self.rx.drain(..h.total_len());
            h.seq
        };
        debug_assert_eq!(Some(seq), self.awaiting);
        self.awaiting = None;
        let now = ctx.now_ns;
        {
            let mut st = self.stats.borrow_mut();
            if st.in_window(now) {
                st.agent_latency.record(ix_sim::Nanos(now - self.sent_at));
            }
        }
        if now < self.stop_at_ns {
            // Pause, then sample again from on_tick at the deadline.
            self.next_fire_ns = now + self.gap_ns;
        }
        let _ = ctx;
    }

    fn wants_tick(&self, now_ns: u64) -> bool {
        !self.started
            || (self.awaiting.is_none() && self.next_fire_ns <= now_ns && now_ns < self.stop_at_ns)
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        if self.started && self.awaiting.is_none() && self.next_fire_ns < self.stop_at_ns {
            Some(self.next_fire_ns)
        } else {
            None
        }
    }

    fn on_sent(&mut self, _ctx: &mut ConnCtx<'_>) {}
}

/// Transition log of an MMPP modulator: `(virtual time, burst on)`.
pub type MmppLog = Rc<RefCell<Vec<(u64, bool)>>>;

/// Drives the two-state MMPP modulation of a mutilate fleet: the shared
/// `flag` turns on at `start_ns`, stays up for an exponential dwell of
/// mean `mean_on_ns`, drops for an exponential dwell of mean
/// `mean_off_ns`, and repeats until `stop_ns` (where it is forced off).
/// All clients sharing the flag switch rates in the same virtual
/// instant — the fleet-wide load spike. The FIRST on/off cycle is
/// pinned to exactly its means (not sampled) so a time-to-absorb metric
/// is always measured against a full-length spike followed by a real
/// calm interval; an exponential draw can land at a few thousandths of
/// the mean and leave nothing to absorb (or no calm to consolidate in).
/// Later dwells are exponential. Returns the transition log.
pub fn start_mmpp(
    sim: &mut Simulator,
    flag: Rc<Cell<bool>>,
    rng: SimRng,
    start_ns: u64,
    mean_on_ns: u64,
    mean_off_ns: u64,
    stop_ns: u64,
) -> MmppLog {
    struct Mmpp {
        flag: Rc<Cell<bool>>,
        rng: SimRng,
        mean_on_ns: u64,
        mean_off_ns: u64,
        stop_ns: u64,
        pinned: u8,
        log: MmppLog,
    }
    fn flip(sim: &mut Simulator, mut m: Mmpp, on: bool) {
        let now = sim.now().as_nanos();
        if now >= m.stop_ns {
            if m.flag.get() {
                m.flag.set(false);
                m.log.borrow_mut().push((now, false));
            }
            return;
        }
        m.flag.set(on);
        m.log.borrow_mut().push((now, on));
        let mean = if on { m.mean_on_ns } else { m.mean_off_ns };
        let dwell = if m.pinned > 0 {
            m.pinned -= 1;
            mean
        } else {
            m.rng.exponential(mean as f64) as u64
        }
        .clamp(1, m.stop_ns - now);
        sim.schedule_in(Nanos(dwell), move |sim| flip(sim, m, !on));
    }
    let log: MmppLog = Rc::new(RefCell::new(Vec::new()));
    let m = Mmpp {
        flag,
        rng,
        mean_on_ns,
        mean_off_ns,
        stop_ns,
        pinned: 2,
        log: log.clone(),
    };
    sim.schedule_in(Nanos(start_ns), move |sim| flip(sim, m, true));
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_window() {
        let st = LoadStats::new(100, 200);
        assert!(!st.borrow().in_window(50));
        assert!(st.borrow().in_window(150));
        assert!(!st.borrow().in_window(200));
    }

    #[test]
    fn outstanding_fifo_order() {
        let mut io = ConnIo::default();
        io.fifo.push_back(Outstanding { seq: 1, arrived_at: 0, issued_at: 0 });
        io.fifo.push_back(Outstanding { seq: 2, arrived_at: 0, issued_at: 0 });
        assert_eq!(io.fifo.pop_front().unwrap().seq, 1);
        assert_eq!(io.fifo.pop_front().unwrap().seq, 2);
    }
}
