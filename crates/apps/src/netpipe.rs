//! NetPIPE (§5.2): ping-pong of fixed-size messages on one connection.
//!
//! "NetPIPE simply exchanges a fixed-size message between two servers and
//! helps calibrate the latency and bandwidth of a single flow. In all
//! cases, we run the same system on both ends."

use std::cell::RefCell;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix_core::libix::{ConnCtx, LibixCtx, LibixHandler};
use ix_sim::SimRng;

/// Results of one NetPIPE run.
#[derive(Debug, Default)]
pub struct NetpipeResult {
    /// Message size in bytes.
    pub msg_size: usize,
    /// Completed round trips.
    pub reps: usize,
    /// Total time across measured round trips, ns.
    pub total_rtt_ns: u64,
    /// Smallest observed RTT, ns.
    pub min_rtt_ns: u64,
    /// Run finished.
    pub done: bool,
}

impl NetpipeResult {
    /// Mean one-way latency, ns.
    pub fn one_way_ns(&self) -> u64 {
        if self.reps == 0 {
            return 0;
        }
        self.total_rtt_ns / (2 * self.reps as u64)
    }

    /// NetPIPE goodput in Gbps: message bits over one-way time.
    pub fn goodput_gbps(&self) -> f64 {
        let one_way = self.one_way_ns();
        if one_way == 0 {
            return 0.0;
        }
        (self.msg_size as f64 * 8.0) / one_way as f64
    }
}

/// The NetPIPE responder: echoes full messages (same logic as the echo
/// server, kept separate for clarity of the experiment mapping).
pub struct NetpipeServer {
    msg_size: usize,
    got: usize,
    /// Per-message service-time jitter `(rng, max_ns)`: the experiment
    /// seed's entry point into the measured path, modelling run-to-run
    /// server-side variability (cache state, SMI noise) that real
    /// NetPIPE measurements average over.
    jitter: Option<(SimRng, u64)>,
}

impl NetpipeServer {
    /// Creates a responder for `msg_size`-byte messages.
    pub fn new(msg_size: usize) -> NetpipeServer {
        NetpipeServer { msg_size, got: 0, jitter: None }
    }

    /// Charges a seeded `[0, max_ns)` service cost per echoed message.
    pub fn with_jitter(mut self, rng: SimRng, max_ns: u64) -> NetpipeServer {
        self.jitter = Some((rng, max_ns));
        self
    }
}

impl LibixHandler for NetpipeServer {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        self.got += data.len();
        while self.got >= self.msg_size {
            self.got -= self.msg_size;
            if let Some((rng, max_ns)) = &mut self.jitter {
                ctx.charge(rng.below(*max_ns));
            }
            ctx.write(Bytes::from(vec![0u8; self.msg_size]));
        }
    }
}

/// The NetPIPE initiator: `warmup + reps` round trips of `msg_size`.
pub struct NetpipeClient {
    server: ix_net::Ipv4Addr,
    port: u16,
    msg_size: usize,
    reps: usize,
    warmup: usize,
    start_after_ns: u64,
    started: bool,
    got: usize,
    done_reps: usize,
    sent_at: u64,
    result: Rc<RefCell<NetpipeResult>>,
}

impl NetpipeClient {
    /// Creates the initiator; results land in the returned cell.
    pub fn new(
        server: ix_net::Ipv4Addr,
        port: u16,
        msg_size: usize,
        reps: usize,
        warmup: usize,
    ) -> (NetpipeClient, Rc<RefCell<NetpipeResult>>) {
        let result = Rc::new(RefCell::new(NetpipeResult {
            msg_size,
            min_rtt_ns: u64::MAX,
            ..NetpipeResult::default()
        }));
        (
            NetpipeClient {
                server,
                port,
                msg_size,
                reps,
                warmup,
                start_after_ns: 0,
                started: false,
                got: 0,
                done_reps: 0,
                sent_at: 0,
                result: result.clone(),
            },
            result,
        )
    }

    /// Delays the first connect until virtual time `ns` — models the
    /// client process's start phase relative to the server's poll
    /// cadence, which is where the experiment seed enters NetPIPE.
    pub fn start_after(mut self, ns: u64) -> NetpipeClient {
        self.start_after_ns = ns;
        self
    }

    fn fire(&mut self, ctx: &mut ConnCtx<'_>) {
        self.sent_at = ctx.now_ns;
        ctx.write(Bytes::from(vec![0u8; self.msg_size]));
    }
}

impl LibixHandler for NetpipeClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if !self.started && ctx.now_ns >= self.start_after_ns {
            self.started = true;
            ctx.connect(self.server, self.port, 0);
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "netpipe connect failed");
        self.fire(ctx);
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        self.got += data.len();
        if self.got < self.msg_size {
            return;
        }
        self.got -= self.msg_size;
        let rtt = ctx.now_ns - self.sent_at;
        self.done_reps += 1;
        if self.done_reps > self.warmup {
            let mut r = self.result.borrow_mut();
            r.reps += 1;
            r.total_rtt_ns += rtt;
            r.min_rtt_ns = r.min_rtt_ns.min(rtt);
        }
        if self.done_reps >= self.warmup + self.reps {
            self.result.borrow_mut().done = true;
            ctx.close();
        } else {
            self.fire(ctx);
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        !self.started
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        if self.started {
            None
        } else {
            Some(self.start_after_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_math() {
        let r = NetpipeResult {
            msg_size: 20_000,
            reps: 10,
            total_rtt_ns: 10 * 64_000, // 64 µs RTT → 32 µs one-way.
            min_rtt_ns: 60_000,
            done: true,
        };
        assert_eq!(r.one_way_ns(), 32_000);
        // 160_000 bits / 32_000 ns = 5 Gbps.
        assert!((r.goodput_gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_result_is_zero() {
        let r = NetpipeResult::default();
        assert_eq!(r.one_way_ns(), 0);
        assert_eq!(r.goodput_gbps(), 0.0);
    }
}
