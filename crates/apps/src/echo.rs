//! The §5.3 echo microbenchmark (also used by MegaPipe and mTCP).
//!
//! "18 clients connect to a single server listening on a single port,
//! send a remote request of size s bytes, and wait for an echo of a
//! message of the same size. ... the server holds off its echo response
//! until the message has been entirely received. Each client performs
//! this synchronous remote procedure call n times before closing the
//! connection. ... clients close the connection using a reset (TCP RST)
//! to avoid exhausting ephemeral ports."

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix_core::libix::{ConnCtx, LibixCtx, LibixHandler};
use ix_sim::Histogram;
use ix_tcp::FlowMap;

/// The echo server: buffers until a full `msg_size` request arrives,
/// then echoes it back ("the server holds off its echo response until
/// the message has been entirely received").
pub struct EchoServer {
    /// Request/response size in bytes.
    pub msg_size: usize,
    /// Application CPU per fully received request (request parsing and
    /// response construction).
    pub service_ns: u64,
    /// Bytes received so far per connection (keyed by libix cookie;
    /// open-addressed — this is touched on every delivered segment, so
    /// at 250k connections it is hot-path state like the flow table).
    partial: FlowMap<usize>,
    /// The zero-filled response, allocated once and cloned per echo
    /// (O(1) refcount bump). Downstream, `sendv` slices this same block
    /// into the retransmit queue, so steady-state echo traffic allocates
    /// no payload storage at all.
    template: Bytes,
}

impl EchoServer {
    /// Creates a server for `msg_size`-byte messages.
    pub fn new(msg_size: usize, service_ns: u64) -> EchoServer {
        EchoServer {
            msg_size,
            service_ns,
            partial: FlowMap::new(),
            template: Bytes::new(),
        }
    }
}

/// Returns a shared clone of `template`, (re)building it if `msg_size`
/// changed since the last call — the handlers expose `msg_size` as a
/// public field, so the cache revalidates rather than trusting it.
fn response(template: &mut Bytes, msg_size: usize) -> Bytes {
    if template.len() != msg_size {
        *template = Bytes::from(vec![0u8; msg_size]);
    }
    template.clone()
}

impl LibixHandler for EchoServer {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let got = self.partial.get_or_insert_default(ctx.conn.cookie);
        *got += data.len();
        while *got >= self.msg_size {
            *got -= self.msg_size;
            ctx.charge(self.service_ns);
            let rsp = response(&mut self.template, self.msg_size);
            ctx.write(rsp);
        }
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, _reason: ix_tcp::DeadReason) {
        self.partial.remove(ctx.conn.cookie);
    }
}

/// Shared measurement sink for echo clients.
#[derive(Debug)]
pub struct EchoBenchStats {
    /// Round-trip latencies (recorded only inside the measurement
    /// window).
    pub rtt: Histogram,
    /// Completed messages inside the window.
    pub messages: u64,
    /// Completed messages overall.
    pub messages_total: u64,
    /// Connections fully completed (n round trips + close).
    pub conns_closed: u64,
    /// Measurement window start (ns); zero disables gating.
    pub window_start_ns: u64,
    /// Measurement window end (ns); `u64::MAX` leaves it open.
    pub window_end_ns: u64,
}

impl EchoBenchStats {
    /// Creates a sink measuring inside `[start, end)`.
    pub fn new(window_start_ns: u64, window_end_ns: u64) -> Rc<RefCell<EchoBenchStats>> {
        Rc::new(RefCell::new(EchoBenchStats {
            rtt: Histogram::new(),
            messages: 0,
            messages_total: 0,
            conns_closed: 0,
            window_start_ns,
            window_end_ns,
        }))
    }

    fn record(&mut self, now_ns: u64, rtt_ns: u64) {
        self.messages_total += 1;
        if now_ns >= self.window_start_ns && now_ns < self.window_end_ns {
            self.messages += 1;
            self.rtt.record(ix_sim::Nanos(rtt_ns));
        }
    }
}

/// Per-connection client state.
#[derive(Debug, Clone, Copy)]
struct ConnState {
    received: usize,
    done_msgs: usize,
    sent_at: u64,
}

/// The closed-loop echo client: keeps `conns` connections busy, each
/// performing `n` round trips of `msg_size` bytes before an RST close
/// and (optionally) a fresh connection — the §5.3 churn pattern.
pub struct EchoClient {
    /// Server address.
    pub server: ix_net::Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Message size `s`.
    pub msg_size: usize,
    /// Round trips per connection `n`.
    pub n_per_conn: usize,
    /// Concurrent connections to maintain.
    pub conns: usize,
    /// Whether to reopen after closing (sustained churn) or stop.
    pub reopen: bool,
    /// Client-side application CPU per round trip.
    pub think_ns: u64,
    stats: Rc<RefCell<EchoBenchStats>>,
    states: HashMap<u64, ConnState>,
    opened: usize,
    live: usize,
    next_user: u64,
    /// Stop issuing new work after this instant (lets the run drain).
    pub stop_at_ns: u64,
    /// Shared zero-filled request block (see [`EchoServer::template`]).
    template: Bytes,
}

impl EchoClient {
    /// Creates a client handler feeding `stats`.
    pub fn new(
        server: ix_net::Ipv4Addr,
        port: u16,
        msg_size: usize,
        n_per_conn: usize,
        conns: usize,
        reopen: bool,
        stats: Rc<RefCell<EchoBenchStats>>,
    ) -> EchoClient {
        EchoClient {
            server,
            port,
            msg_size,
            n_per_conn,
            conns,
            reopen,
            think_ns: 0,
            stats,
            states: HashMap::new(),
            opened: 0,
            live: 0,
            next_user: 0,
            stop_at_ns: u64::MAX,
            template: Bytes::new(),
        }
    }

    fn fire(&mut self, ctx: &mut ConnCtx<'_>) {
        let st = self.states.get_mut(&ctx.conn.user).expect("tracked");
        st.sent_at = ctx.now_ns;
        ctx.charge(self.think_ns);
        let req = response(&mut self.template, self.msg_size);
        ctx.write(req);
    }
}

impl LibixHandler for EchoClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        while self.live < self.conns && ctx.now_ns < self.stop_at_ns {
            let user = self.next_user;
            self.next_user += 1;
            self.states.insert(
                user,
                ConnState { received: 0, done_msgs: 0, sent_at: 0 },
            );
            ctx.connect(self.server, self.port, user);
            self.opened += 1;
            self.live += 1;
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        if !ok {
            self.live -= 1;
            self.states.remove(&ctx.conn.user);
            return;
        }
        self.fire(ctx);
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let user = ctx.conn.user;
        let now = ctx.now_ns;
        let Some(st) = self.states.get_mut(&user) else { return };
        st.received += data.len();
        if st.received < self.msg_size {
            return;
        }
        st.received -= self.msg_size;
        st.done_msgs += 1;
        let rtt = now - st.sent_at;
        self.stats.borrow_mut().record(now, rtt);
        if st.done_msgs >= self.n_per_conn || now >= self.stop_at_ns {
            // RST close, per the benchmark definition.
            ctx.abort();
            self.states.remove(&user);
            self.live -= 1;
            self.stats.borrow_mut().conns_closed += 1;
            // on_tick reopens if configured.
        } else {
            self.fire(ctx);
        }
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, _reason: ix_tcp::DeadReason) {
        if self.states.remove(&ctx.conn.user).is_some() {
            self.live -= 1;
        }
    }

    fn wants_tick(&self, now_ns: u64) -> bool {
        (self.reopen || self.opened < self.conns) && self.live < self.conns && now_ns < self.stop_at_ns
    }
}

/// A cyclic ready-set over dense connection ids: a bitmap with a
/// rotating cursor, so "fire the next idle connection round-robin" is
/// a find-first-set-bit over 64-id words instead of a probe loop over
/// every connection. At 250k connections per client fleet the old
/// `for _ in 0..conns` scan in [`RotatingEchoClient`] was the
/// quadratic term in ramp and rotation.
#[derive(Debug)]
pub struct ReadyRing {
    /// One bit per connection id; set = idle (no RPC outstanding).
    words: Vec<u64>,
    /// Number of valid ids (bits above this are never set).
    len: usize,
    /// Next id to consider, advancing past each fired id — the same
    /// rotation the scanning cursor produced.
    cursor: usize,
    ready: usize,
    /// Cumulative 64-bit words examined across all `take_next` calls
    /// (the probe-cost meter the regression test asserts on).
    probes: u64,
}

impl ReadyRing {
    /// A ring over ids `0..len`, all initially not ready.
    pub fn new(len: usize) -> ReadyRing {
        ReadyRing { words: vec![0; len.div_ceil(64)], len, cursor: 0, ready: 0, probes: 0 }
    }

    /// Marks `id` ready (idempotent).
    pub fn set(&mut self, id: usize) {
        assert!(id < self.len, "id {} out of ring bounds {}", id, self.len);
        let (w, b) = (id / 64, 1u64 << (id % 64));
        if self.words[w] & b == 0 {
            self.words[w] |= b;
            self.ready += 1;
        }
    }

    /// Marks `id` not ready (idempotent).
    pub fn clear(&mut self, id: usize) {
        assert!(id < self.len, "id {} out of ring bounds {}", id, self.len);
        let (w, b) = (id / 64, 1u64 << (id % 64));
        if self.words[w] & b != 0 {
            self.words[w] &= !b;
            self.ready -= 1;
        }
    }

    /// Number of ready ids.
    pub fn ready(&self) -> usize {
        self.ready
    }

    /// Cumulative words examined by [`ReadyRing::take_next`].
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Returns the first ready id at or cyclically after the cursor and
    /// advances the cursor past it, clearing nothing — the caller
    /// decides whether firing consumes readiness. Returns `None` (with
    /// the cursor unmoved) when nothing is ready.
    pub fn take_next(&mut self) -> Option<usize> {
        if self.ready == 0 {
            return None;
        }
        let found = self
            .scan(self.cursor, self.len)
            .or_else(|| self.scan(0, self.cursor))
            .expect("ready count nonzero");
        self.cursor = if found + 1 >= self.len { 0 } else { found + 1 };
        Some(found)
    }

    /// First set bit in `[from, to)`, counting examined words.
    fn scan(&mut self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let (first_w, last_w) = (from / 64, (to - 1) / 64);
        for w in first_w..=last_w {
            self.probes += 1;
            let mut word = self.words[w];
            if w == first_w {
                word &= !0u64 << (from % 64);
            }
            if w == last_w && (to - 1) % 64 != 63 {
                word &= (1u64 << ((to - 1) % 64 + 1)) - 1;
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Per-connection bookkeeping for [`RotatingEchoClient`], slab-indexed
/// by the dense user id (`0..conns`).
#[derive(Debug, Clone, Copy)]
struct ClientSlot {
    cookie: u64,
    partial: usize,
    /// Fire timestamp of the outstanding RPC; 0 = idle.
    sent_at: u64,
}

/// The §5.4 connection-scalability client (Fig 4): each thread holds a
/// large set of established connections and rotates a small number of
/// outstanding RPCs across them round-robin, so every connection stays
/// live while total concurrency stays bounded ("18 client machines run n
/// threads, each thread repeatedly performing a 64B RPC to the server
/// with a variable number of active connections").
pub struct RotatingEchoClient {
    /// Server address.
    pub server: ix_net::Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Message size.
    pub msg_size: usize,
    /// Total connections this thread maintains.
    pub conns: usize,
    /// Concurrent outstanding RPCs.
    pub outstanding: usize,
    /// Connections opened per ramp round (avoids SYN floods).
    pub ramp_batch: usize,
    stats: Rc<RefCell<EchoBenchStats>>,
    /// Slab of per-connection state, indexed by user id (`None` until
    /// that connection establishes).
    slots: Vec<Option<ClientSlot>>,
    /// Bit set ⇔ slot exists and `sent_at == 0` (idle, fireable).
    ring: ReadyRing,
    opened: usize,
    connected: usize,
    inflight: usize,
    rotating: bool,
    /// Do not begin dialing before this instant. Harnesses stagger
    /// this across client threads to turn a synchronized 250k-SYN
    /// storm into amortized dial waves the server's accept path can
    /// absorb without drops.
    pub dial_at_ns: u64,
    /// Start rotating no later than this instant, even if some
    /// connections failed to establish (robustness at 250k-connection
    /// scale).
    pub start_at_ns: u64,
    /// Stop issuing new RPCs after this instant.
    pub stop_at_ns: u64,
    /// Shared zero-filled request block (see [`EchoServer::template`]).
    template: Bytes,
}

impl RotatingEchoClient {
    /// Creates a rotating client.
    pub fn new(
        server: ix_net::Ipv4Addr,
        port: u16,
        msg_size: usize,
        conns: usize,
        outstanding: usize,
        stats: Rc<RefCell<EchoBenchStats>>,
    ) -> RotatingEchoClient {
        RotatingEchoClient {
            server,
            port,
            msg_size,
            conns,
            outstanding,
            ramp_batch: 64,
            stats,
            slots: vec![None; conns],
            ring: ReadyRing::new(conns),
            opened: 0,
            connected: 0,
            inflight: 0,
            rotating: false,
            dial_at_ns: 0,
            start_at_ns: 0,
            stop_at_ns: u64::MAX,
            template: Bytes::new(),
        }
    }

    /// Fires an RPC on the next idle connection in rotation via a
    /// deferred write (we are outside that connection's callback).
    /// O(ready-ring word scan), not O(conns): the ring hands back the
    /// first idle id at or after the rotation cursor.
    fn fire_next(&mut self, now_ns: u64, mut write: impl FnMut(u64, Bytes)) {
        if now_ns >= self.stop_at_ns || self.connected == 0 {
            return;
        }
        let Some(user) = self.ring.take_next() else { return };
        let slot = self.slots[user].as_mut().expect("ready bit implies live slot");
        debug_assert_eq!(slot.sent_at, 0, "ready bit implies idle");
        slot.sent_at = now_ns;
        if now_ns != 0 {
            // `sent_at == 0` doubles as the idle sentinel, so a fire at
            // t=0 leaves the slot fireable — same as the scan it replaces.
            self.ring.clear(user);
        }
        let c = slot.cookie;
        let req = response(&mut self.template, self.msg_size);
        write(c, req);
        self.inflight += 1;
    }

    /// Cumulative ready-ring probe words (for the probe-cost test).
    pub fn ring_probes(&self) -> u64 {
        self.ring.probes()
    }
}

impl LibixHandler for RotatingEchoClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        if ctx.now_ns < self.dial_at_ns {
            return;
        }
        // Ramp: open connections in bounded batches.
        while self.opened < self.conns && self.opened < self.connected + self.ramp_batch {
            ctx.connect(self.server, self.port, self.opened as u64);
            self.opened += 1;
        }
        // Deadline start: rotate over whatever is established.
        if !self.rotating && ctx.now_ns >= self.start_at_ns && self.connected > 0 {
            self.rotating = true;
            for _ in 0..self.outstanding {
                let now = ctx.now_ns;
                self.fire_next(now, |cookie, data| ctx.write_to(cookie, data));
            }
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "rotating client connect failed");
        let user = ctx.conn.user as usize;
        self.slots[user] = Some(ClientSlot { cookie: ctx.conn.cookie, partial: 0, sent_at: 0 });
        self.ring.set(user);
        self.connected += 1;
        if self.connected == self.conns && !self.rotating {
            // Everything established: start the rotation.
            self.rotating = true;
            for _ in 0..self.outstanding {
                let now = ctx.now_ns;
                self.fire_next(now, |cookie, data| {
                    if cookie == ctx.conn.cookie {
                        ctx.write(data);
                    } else {
                        ctx.write_to(cookie, data);
                    }
                });
            }
        }
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let user = ctx.conn.user as usize;
        let now = ctx.now_ns;
        let full = {
            let Some(slot) = self.slots.get_mut(user).and_then(Option::as_mut) else { return };
            slot.partial += data.len();
            if slot.partial < self.msg_size {
                false
            } else {
                slot.partial -= self.msg_size;
                let rtt = now - slot.sent_at;
                slot.sent_at = 0;
                self.ring.set(user);
                self.stats.borrow_mut().record(now, rtt);
                true
            }
        };
        if full {
            self.inflight -= 1;
            self.fire_next(now, |cookie, d| {
                if cookie == ctx.conn.cookie {
                    ctx.write(d);
                } else {
                    ctx.write_to(cookie, d);
                }
            });
        }
    }

    fn wants_tick(&self, now_ns: u64) -> bool {
        self.opened < self.conns || (!self.rotating && now_ns >= self.start_at_ns)
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        if self.rotating {
            None
        } else if self.opened == 0 && self.dial_at_ns > 0 {
            // Waiting for our dial wave.
            Some(self.dial_at_ns)
        } else {
            Some(self.start_at_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_echoes_only_complete_messages() {
        // Drive the handler directly with a fake ConnCtx via libix is
        // heavyweight; instead verify the partial-buffer arithmetic.
        let mut s = EchoServer::new(100, 0);
        assert_eq!(*s.partial.get_or_insert_default(1), 0);
        // Simulate accumulation logic.
        let got = s.partial.get_mut(1).unwrap();
        *got += 60;
        assert!(*got < s.msg_size);
        *got += 50;
        assert!(*got >= s.msg_size);
        *got -= s.msg_size;
        assert_eq!(*got, 10);
    }

    /// The old `fire_next` probe loop, kept as the behavioural
    /// reference: scan up to `n` user slots from a monotonically
    /// advancing cursor, returning the first ready one.
    struct ScanRef {
        ready: Vec<bool>,
        cursor: u64,
    }

    impl ScanRef {
        fn take_next(&mut self) -> Option<usize> {
            let n = self.ready.len() as u64;
            for _ in 0..n {
                let user = (self.cursor % n) as usize;
                self.cursor += 1;
                if self.ready[user] {
                    return Some(user);
                }
            }
            None
        }
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Differential: the ready-ring fires exactly the ids, in exactly
    /// the order, the old O(conns) cursor scan fired, under randomized
    /// set/clear/fire interleavings (including empty-ring fires).
    #[test]
    fn ready_ring_matches_cursor_scan_reference() {
        for &n in &[1usize, 7, 63, 64, 65, 200, 1000] {
            let mut rng = 0x1234_5678_9abc_def0u64 ^ (n as u64);
            let mut ring = ReadyRing::new(n);
            let mut reference = ScanRef { ready: vec![false; n], cursor: 0 };
            for _ in 0..4_000 {
                match splitmix(&mut rng) % 4 {
                    0 | 1 => {
                        let id = (splitmix(&mut rng) as usize) % n;
                        ring.set(id);
                        reference.ready[id] = true;
                    }
                    2 => {
                        let id = (splitmix(&mut rng) as usize) % n;
                        ring.clear(id);
                        reference.ready[id] = false;
                    }
                    _ => {
                        let got = ring.take_next();
                        let want = reference.take_next();
                        assert_eq!(got, want, "ring diverged from scan (n={n})");
                        // Firing consumes readiness in both models.
                        if let Some(id) = got {
                            ring.clear(id);
                            reference.ready[id] = false;
                        }
                    }
                }
            }
        }
    }

    /// The probe-cost regression the satellite task demands: firing
    /// from a dense 250k-connection ring touches ONE word per fire —
    /// not 250k slots — and even the adversarial sparse case is
    /// bounded by the word count, 64× below the old scan.
    #[test]
    fn ready_ring_fire_cost_is_words_not_conns() {
        let n = 250_000;
        let mut ring = ReadyRing::new(n);
        for i in 0..n {
            ring.set(i);
        }
        let before = ring.probes();
        for _ in 0..1_000 {
            let id = ring.take_next().expect("dense ring");
            // Simulate instant completion: the slot stays ready, as in
            // steady-state rotation where most connections are idle.
            ring.clear(id);
            ring.set(id);
        }
        assert_eq!(ring.probes() - before, 1_000, "dense fires must cost one word each");

        // Adversarial: only the id just *behind* the cursor is ready,
        // forcing a full cyclic scan — still word-granular.
        let mut sparse = ReadyRing::new(n);
        sparse.set(0);
        let _ = sparse.take_next(); // cursor now at 1, nothing ready at/after it
        sparse.clear(0);
        sparse.set(0);
        let before = sparse.probes();
        assert_eq!(sparse.take_next(), Some(0));
        let words = (n as u64).div_ceil(64);
        assert!(
            sparse.probes() - before <= words + 1,
            "worst-case fire probed {} words (bound {})",
            sparse.probes() - before,
            words + 1
        );
    }

    #[test]
    fn stats_window_gating() {
        let stats = EchoBenchStats::new(1_000, 2_000);
        stats.borrow_mut().record(500, 10);
        stats.borrow_mut().record(1_500, 10);
        stats.borrow_mut().record(2_500, 10);
        let s = stats.borrow();
        assert_eq!(s.messages_total, 3);
        assert_eq!(s.messages, 1);
        assert_eq!(s.rtt.count(), 1);
    }
}
