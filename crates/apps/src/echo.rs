//! The §5.3 echo microbenchmark (also used by MegaPipe and mTCP).
//!
//! "18 clients connect to a single server listening on a single port,
//! send a remote request of size s bytes, and wait for an echo of a
//! message of the same size. ... the server holds off its echo response
//! until the message has been entirely received. Each client performs
//! this synchronous remote procedure call n times before closing the
//! connection. ... clients close the connection using a reset (TCP RST)
//! to avoid exhausting ephemeral ports."

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix_core::libix::{ConnCtx, LibixCtx, LibixHandler};
use ix_sim::Histogram;

/// The echo server: buffers until a full `msg_size` request arrives,
/// then echoes it back ("the server holds off its echo response until
/// the message has been entirely received").
pub struct EchoServer {
    /// Request/response size in bytes.
    pub msg_size: usize,
    /// Application CPU per fully received request (request parsing and
    /// response construction).
    pub service_ns: u64,
    /// Bytes received so far per connection (keyed by libix cookie).
    partial: HashMap<u64, usize>,
}

impl EchoServer {
    /// Creates a server for `msg_size`-byte messages.
    pub fn new(msg_size: usize, service_ns: u64) -> EchoServer {
        EchoServer {
            msg_size,
            service_ns,
            partial: HashMap::new(),
        }
    }
}

impl LibixHandler for EchoServer {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &[u8]) {
        let got = self.partial.entry(ctx.conn.cookie).or_insert(0);
        *got += data.len();
        while *got >= self.msg_size {
            *got -= self.msg_size;
            ctx.charge(self.service_ns);
            ctx.write(Bytes::from(vec![0u8; self.msg_size]));
        }
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, _reason: ix_tcp::DeadReason) {
        self.partial.remove(&ctx.conn.cookie);
    }
}

/// Shared measurement sink for echo clients.
#[derive(Debug)]
pub struct EchoBenchStats {
    /// Round-trip latencies (recorded only inside the measurement
    /// window).
    pub rtt: Histogram,
    /// Completed messages inside the window.
    pub messages: u64,
    /// Completed messages overall.
    pub messages_total: u64,
    /// Connections fully completed (n round trips + close).
    pub conns_closed: u64,
    /// Measurement window start (ns); zero disables gating.
    pub window_start_ns: u64,
    /// Measurement window end (ns); `u64::MAX` leaves it open.
    pub window_end_ns: u64,
}

impl EchoBenchStats {
    /// Creates a sink measuring inside `[start, end)`.
    pub fn new(window_start_ns: u64, window_end_ns: u64) -> Rc<RefCell<EchoBenchStats>> {
        Rc::new(RefCell::new(EchoBenchStats {
            rtt: Histogram::new(),
            messages: 0,
            messages_total: 0,
            conns_closed: 0,
            window_start_ns,
            window_end_ns,
        }))
    }

    fn record(&mut self, now_ns: u64, rtt_ns: u64) {
        self.messages_total += 1;
        if now_ns >= self.window_start_ns && now_ns < self.window_end_ns {
            self.messages += 1;
            self.rtt.record(ix_sim::Nanos(rtt_ns));
        }
    }
}

/// Per-connection client state.
#[derive(Debug, Clone, Copy)]
struct ConnState {
    received: usize,
    done_msgs: usize,
    sent_at: u64,
}

/// The closed-loop echo client: keeps `conns` connections busy, each
/// performing `n` round trips of `msg_size` bytes before an RST close
/// and (optionally) a fresh connection — the §5.3 churn pattern.
pub struct EchoClient {
    /// Server address.
    pub server: ix_net::Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Message size `s`.
    pub msg_size: usize,
    /// Round trips per connection `n`.
    pub n_per_conn: usize,
    /// Concurrent connections to maintain.
    pub conns: usize,
    /// Whether to reopen after closing (sustained churn) or stop.
    pub reopen: bool,
    /// Client-side application CPU per round trip.
    pub think_ns: u64,
    stats: Rc<RefCell<EchoBenchStats>>,
    states: HashMap<u64, ConnState>,
    opened: usize,
    live: usize,
    next_user: u64,
    /// Stop issuing new work after this instant (lets the run drain).
    pub stop_at_ns: u64,
}

impl EchoClient {
    /// Creates a client handler feeding `stats`.
    pub fn new(
        server: ix_net::Ipv4Addr,
        port: u16,
        msg_size: usize,
        n_per_conn: usize,
        conns: usize,
        reopen: bool,
        stats: Rc<RefCell<EchoBenchStats>>,
    ) -> EchoClient {
        EchoClient {
            server,
            port,
            msg_size,
            n_per_conn,
            conns,
            reopen,
            think_ns: 0,
            stats,
            states: HashMap::new(),
            opened: 0,
            live: 0,
            next_user: 0,
            stop_at_ns: u64::MAX,
        }
    }

    fn fire(&mut self, ctx: &mut ConnCtx<'_>) {
        let st = self.states.get_mut(&ctx.conn.user).expect("tracked");
        st.sent_at = ctx.now_ns;
        ctx.charge(self.think_ns);
        ctx.write(Bytes::from(vec![0u8; self.msg_size]));
    }
}

impl LibixHandler for EchoClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        while self.live < self.conns && ctx.now_ns < self.stop_at_ns {
            let user = self.next_user;
            self.next_user += 1;
            self.states.insert(
                user,
                ConnState { received: 0, done_msgs: 0, sent_at: 0 },
            );
            ctx.connect(self.server, self.port, user);
            self.opened += 1;
            self.live += 1;
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        if !ok {
            self.live -= 1;
            self.states.remove(&ctx.conn.user);
            return;
        }
        self.fire(ctx);
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &[u8]) {
        let user = ctx.conn.user;
        let now = ctx.now_ns;
        let Some(st) = self.states.get_mut(&user) else { return };
        st.received += data.len();
        if st.received < self.msg_size {
            return;
        }
        st.received -= self.msg_size;
        st.done_msgs += 1;
        let rtt = now - st.sent_at;
        self.stats.borrow_mut().record(now, rtt);
        if st.done_msgs >= self.n_per_conn || now >= self.stop_at_ns {
            // RST close, per the benchmark definition.
            ctx.abort();
            self.states.remove(&user);
            self.live -= 1;
            self.stats.borrow_mut().conns_closed += 1;
            // on_tick reopens if configured.
        } else {
            self.fire(ctx);
        }
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, _reason: ix_tcp::DeadReason) {
        if self.states.remove(&ctx.conn.user).is_some() {
            self.live -= 1;
        }
    }

    fn wants_tick(&self, now_ns: u64) -> bool {
        (self.reopen || self.opened < self.conns) && self.live < self.conns && now_ns < self.stop_at_ns
    }
}

/// The §5.4 connection-scalability client (Fig 4): each thread holds a
/// large set of established connections and rotates a small number of
/// outstanding RPCs across them round-robin, so every connection stays
/// live while total concurrency stays bounded ("18 client machines run n
/// threads, each thread repeatedly performing a 64B RPC to the server
/// with a variable number of active connections").
pub struct RotatingEchoClient {
    /// Server address.
    pub server: ix_net::Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Message size.
    pub msg_size: usize,
    /// Total connections this thread maintains.
    pub conns: usize,
    /// Concurrent outstanding RPCs.
    pub outstanding: usize,
    /// Connections opened per ramp round (avoids SYN floods).
    pub ramp_batch: usize,
    stats: Rc<RefCell<EchoBenchStats>>,
    /// user -> (cookie, partial bytes, sent_at).
    conns_up: HashMap<u64, (u64, usize, u64)>,
    opened: usize,
    connected: usize,
    cursor: u64,
    inflight: usize,
    rotating: bool,
    /// Start rotating no later than this instant, even if some
    /// connections failed to establish (robustness at 250k-connection
    /// scale).
    pub start_at_ns: u64,
    /// Stop issuing new RPCs after this instant.
    pub stop_at_ns: u64,
}

impl RotatingEchoClient {
    /// Creates a rotating client.
    pub fn new(
        server: ix_net::Ipv4Addr,
        port: u16,
        msg_size: usize,
        conns: usize,
        outstanding: usize,
        stats: Rc<RefCell<EchoBenchStats>>,
    ) -> RotatingEchoClient {
        RotatingEchoClient {
            server,
            port,
            msg_size,
            conns,
            outstanding,
            ramp_batch: 64,
            stats,
            conns_up: HashMap::new(),
            opened: 0,
            connected: 0,
            cursor: 0,
            inflight: 0,
            rotating: false,
            start_at_ns: 0,
            stop_at_ns: u64::MAX,
        }
    }

    /// Fires an RPC on the next connection in rotation via a deferred
    /// write (we are outside that connection's callback).
    fn fire_next(&mut self, now_ns: u64, mut write: impl FnMut(u64, Bytes)) {
        if now_ns >= self.stop_at_ns || self.connected == 0 {
            return;
        }
        for _ in 0..self.conns as u64 {
            let user = self.cursor % self.conns as u64;
            self.cursor += 1;
            if let Some((cookie, _, sent_at)) = self.conns_up.get_mut(&user) {
                if *sent_at == 0 {
                    *sent_at = now_ns;
                    let c = *cookie;
                    write(c, Bytes::from(vec![0u8; self.msg_size]));
                    self.inflight += 1;
                    return;
                }
            }
        }
    }
}

impl LibixHandler for RotatingEchoClient {
    fn on_tick(&mut self, ctx: &mut LibixCtx<'_>) {
        // Ramp: open connections in bounded batches.
        while self.opened < self.conns && self.opened < self.connected + self.ramp_batch {
            ctx.connect(self.server, self.port, self.opened as u64);
            self.opened += 1;
        }
        // Deadline start: rotate over whatever is established.
        if !self.rotating && ctx.now_ns >= self.start_at_ns && self.connected > 0 {
            self.rotating = true;
            for _ in 0..self.outstanding {
                let now = ctx.now_ns;
                self.fire_next(now, |cookie, data| ctx.write_to(cookie, data));
            }
        }
    }

    fn on_connected(&mut self, ctx: &mut ConnCtx<'_>, ok: bool) {
        assert!(ok, "rotating client connect failed");
        self.conns_up.insert(ctx.conn.user, (ctx.conn.cookie, 0, 0));
        self.connected += 1;
        if self.connected == self.conns && !self.rotating {
            // Everything established: start the rotation.
            self.rotating = true;
            for _ in 0..self.outstanding {
                let now = ctx.now_ns;
                self.fire_next(now, |cookie, data| {
                    if cookie == ctx.conn.cookie {
                        ctx.write(data);
                    } else {
                        ctx.write_to(cookie, data);
                    }
                });
            }
        }
    }

    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &[u8]) {
        let user = ctx.conn.user;
        let now = ctx.now_ns;
        let full = {
            let Some((_, partial, sent_at)) = self.conns_up.get_mut(&user) else { return };
            *partial += data.len();
            if *partial < self.msg_size {
                false
            } else {
                *partial -= self.msg_size;
                let rtt = now - *sent_at;
                *sent_at = 0;
                self.stats.borrow_mut().record(now, rtt);
                true
            }
        };
        if full {
            self.inflight -= 1;
            self.fire_next(now, |cookie, d| {
                if cookie == ctx.conn.cookie {
                    ctx.write(d);
                } else {
                    ctx.write_to(cookie, d);
                }
            });
        }
    }

    fn wants_tick(&self, now_ns: u64) -> bool {
        self.opened < self.conns || (!self.rotating && now_ns >= self.start_at_ns)
    }

    fn next_deadline_ns(&self) -> Option<u64> {
        if self.rotating {
            None
        } else {
            Some(self.start_at_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_echoes_only_complete_messages() {
        // Drive the handler directly with a fake ConnCtx via libix is
        // heavyweight; instead verify the partial-buffer arithmetic.
        let mut s = EchoServer::new(100, 0);
        assert_eq!(*s.partial.entry(1).or_insert(0), 0);
        // Simulate accumulation logic.
        let got = s.partial.get_mut(&1).unwrap();
        *got += 60;
        assert!(*got < s.msg_size);
        *got += 50;
        assert!(*got >= s.msg_size);
        *got -= s.msg_size;
        assert_eq!(*got, 10);
    }

    #[test]
    fn stats_window_gating() {
        let stats = EchoBenchStats::new(1_000, 2_000);
        stats.borrow_mut().record(500, 10);
        stats.borrow_mut().record(1_500, 10);
        stats.borrow_mut().record(2_500, 10);
        let s = stats.borrow();
        assert_eq!(s.messages_total, 3);
        assert_eq!(s.messages, 1);
        assert_eq!(s.rtt.count(), 1);
    }
}
