//! The Facebook memcached workloads (ETC and USR) and the KV wire
//! protocol.
//!
//! §5.5: "the ETC workload that represents the highest capacity
//! deployment in Facebook, has 20B–70B keys, 1B–1KB values, and 75% GET
//! requests; and the USR workload that represents deployment with most
//! GET requests in Facebook, has short keys (<20B), 2B values, and 99%
//! GET requests. In USR, almost all traffic involves minimum-sized TCP
//! packets."

use ix_sim::SimRng;

/// Which Facebook workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 20–70 B keys, 1 B–1 KB values, 75% GET.
    Etc,
    /// <20 B keys, 2 B values, 99% GET.
    Usr,
}

/// A workload generator: request mix and size distributions.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which deployment profile.
    pub kind: WorkloadKind,
    /// Number of distinct keys.
    pub key_space: u64,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// True for GET, false for SET.
    pub is_get: bool,
    /// Key index (the key bytes derive from it).
    pub key: u64,
    /// Key length in bytes.
    pub key_len: usize,
    /// Value length in bytes (SET payload; GET response size).
    pub val_len: usize,
}

impl Workload {
    /// Creates a generator with the paper's parameters.
    pub fn new(kind: WorkloadKind) -> Workload {
        Workload {
            kind,
            key_space: 100_000,
        }
    }

    /// Fraction of GET operations.
    pub fn get_ratio(&self) -> f64 {
        match self.kind {
            WorkloadKind::Etc => 0.75,
            WorkloadKind::Usr => 0.99,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&self, rng: &mut SimRng) -> Op {
        let is_get = rng.chance(self.get_ratio());
        let key = rng.below(self.key_space);
        match self.kind {
            WorkloadKind::Etc => {
                let key_len = rng.range_inclusive(20, 70) as usize;
                // Value sizes: Atikoglu et al. report a strong skew
                // toward small values with a tail to ~1 KB; a discrete
                // mixture reproduces the mean and the tail shape.
                let val_len = match rng.below(100) {
                    0..=39 => rng.range_inclusive(1, 16) as usize,
                    40..=69 => rng.range_inclusive(17, 128) as usize,
                    70..=89 => rng.range_inclusive(129, 512) as usize,
                    _ => rng.range_inclusive(513, 1024) as usize,
                };
                Op { is_get, key, key_len, val_len }
            }
            WorkloadKind::Usr => Op {
                is_get,
                key,
                key_len: 16,
                val_len: 2,
            },
        }
    }

    /// The key bytes for a key index at the given length (deterministic,
    /// so clients and the store agree without sharing state).
    pub fn key_bytes(key: u64, key_len: usize) -> Vec<u8> {
        let mut v = vec![b'k'; key_len];
        let digits = key.to_le_bytes();
        let n = key_len.min(8);
        v[..n].copy_from_slice(&digits[..n]);
        v
    }
}

/// The KV wire protocol (binary, minimal — in the spirit of the
/// memcached binary protocol):
///
/// Request:  `[op:1][klen:2][vlen:4][seq:8][key][val if SET]`
/// Response: `[status:1][vlen:4][seq:8][val if GET-hit]`
pub mod proto {
    /// GET request opcode.
    pub const OP_GET: u8 = 0;
    /// SET request opcode.
    pub const OP_SET: u8 = 1;
    /// Response status: ok / hit.
    pub const ST_OK: u8 = 0;
    /// Response status: miss.
    pub const ST_MISS: u8 = 1;

    /// Fixed request header length.
    pub const REQ_HDR: usize = 1 + 2 + 4 + 8;
    /// Fixed response header length.
    pub const RSP_HDR: usize = 1 + 4 + 8;

    /// Encodes a request. For GET, `val` communicates the *expected*
    /// response value length via the header only; its bytes travel only
    /// on SET.
    pub fn encode_request(op: u8, seq: u64, key: &[u8], val: &[u8]) -> Vec<u8> {
        let body = if op == OP_SET { val.len() } else { 0 };
        let mut out = Vec::with_capacity(REQ_HDR + key.len() + body);
        out.push(op);
        out.extend_from_slice(&(key.len() as u16).to_be_bytes());
        out.extend_from_slice(&(val.len() as u32).to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(key);
        if op == OP_SET {
            out.extend_from_slice(val);
        }
        out
    }

    /// A parsed request header.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReqHeader {
        /// Opcode.
        pub op: u8,
        /// Key length.
        pub klen: usize,
        /// Value length.
        pub vlen: usize,
        /// Client sequence number (echoed in the response).
        pub seq: u64,
    }

    impl ReqHeader {
        /// Total request length including header.
        pub fn total_len(&self) -> usize {
            REQ_HDR + self.klen + if self.op == OP_SET { self.vlen } else { 0 }
        }
    }

    /// Parses a request header from a (possibly longer) buffer; `None`
    /// when fewer than `REQ_HDR` bytes are available.
    pub fn decode_request_header(buf: &[u8]) -> Option<ReqHeader> {
        if buf.len() < REQ_HDR {
            return None;
        }
        Some(ReqHeader {
            op: buf[0],
            klen: u16::from_be_bytes([buf[1], buf[2]]) as usize,
            vlen: u32::from_be_bytes([buf[3], buf[4], buf[5], buf[6]]) as usize,
            seq: u64::from_be_bytes(buf[7..15].try_into().expect("8 bytes")),
        })
    }

    /// Encodes a response.
    pub fn encode_response(status: u8, seq: u64, val: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(RSP_HDR + val.len());
        out.push(status);
        out.extend_from_slice(&(val.len() as u32).to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(val);
        out
    }

    /// A parsed response header.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RspHeader {
        /// Status code.
        pub status: u8,
        /// Value length that follows.
        pub vlen: usize,
        /// Echoed sequence number.
        pub seq: u64,
    }

    impl RspHeader {
        /// Total response length including header.
        pub fn total_len(&self) -> usize {
            RSP_HDR + self.vlen
        }
    }

    /// Parses a response header; `None` when incomplete.
    pub fn decode_response_header(buf: &[u8]) -> Option<RspHeader> {
        if buf.len() < RSP_HDR {
            return None;
        }
        Some(RspHeader {
            status: buf[0],
            vlen: u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize,
            seq: u64::from_be_bytes(buf[5..13].try_into().expect("8 bytes")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etc_distributions_match_paper() {
        let w = Workload::new(WorkloadKind::Etc);
        let mut rng = SimRng::new(42);
        let mut gets = 0;
        let n = 20_000;
        for _ in 0..n {
            let op = w.next_op(&mut rng);
            gets += op.is_get as u32;
            assert!((20..=70).contains(&op.key_len));
            assert!((1..=1024).contains(&op.val_len));
        }
        let ratio = gets as f64 / n as f64;
        assert!((ratio - 0.75).abs() < 0.02, "GET ratio {ratio}");
    }

    #[test]
    fn usr_is_tiny_and_get_heavy() {
        let w = Workload::new(WorkloadKind::Usr);
        let mut rng = SimRng::new(43);
        let mut gets = 0;
        let n = 20_000;
        for _ in 0..n {
            let op = w.next_op(&mut rng);
            gets += op.is_get as u32;
            assert!(op.key_len < 20);
            assert_eq!(op.val_len, 2);
        }
        let ratio = gets as f64 / n as f64;
        assert!((ratio - 0.99).abs() < 0.005, "GET ratio {ratio}");
        // USR requests fit in a minimum-size TCP packet.
        let req = proto::encode_request(proto::OP_GET, 1, &Workload::key_bytes(7, 16), &[]);
        assert!(req.len() <= 46, "USR request {} bytes", req.len());
    }

    #[test]
    fn request_roundtrip() {
        let key = Workload::key_bytes(123, 32);
        let val = vec![9u8; 100];
        let req = proto::encode_request(proto::OP_SET, 77, &key, &val);
        let h = proto::decode_request_header(&req).unwrap();
        assert_eq!(h.op, proto::OP_SET);
        assert_eq!(h.klen, 32);
        assert_eq!(h.vlen, 100);
        assert_eq!(h.seq, 77);
        assert_eq!(h.total_len(), req.len());
        assert_eq!(&req[proto::REQ_HDR..proto::REQ_HDR + 32], &key[..]);
    }

    #[test]
    fn get_request_omits_value() {
        let key = Workload::key_bytes(5, 20);
        let req = proto::encode_request(proto::OP_GET, 1, &key, &[0u8; 100]);
        // GET semantics: vlen tells the expected response size, but the
        // value bytes do not travel with the request.
        let h = proto::decode_request_header(&req).unwrap();
        assert_eq!(h.vlen, 100);
        assert_eq!(h.total_len(), proto::REQ_HDR + 20);
        assert_eq!(req.len(), h.total_len());
    }

    #[test]
    fn response_roundtrip() {
        let rsp = proto::encode_response(proto::ST_OK, 42, b"ab");
        let h = proto::decode_response_header(&rsp).unwrap();
        assert_eq!(h.status, proto::ST_OK);
        assert_eq!(h.vlen, 2);
        assert_eq!(h.seq, 42);
        assert_eq!(h.total_len(), rsp.len());
    }

    #[test]
    fn key_bytes_deterministic_and_distinct() {
        assert_eq!(Workload::key_bytes(1, 16), Workload::key_bytes(1, 16));
        assert_ne!(Workload::key_bytes(1, 16), Workload::key_bytes(2, 16));
    }
}
