//! Applications and workloads for the IX evaluation (§5).
//!
//! Everything here is written against [`ix_core::libix`]'s event API and
//! is therefore engine-agnostic: the same application binary runs on the
//! IX dataplane, the Linux model, and the mTCP model — exactly how §5
//! compares the three systems.
//!
//! * [`echo`] — the §5.3 microbenchmark: clients connect, perform `n`
//!   synchronous round trips of `s` bytes, and close with RST; plus the
//!   echo server.
//! * [`netpipe`] — the §5.2 NetPIPE ping-pong for latency/bandwidth of a
//!   single flow.
//! * [`kvstore`] — a memcached-style in-memory key-value store over a
//!   binary protocol, with an application-level store lock that models
//!   the contention the paper says limits ETC scaling (§5.5).
//! * [`workload`] — the Facebook ETC and USR workload definitions from
//!   Atikoglu et al. as the paper configures them, plus the wire
//!   protocol used between the KV store and its clients.
//! * [`mutilate`] — the mutilate-style load generator: open-loop Poisson
//!   arrivals across many connections with bounded pipelining, and the
//!   separate one-at-a-time latency-sampling agent (§5.5).
//! * [`harness`] — testbed assembly: builds the §5.1 cluster (clients +
//!   switch + server) for any of the three systems and runs measured
//!   experiment windows; used by integration tests and every figure
//!   bench.

pub mod attack;
pub mod echo;
pub mod harness;
pub mod kvstore;
pub mod mutilate;
pub mod netpipe;
pub mod workload;

pub use attack::{AttackConfig, AttackKind, AttackStats};
pub use echo::{EchoBenchStats, EchoClient, EchoServer};
pub use harness::{
    AdversarialConfig, AdversarialResult, EchoConfig, EchoResult, FaultRecoveryConfig,
    FaultRecoveryResult, FaultedNetpipeResult, System, Testbed,
};
pub use kvstore::{KvServer, SharedStore};
pub use mutilate::{LoadStats, MutilateAgent, MutilateClient};
pub use netpipe::{NetpipeClient, NetpipeResult, NetpipeServer};
pub use workload::{Workload, WorkloadKind};
