//! Testbed assembly and experiment runners (§5.1).
//!
//! "Our experimental setup consists of a cluster of 24 clients and one
//! server connected by a Quanta/Cumulus 48x10GbE switch ... For 10GbE
//! experiments, we use a single NIC port, and for 4x10GbE experiments, we
//! use four NIC ports bonded by the switch with a L3+L4 hash. ... Except
//! for §5.2, client machines always run Linux."
//!
//! [`Testbed`] builds that cluster for any server system; the `run_*`
//! functions execute one measured experiment and return the numbers the
//! paper's tables and figures report. Integration tests and every bench
//! binary go through this module, so the experiment definitions live in
//! exactly one place.

use std::cell::RefCell;
use std::rc::Rc;

use ix_baselines::linux::{LinuxHost, LinuxParams};
use ix_baselines::mtcp::{MtcpHost, MtcpParams};
use ix_core::api::IxApp;
use ix_core::dataplane::Dataplane;
use ix_core::libix::{Libix, LibixHandler};
use ix_core::params::CostParams;
use ix_nic::fabric::Fabric;
use ix_nic::host::HostId;
use ix_nic::params::MachineParams;
use ix_sim::{Nanos, SimRng, SimTime, Simulator};
use ix_tcp::StackConfig;

use crate::echo::{EchoBenchStats, EchoClient, EchoServer};
use crate::kvstore::{KvServer, SharedStore};
use crate::mutilate::{LoadStats, MutilateAgent, MutilateClient};
use crate::netpipe::{NetpipeClient, NetpipeServer};
use crate::workload::Workload;

/// Which system runs the server (and, for NetPIPE, both ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The IX dataplane.
    Ix,
    /// The Linux kernel model.
    Linux,
    /// The mTCP user-level stack model.
    Mtcp,
}

impl System {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            System::Ix => "IX",
            System::Linux => "Linux",
            System::Mtcp => "mTCP",
        }
    }
}

/// A launched server engine (any system).
pub enum ServerEngine {
    /// IX dataplane.
    Ix(Dataplane),
    /// Linux model.
    Linux(LinuxHost),
    /// mTCP model.
    Mtcp(MtcpHost),
}

impl ServerEngine {
    /// Aggregated mbuf-pool statistics across all server cores: total
    /// alloc/free churn, current outstanding, and summed per-core peaks.
    pub fn mbuf_stats(&self) -> ix_mempool::PoolStats {
        fn add(agg: &mut ix_mempool::PoolStats, p: ix_mempool::PoolStats) {
            agg.allocs += p.allocs;
            agg.frees += p.frees;
            agg.exhausted += p.exhausted;
            agg.outstanding += p.outstanding;
            agg.peak_outstanding += p.peak_outstanding;
        }
        let mut agg = ix_mempool::PoolStats::default();
        match self {
            ServerEngine::Ix(d) => agg = d.mbuf_stats(),
            ServerEngine::Linux(l) => {
                for c in &l.cores {
                    add(&mut agg, c.borrow().shard.pool_stats());
                }
            }
            ServerEngine::Mtcp(m) => {
                for c in &m.cores {
                    add(&mut agg, c.borrow().shard.pool_stats());
                }
            }
        }
        agg
    }

    /// Aggregated TCP stack counters across all server cores: every
    /// per-shard counter (retransmits, checksum/parse drops, recovery
    /// events, ...) summed — previously only mbuf statistics were
    /// aggregated and per-core TCP counters were invisible to
    /// experiments.
    pub fn tcp_stats(&self) -> ix_tcp::StackStats {
        let mut agg = ix_tcp::StackStats::default();
        match self {
            ServerEngine::Ix(d) => {
                for th in &d.threads {
                    agg.absorb(&th.borrow().shard.stats);
                }
            }
            ServerEngine::Linux(l) => {
                for c in &l.cores {
                    agg.absorb(&c.borrow().shard.stats);
                }
            }
            ServerEngine::Mtcp(m) => {
                for c in &m.cores {
                    agg.absorb(&c.borrow().shard.stats);
                }
            }
        }
        agg
    }

    /// Aggregated flow-table / TCB-slab occupancy across all server
    /// shards: live flows, high-water slab slots, and resident bytes
    /// summed — the peak-RSS-style accounting the Fig 4 sweep prints
    /// per point.
    pub fn flow_mem(&self) -> ix_tcp::FlowMapMem {
        let mut agg = ix_tcp::FlowMapMem { live: 0, slab_slots: 0, bytes: 0 };
        let mut add = |m: ix_tcp::FlowMapMem| {
            agg.live += m.live;
            agg.slab_slots += m.slab_slots;
            agg.bytes += m.bytes;
        };
        match self {
            ServerEngine::Ix(d) => {
                for th in &d.threads {
                    add(th.borrow().shard.flow_mem_stats());
                }
            }
            ServerEngine::Linux(l) => {
                for c in &l.cores {
                    add(c.borrow().shard.flow_mem_stats());
                }
            }
            ServerEngine::Mtcp(m) => {
                for c in &m.cores {
                    add(c.borrow().shard.flow_mem_stats());
                }
            }
        }
        agg
    }

    /// `(kernel_ns, user_ns)` CPU split across server cores.
    pub fn cpu_split(&self) -> (u64, u64) {
        match self {
            ServerEngine::Ix(d) => d.cpu_split(),
            ServerEngine::Linux(l) => l.cpu_split(),
            ServerEngine::Mtcp(m) => {
                let mut k = 0;
                let mut u = 0;
                for c in &m.cores {
                    let t = c.borrow();
                    let core = t.core_ref().borrow();
                    k += core.kernel_ns;
                    u += core.user_ns;
                }
                (k, u)
            }
        }
    }
}

/// The assembled cluster.
pub struct Testbed {
    /// The event engine.
    pub sim: Simulator,
    /// Hosts and switch.
    pub fabric: Fabric,
    /// The server's host id.
    pub server: HostId,
    /// Client host ids.
    pub clients: Vec<HostId>,
    /// The launched server engine.
    pub engine: Option<ServerEngine>,
}

/// Overridable engine knobs for an experiment.
#[derive(Debug, Clone, Default)]
pub struct EngineTuning {
    /// IX dataplane cost model.
    pub ix: CostParams,
    /// Linux model parameters (server side and clients).
    pub linux: LinuxParams,
    /// mTCP model parameters.
    pub mtcp: MtcpParams,
    /// TCP stack configuration (all systems).
    pub stack: StackConfig,
}

impl Testbed {
    /// Builds the cluster: one server with `server_ports` bonded ports
    /// and `n_clients` single-port clients, all on one switch.
    pub fn new(seed: u64, server_ports: usize, n_clients: usize) -> Testbed {
        Testbed::with_extra_ports(seed, server_ports, n_clients, 2)
    }

    /// [`Testbed::new`] with room for `extra` additional late-added
    /// hosts on the switch (latency agents, attacker hosts, taps).
    pub fn with_extra_ports(
        seed: u64,
        server_ports: usize,
        n_clients: usize,
        extra: usize,
    ) -> Testbed {
        let params = MachineParams::default();
        let mut fabric = Fabric::new(server_ports + n_clients + extra, params);
        // Server: 8 cores + 8 hyperthreads, as the Xeon E5-2665 socket.
        let server = fabric.add_host(server_ports, 8, 8);
        let clients: Vec<HostId> = (0..n_clients).map(|_| fabric.add_host(1, 8, 0)).collect();
        Testbed {
            sim: Simulator::new(seed),
            fabric,
            server,
            clients,
            engine: None,
        }
    }

    /// Launches the server engine with one app handler per core.
    pub fn launch_server<H, F>(
        &mut self,
        system: System,
        cores: usize,
        tuning: &EngineTuning,
        listen_port: u16,
        mut handler: F,
    ) where
        H: LibixHandler + 'static,
        F: FnMut(usize) -> H,
    {
        let host = self.fabric.host(self.server);
        let engine = match system {
            System::Ix => ServerEngine::Ix(Dataplane::launch(
                &mut self.sim,
                host,
                cores,
                tuning.ix.clone(),
                tuning.stack.clone(),
                Some(listen_port),
                |i| Box::new(Libix::new(handler(i))) as Box<dyn IxApp>,
            )),
            System::Linux => ServerEngine::Linux(LinuxHost::launch(
                &mut self.sim,
                host,
                cores,
                tuning.linux.clone(),
                tuning.stack.clone(),
                Some(listen_port),
                |i| Box::new(Libix::new(handler(i))) as Box<dyn IxApp>,
            )),
            System::Mtcp => ServerEngine::Mtcp(MtcpHost::launch(
                &mut self.sim,
                host,
                cores,
                tuning.mtcp.clone(),
                tuning.stack.clone(),
                Some(listen_port),
                |i| Box::new(Libix::new(handler(i))) as Box<dyn IxApp>,
            )),
        };
        self.engine = Some(engine);
    }

    /// Launches a client application on every client host (Linux model,
    /// per §5.1), `threads` handler instances per host.
    pub fn launch_linux_clients<H, F>(&mut self, threads: usize, tuning: &EngineTuning, mut handler: F)
    where
        H: LibixHandler + 'static,
        F: FnMut(usize, usize) -> H,
    {
        for (ci, id) in self.clients.clone().into_iter().enumerate() {
            let host = self.fabric.host(id);
            let lh = LinuxHost::launch(
                &mut self.sim,
                host,
                threads,
                tuning.linux.clone(),
                tuning.stack.clone(),
                None,
                |t| Box::new(Libix::new(handler(ci, t))) as Box<dyn IxApp>,
            );
            // ARP bring-up.
            let (sip, smac) = {
                let s = self.fabric.host(self.server);
                (s.ip, s.mac)
            };
            lh.seed_arp(sip, smac);
            self.seed_server_arp(id);
        }
    }

    /// Seeds the server engine's ARP with a client's address.
    fn seed_server_arp(&mut self, client: HostId) {
        let (cip, cmac) = {
            let c = self.fabric.host(client);
            (c.ip, c.mac)
        };
        match self.engine.as_ref().expect("server launched") {
            ServerEngine::Ix(d) => d.seed_arp(cip, cmac),
            ServerEngine::Linux(l) => l.seed_arp(cip, cmac),
            ServerEngine::Mtcp(m) => m.seed_arp(cip, cmac),
        }
    }

    /// The server's IP.
    pub fn server_ip(&self) -> ix_net::Ipv4Addr {
        self.fabric.host(self.server).ip
    }

    /// Runs the simulation until `t`.
    pub fn run_until_ns(&mut self, t: u64) {
        self.sim.run_until(SimTime(t));
    }

    /// One-line engine diagnostics: batching, NIC drops, retransmits,
    /// core busy times.
    pub fn debug_line(&self) -> String {
        let host = self.fabric.host(self.server);
        let mut nic_rx = 0u64;
        let mut nic_drops = 0u64;
        let mut rings = String::new();
        for nic in &host.nics {
            let mut n = nic.borrow_mut();
            nic_rx += n.stats.rx_frames;
            nic_drops += n.stats.rx_ring_drops;
            for q in 0..8 {
                let r = n.rx_ring(q);
                rings += &format!("q{q}:p{}/w{}/d{} ", r.posted(), r.pending(), r.drops);
            }
        }
        let busy: Vec<String> = host
            .cores
            .iter()
            .take(8)
            .map(|c| format!("{:.0}%", c.borrow().busy_ns as f64 / self.sim.now().as_nanos().max(1) as f64 * 100.0))
            .collect();
        let extra = match self.engine.as_ref() {
            Some(ServerEngine::Ix(d)) => {
                let st = d.stats();
                let retx: u64 = d
                    .threads
                    .iter()
                    .map(|t| t.borrow().shard.stats.retransmits)
                    .sum();
                format!(
                    "avg_batch={:.1} full={} iters={} retx={}",
                    st.batch_sum as f64 / st.iterations.max(1) as f64,
                    st.full_batches,
                    st.iterations,
                    retx
                )
            }
            Some(ServerEngine::Linux(l)) => {
                let st = l.stats();
                format!("irqs={} softirqs={} wakeups={}", st.interrupts, st.softirqs, st.wakeups)
            }
            Some(ServerEngine::Mtcp(m)) => {
                let st = m.stats();
                format!("polls={} batches={}", st.polls, st.app_batches)
            }
            None => String::new(),
        };
        format!("nic_rx={nic_rx} drops={nic_drops} busy={busy:?} {extra}
  rings: {rings}")
    }
}

// ---------------------------------------------------------------------
// Echo experiment (Figs 3a, 3b, 3c, 4).
// ---------------------------------------------------------------------

/// Configuration of one echo measurement.
#[derive(Debug, Clone)]
pub struct EchoConfig {
    /// Server system.
    pub system: System,
    /// Server elastic threads / cores.
    pub server_cores: usize,
    /// Server NIC ports (1 = 10GbE, 4 = 4x10GbE).
    pub server_ports: usize,
    /// Client machines.
    pub n_clients: usize,
    /// Handler threads per client machine.
    pub client_threads: usize,
    /// Connections per client thread.
    pub conns_per_thread: usize,
    /// Message size `s`.
    pub msg_size: usize,
    /// Round trips per connection `n` (RST close + reopen after).
    pub n_per_conn: usize,
    /// Warmup before the measurement window.
    pub warmup: Nanos,
    /// Measurement window length.
    pub measure: Nanos,
    /// Engine knobs.
    pub tuning: EngineTuning,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EchoConfig {
    fn default() -> EchoConfig {
        EchoConfig {
            system: System::Ix,
            server_cores: 8,
            server_ports: 1,
            n_clients: 18,
            client_threads: 8,
            conns_per_thread: 16,
            msg_size: 64,
            n_per_conn: 1024,
            warmup: Nanos::from_millis(6),
            measure: Nanos::from_millis(12),
            tuning: EngineTuning::default(),
            seed: 1,
        }
    }
}

/// Results of one echo measurement.
#[derive(Debug, Clone)]
pub struct EchoResult {
    /// Messages per second through the measurement window.
    pub msgs_per_sec: f64,
    /// Goodput in Gbps (payload bits, both directions counted once).
    pub goodput_gbps: f64,
    /// Mean RTT, ns.
    pub rtt_avg_ns: u64,
    /// 99th-percentile RTT, ns.
    pub rtt_p99_ns: u64,
    /// Connections completed (n round trips + RST).
    pub conns_closed: u64,
    /// Messages observed in the window.
    pub messages: u64,
    /// Server CPU split `(kernel_ns, user_ns)`.
    pub cpu_split: (u64, u64),
    /// Engine diagnostics (batching, drops, retransmissions).
    pub debug: String,
}

/// Engine-level instrumentation captured at the end of an experiment:
/// the event-scheduler counters (whole testbed — server and clients run
/// on one simulator) and the server's aggregated mbuf churn.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineInstrumentation {
    /// Scheduler counters from the testbed's [`Simulator`].
    pub sim: ix_sim::SimCounters,
    /// Server-side mbuf pool statistics, summed across cores.
    pub mbuf: ix_mempool::PoolStats,
    /// Server-side TCP stack counters, summed across cores.
    pub tcp: ix_tcp::StackStats,
}

impl EngineInstrumentation {
    fn capture(tb: &Testbed) -> EngineInstrumentation {
        let engine = tb.engine.as_ref().expect("launched");
        EngineInstrumentation {
            sim: tb.sim.counters(),
            mbuf: engine.mbuf_stats(),
            tcp: engine.tcp_stats(),
        }
    }
}

/// Runs one echo experiment point.
pub fn run_echo(cfg: &EchoConfig) -> EchoResult {
    run_echo_instrumented(cfg).0
}

/// [`run_echo`] plus the engine instrumentation snapshot.
pub fn run_echo_instrumented(cfg: &EchoConfig) -> (EchoResult, EngineInstrumentation) {
    let mut tb = Testbed::new(cfg.seed, cfg.server_ports, cfg.n_clients);
    let warmup_end = cfg.warmup.as_nanos();
    let window_end = warmup_end + cfg.measure.as_nanos();
    let stats = EchoBenchStats::new(warmup_end, window_end);
    let msg = cfg.msg_size;
    tb.launch_server(cfg.system, cfg.server_cores, &cfg.tuning, 7000, |_| {
        EchoServer::new(msg, 120)
    });
    let server_ip = tb.server_ip();
    let st = stats.clone();
    let (n_per_conn, conns, stop) = (cfg.n_per_conn, cfg.conns_per_thread, window_end);
    tb.launch_linux_clients(cfg.client_threads, &cfg.tuning, move |_, _| {
        let mut c = EchoClient::new(server_ip, 7000, msg, n_per_conn, conns, true, st.clone());
        c.stop_at_ns = stop;
        c
    });
    // Run a little past the window so in-flight messages drain.
    tb.run_until_ns(window_end + Nanos::from_millis(2).as_nanos());
    let instr = EngineInstrumentation::capture(&tb);
    let s = stats.borrow();
    let secs = cfg.measure.as_secs_f64();
    let msgs_per_sec = s.messages as f64 / secs;
    let result = EchoResult {
        msgs_per_sec,
        goodput_gbps: msgs_per_sec * (cfg.msg_size as f64 * 8.0) / 1e9,
        rtt_avg_ns: s.rtt.mean().as_nanos(),
        rtt_p99_ns: s.rtt.p99().as_nanos(),
        conns_closed: s.conns_closed,
        messages: s.messages,
        cpu_split: tb.engine.as_ref().expect("launched").cpu_split(),
        debug: tb.debug_line(),
    };
    (result, instr)
}

// ---------------------------------------------------------------------
// Connection-scalability experiment (Fig 4).
// ---------------------------------------------------------------------

/// Configuration for the §5.4 connection-count sweep.
#[derive(Debug, Clone)]
pub struct ConnScaleConfig {
    /// Server system.
    pub system: System,
    /// Server NIC ports (1 or 4).
    pub server_ports: usize,
    /// Server cores.
    pub server_cores: usize,
    /// Total established connections across all clients.
    pub total_conns: usize,
    /// Concurrent outstanding RPCs per client thread (paper: n=24
    /// threads per client tuned for max throughput; we bound outstanding
    /// instead).
    pub outstanding_per_thread: usize,
    /// Client machines / threads per machine.
    pub n_clients: usize,
    /// Threads per client.
    pub client_threads: usize,
    /// Measurement window after the ramp.
    pub measure: Nanos,
    /// Engine knobs.
    pub tuning: EngineTuning,
    /// Seed.
    pub seed: u64,
}

impl Default for ConnScaleConfig {
    fn default() -> ConnScaleConfig {
        ConnScaleConfig {
            system: System::Ix,
            server_ports: 4,
            server_cores: 8,
            total_conns: 10_000,
            outstanding_per_thread: 3,
            n_clients: 18,
            client_threads: 8,
            measure: Nanos::from_millis(12),
            tuning: EngineTuning::default(),
            seed: 5,
        }
    }
}

/// Result of one connection-scalability point.
#[derive(Debug, Clone)]
pub struct ConnScaleResult {
    /// Messages per second in the window.
    pub msgs_per_sec: f64,
    /// Mean RTT in the window, ns.
    pub rtt_avg_ns: u64,
    /// Modeled L3 misses per message at this connection count.
    pub misses_per_msg: f64,
    /// Live server-side connection count at the end.
    pub server_conns: u64,
    /// Summed per-core mbuf pool high-water marks (buffers).
    pub mbuf_peak: u64,
    /// Flow-table / TCB-slab occupancy across server shards at the
    /// end of the window (live flows, high-water slab slots, bytes).
    pub tcb_mem: ix_tcp::FlowMapMem,
}

/// Runs one Fig 4 point.
pub fn run_connscale(cfg: &ConnScaleConfig) -> ConnScaleResult {
    let mut tb = Testbed::new(cfg.seed, cfg.server_ports, cfg.n_clients);
    // Ramp budget scales with connection count (bounded-batch opens).
    let ramp_ns = 20_000_000 + (cfg.total_conns as u64) * 1_500;
    let warmup_end = ramp_ns + 10_000_000;
    let window_end = warmup_end + cfg.measure.as_nanos();
    let stats = EchoBenchStats::new(warmup_end, window_end);
    tb.launch_server(cfg.system, cfg.server_cores, &cfg.tuning, 7000, |_| {
        EchoServer::new(64, 120)
    });
    let server_ip = tb.server_ip();
    let threads_total = cfg.n_clients * cfg.client_threads;
    let per_thread = cfg.total_conns.div_ceil(threads_total);
    let st = stats.clone();
    let outstanding = cfg.outstanding_per_thread;
    tb.launch_linux_clients(cfg.client_threads, &cfg.tuning, move |_, _| {
        let mut c = crate::echo::RotatingEchoClient::new(
            server_ip,
            7000,
            64,
            per_thread,
            outstanding,
            st.clone(),
        );
        c.start_at_ns = ramp_ns.saturating_sub(5_000_000);
        c.stop_at_ns = window_end;
        c
    });
    tb.run_until_ns(window_end + Nanos::from_millis(2).as_nanos());
    let s = stats.borrow();
    let secs = cfg.measure.as_secs_f64();
    let server_conns = match tb.engine.as_ref().expect("launched") {
        ServerEngine::Ix(d) => d.host_conns.get(),
        ServerEngine::Linux(l) => l
            .cores
            .iter()
            .map(|c| c.borrow().shard.flow_count() as u64)
            .sum(),
        ServerEngine::Mtcp(m) => m
            .cores
            .iter()
            .map(|c| c.borrow().shard.flow_count() as u64)
            .sum(),
    };
    let misses = ix_nic::cache::DdioModel::new(tb.fabric.params())
        .misses_per_message(cfg.total_conns as u64);
    // Memory accounting is read after the measured window closed, so
    // it cannot perturb the simulated results.
    let engine = tb.engine.as_ref().expect("launched");
    ConnScaleResult {
        msgs_per_sec: s.messages as f64 / secs,
        rtt_avg_ns: s.rtt.mean().as_nanos(),
        misses_per_msg: misses,
        server_conns,
        mbuf_peak: engine.mbuf_stats().peak_outstanding,
        tcb_mem: engine.flow_mem(),
    }
}

// ---------------------------------------------------------------------
// Bulk-migration scaling experiment (fig9-scale).
// ---------------------------------------------------------------------

/// One fig9-scale point: migrate a whole `total_conns`-connection shard
/// between cores while the echo load keeps running.
#[derive(Debug, Clone)]
pub struct ScaleMigrationConfig {
    /// Established connections, all consolidated onto one shard before
    /// the timed migrations.
    pub total_conns: usize,
    /// Server cores (the shard ping-pongs between cores 0 and 1).
    pub server_cores: usize,
    /// Client machines.
    pub n_clients: usize,
    /// Threads per client.
    pub client_threads: usize,
    /// Timed whole-shard migrations (alternating 0 → 1 → 0 …).
    pub migrations: usize,
    /// Simulated time the load runs between migrations.
    pub settle: Nanos,
    /// Length of the throughput windows before and after the
    /// migration burst.
    pub measure: Nanos,
    /// Engine knobs.
    pub tuning: EngineTuning,
    /// Seed.
    pub seed: u64,
}

impl Default for ScaleMigrationConfig {
    fn default() -> ScaleMigrationConfig {
        ScaleMigrationConfig {
            total_conns: 10_000,
            server_cores: 8,
            n_clients: 18,
            client_threads: 8,
            migrations: 8,
            settle: Nanos::from_millis(2),
            measure: Nanos::from_millis(10),
            tuning: EngineTuning::default(),
            seed: 9,
        }
    }
}

/// Result of one fig9-scale point.
#[derive(Debug, Clone)]
pub struct ScaleMigrationResult {
    /// Live server connections when the migration burst began.
    pub conns: u64,
    /// Per timed migration, in order: flows moved and the host
    /// extract/absorb phase split.
    pub migrations: Vec<ix_core::ixcp::MigrateReport>,
    /// Best-case host nanoseconds per moved flow across the timed
    /// migrations, whole pass (minimum filters host-side scheduling
    /// noise).
    pub ns_per_flow: f64,
    /// Best-case host nanoseconds per flow for the absorb half alone —
    /// the destination-side adoption cost the scaling gate tracks.
    pub absorb_ns_per_flow: f64,
    /// Messages/sec in the window before the burst.
    pub msgs_before: f64,
    /// Messages/sec in the window after the burst.
    pub msgs_after: f64,
    /// Connections lost across the burst (0 expected).
    pub resets: u64,
}

/// Runs one fig9-scale point: establish `total_conns` connections in
/// staggered dial waves, consolidate every RSS bucket onto core 0,
/// then ping-pong the whole shard between cores 0 and 1 under load,
/// timing each bulk migration with a host wall clock.
pub fn run_scale_migration(cfg: &ScaleMigrationConfig) -> ScaleMigrationResult {
    use ix_core::ixcp::reprogram_and_migrate;

    let mut tb = Testbed::new(cfg.seed, 4, cfg.n_clients);
    let ramp_ns = 20_000_000 + (cfg.total_conns as u64) * 1_500;
    let warmup_end = ramp_ns + 10_000_000;
    let stats = EchoBenchStats::new(warmup_end, u64::MAX);
    tb.launch_server(System::Ix, cfg.server_cores, &cfg.tuning, 7000, |_| {
        EchoServer::new(64, 120)
    });
    let server_ip = tb.server_ip();
    let threads_total = cfg.n_clients * cfg.client_threads;
    let per_thread = cfg.total_conns.div_ceil(threads_total);
    // Amortized connect storm: each client thread dials in its own
    // wave inside the first quarter of the ramp, in bounded batches.
    let wave_ns = (ramp_ns / 4) / threads_total as u64;
    let client_threads = cfg.client_threads;
    let st = stats.clone();
    tb.launch_linux_clients(cfg.client_threads, &cfg.tuning, move |ci, t| {
        let mut c =
            crate::echo::RotatingEchoClient::new(server_ip, 7000, 64, per_thread, 2, st.clone());
        c.ramp_batch = 128;
        c.dial_at_ns = ((ci * client_threads + t) as u64) * wave_ns;
        c.start_at_ns = ramp_ns;
        c.stop_at_ns = u64::MAX;
        c
    });

    // Pre-migration load window.
    tb.run_until_ns(warmup_end);
    let m0 = stats.borrow().messages_total;
    tb.run_until_ns(warmup_end + cfg.measure.as_nanos());
    let m1 = stats.borrow().messages_total;

    let conns = match tb.engine.as_ref().expect("launched") {
        ServerEngine::Ix(d) => d.host_conns.get(),
        _ => unreachable!("fig9-scale runs the IX dataplane"),
    };

    // Consolidate the whole connection population onto core 0
    // (untimed), then ping-pong it between cores under load.
    let migrate = |tb: &mut Testbed, target: usize| {
        let Testbed { sim, engine, .. } = tb;
        match engine.as_ref().expect("launched") {
            ServerEngine::Ix(d) => reprogram_and_migrate(sim, d, vec![target; 128], None),
            _ => unreachable!(),
        }
    };
    migrate(&mut tb, 0);
    let settle = cfg.settle.as_nanos();
    let mut reports = Vec::with_capacity(cfg.migrations);
    for i in 0..cfg.migrations {
        reports.push(migrate(&mut tb, 1 - i % 2));
        let now = tb.sim.now().as_nanos();
        tb.run_until_ns(now + settle);
    }

    // Post-migration load window.
    let t2 = tb.sim.now().as_nanos();
    let m2 = stats.borrow().messages_total;
    tb.run_until_ns(t2 + cfg.measure.as_nanos());
    let m3 = stats.borrow().messages_total;

    let conns_after = match tb.engine.as_ref().expect("launched") {
        ServerEngine::Ix(d) => d.host_conns.get(),
        _ => unreachable!(),
    };
    let secs = cfg.measure.as_secs_f64();
    let per_flow = |ns: fn(&ix_core::ixcp::MigrateReport) -> u64| {
        reports
            .iter()
            .map(|r| ns(r) as f64 / r.moved.max(1) as f64)
            .fold(f64::INFINITY, f64::min)
    };
    let ns_per_flow = per_flow(|r| r.host_ns);
    let absorb_ns_per_flow = per_flow(|r| r.absorb_ns);
    ScaleMigrationResult {
        conns,
        migrations: reports,
        ns_per_flow,
        absorb_ns_per_flow,
        msgs_before: (m1 - m0) as f64 / secs,
        msgs_after: (m3 - m2) as f64 / secs,
        resets: conns.saturating_sub(conns_after),
    }
}

// ---------------------------------------------------------------------
// NetPIPE experiment (Fig 2).
// ---------------------------------------------------------------------

/// Runs NetPIPE between two hosts running `system` on both ends, with
/// the historical default seed. Returns `(one_way_ns, goodput_gbps)`.
pub fn run_netpipe(system: System, msg_size: usize, reps: usize, tuning: &EngineTuning) -> (u64, f64) {
    run_netpipe_seeded(system, msg_size, reps, tuning, 11)
}

/// Runs NetPIPE with an explicit experiment seed. The seed picks the
/// client's start phase relative to the server's poll cadence (0–2 µs),
/// the one stochastic degree of freedom in this otherwise fully
/// deterministic experiment — so identical seeds reproduce the stats
/// byte for byte and different seeds measure a genuinely different run.
pub fn run_netpipe_seeded(
    system: System,
    msg_size: usize,
    reps: usize,
    tuning: &EngineTuning,
    seed: u64,
) -> (u64, f64) {
    let r = run_netpipe_inner::<fn(u16, u16) -> ix_faults::FaultPlan>(
        system, msg_size, reps, tuning, seed, None, None,
    );
    assert!(r.done, "NetPIPE did not finish (size {msg_size}, {} reps done)", r.reps);
    (r.one_way_ns, r.goodput_gbps)
}

/// Result of a NetPIPE run under an installed fault plan.
#[derive(Debug, Clone)]
pub struct FaultedNetpipeResult {
    /// Mean one-way latency, ns (0 if no reps finished).
    pub one_way_ns: u64,
    /// Goodput, Gbps (0 if no reps finished).
    pub goodput_gbps: f64,
    /// Whether the transfer completed within the budget.
    pub done: bool,
    /// Round trips completed.
    pub reps: usize,
    /// Server-side TCP counters (retransmits, checksum drops, recovery).
    pub server_tcp: ix_tcp::StackStats,
    /// Client-side TCP counters.
    pub client_tcp: ix_tcp::StackStats,
    /// Fault-plane counters (what was actually injected).
    pub faults: ix_faults::FaultSnapshot,
}

/// Runs NetPIPE with a fault plan installed on the fabric. `plan` is
/// built from `(server_port, client_port)` — the two hosts' switch
/// ports — so callers can aim loss, flaps, or corruption at either
/// cable. `budget_ms` overrides the fault-free time budget (faulted
/// transfers need slack for RTO backoff). Does not assert completion;
/// inspect [`FaultedNetpipeResult::done`].
pub fn run_netpipe_faulted(
    system: System,
    msg_size: usize,
    reps: usize,
    tuning: &EngineTuning,
    seed: u64,
    budget_ms: u64,
    plan: impl FnOnce(u16, u16) -> ix_faults::FaultPlan,
) -> FaultedNetpipeResult {
    run_netpipe_inner(system, msg_size, reps, tuning, seed, Some(plan), Some(budget_ms))
}

fn run_netpipe_inner<F>(
    system: System,
    msg_size: usize,
    reps: usize,
    tuning: &EngineTuning,
    seed: u64,
    plan: Option<F>,
    budget_ms: Option<u64>,
) -> FaultedNetpipeResult
where
    F: FnOnce(u16, u16) -> ix_faults::FaultPlan,
{
    let mut tb = Testbed::new(seed, 1, 1);
    // Install faults (if any) before traffic starts. A `FaultPlan::none()`
    // is not installed at all, keeping the fault-free path untouched.
    let faults = plan.and_then(|f| {
        let sp = tb.fabric.host_port(tb.server, 0);
        let cp = tb.fabric.host_port(tb.clients[0], 0);
        let p = f(sp, cp);
        if p.is_none() {
            None
        } else {
            Some(tb.fabric.install_faults(p))
        }
    });
    let start_jitter_ns = tb.sim.rng().below(2_000);
    let srv_rng = tb.sim.rng().fork();
    tb.launch_server(system, 1, tuning, 7100, move |_| {
        NetpipeServer::new(msg_size).with_jitter(srv_rng.clone(), 400)
    });
    let server_ip = tb.server_ip();
    // NetPIPE runs the *same* system on both ends (§5.2) — launch the
    // client engine accordingly on the client host.
    let host_id = tb.clients[0];
    // The client engine must stay alive for the whole run: the NIC holds
    // only weak references to elastic threads, so a quiescent thread with
    // no pending timer is kept resurrectable solely by its `Dataplane`.
    let (result, client_eng) = {
        let host = tb.fabric.host(host_id);
        let cell: Rc<RefCell<Option<Rc<RefCell<crate::netpipe::NetpipeResult>>>>> =
            Rc::new(RefCell::new(None));
        let cell2 = cell.clone();
        let mk = move |_i: usize| {
            let (client, res) = NetpipeClient::new(server_ip, 7100, msg_size, reps, 4);
            let client = client.start_after(start_jitter_ns);
            *cell2.borrow_mut() = Some(res);
            Box::new(Libix::new(client)) as Box<dyn IxApp>
        };
        let eng: ServerEngine = match system {
            System::Ix => ServerEngine::Ix(Dataplane::launch(
                &mut tb.sim, host, 1, tuning.ix.clone(), tuning.stack.clone(), None, mk,
            )),
            System::Linux => ServerEngine::Linux(LinuxHost::launch(
                &mut tb.sim, host, 1, tuning.linux.clone(), tuning.stack.clone(), None, mk,
            )),
            System::Mtcp => ServerEngine::Mtcp(MtcpHost::launch(
                &mut tb.sim, host, 1, tuning.mtcp.clone(), tuning.stack.clone(), None, mk,
            )),
        };
        // ARP bring-up both ways.
        let (cip, cmac) = (host.ip, host.mac);
        match (&eng, tb.engine.as_ref().expect("server")) {
            (_, ServerEngine::Ix(d)) => d.seed_arp(cip, cmac),
            (_, ServerEngine::Linux(l)) => l.seed_arp(cip, cmac),
            (_, ServerEngine::Mtcp(m)) => m.seed_arp(cip, cmac),
        }
        let (sip, smac) = {
            let s = tb.fabric.host(tb.server);
            (s.ip, s.mac)
        };
        match &eng {
            ServerEngine::Ix(d) => d.seed_arp(sip, smac),
            ServerEngine::Linux(l) => l.seed_arp(sip, smac),
            ServerEngine::Mtcp(m) => m.seed_arp(sip, smac),
        }
        let taken = cell.borrow().clone();
        (taken.expect("client app created"), eng)
    };
    // Size-dependent budget: large messages at low bandwidth need time.
    let budget = Nanos::from_millis(
        budget_ms.unwrap_or(200 + (msg_size as u64 * reps as u64) / 100_000),
    );
    tb.run_until_ns(budget.as_nanos());
    let r = result.borrow();
    FaultedNetpipeResult {
        one_way_ns: r.one_way_ns(),
        goodput_gbps: r.goodput_gbps(),
        done: r.done,
        reps: r.reps,
        server_tcp: tb.engine.as_ref().expect("server").tcp_stats(),
        client_tcp: client_eng.tcp_stats(),
        faults: faults.map(|f| f.borrow().snapshot()).unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------
// Fault-recovery experiment (Fig 7): continuous echo load with a fault
// plan installed, goodput sampled in fixed windows to measure the dip
// and the time to recover.
// ---------------------------------------------------------------------

/// Configuration of one fault-recovery measurement.
#[derive(Debug, Clone)]
pub struct FaultRecoveryConfig {
    /// Server system.
    pub system: System,
    /// Server elastic threads / cores.
    pub server_cores: usize,
    /// Client machines.
    pub n_clients: usize,
    /// Handler threads per client machine.
    pub client_threads: usize,
    /// Connections per client thread.
    pub conns_per_thread: usize,
    /// Message size.
    pub msg_size: usize,
    /// Round trips per connection before RST + reopen. The default is
    /// effectively infinite: long-lived connections recover via
    /// retransmission instead of re-dialling through SYN timeouts.
    pub n_per_conn: usize,
    /// Total experiment duration.
    pub duration: Nanos,
    /// Goodput sampling window.
    pub sample_window: Nanos,
    /// When the injected faults begin (baseline windows end here).
    pub fault_from: Nanos,
    /// IXCP queue-hang watchdog period (IX servers only; `None` = off).
    pub watchdog_period: Option<Nanos>,
    /// Engine knobs.
    pub tuning: EngineTuning,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FaultRecoveryConfig {
    fn default() -> FaultRecoveryConfig {
        FaultRecoveryConfig {
            system: System::Ix,
            server_cores: 4,
            n_clients: 4,
            client_threads: 2,
            conns_per_thread: 4,
            msg_size: 64,
            n_per_conn: 1_000_000,
            duration: Nanos::from_millis(40),
            sample_window: Nanos::from_millis(1),
            fault_from: Nanos::from_millis(10),
            watchdog_period: None,
            tuning: EngineTuning::default(),
            seed: 7,
        }
    }
}

/// Results of one fault-recovery measurement.
#[derive(Debug, Clone)]
pub struct FaultRecoveryResult {
    /// Sampling window length, ns.
    pub window_ns: u64,
    /// Server-side payload bytes received per window (the goodput time
    /// series the recovery metrics are computed from).
    pub per_window_rx_bytes: Vec<u64>,
    /// Mean bytes/window over the pre-fault baseline windows.
    pub baseline_bytes: f64,
    /// Smallest window at/after the fault onset.
    pub min_bytes: u64,
    /// `min_bytes / baseline_bytes` — depth of the goodput dip.
    pub dip_frac: f64,
    /// Time from fault onset until the end of the last window below 80%
    /// of baseline (`None` when goodput never dipped).
    pub recover_ns: Option<u64>,
    /// The final window was still below 80% of baseline: traffic did not
    /// recover within the run.
    pub stalled: bool,
    /// Echo messages per second over the whole run.
    pub msgs_per_sec: f64,
    /// 99th-percentile echo RTT, ns.
    pub rtt_p99_ns: u64,
    /// Server TCP counters (retransmits, recovery episodes, drops).
    pub tcp: ix_tcp::StackStats,
    /// Fault-plane counters.
    pub faults: ix_faults::FaultSnapshot,
    /// Watchdog counters when a watchdog ran.
    pub watchdog: Option<ix_core::ixcp::WatchdogStats>,
}

/// Periodic goodput sampler: pushes the delta of a cumulative byte
/// counter every `window` ns until `end`.
fn sample_tick(
    sim: &mut Simulator,
    read: Rc<dyn Fn() -> u64>,
    out: Rc<RefCell<Vec<u64>>>,
    window: u64,
    end: u64,
    last: u64,
) {
    let cur = read();
    out.borrow_mut().push(cur - last);
    if sim.now().as_nanos() + window <= end {
        sim.schedule_in(Nanos(window), move |sim| {
            sample_tick(sim, read, out, window, end, cur);
        });
    }
}

/// Runs one fault-recovery point. `plan` builds the fault plan from the
/// server's switch port (fault the server cable, its NIC queues, or
/// return [`ix_faults::FaultPlan::none`] for a baseline run).
pub fn run_fault_recovery(
    cfg: &FaultRecoveryConfig,
    plan: impl FnOnce(u16) -> ix_faults::FaultPlan,
) -> FaultRecoveryResult {
    let mut tb = Testbed::new(cfg.seed, 1, cfg.n_clients);
    let p = plan(tb.fabric.host_port(tb.server, 0));
    let faults = if p.is_none() { None } else { Some(tb.fabric.install_faults(p)) };
    let end = cfg.duration.as_nanos();
    let stats = EchoBenchStats::new(0, end);
    let msg = cfg.msg_size;
    tb.launch_server(cfg.system, cfg.server_cores, &cfg.tuning, 7000, |_| {
        EchoServer::new(msg, 120)
    });
    let server_ip = tb.server_ip();
    let st = stats.clone();
    let (npc, conns) = (cfg.n_per_conn, cfg.conns_per_thread);
    tb.launch_linux_clients(cfg.client_threads, &cfg.tuning, move |_, _| {
        let mut c = EchoClient::new(server_ip, 7000, msg, npc, conns, true, st.clone());
        c.stop_at_ns = end;
        c
    });
    // Cumulative server-side payload bytes, summed across shards.
    let read: Rc<dyn Fn() -> u64> = match tb.engine.as_ref().expect("server") {
        ServerEngine::Ix(d) => {
            let ts = d.threads.clone();
            Rc::new(move || ts.iter().map(|t| t.borrow().shard.stats.bytes_rx).sum())
        }
        ServerEngine::Linux(l) => {
            let cs = l.cores.clone();
            Rc::new(move || cs.iter().map(|c| c.borrow().shard.stats.bytes_rx).sum())
        }
        ServerEngine::Mtcp(m) => {
            let cs = m.cores.clone();
            Rc::new(move || cs.iter().map(|c| c.borrow().shard.stats.bytes_rx).sum())
        }
    };
    let samples: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let window = cfg.sample_window.as_nanos();
    {
        let (r, o) = (read, samples.clone());
        tb.sim.schedule_in(Nanos(window), move |sim| {
            sample_tick(sim, r, o, window, end, 0);
        });
    }
    let watchdog = match (cfg.watchdog_period, tb.engine.as_ref().expect("server")) {
        (Some(p), ServerEngine::Ix(d)) => {
            Some(ix_core::ixcp::start_queue_watchdog(&mut tb.sim, d, p.as_nanos(), end))
        }
        _ => None,
    };
    tb.run_until_ns(end + Nanos::from_millis(2).as_nanos());

    let per = samples.borrow().clone();
    let fault_idx = (cfg.fault_from.as_nanos() / window) as usize;
    // Baseline skips the first window (connection ramp). Empty when the
    // faults start at (or before) that window — continuous-fault runs
    // have no clean baseline and report zero for the dip metrics.
    let pre_from = 1.min(per.len());
    let pre = &per[pre_from..fault_idx.clamp(pre_from, per.len())];
    let baseline = if pre.is_empty() {
        0.0
    } else {
        pre.iter().sum::<u64>() as f64 / pre.len() as f64
    };
    let after = &per[fault_idx.min(per.len())..];
    let min_bytes = after.iter().copied().min().unwrap_or(0);
    let dip_frac = if baseline > 0.0 { min_bytes as f64 / baseline } else { 0.0 };
    let thresh = 0.8 * baseline;
    let mut last_below = None;
    for (i, &v) in after.iter().enumerate() {
        if (v as f64) < thresh {
            last_below = Some(i);
        }
    }
    let stalled = matches!(last_below, Some(i) if i + 1 == after.len());
    let recover_ns = last_below.map(|i| (i as u64 + 1) * window);
    let s = stats.borrow();
    FaultRecoveryResult {
        window_ns: window,
        per_window_rx_bytes: per,
        baseline_bytes: baseline,
        min_bytes,
        dip_frac,
        recover_ns,
        stalled,
        msgs_per_sec: s.messages as f64 / cfg.duration.as_secs_f64(),
        rtt_p99_ns: s.rtt.p99().as_nanos(),
        tcp: tb.engine.as_ref().expect("server").tcp_stats(),
        faults: faults.map(|f| f.borrow().snapshot()).unwrap_or_default(),
        watchdog: watchdog.map(|w| *w.borrow()),
    }
}

// ---------------------------------------------------------------------
// memcached experiment (Figs 5, 6; Table 2).
// ---------------------------------------------------------------------

/// Configuration of one memcached measurement point.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Server system.
    pub system: System,
    /// Server cores (paper: 8 for Linux, 6 for IX).
    pub server_cores: usize,
    /// Workload profile.
    pub workload: crate::workload::WorkloadKind,
    /// Aggregate target load, requests/second.
    pub target_rps: f64,
    /// Client machines (paper: 23).
    pub n_clients: usize,
    /// Handler threads per client machine.
    pub client_threads: usize,
    /// Connections per client thread (paper total: 1476).
    pub conns_per_thread: usize,
    /// Warmup before measurement.
    pub warmup: Nanos,
    /// Measurement window.
    pub measure: Nanos,
    /// Engine knobs.
    pub tuning: EngineTuning,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> KvConfig {
        KvConfig {
            system: System::Ix,
            server_cores: 6,
            workload: crate::workload::WorkloadKind::Usr,
            target_rps: 500_000.0,
            n_clients: 23,
            client_threads: 4,
            conns_per_thread: 16, // 23 * 4 * 16 = 1472 ≈ the paper's 1476.
            warmup: Nanos::from_millis(8),
            measure: Nanos::from_millis(22),
            tuning: EngineTuning::default(),
            seed: 3,
        }
    }
}

/// Results of one memcached measurement point.
#[derive(Debug, Clone)]
pub struct KvResult {
    /// Achieved requests/second in the window.
    pub rps: f64,
    /// Mean latency (load clients, includes client queueing), ns.
    pub avg_ns: u64,
    /// 99th-percentile latency (load clients), ns.
    pub p99_ns: u64,
    /// Mean network+server service time (issue→response), ns.
    pub net_avg_ns: u64,
    /// p99 network+server service time, ns.
    pub net_p99_ns: u64,
    /// Unloaded-agent mean latency, ns.
    pub agent_avg_ns: u64,
    /// Unloaded-agent p99 latency, ns.
    pub agent_p99_ns: u64,
    /// Server CPU split `(kernel_ns, user_ns)`.
    pub cpu_split: (u64, u64),
    /// Requests shed by the generator (hopeless overload indicator).
    pub shed: u64,
    /// Engine diagnostics.
    pub debug: String,
    /// Store operations served and total lock-wait time (contention).
    pub store_ops: u64,
    /// Total ns threads spent waiting on the store lock.
    pub store_lock_wait_ns: u64,
}

/// Runs one memcached measurement point.
pub fn run_kv(cfg: &KvConfig) -> KvResult {
    run_kv_instrumented(cfg).0
}

/// [`run_kv`] plus the engine instrumentation snapshot.
pub fn run_kv_instrumented(cfg: &KvConfig) -> (KvResult, EngineInstrumentation) {
    let mut tb = Testbed::new(cfg.seed, 1, cfg.n_clients);
    let warmup_end = cfg.warmup.as_nanos();
    let window_end = warmup_end + cfg.measure.as_nanos();
    let stats = LoadStats::new(warmup_end, window_end);
    let store = SharedStore::new();
    let st = store.clone();
    tb.launch_server(cfg.system, cfg.server_cores, &cfg.tuning, 11211, move |_| {
        KvServer::new(st.clone())
    });
    let server_ip = tb.server_ip();
    let total_threads = (cfg.n_clients * cfg.client_threads) as f64;
    let rate_per_thread = cfg.target_rps / total_threads;
    let workload = Workload::new(cfg.workload);
    let mut seeder = SimRng::new(cfg.seed.wrapping_mul(0x9e37));
    let st2 = stats.clone();
    let wl = workload.clone();
    let conns = cfg.conns_per_thread;
    let stop = window_end;
    tb.launch_linux_clients(cfg.client_threads, &cfg.tuning, move |_ci, _t| {
        let mut c = MutilateClient::new(
            server_ip,
            11211,
            conns,
            rate_per_thread,
            wl.clone(),
            seeder.fork(),
            st2.clone(),
        );
        c.stop_at_ns = stop;
        c
    });
    // The separate unloaded latency-measuring client gets its own
    // dedicated host (the paper uses a separate unloaded client, §5.5).
    let agent_id = tb.fabric.add_host(1, 2, 0);
    {
        let host = tb.fabric.host(agent_id);
        let wl2 = workload.clone();
        let st3 = stats.clone();
        let rng = SimRng::new(cfg.seed.wrapping_add(99));
        let mut agent = Some(MutilateAgent::new(server_ip, 11211, wl2, rng, st3));
        if let Some(a) = agent.as_mut() {
            a.stop_at_ns = stop;
        }
        let lh = LinuxHost::launch(
            &mut tb.sim,
            host,
            1,
            cfg.tuning.linux.clone(),
            cfg.tuning.stack.clone(),
            None,
            move |_| Box::new(Libix::new(agent.take().expect("single thread"))) as Box<dyn IxApp>,
        );
        let (sip, smac) = {
            let s = tb.fabric.host(tb.server);
            (s.ip, s.mac)
        };
        lh.seed_arp(sip, smac);
        let (aip, amac) = {
            let a = tb.fabric.host(agent_id);
            (a.ip, a.mac)
        };
        match tb.engine.as_ref().expect("server") {
            ServerEngine::Ix(d) => d.seed_arp(aip, amac),
            ServerEngine::Linux(l) => l.seed_arp(aip, amac),
            ServerEngine::Mtcp(m) => m.seed_arp(aip, amac),
        }
    }
    tb.run_until_ns(window_end + Nanos::from_millis(3).as_nanos());
    let instr = EngineInstrumentation::capture(&tb);
    let (store_ops, store_lock_wait_ns) = {
        let st = store.borrow();
        (st.ops, st.lock_wait_ns)
    };
    let s = stats.borrow();
    let secs = cfg.measure.as_secs_f64();
    let result = KvResult {
        rps: s.completed as f64 / secs,
        avg_ns: s.latency.mean().as_nanos(),
        p99_ns: s.latency.p99().as_nanos(),
        net_avg_ns: s.net_latency.mean().as_nanos(),
        net_p99_ns: s.net_latency.p99().as_nanos(),
        agent_avg_ns: s.agent_latency.mean().as_nanos(),
        agent_p99_ns: s.agent_latency.p99().as_nanos(),
        cpu_split: tb.engine.as_ref().expect("launched").cpu_split(),
        shed: s.shed,
        debug: tb.debug_line(),
        store_ops,
        store_lock_wait_ns,
    };
    (result, instr)
}

// ---------------------------------------------------------------------
// Adversarial experiment (fig8): legitimate goodput under attack.
// ---------------------------------------------------------------------

/// Configuration of one goodput-under-attack measurement point: the
/// fig5-style memcached load plus an attack stream sharing the fabric,
/// with the pre-stack filter optionally installed.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Server system.
    pub system: System,
    /// Install the pre-stack filter (IX only): a drop rule for the
    /// spoofed attack /16 plus a SYN-challenge rule on the service port.
    pub filtered: bool,
    /// Attack stream, if any: shape and aggregate packets/second.
    pub attack: Option<(crate::attack::AttackKind, f64)>,
    /// Server cores.
    pub server_cores: usize,
    /// Aggregate legitimate target load, requests/second.
    pub target_rps: f64,
    /// Client machines.
    pub n_clients: usize,
    /// Handler threads per client machine.
    pub client_threads: usize,
    /// Connections per client thread.
    pub conns_per_thread: usize,
    /// Warmup before measurement (handshakes complete here; the attack
    /// starts when the measurement window opens).
    pub warmup: Nanos,
    /// Measurement window (the attack runs for all of it).
    pub measure: Nanos,
    /// Engine knobs.
    pub tuning: EngineTuning,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdversarialConfig {
    fn default() -> AdversarialConfig {
        AdversarialConfig {
            system: System::Ix,
            filtered: false,
            attack: None,
            server_cores: 6,
            target_rps: 300_000.0,
            n_clients: 12,
            client_threads: 4,
            conns_per_thread: 8,
            warmup: Nanos::from_millis(8),
            measure: Nanos::from_millis(22),
            tuning: EngineTuning::default(),
            seed: 11,
        }
    }
}

/// Results of one goodput-under-attack point.
#[derive(Debug, Clone)]
pub struct AdversarialResult {
    /// Achieved legitimate requests/second in the window.
    pub rps: f64,
    /// Mean legitimate-request latency, ns.
    pub avg_ns: u64,
    /// p99 legitimate-request latency, ns.
    pub p99_ns: u64,
    /// Requests shed by the generator (overload indicator).
    pub shed: u64,
    /// Attack frames actually injected.
    pub attack_sent: u64,
    /// Filter verdicts summed over the server's queues
    /// `(drops, passes, challenges, drop_allocs)`; zeros when no filter
    /// was installed.
    pub filter: (u64, u64, u64, u64),
    /// Server NIC descriptor-exhaustion drops (ring tail-drop: the
    /// congestion signature of an unfiltered flood).
    pub nic_ring_drops: u64,
    /// Aggregated server TCP counters (cookie mints/accepts, backlog
    /// overflow drops, RSTs, ...).
    pub tcp: ix_tcp::StackStats,
    /// TCB-slab high-water slots summed over server shards — the flood's
    /// memory footprint.
    pub slab_high_water: usize,
    /// Engine diagnostics.
    pub debug: String,
}

/// Runs one goodput-under-attack measurement point.
pub fn run_adversarial(cfg: &AdversarialConfig) -> AdversarialResult {
    use crate::attack::{self, AttackConfig};
    use ix_core::ixcp::FilterControl;
    use ix_net::filter::{FilterPolicy, RuleAction};
    use ix_net::ip::IpProto;

    // Two late hosts beyond run_kv's agent: the attacker gets its own
    // switch port so the flood shares links exactly like a real tenant.
    let mut tb = Testbed::with_extra_ports(cfg.seed, 1, cfg.n_clients, 3);
    let warmup_end = cfg.warmup.as_nanos();
    let window_end = warmup_end + cfg.measure.as_nanos();
    let stats = LoadStats::new(warmup_end, window_end);
    let store = SharedStore::new();
    let st = store.clone();
    tb.launch_server(cfg.system, cfg.server_cores, &cfg.tuning, 11211, move |_| {
        KvServer::new(st.clone())
    });
    // The filter: drop the spoofed attack range outright and run SYN
    // cookies on the service port (defense in depth for SYNs from
    // outside the dropped /16 — legitimate handshakes complete through
    // the cookie path during warmup, exercising it end to end).
    let _filter_ctl = if cfg.filtered {
        match tb.engine.as_ref().expect("launched") {
            ServerEngine::Ix(d) => {
                let policy = FilterPolicy::new()
                    .rule_net16(attack::attack_net_probe(), RuleAction::Drop)
                    .rule_port(IpProto::Tcp, 11211, RuleAction::SynChallenge);
                Some(FilterControl::install(d, policy))
            }
            _ => None,
        }
    } else {
        None
    };
    let server_ip = tb.server_ip();
    let total_threads = (cfg.n_clients * cfg.client_threads) as f64;
    let rate_per_thread = cfg.target_rps / total_threads;
    let workload = Workload::new(crate::workload::WorkloadKind::Usr);
    let mut seeder = SimRng::new(cfg.seed.wrapping_mul(0x9e37));
    let st2 = stats.clone();
    let wl = workload.clone();
    let conns = cfg.conns_per_thread;
    let stop = window_end;
    tb.launch_linux_clients(cfg.client_threads, &cfg.tuning, move |_ci, _t| {
        let mut c = MutilateClient::new(
            server_ip,
            11211,
            conns,
            rate_per_thread,
            wl.clone(),
            seeder.fork(),
            st2.clone(),
        );
        c.stop_at_ns = stop;
        c
    });
    // Attacker host: raw frames straight onto the fabric, starting when
    // the measurement window opens (legitimate connections are up).
    let attack_stats = cfg.attack.map(|(kind, pps)| {
        let attacker = tb.fabric.add_host(1, 8, 0);
        let (tip, tmac) = {
            let s = tb.fabric.host(tb.server);
            (s.ip, s.mac)
        };
        let nic = tb.fabric.host(attacker).nics[0].clone();
        attack::launch(
            &mut tb.sim,
            nic,
            AttackConfig {
                kind,
                pps,
                target_ip: tip,
                target_mac: tmac,
                target_port: 11211,
                start_ns: warmup_end,
                stop_ns: window_end,
                seed: cfg.seed ^ 0x5eed,
            },
        )
    });
    tb.run_until_ns(window_end + Nanos::from_millis(3).as_nanos());
    let (filter, nic_ring_drops) = {
        let host = tb.fabric.host(tb.server);
        let mut f = (0u64, 0u64, 0u64, 0u64);
        let mut drops = 0u64;
        for nic in &host.nics {
            let n = nic.borrow();
            let t = n.filter_stats_total();
            f.0 += t.drops;
            f.1 += t.passes;
            f.2 += t.challenges;
            f.3 += t.drop_allocs;
            drops += n.stats.rx_ring_drops;
        }
        (f, drops)
    };
    let engine = tb.engine.as_ref().expect("launched");
    let tcp = engine.tcp_stats();
    let slab_high_water = engine.flow_mem().slab_slots;
    let s = stats.borrow();
    let secs = cfg.measure.as_secs_f64();
    AdversarialResult {
        rps: s.completed as f64 / secs,
        avg_ns: s.latency.mean().as_nanos(),
        p99_ns: s.latency.p99().as_nanos(),
        shed: s.shed,
        attack_sent: attack_stats.map(|a| a.borrow().sent).unwrap_or(0),
        filter,
        nic_ring_drops,
        tcp,
        slab_high_water,
        debug: tb.debug_line(),
    }
}

// ---------------------------------------------------------------------
// Elastic-controller experiment (fig9): MMPP load spike absorption.
// ---------------------------------------------------------------------

/// Configuration of one elastic-scaling measurement: the fig5-style
/// memcached fleet whose aggregate arrival rate is modulated by a
/// two-state MMPP (base rate / spike rate), served by an IX dataplane
/// whose cores are managed — or not — by the elastic controller.
#[derive(Debug, Clone)]
pub struct ElasticKvConfig {
    /// Server cores available to the control plane.
    pub server_cores: usize,
    /// Cores active at launch (the elastic run starts consolidated; the
    /// static baseline ignores this and keeps every core active).
    pub initial_active: usize,
    /// Run the elastic controller (false = static core allocation).
    pub elastic: bool,
    /// Admission gate: shed new connections at the NIC edge when every
    /// core is saturated past the shed threshold.
    pub admission_gate: bool,
    /// Workload profile.
    pub workload: crate::workload::WorkloadKind,
    /// Aggregate base-state arrival rate, requests/second.
    pub base_rps: f64,
    /// Aggregate spike-state arrival rate.
    pub burst_rps: f64,
    /// First spike onset.
    pub spike_start: Nanos,
    /// Mean spike dwell (exponential).
    pub mean_on: Nanos,
    /// Mean calm dwell between spikes (exponential).
    pub mean_off: Nanos,
    /// Total run length; also the MMPP stop (forced calm).
    pub duration: Nanos,
    /// Latency-series window width.
    pub window: Nanos,
    /// Client machines.
    pub n_clients: usize,
    /// Handler threads per client machine.
    pub client_threads: usize,
    /// Connections per client thread.
    pub conns_per_thread: usize,
    /// New connections dialed mid-spike (0 = none): the churn the
    /// admission gate sheds at the NIC edge under saturation. Shed
    /// dialers retry on a fast SYN timer and land once the gate lifts.
    pub late_dials: usize,
    /// When the dial wave starts.
    pub dial_at: Nanos,
    /// Queue-delay SLA for the controller and for the reported
    /// violation windows (p99 against this).
    pub sla: Nanos,
    /// Controller epoch.
    pub epoch: Nanos,
    /// Controller's per-frame service estimate.
    pub per_frame: Nanos,
    /// Engine knobs.
    pub tuning: EngineTuning,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ElasticKvConfig {
    fn default() -> ElasticKvConfig {
        ElasticKvConfig {
            server_cores: 6,
            initial_active: 2,
            elastic: true,
            admission_gate: false,
            workload: crate::workload::WorkloadKind::Usr,
            base_rps: 300_000.0,
            burst_rps: 1_500_000.0,
            spike_start: Nanos::from_millis(10),
            mean_on: Nanos::from_millis(12),
            mean_off: Nanos::from_millis(10),
            duration: Nanos::from_millis(40),
            window: Nanos::from_millis(1),
            n_clients: 36,
            client_threads: 4,
            conns_per_thread: 16,
            late_dials: 0,
            dial_at: Nanos::from_millis(12),
            sla: Nanos(300_000),
            epoch: Nanos(200_000),
            per_frame: Nanos(2_000),
            tuning: EngineTuning::default(),
            seed: 9,
        }
    }
}

/// One per-window row of the elastic experiment's time series.
#[derive(Debug, Clone, Copy)]
pub struct ElasticWindow {
    /// Window start, ns since run start.
    pub t_ns: u64,
    /// p99 open-loop latency inside the window (0 when empty).
    pub p99_ns: u64,
    /// Requests completed inside the window.
    pub completed: u64,
    /// Active (unparked) server cores at the window's end.
    pub active_cores: usize,
    /// Whether the MMPP burst flag was up at the window's end.
    pub burst_on: bool,
}

/// Results of one elastic-scaling run.
#[derive(Debug, Clone)]
pub struct ElasticKvResult {
    /// The time series.
    pub windows: Vec<ElasticWindow>,
    /// Requests completed across the whole run.
    pub completed_total: u64,
    /// Requests shed client-side (generator hopelessly behind).
    pub shed: u64,
    /// MMPP transition log `(t_ns, burst_on)`.
    pub transitions: Vec<(u64, bool)>,
    /// From first spike onset until the last over-SLA window inside the
    /// first spike ends (0 = never violated; None = never absorbed:
    /// still violating when the spike ended).
    pub absorb_ns: Option<u64>,
    /// Over-SLA windows after the final spike ends — SLA-violation-free
    /// consolidation means 0.
    pub post_spike_violations: u64,
    /// Σ active-cores × window over the run (core-ns) — the energy
    /// proxy. A static run pays `server_cores × duration`.
    pub core_ns: u64,
    /// Static-allocation energy for the same run, core-ns.
    pub static_core_ns: u64,
    /// Elastic controller counters (zeroed for the static baseline).
    pub ctl: ix_core::ElasticStats,
    /// NIC filter drops (admission-gate sheds at the edge).
    pub gate_drops: u64,
    /// Late dials that eventually connected (all of them should, once
    /// the gate lifts; 0 when `late_dials` is 0).
    pub dials_ok: u64,
    /// Engine diagnostics.
    pub debug: String,
}

/// Dials `want` connections starting at `at_ns` and redials any whose
/// SYN is shed until all land — the connection churn the admission gate
/// turns away during overload.
struct WaveDialer {
    server: ix_net::Ipv4Addr,
    port: u16,
    at_ns: u64,
    want: usize,
    launched: usize,
    next_user: u64,
    ok: Rc<std::cell::Cell<usize>>,
}

impl LibixHandler for WaveDialer {
    fn on_tick(&mut self, ctx: &mut ix_core::libix::LibixCtx<'_>) {
        if ctx.now_ns >= self.at_ns && self.launched < self.want {
            ctx.connect(self.server, self.port, self.next_user);
            self.next_user += 1;
            self.launched += 1;
        }
    }

    fn on_connected(&mut self, ctx: &mut ix_core::libix::ConnCtx<'_>, ok: bool) {
        if ok {
            self.ok.set(self.ok.get() + 1);
            ctx.abort();
        } else {
            self.launched -= 1;
        }
    }

    fn wants_tick(&self, _now: u64) -> bool {
        self.ok.get() < self.want
    }
}

/// Runs one elastic-scaling point: MMPP-modulated memcached load
/// against an IX server, with or without the elastic controller.
pub fn run_elastic(cfg: &ElasticKvConfig) -> ElasticKvResult {
    use ix_core::ixcp::{
        set_active_threads, start_elastic_controller, start_queue_watchdog_with_health,
        FilterControl,
    };

    let mut tb = Testbed::new(cfg.seed, 1, cfg.n_clients);
    let end = cfg.duration.as_nanos();
    let window_ns = cfg.window.as_nanos();
    let stats = LoadStats::new(0, end);
    stats.borrow_mut().enable_series(0, end, window_ns);
    let store = SharedStore::new();
    let st = store.clone();
    tb.launch_server(System::Ix, cfg.server_cores, &cfg.tuning, 11211, move |_| {
        KvServer::new(st.clone())
    });
    let server_ip = tb.server_ip();

    // The shared MMPP state: one flag, every client thread.
    let flag = Rc::new(std::cell::Cell::new(false));
    let total_threads = (cfg.n_clients * cfg.client_threads) as f64;
    let base_per_thread = cfg.base_rps / total_threads;
    let burst_per_thread = cfg.burst_rps / total_threads;
    let workload = Workload::new(cfg.workload);
    let mut seeder = SimRng::new(cfg.seed.wrapping_mul(0x9e37));
    let st2 = stats.clone();
    let wl = workload.clone();
    let conns = cfg.conns_per_thread;
    let flag2 = flag.clone();
    tb.launch_linux_clients(cfg.client_threads, &cfg.tuning, move |_ci, _t| {
        let mut c = MutilateClient::new(
            server_ip,
            11211,
            conns,
            base_per_thread,
            wl.clone(),
            seeder.fork(),
            st2.clone(),
        );
        c.stop_at_ns = end;
        c.burst = Some((flag2.clone(), burst_per_thread));
        c
    });
    // The dial wave: connection churn arriving mid-spike, on its own
    // host with a fast SYN retry so shed dials reconnect promptly once
    // the gate lifts.
    let dials_ok = Rc::new(std::cell::Cell::new(0usize));
    if cfg.late_dials > 0 {
        let dialer_host = tb.fabric.add_host(1, 8, 0);
        let ok = dials_ok.clone();
        let (at, want) = (cfg.dial_at.as_nanos(), cfg.late_dials);
        let lh = LinuxHost::launch(
            &mut tb.sim,
            tb.fabric.host(dialer_host),
            1,
            cfg.tuning.linux.clone(),
            StackConfig { syn_rto_ns: 200_000, ..cfg.tuning.stack.clone() },
            None,
            |_| {
                Box::new(Libix::new(WaveDialer {
                    server: server_ip,
                    port: 11211,
                    at_ns: at,
                    want,
                    launched: 0,
                    next_user: 0,
                    ok: ok.clone(),
                })) as Box<dyn IxApp>
            },
        );
        let (sip, smac) = {
            let s = tb.fabric.host(tb.server);
            (s.ip, s.mac)
        };
        lh.seed_arp(sip, smac);
        tb.seed_server_arp(dialer_host);
    }
    let transitions_log = crate::mutilate::start_mmpp(
        &mut tb.sim,
        flag.clone(),
        SimRng::new(cfg.seed ^ 0x4d4d5050),
        cfg.spike_start.as_nanos(),
        cfg.mean_on.as_nanos(),
        cfg.mean_off.as_nanos(),
        end,
    );

    // Control plane over the IX server.
    let threads = match tb.engine.as_ref().expect("server") {
        ServerEngine::Ix(d) => d.threads.clone(),
        _ => unreachable!("elastic experiment is IX-only"),
    };
    let ctl = if cfg.elastic {
        let (dp, fc) = match tb.engine.as_ref().expect("server") {
            ServerEngine::Ix(d) => {
                let fc = cfg
                    .admission_gate
                    .then(|| Rc::new(FilterControl::install(d, ix_net::filter::FilterPolicy::new())));
                (d, fc)
            }
            _ => unreachable!(),
        };
        set_active_threads(&mut tb.sim, dp, cfg.initial_active, fc.as_deref());
        // The control loop outlives the load by the drain slack so the
        // admission gate lifts once the backlog clears (late dials that
        // were shed at the NIC edge reconnect here).
        let ctl_deadline = end + Nanos::from_millis(4).as_nanos();
        let (_wd, health) = start_queue_watchdog_with_health(
            &mut tb.sim,
            dp,
            Nanos::from_millis(1).as_nanos(),
            ctl_deadline,
            fc.clone(),
        );
        let ecfg = ix_core::ElasticConfig {
            epoch_ns: cfg.epoch.as_nanos(),
            sla_ns: cfg.sla.as_nanos(),
            per_frame_ns: cfg.per_frame.as_nanos(),
            min_active: 1,
            shed_port: cfg.admission_gate.then_some(11211),
            shed_sla_ns: cfg.sla.as_nanos() * 2,
            ..ix_core::ElasticConfig::default()
        };
        Some(start_elastic_controller(&mut tb.sim, dp, ecfg, fc, Some(health), ctl_deadline))
    } else {
        None
    };

    // Per-window probes: active cores and burst state at window end.
    let probes: Rc<RefCell<Vec<(usize, bool)>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let n_windows = end.div_ceil(window_ns);
        for k in 0..n_windows {
            let probes = probes.clone();
            let threads = threads.clone();
            let flag = flag.clone();
            tb.sim.schedule_in(Nanos((k + 1) * window_ns - 1), move |_| {
                let active = threads.iter().filter(|t| !t.borrow().parked).count();
                probes.borrow_mut().push((active, flag.get()));
            });
        }
    }

    tb.run_until_ns(end + Nanos::from_millis(4).as_nanos());

    let gate_drops = {
        let host = tb.fabric.host(tb.server);
        host.nics
            .iter()
            .map(|n| n.borrow().filter_stats_total().drops)
            .sum()
    };
    let s = stats.borrow();
    let series = s.series.as_ref().expect("series enabled");
    let probes = probes.borrow();
    let sla_ns = cfg.sla.as_nanos();
    let mut windows: Vec<ElasticWindow> = Vec::new();
    for (k, h) in series.windows.iter().enumerate() {
        let (active, burst_on) = probes.get(k).copied().unwrap_or((0, false));
        windows.push(ElasticWindow {
            t_ns: series.start_ns + k as u64 * window_ns,
            p99_ns: if h.count() > 0 { h.p99().as_nanos() } else { 0 },
            completed: series.counts[k],
            active_cores: active,
            burst_on,
        });
    }

    // Time-to-absorb: within the first spike interval, when does the
    // last over-SLA window end (relative to the onset)?
    let transitions = transitions_log.borrow().clone();
    let first_on = transitions.iter().find(|t| t.1).map(|t| t.0);
    let first_off = transitions
        .iter()
        .find(|t| !t.1 && Some(t.0) > first_on)
        .map(|t| t.0)
        .unwrap_or(end);
    let absorb_ns = first_on.map(|on| {
        let mut last_over_end: u64 = 0;
        let mut absorbed = true;
        for w in &windows {
            let w_end = w.t_ns + window_ns;
            if w_end <= on || w.t_ns >= first_off {
                continue;
            }
            if w.p99_ns > sla_ns {
                last_over_end = w_end.saturating_sub(on);
                // Violating in the spike's final window = never absorbed.
                absorbed = w_end + window_ns < first_off;
            }
        }
        (absorbed, last_over_end)
    });
    let absorb_ns = match absorb_ns {
        Some((true, v)) => Some(v),
        Some((false, _)) => None,
        None => Some(0),
    };
    // Consolidation quality: windows after the final spike ended (one
    // window of grace for in-flight requests) must stay under SLA.
    let final_off = transitions.iter().rev().find(|t| !t.1).map(|t| t.0).unwrap_or(end);
    let post_spike_violations = windows
        .iter()
        .filter(|w| w.t_ns >= final_off + window_ns && w.p99_ns > sla_ns)
        .count() as u64;

    let core_ns: u64 = windows.iter().map(|w| w.active_cores as u64 * window_ns).sum();
    ElasticKvResult {
        completed_total: s.completed_total,
        shed: s.shed,
        transitions,
        absorb_ns,
        post_spike_violations,
        core_ns,
        static_core_ns: cfg.server_cores as u64 * end,
        ctl: ctl.map(|c| *c.borrow()).unwrap_or_default(),
        gate_drops,
        dials_ok: dials_ok.get() as u64,
        debug: tb.debug_line(),
        windows,
    }
}
