//! Adversarial traffic generators (fig8).
//!
//! A real flood does not speak the victim's protocol: it is a firehose of
//! raw frames with spoofed sources. So these generators bypass the
//! client-side TCP stack entirely — they craft wire frames directly and
//! inject them through a dedicated attacker host's NIC TX rings, sharing
//! the switch fabric (and therefore link serialization, port contention,
//! and RSS spreading) with the legitimate load.
//!
//! Source addresses are drawn from a dedicated spoofed /16
//! ([`ATTACK_NET`]) that no real host occupies: replies the victim
//! generates (SYN-ACKs, RSTs) park in its ARP table and die there, like
//! replies to spoofed addresses on a real network — and the range gives
//! the pre-stack filter a realistic subnet rule to drop on.

use std::cell::RefCell;
use std::rc::Rc;

use ix_mempool::Mbuf;
use ix_net::eth::{EthHeader, EtherType, MacAddr};
use ix_net::ip::{IpProto, Ipv4Addr, Ipv4Header};
use ix_net::tcp::{TcpFlags, TcpHeader};
use ix_net::udp::UdpHeader;
use ix_nic::nic::{Nic, NicRef};
use ix_sim::{Nanos, SimRng, SimTime, Simulator};

/// The spoofed source range every generator draws from: 10.9.0.0/16.
/// [`attack_net_probe`] gives an address inside it for building filter
/// rules.
pub const ATTACK_NET: u32 = 0x0a09_0000;

/// An address inside [`ATTACK_NET`], for `FilterPolicy::rule_net16`.
pub fn attack_net_probe() -> Ipv4Addr {
    Ipv4Addr(ATTACK_NET | 1)
}

/// Attack traffic shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Connection-opening SYNs to the service port from random spoofed
    /// tuples: each one costs an unprotected stack a TCB, a timer, and a
    /// SYN-ACK.
    SynFlood,
    /// Bare ACKs to the service port for tuples with no flow: each one
    /// costs a flow-table miss plus an RFC 793 RST reply.
    AckStorm,
    /// RSTs to random tuples: pure per-packet parse/demux cost (the
    /// stack never replies to RST).
    RstStorm,
    /// UDP datagrams to random ports from random spoofed tuples.
    UdpBlast,
}

impl AttackKind {
    /// Display name used in figure rows.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::SynFlood => "synflood",
            AttackKind::AckStorm => "ackstorm",
            AttackKind::RstStorm => "rststorm",
            AttackKind::UdpBlast => "udpblast",
        }
    }
}

/// Counters kept by a running generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackStats {
    /// Frames pushed into the attacker NIC's TX rings.
    pub sent: u64,
    /// Frames the attacker could not inject because its own TX ring was
    /// full (the generator outran its own 10GbE port).
    pub tx_ring_full: u64,
}

/// Shared handle to a generator's counters.
pub type AttackStatsRef = Rc<RefCell<AttackStats>>;

/// Configuration of one attack stream.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Traffic shape.
    pub kind: AttackKind,
    /// Aggregate attack rate, packets per second.
    pub pps: f64,
    /// Victim address (frames are MAC-addressed straight to it, as a
    /// same-L2 attacker would).
    pub target_ip: Ipv4Addr,
    /// Victim MAC.
    pub target_mac: MacAddr,
    /// Service port SYN/ACK storms aim at.
    pub target_port: u16,
    /// First frame injected at this instant.
    pub start_ns: u64,
    /// No frames injected at or after this instant.
    pub stop_ns: u64,
    /// Generator RNG seed (tuple choice is deterministic per seed).
    pub seed: u64,
}

/// Injection batching: one scheduler event per tick injects
/// `pps * TICK_NS / 1e9` frames, so a multi-Mpps flood does not need an
/// event per packet.
const TICK_NS: u64 = 10_000;

/// Starts an attack stream injecting through `nic` (the attacker host's
/// port). Returns the live counters.
pub fn launch(sim: &mut Simulator, nic: NicRef, cfg: AttackConfig) -> AttackStatsRef {
    let stats: AttackStatsRef = Rc::new(RefCell::new(AttackStats::default()));
    let st = stats.clone();
    let mut rng = SimRng::new(cfg.seed ^ 0xa77a_c4e5);
    // Fractional frames-per-tick accumulate so the configured pps is hit
    // exactly in the long run.
    let per_tick = cfg.pps * TICK_NS as f64 / 1e9;
    let mut carry = 0.0f64;
    let start = cfg.start_ns;
    sim.schedule_at(SimTime(start), move |sim| {
        tick(sim, &nic, &cfg, &st, &mut rng, per_tick, &mut carry);
    });
    stats
}

fn tick(
    sim: &mut Simulator,
    nic: &NicRef,
    cfg: &AttackConfig,
    stats: &AttackStatsRef,
    rng: &mut SimRng,
    per_tick: f64,
    carry: &mut f64,
) {
    let now = sim.now().as_nanos();
    if now >= cfg.stop_ns {
        return;
    }
    *carry += per_tick;
    let n = *carry as u64;
    *carry -= n as f64;
    if n > 0 {
        let mut s = stats.borrow_mut();
        let mut injected = false;
        {
            let mut port = nic.borrow_mut();
            let queues = port.queues();
            // Act as our own driver: collect completed descriptors so
            // the rings keep accepting frames (nothing else polls this
            // host's NIC).
            for q in 0..queues {
                port.tx_ring(q).reclaim();
            }
            for i in 0..n {
                let frame = build_frame(cfg, rng, port.mac);
                // Spread injection over the attacker's TX queues the way
                // a multi-core flooder would.
                let q = (s.sent as usize + i as usize) % queues;
                if port.tx_ring(q).push(frame).is_ok() {
                    s.sent += 1;
                    injected = true;
                } else {
                    s.tx_ring_full += 1;
                }
            }
        }
        if injected {
            Nic::kick_tx(nic, sim);
        }
    }
    // Chain the next tick.
    let nic2 = nic.clone();
    let cfg2 = cfg.clone();
    let st2 = stats.clone();
    let mut rng2 = rng.fork();
    let mut carry2 = *carry;
    sim.schedule_at(SimTime(now) + Nanos(TICK_NS), move |sim| {
        tick(sim, &nic2, &cfg2, &st2, &mut rng2, per_tick, &mut carry2);
    });
}

/// Crafts one attack frame with a fresh spoofed tuple.
fn build_frame(cfg: &AttackConfig, rng: &mut SimRng, src_mac: MacAddr) -> Mbuf {
    // Spoofed source: anywhere in the /16, never a real host.
    let src_ip = Ipv4Addr(ATTACK_NET | (rng.next_u64() as u32 & 0xffff));
    let src_port = 1024u16.wrapping_add((rng.next_u64() % 60_000) as u16);
    let mut m = Mbuf::standalone();
    match cfg.kind {
        AttackKind::SynFlood | AttackKind::AckStorm | AttackKind::RstStorm => {
            let flags = match cfg.kind {
                AttackKind::SynFlood => TcpFlags::SYN,
                AttackKind::AckStorm => TcpFlags::ACK,
                _ => TcpFlags::RST,
            };
            let tcp = TcpHeader {
                src_port,
                dst_port: cfg.target_port,
                seq: rng.next_u64() as u32,
                ack: if flags.ack { rng.next_u64() as u32 } else { 0 },
                flags,
                window: 65_535,
                mss: if flags.syn { Some(1460) } else { None },
                wscale: None,
            };
            let tcp_len = tcp.len();
            tcp.encode(m.append(tcp_len), src_ip, cfg.target_ip, &[]);
            let ip = Ipv4Header {
                tos: 0,
                total_len: (Ipv4Header::LEN + tcp_len) as u16,
                ident: rng.next_u64() as u16,
                ttl: 64,
                proto: IpProto::Tcp,
                src: src_ip,
                dst: cfg.target_ip,
            };
            ip.encode(m.prepend(Ipv4Header::LEN));
        }
        AttackKind::UdpBlast => {
            // Random destination port: no enumerable port rule catches
            // this — only a source-range rule (or rate limit) does.
            let dst_port = (rng.next_u64() % 60_000) as u16 + 1024;
            let payload = [0u8; 18];
            let udp = UdpHeader {
                src_port,
                dst_port,
                len: (UdpHeader::LEN + payload.len()) as u16,
            };
            udp.encode(
                m.append(UdpHeader::LEN + payload.len()),
                src_ip,
                cfg.target_ip,
                &payload,
            );
            let ip = Ipv4Header {
                tos: 0,
                total_len: (Ipv4Header::LEN + UdpHeader::LEN + payload.len()) as u16,
                ident: rng.next_u64() as u16,
                ttl: 64,
                proto: IpProto::Udp,
                src: src_ip,
                dst: cfg.target_ip,
            };
            ip.encode(m.prepend(Ipv4Header::LEN));
        }
    }
    let eth = EthHeader {
        dst: cfg.target_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    };
    eth.encode(m.prepend(EthHeader::LEN));
    m
}
