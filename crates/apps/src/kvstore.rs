//! A memcached-style in-memory key-value store (§5.5).
//!
//! "memcached is a network-bound application, with threads spending over
//! 75% of execution time in kernel mode for network processing ...
//! Porting memcached to IX primarily consisted of adapting it to use our
//! event library." The server here is that port: a libix event-loop
//! application, stream-parsing the binary protocol of
//! [`crate::workload::proto`], with a shared store whose lock contention
//! is modeled — the effect the paper blames for ETC's lower speedup and
//! for IX's plateau beyond 6 cores ("increased lock contention within
//! the application itself, in particular because it has a higher write
//! frequency").

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ix_testkit::Bytes;
use ix_core::libix::{ConnCtx, LibixHandler};

use crate::workload::proto;

/// The store shared by all server threads, with an explicit lock model:
/// critical sections serialize on a virtual-time `busy_until`, so
/// concurrent threads pay queueing delay exactly as a contended mutex
/// imposes.
#[derive(Debug)]
pub struct SharedStore {
    map: HashMap<Vec<u8>, Bytes>,
    lock_busy_until_ns: u64,
    /// Critical-section length for a GET (hash lookup + refcount).
    pub crit_get_ns: u64,
    /// Critical-section length for a SET (allocation + insert + LRU).
    pub crit_set_ns: u64,
    /// Total operations served.
    pub ops: u64,
    /// Total virtual time threads spent waiting for the lock.
    pub lock_wait_ns: u64,
}

/// Shared handle to the store.
pub type StoreRef = Rc<RefCell<SharedStore>>;

impl SharedStore {
    /// Creates an empty store with the default contention profile.
    pub fn new() -> StoreRef {
        Rc::new(RefCell::new(SharedStore {
            map: HashMap::new(),
            lock_busy_until_ns: 0,
            crit_get_ns: 60,
            crit_set_ns: 400,
            ops: 0,
            lock_wait_ns: 0,
        }))
    }

    /// Executes a GET under the lock; returns `(charge_ns, value)`.
    /// Missing keys synthesize a value of `expected_len` bytes so the
    /// wire traffic matches the workload without a pre-population phase.
    pub fn get(&mut self, now_ns: u64, key: &[u8], expected_len: usize) -> (u64, Bytes) {
        let charge = self.lock(now_ns, self.crit_get_ns);
        let val = match self.map.get(key) {
            Some(v) => v.clone(),
            None => Bytes::from(vec![b'v'; expected_len]),
        };
        (charge, val)
    }

    /// Executes a SET under the lock; returns the charge.
    pub fn set(&mut self, now_ns: u64, key: &[u8], val: Bytes) -> u64 {
        let charge = self.lock(now_ns, self.crit_set_ns);
        self.map.insert(key.to_vec(), val);
        charge
    }

    /// Acquires the lock at `now_ns` for `crit_ns`: the caller is
    /// charged the wait plus the critical section; the lock stays busy
    /// until the section ends.
    fn lock(&mut self, now_ns: u64, crit_ns: u64) -> u64 {
        let wait = self.lock_busy_until_ns.saturating_sub(now_ns);
        self.lock_busy_until_ns = now_ns.max(self.lock_busy_until_ns) + crit_ns;
        self.ops += 1;
        self.lock_wait_ns += wait;
        wait + crit_ns
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One server thread's event handler.
pub struct KvServer {
    store: StoreRef,
    /// Fixed request-handling CPU outside the lock (parse, hash,
    /// response building).
    pub base_ns: u64,
    /// Stream-reassembly spill buffers per connection cookie. Used only
    /// when a request straddles delivery boundaries; the common case
    /// parses the delivered view in place and never touches these.
    partial: HashMap<u64, Vec<u8>>,
    /// Requests served by this thread.
    pub served: u64,
    /// Deliveries parsed entirely in place from the zero-copy `Bytes`
    /// view (the contiguous fast path — no byte was staged anywhere).
    pub inplace_parses: u64,
    /// Byte-copy passes into a spill buffer, taken only when a request
    /// genuinely straddles a delivery boundary.
    pub spill_copies: u64,
}

impl KvServer {
    /// Creates a handler over the shared store.
    pub fn new(store: StoreRef) -> KvServer {
        KvServer {
            store,
            base_ns: 1_300,
            partial: HashMap::new(),
            served: 0,
            inplace_parses: 0,
            spill_copies: 0,
        }
    }

    /// Parses and serves every complete request in `bytes`, returning
    /// how many bytes were consumed. `local_now` is the thread's *local*
    /// clock: the cycle start plus CPU it has already burned in this
    /// callback. Lock acquisitions use it so a batch of requests from
    /// one thread serializes once (its own compute), not quadratically
    /// against its own lock holds.
    fn serve(&mut self, ctx: &mut ConnCtx<'_>, bytes: &[u8], local_now: &mut u64) -> usize {
        let mut consumed = 0usize;
        loop {
            let rest = &bytes[consumed..];
            let Some(h) = proto::decode_request_header(rest) else { break };
            let total = h.total_len();
            if rest.len() < total {
                break;
            }
            let key = &rest[proto::REQ_HDR..proto::REQ_HDR + h.klen];
            ctx.charge(self.base_ns);
            *local_now += self.base_ns;
            self.served += 1;
            match h.op {
                proto::OP_GET => {
                    let (charge, val) = self.store.borrow_mut().get(*local_now, key, h.vlen);
                    ctx.charge(charge);
                    *local_now += charge;
                    let rsp = proto::encode_response(proto::ST_OK, h.seq, &val);
                    ctx.write(Bytes::from(rsp));
                }
                proto::OP_SET => {
                    // The store owns items beyond this delivery, so the
                    // value is copied into store-owned storage here —
                    // memcached's slab copy, not a stack copy. Keeping a
                    // view instead would pin the receive mbuf forever.
                    let val = Bytes::copy_from_slice(
                        &rest[proto::REQ_HDR + h.klen..proto::REQ_HDR + h.klen + h.vlen],
                    );
                    let charge = self.store.borrow_mut().set(*local_now, key, val);
                    ctx.charge(charge);
                    *local_now += charge;
                    let rsp = proto::encode_response(proto::ST_OK, h.seq, &[]);
                    ctx.write(Bytes::from(rsp));
                }
                _ => {
                    let rsp = proto::encode_response(proto::ST_MISS, h.seq, &[]);
                    ctx.write(Bytes::from(rsp));
                }
            }
            consumed += total;
        }
        consumed
    }
}

impl LibixHandler for KvServer {
    fn on_data(&mut self, ctx: &mut ConnCtx<'_>, data: &Bytes) {
        let mut local_now = ctx.now_ns;
        let spilled = self
            .partial
            .get(&ctx.conn.cookie)
            .is_some_and(|b| !b.is_empty());
        if !spilled {
            // Contiguous fast path: nothing buffered for this
            // connection, so requests parse directly from the delivered
            // view — in place, zero staging copies. Only a trailing
            // partial request (a genuine straddle) spills.
            let consumed = self.serve(ctx, data, &mut local_now);
            if consumed < data.len() {
                self.spill_copies += 1;
                self.partial
                    .entry(ctx.conn.cookie)
                    .or_default()
                    .extend_from_slice(&data[consumed..]);
            } else {
                self.inplace_parses += 1;
            }
            return;
        }
        // Straddle path: a request head is waiting in the spill buffer;
        // append this delivery and parse the reassembled stream.
        self.spill_copies += 1;
        let mut buf = self.partial.remove(&ctx.conn.cookie).expect("spilled");
        buf.extend_from_slice(data);
        let consumed = self.serve(ctx, &buf, &mut local_now);
        buf.drain(..consumed);
        self.partial.insert(ctx.conn.cookie, buf);
    }

    fn on_dead(&mut self, ctx: &mut ConnCtx<'_>, _reason: ix_tcp::DeadReason) {
        self.partial.remove(&ctx.conn.cookie);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_serializes_concurrent_ops() {
        let store = SharedStore::new();
        let mut s = store.borrow_mut();
        // Two GETs at the same instant: the second waits for the first.
        let (c1, _) = s.get(1_000, b"k", 8);
        assert_eq!(c1, s.crit_get_ns);
        let (c2, _) = s.get(1_000, b"k", 8);
        assert_eq!(c2, 2 * s.crit_get_ns);
        assert_eq!(s.lock_wait_ns, s.crit_get_ns);
        // A later op after the lock drained pays only the section.
        let (c3, _) = s.get(1_000_000, b"k", 8);
        assert_eq!(c3, s.crit_get_ns);
    }

    #[test]
    fn set_then_get_roundtrip() {
        let store = SharedStore::new();
        let mut s = store.borrow_mut();
        s.set(0, b"alpha", Bytes::from_static(b"12"));
        let (_, v) = s.get(10_000, b"alpha", 99);
        assert_eq!(&v[..], b"12");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_miss_synthesizes_expected_size() {
        let store = SharedStore::new();
        let mut s = store.borrow_mut();
        let (_, v) = s.get(0, b"missing", 500);
        assert_eq!(v.len(), 500, "traffic shape preserved on miss");
        assert!(s.is_empty(), "synthesized values are not stored");
    }

    #[test]
    fn sets_contend_harder_than_gets() {
        let store = SharedStore::new();
        let s = store.borrow();
        assert!(s.crit_set_ns > 4 * s.crit_get_ns);
    }
}
