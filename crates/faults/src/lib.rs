//! # ix-faults — the scripted fault plane
//!
//! A deterministic fault injector for the simulated machine room. A
//! [`FaultPlan`] scripts what goes wrong and when — per-link Bernoulli
//! loss, Gilbert–Elliott burst loss, link flaps (down/up windows on
//! simulated time), frame corruption, bounded reordering, and NIC queue
//! hangs (an RX queue that stops draining, a TX path that stalls, a
//! doorbell write that is lost). The NIC/switch layer consults the plan
//! at its injection points; the plan answers with a [`LinkVerdict`] or a
//! hang decision and counts what it did.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism.** All randomness comes from one [`SimRng`] seeded at
//!   plan construction, drawn in simulation-event order, so a faulted
//!   run replays byte-identically from `(configuration, seed)` — the
//!   same contract the rest of the workspace honors.
//! * **Zero cost when absent.** Hook sites hold an `Option<FaultsRef>`;
//!   with no plan installed they draw no randomness and schedule no
//!   events, so every fault-free run is byte-identical to a build
//!   without this crate.
//!
//! Links are identified by switch port (each port is one host↔switch
//! cable; a link's faults apply to both directions of that cable).
//! Queues are identified by `(switch_port, queue_id)`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ix_sim::SimRng;

/// A two-state Markov (Gilbert–Elliott) burst-loss model. Each frame
/// first moves the chain (good→bad with `p_g2b`, bad→good with
/// `p_b2g`), then drops with the state's loss probability. Mean burst
/// length is `1/p_b2g` frames; stationary bad-state occupancy is
/// `p_g2b / (p_g2b + p_b2g)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-frame transition probability good → bad.
    pub p_g2b: f64,
    /// Per-frame transition probability bad → good.
    pub p_b2g: f64,
    /// Loss probability while in the good state (usually 0).
    pub loss_good: f64,
    /// Loss probability while in the bad state (usually near 1).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A classic bursty profile: rare entry into a bad state that lasts
    /// ~`burst_len` frames and loses almost everything while it holds.
    pub fn bursty(p_enter: f64, burst_len: f64) -> GilbertElliott {
        GilbertElliott {
            p_g2b: p_enter,
            p_b2g: 1.0 / burst_len.max(1.0),
            loss_good: 0.0,
            loss_bad: 0.9,
        }
    }
}

/// Fault script for one link (one switch port's cable), applied to every
/// frame crossing it in either direction.
#[derive(Debug, Clone, Default)]
pub struct LinkFaults {
    /// Independent per-frame drop probability.
    pub loss: f64,
    /// Burst-loss chain, layered on top of `loss`.
    pub burst: Option<GilbertElliott>,
    /// Per-frame probability of a single-byte corruption. Only IPv4
    /// frames are corrupted (past the Ethernet header), so every
    /// corruption is detectable by the IP/TCP/UDP checksums — the hook
    /// site enforces this; non-IPv4 frames (ARP) pass clean.
    pub corrupt: f64,
    /// Per-frame probability of an extra delivery delay (which lets
    /// later frames overtake this one).
    pub reorder: f64,
    /// Upper bound on the extra reordering delay, ns.
    pub reorder_window_ns: u64,
    /// Down windows `[start, end)` in simulated ns: the link drops
    /// everything while down (a flap is one such window).
    pub down_windows: Vec<(u64, u64)>,
    /// Scripted drops by per-link frame index (0-based, counted over
    /// all frames crossing this link). Exact, RNG-free loss — used by
    /// golden-trace tests to force a specific recovery sequence.
    pub scripted_drops: Vec<u64>,
}

impl LinkFaults {
    /// True when this script can never affect a frame.
    fn is_inert(&self) -> bool {
        self.loss == 0.0
            && self.burst.is_none()
            && self.corrupt == 0.0
            && self.reorder == 0.0
            && self.down_windows.is_empty()
            && self.scripted_drops.is_empty()
    }
}

/// Fault script for one NIC port (keyed by its switch port).
#[derive(Debug, Clone, Default)]
pub struct NicFaults {
    /// Per-RX-queue hang windows `[start, end)`: while one holds, the
    /// host stops draining that queue (frames still arrive and the ring
    /// overflows, exactly like a stuck DMA consumer).
    pub rx_hangs: BTreeMap<usize, Vec<(u64, u64)>>,
    /// TX hang windows `[start, end)`: the wire-drain engine stalls and
    /// resumes when the window closes.
    pub tx_hangs: Vec<(u64, u64)>,
    /// Probability that a TX doorbell write is lost: the kick is
    /// ignored and frames sit in the ring until the next doorbell.
    pub doorbell_loss: f64,
}

/// The full fault script for a fabric: per-link and per-NIC entries plus
/// the seed of the dedicated fault RNG.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Link scripts by switch port.
    pub links: BTreeMap<u16, LinkFaults>,
    /// NIC scripts by switch port.
    pub nics: BTreeMap<u16, NicFaults>,
    /// Seed for the plan's private RNG stream.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan: injects nothing, counts nothing. Installing it is
    /// behaviorally identical to installing no plan at all.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with the given fault-RNG seed and no faults yet.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Sets the script for the link on `port`, replacing any previous
    /// script, and returns `self` for chaining.
    pub fn with_link(mut self, port: u16, faults: LinkFaults) -> FaultPlan {
        self.links.insert(port, faults);
        self
    }

    /// Sets the script for the NIC on `port` and returns `self`.
    pub fn with_nic(mut self, port: u16, faults: NicFaults) -> FaultPlan {
        self.nics.insert(port, faults);
        self
    }

    /// True when the plan can never affect anything.
    pub fn is_none(&self) -> bool {
        self.links.values().all(LinkFaults::is_inert)
            && self.nics.values().all(|n| {
                n.rx_hangs.values().all(Vec::is_empty)
                    && n.tx_hangs.is_empty()
                    && n.doorbell_loss == 0.0
            })
    }
}

/// What the fault plane decided for one frame crossing a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver untouched.
    Deliver,
    /// Drop the frame (loss, burst, flap, or scripted).
    Drop,
    /// Flip one byte; the operand is raw randomness the hook site maps
    /// to a checksum-protected offset.
    Corrupt(u64),
    /// Deliver after this many extra nanoseconds (reordering).
    Delay(u64),
}

/// Per-link fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Frames that crossed this link (post-verdict frames included).
    pub frames: u64,
    /// Dropped by independent Bernoulli loss.
    pub dropped_loss: u64,
    /// Dropped by the Gilbert–Elliott chain.
    pub dropped_burst: u64,
    /// Dropped because the link was down (flap window).
    pub dropped_flap: u64,
    /// Dropped by a scripted frame index.
    pub dropped_scripted: u64,
    /// Corrupted in flight.
    pub corrupted: u64,
    /// Delayed for reordering.
    pub reordered: u64,
}

impl LinkCounters {
    /// Total frames removed from the wire by this link's faults.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss + self.dropped_burst + self.dropped_flap + self.dropped_scripted
    }
}

/// Per-NIC (and per-queue) fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// RX poll attempts suppressed by a hang window.
    pub rx_hang_skips: u64,
    /// TX drain steps deferred to the end of a hang window.
    pub tx_hang_defers: u64,
    /// Doorbell writes lost.
    pub doorbells_lost: u64,
}

/// A deterministic snapshot of every fault counter, suitable for
/// equality assertions in determinism tests and for report output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSnapshot {
    /// Per-link counters, keyed by switch port.
    pub links: BTreeMap<u16, LinkCounters>,
    /// Per-NIC counters, keyed by switch port.
    pub nics: BTreeMap<u16, NicCounters>,
}

impl FaultSnapshot {
    /// Sum of frames dropped on the wire across all links.
    pub fn dropped_total(&self) -> u64 {
        self.links.values().map(LinkCounters::dropped_total).sum()
    }

    /// Sum of frames corrupted across all links.
    pub fn corrupted_total(&self) -> u64 {
        self.links.values().map(|l| l.corrupted).sum()
    }

    /// Sum of frames delayed for reordering across all links.
    pub fn reordered_total(&self) -> u64 {
        self.links.values().map(|l| l.reordered).sum()
    }
}

/// Per-link mutable runtime state.
#[derive(Debug, Default)]
struct LinkRuntime {
    /// Gilbert–Elliott chain state (true = bad).
    ge_bad: bool,
    counters: LinkCounters,
}

/// The live fault plane: the plan plus its RNG and counters. One shared
/// instance is installed into the switch and every NIC of a fabric.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    links: BTreeMap<u16, LinkRuntime>,
    nics: BTreeMap<u16, NicCounters>,
}

/// Shared handle to the fault plane, as held by hook sites.
pub type FaultsRef = Rc<RefCell<FaultState>>;

impl FaultState {
    /// Builds the live fault plane from a plan. The RNG stream is
    /// derived from the plan seed alone, independent of the simulator's
    /// workload RNG, so adding faults never perturbs workload jitter.
    pub fn new(plan: FaultPlan) -> FaultState {
        let rng = SimRng::new(plan.seed ^ 0xfau64.rotate_left(56));
        let links = plan.links.keys().map(|&p| (p, LinkRuntime::default())).collect();
        let nics = plan.nics.keys().map(|&p| (p, NicCounters::default())).collect();
        FaultState { plan, rng, links, nics }
    }

    /// Wraps a plan in the shared handle hook sites hold.
    pub fn shared(plan: FaultPlan) -> FaultsRef {
        Rc::new(RefCell::new(FaultState::new(plan)))
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one frame crossing the link on `port` at
    /// `now_ns`. `corruptible` says whether the frame carries end-to-end
    /// checksums (IPv4); corruption is only ever applied to such frames,
    /// so an injected flip can never be silently delivered. Draws from
    /// the fault RNG only for the checks the link's script actually
    /// enables, keeping unrelated links' streams stable.
    pub fn link_verdict(&mut self, port: u16, now_ns: u64, corruptible: bool) -> LinkVerdict {
        let Some(cfg) = self.plan.links.get(&port) else {
            return LinkVerdict::Deliver;
        };
        let rt = self.links.entry(port).or_default();
        let idx = rt.counters.frames;
        rt.counters.frames += 1;
        if cfg.scripted_drops.contains(&idx) {
            rt.counters.dropped_scripted += 1;
            return LinkVerdict::Drop;
        }
        if cfg.down_windows.iter().any(|&(s, e)| now_ns >= s && now_ns < e) {
            rt.counters.dropped_flap += 1;
            return LinkVerdict::Drop;
        }
        if let Some(ge) = cfg.burst {
            let flip = if rt.ge_bad { ge.p_b2g } else { ge.p_g2b };
            if self.rng.chance(flip) {
                rt.ge_bad = !rt.ge_bad;
            }
            let p = if rt.ge_bad { ge.loss_bad } else { ge.loss_good };
            if p > 0.0 && self.rng.chance(p) {
                rt.counters.dropped_burst += 1;
                return LinkVerdict::Drop;
            }
        }
        if cfg.loss > 0.0 && self.rng.chance(cfg.loss) {
            rt.counters.dropped_loss += 1;
            return LinkVerdict::Drop;
        }
        if corruptible && cfg.corrupt > 0.0 && self.rng.chance(cfg.corrupt) {
            rt.counters.corrupted += 1;
            return LinkVerdict::Corrupt(self.rng.next_u64());
        }
        if cfg.reorder > 0.0 && cfg.reorder_window_ns > 0 && self.rng.chance(cfg.reorder) {
            rt.counters.reordered += 1;
            return LinkVerdict::Delay(1 + self.rng.below(cfg.reorder_window_ns));
        }
        LinkVerdict::Deliver
    }

    /// True when RX queue `q` of the NIC on `port` is inside a hang
    /// window at `now_ns` (the host must skip draining it). Counts each
    /// suppressed poll attempt.
    pub fn rx_queue_hung(&mut self, port: u16, q: usize, now_ns: u64) -> bool {
        let Some(cfg) = self.plan.nics.get(&port) else { return false };
        let Some(windows) = cfg.rx_hangs.get(&q) else { return false };
        if windows.iter().any(|&(s, e)| now_ns >= s && now_ns < e) {
            self.nics.entry(port).or_default().rx_hang_skips += 1;
            return true;
        }
        false
    }

    /// If the NIC on `port` is inside a TX hang window at `now_ns`,
    /// returns the window's end (when draining may resume).
    pub fn tx_hang_until(&mut self, port: u16, now_ns: u64) -> Option<u64> {
        let cfg = self.plan.nics.get(&port)?;
        let end = cfg
            .tx_hangs
            .iter()
            .find(|&&(s, e)| now_ns >= s && now_ns < e)
            .map(|&(_, e)| e)?;
        self.nics.entry(port).or_default().tx_hang_defers += 1;
        Some(end)
    }

    /// Decides whether a TX doorbell write on `port` is lost.
    pub fn doorbell_lost(&mut self, port: u16) -> bool {
        let Some(cfg) = self.plan.nics.get(&port) else { return false };
        if cfg.doorbell_loss > 0.0 && self.rng.chance(cfg.doorbell_loss) {
            self.nics.entry(port).or_default().doorbells_lost += 1;
            return true;
        }
        false
    }

    /// Snapshots every counter.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            links: self.links.iter().map(|(&p, rt)| (p, rt.counters)).collect(),
            nics: self.nics.iter().map(|(&p, &c)| (p, c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(p: f64) -> FaultPlan {
        FaultPlan::new(42).with_link(3, LinkFaults { loss: p, ..LinkFaults::default() })
    }

    #[test]
    fn empty_plan_is_none_and_delivers() {
        assert!(FaultPlan::none().is_none());
        let mut st = FaultState::new(FaultPlan::none());
        for t in 0..100 {
            assert_eq!(st.link_verdict(0, t, true), LinkVerdict::Deliver);
            assert!(!st.rx_queue_hung(0, 0, t));
            assert!(st.tx_hang_until(0, t).is_none());
            assert!(!st.doorbell_lost(0));
        }
        assert_eq!(st.snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn bernoulli_loss_rate_is_plausible_and_counted() {
        let mut st = FaultState::new(lossy(0.1));
        let n = 20_000;
        let mut dropped = 0;
        for i in 0..n {
            if st.link_verdict(3, i, true) == LinkVerdict::Drop {
                dropped += 1;
            }
        }
        let snap = st.snapshot();
        assert_eq!(snap.links[&3].dropped_loss, dropped);
        assert_eq!(snap.links[&3].frames, n);
        let rate = dropped as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "loss rate {rate}");
        // Unconfigured links are untouched and draw no RNG state.
        assert!(!snap.links.contains_key(&4));
    }

    #[test]
    fn verdicts_replay_from_seed() {
        let plan = FaultPlan::new(7).with_link(
            1,
            LinkFaults {
                loss: 0.05,
                corrupt: 0.05,
                reorder: 0.05,
                reorder_window_ns: 4_000,
                burst: Some(GilbertElliott::bursty(0.01, 8.0)),
                ..LinkFaults::default()
            },
        );
        let run = |plan: FaultPlan| {
            let mut st = FaultState::new(plan);
            (0..5_000).map(|i| st.link_verdict(1, i * 100, true)).collect::<Vec<_>>()
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn flap_window_drops_everything_inside_only() {
        let plan = FaultPlan::new(1).with_link(
            2,
            LinkFaults { down_windows: vec![(1_000, 2_000)], ..LinkFaults::default() },
        );
        let mut st = FaultState::new(plan);
        assert_eq!(st.link_verdict(2, 999, true), LinkVerdict::Deliver);
        assert_eq!(st.link_verdict(2, 1_000, true), LinkVerdict::Drop);
        assert_eq!(st.link_verdict(2, 1_999, true), LinkVerdict::Drop);
        assert_eq!(st.link_verdict(2, 2_000, true), LinkVerdict::Deliver);
        assert_eq!(st.snapshot().links[&2].dropped_flap, 2);
    }

    #[test]
    fn gilbert_elliott_losses_cluster() {
        let plan = FaultPlan::new(3).with_link(
            1,
            LinkFaults {
                burst: Some(GilbertElliott {
                    p_g2b: 0.02,
                    p_b2g: 0.2,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                }),
                ..LinkFaults::default()
            },
        );
        let mut st = FaultState::new(plan);
        let verdicts: Vec<bool> =
            (0..50_000).map(|i| st.link_verdict(1, i, true) == LinkVerdict::Drop).collect();
        let losses = verdicts.iter().filter(|&&d| d).count();
        // Stationary loss ≈ 0.02/(0.02+0.2) ≈ 9%.
        let rate = losses as f64 / verdicts.len() as f64;
        assert!((0.05..0.14).contains(&rate), "burst loss rate {rate}");
        // Burstiness: the chance a loss follows a loss must far exceed
        // the marginal rate (that's what makes it a burst model).
        let mut after_loss = 0;
        let mut after_loss_lost = 0;
        for w in verdicts.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    after_loss_lost += 1;
                }
            }
        }
        let cond = after_loss_lost as f64 / after_loss as f64;
        assert!(cond > 2.0 * rate, "not bursty: P(loss|loss)={cond:.3} vs {rate:.3}");
    }

    #[test]
    fn scripted_drops_hit_exact_frames() {
        let plan = FaultPlan::new(0).with_link(
            5,
            LinkFaults { scripted_drops: vec![0, 3], ..LinkFaults::default() },
        );
        let mut st = FaultState::new(plan);
        let v: Vec<LinkVerdict> = (0..5).map(|i| st.link_verdict(5, i, true)).collect();
        assert_eq!(
            v,
            vec![
                LinkVerdict::Drop,
                LinkVerdict::Deliver,
                LinkVerdict::Deliver,
                LinkVerdict::Drop,
                LinkVerdict::Deliver,
            ]
        );
        assert_eq!(st.snapshot().links[&5].dropped_scripted, 2);
    }

    #[test]
    fn queue_hangs_and_doorbells() {
        let mut nf = NicFaults { doorbell_loss: 0.5, ..NicFaults::default() };
        nf.rx_hangs.insert(2, vec![(100, 200)]);
        nf.tx_hangs.push((500, 900));
        let plan = FaultPlan::new(9).with_nic(7, nf);
        let mut st = FaultState::new(plan);
        assert!(!st.rx_queue_hung(7, 2, 99));
        assert!(st.rx_queue_hung(7, 2, 150));
        assert!(!st.rx_queue_hung(7, 1, 150), "other queues unaffected");
        assert!(!st.rx_queue_hung(7, 2, 200));
        assert_eq!(st.tx_hang_until(7, 600), Some(900));
        assert_eq!(st.tx_hang_until(7, 900), None);
        let lost = (0..1_000).filter(|_| st.doorbell_lost(7)).count();
        assert!((400..600).contains(&lost), "doorbell loss {lost}");
        let snap = st.snapshot();
        assert_eq!(snap.nics[&7].rx_hang_skips, 1);
        assert_eq!(snap.nics[&7].tx_hang_defers, 1);
        assert_eq!(snap.nics[&7].doorbells_lost, lost as u64);
    }

    #[test]
    fn reorder_delay_is_bounded() {
        let plan = FaultPlan::new(11).with_link(
            1,
            LinkFaults { reorder: 1.0, reorder_window_ns: 500, ..LinkFaults::default() },
        );
        let mut st = FaultState::new(plan);
        for i in 0..1_000 {
            match st.link_verdict(1, i, true) {
                LinkVerdict::Delay(d) => assert!((1..=500).contains(&d), "delay {d}"),
                v => panic!("expected delay, got {v:?}"),
            }
        }
    }
}
