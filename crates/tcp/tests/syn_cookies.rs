//! SYN-cookie integration tests: the stateless handshake end to end at
//! the shard level. A cookie SYN-ACK must allocate *nothing* — the TCB
//! appears only when a valid third ACK arrives — so a SYN flood cannot
//! grow the TCB slab or hold receive buffers, no matter its rate.

use ix_mempool::Mbuf;
use ix_net::eth::{EthHeader, EtherType, MacAddr};
use ix_net::ip::{IpProto, Ipv4Addr, Ipv4Header};
use ix_net::tcp::{TcpFlags, TcpHeader};
use ix_tcp::{StackConfig, TcpEvent, TcpShard};

const SHARD_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const PEER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

fn cookies_on() -> StackConfig {
    StackConfig { syn_cookies: true, ..StackConfig::default() }
}

fn server(cfg: StackConfig) -> TcpShard {
    let mut s = TcpShard::new(cfg, SHARD_IP, mac(1));
    s.arp_seed(PEER_IP, mac(9));
    s.listen(80);
    s
}

fn frame(src_ip: Ipv4Addr, tcp: TcpHeader, payload: &[u8]) -> Mbuf {
    let mut m = Mbuf::standalone();
    let tcp_len = tcp.len();
    m.append(payload.len()).copy_from_slice(payload);
    tcp.encode(m.prepend(tcp_len), src_ip, SHARD_IP, payload);
    Ipv4Header {
        tos: 0,
        total_len: (Ipv4Header::LEN + tcp_len + payload.len()) as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Tcp,
        src: src_ip,
        dst: SHARD_IP,
    }
    .encode(m.prepend(Ipv4Header::LEN));
    EthHeader { dst: mac(1), src: mac(9), ethertype: EtherType::Ipv4 }
        .encode(m.prepend(EthHeader::LEN));
    m
}

fn parse(mut f: Mbuf) -> (Ipv4Header, TcpHeader) {
    f.pull(EthHeader::LEN);
    let ip = Ipv4Header::decode(f.data()).unwrap();
    f.pull(Ipv4Header::LEN);
    let (tcp, _) = TcpHeader::decode(f.data(), ip.src, ip.dst).unwrap();
    (ip, tcp)
}

fn syn(sport: u16, seq: u32) -> TcpHeader {
    TcpHeader {
        src_port: sport,
        dst_port: 80,
        seq,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 65_535,
        mss: Some(1460),
        wscale: None,
    }
}

fn ack(sport: u16, seq: u32, ackno: u32) -> TcpHeader {
    TcpHeader {
        src_port: sport,
        dst_port: 80,
        seq,
        ack: ackno,
        flags: TcpFlags::ACK,
        window: 65_535,
        mss: None,
        wscale: None,
    }
}

#[test]
fn cookie_handshake_defers_all_state_until_valid_ack() {
    let mut s = server(cookies_on());
    s.input(0, frame(PEER_IP, syn(4000, 100), &[]));
    // The SYN-ACK went out, but *no* connection state exists: no TCB,
    // no slab slot, no timer-armed half-open entry.
    assert_eq!(s.stats.syn_cookies_sent, 1);
    assert_eq!(s.flow_count(), 0, "cookie SYN-ACK allocates no TCB");
    assert_eq!(s.flow_mem_stats().slab_slots, 0);
    assert_eq!(s.synrcvd_len(), 0);
    let (_, synack) = parse(s.take_tx().into_iter().next().unwrap());
    assert!(synack.flags.syn && synack.flags.ack);
    assert_eq!(synack.ack, 101, "acks the SYN's sequence number");
    assert_eq!(synack.wscale, None, "no window scaling on the cookie path");
    // The completing ACK materializes the connection in one step.
    s.input(1_000, frame(PEER_IP, ack(4000, 101, synack.seq.wrapping_add(1)), &[]));
    assert_eq!(s.stats.syn_cookies_accepted, 1);
    assert_eq!(s.stats.conns_accepted, 1);
    assert_eq!(s.flow_count(), 1);
    let knocked = s
        .take_events()
        .into_iter()
        .any(|e| matches!(e, TcpEvent::Knock { .. }));
    assert!(knocked, "accepting a cookie ACK raises the knock event");
}

#[test]
fn cookie_handshake_interops_with_regular_client_stack() {
    // A plain client stack (cookies irrelevant on the active side)
    // against a cookie server: the handshake and a data round trip must
    // work — this pins the cookie TCB's sequence bookkeeping.
    let mut a = TcpShard::new(StackConfig::default(), PEER_IP, mac(9));
    let mut b = server(cookies_on());
    a.arp_seed(SHARD_IP, mac(1));
    let cf = a.connect(0, SHARD_IP, 80, 0xA).unwrap();
    let mut now = 0;
    let mut server_flow = None;
    for _ in 0..32 {
        now += 1_000;
        for f in a.take_tx() {
            b.input(now, f);
        }
        for f in b.take_tx() {
            a.input(now, f);
        }
        for e in b.take_events() {
            if let TcpEvent::Knock { flow, .. } = e {
                b.accept(flow, 0xB).unwrap();
                server_flow = Some(flow);
            }
        }
        a.end_cycle(now);
        b.end_cycle(now);
        if a.tx_len() == 0 && b.tx_len() == 0 && server_flow.is_some() {
            break;
        }
    }
    let sf = server_flow.expect("cookie handshake must knock");
    assert_eq!(b.stats.syn_cookies_accepted, 1);
    // Client → server data, server echoes back.
    a.send(now, cf, b"ping").unwrap();
    let mut echoed = Vec::new();
    for _ in 0..32 {
        now += 1_000;
        for f in a.take_tx() {
            b.input(now, f);
        }
        for e in b.take_events() {
            if let TcpEvent::Recv { payload, .. } = e {
                assert_eq!(payload.as_slice(), b"ping");
                b.recv_done(now, sf, payload.len() as u32).unwrap();
                b.send(now, sf, b"pong").unwrap();
            }
        }
        for f in b.take_tx() {
            a.input(now, f);
        }
        for e in a.take_events() {
            if let TcpEvent::Recv { payload, .. } = e {
                echoed.extend_from_slice(payload.as_slice());
            }
        }
        a.end_cycle(now);
        b.end_cycle(now);
        if echoed == b"pong" {
            break;
        }
    }
    assert_eq!(echoed, b"pong", "data must flow over the cookie-built TCB");
}

#[test]
fn forged_ack_is_rejected_with_rst() {
    let mut s = server(cookies_on());
    // An attacker guessing the cookie: a bare ACK that never saw a
    // SYN-ACK. Validation fails, nothing is allocated, and the stray
    // ACK gets the RFC 793 reset.
    s.input(0, frame(PEER_IP, ack(4000, 101, 0xdead_beef), &[]));
    assert_eq!(s.stats.syn_cookies_rejected, 1);
    assert_eq!(s.stats.syn_cookies_accepted, 0);
    assert_eq!(s.flow_count(), 0);
    assert_eq!(s.stats.rst_tx, 1);
    let (_, rst) = parse(s.take_tx().into_iter().next().unwrap());
    assert!(rst.flags.rst && !rst.flags.ack);
    assert_eq!(rst.seq, 0xdead_beef, "reset seq comes from the forged ACK");
}

#[test]
fn cookie_from_previous_bucket_accepted_then_expires() {
    let bucket_ns = StackConfig::default().syn_cookie_bucket_ns;
    // Completing ACK lands one bucket later (a slow RTT): still valid.
    let mut s = server(cookies_on());
    s.input(0, frame(PEER_IP, syn(4000, 100), &[]));
    let (_, synack) = parse(s.take_tx().into_iter().next().unwrap());
    s.input(bucket_ns + bucket_ns / 2, frame(PEER_IP, ack(4000, 101, synack.seq.wrapping_add(1)), &[]));
    assert_eq!(s.stats.syn_cookies_accepted, 1, "previous-bucket cookie still valid");
    // Two buckets later: expired, rejected, reset.
    let mut s = server(cookies_on());
    s.input(0, frame(PEER_IP, syn(4000, 100), &[]));
    let (_, synack) = parse(s.take_tx().into_iter().next().unwrap());
    s.input(2 * bucket_ns + bucket_ns / 2, frame(PEER_IP, ack(4000, 101, synack.seq.wrapping_add(1)), &[]));
    assert_eq!(s.stats.syn_cookies_accepted, 0);
    assert_eq!(s.stats.syn_cookies_rejected, 1, "expired cookie rejected");
    assert_eq!(s.flow_count(), 0);
}

#[test]
fn syn_flood_cannot_grow_tcb_slab_or_hold_buffers() {
    const FLOOD: u32 = 65_536;
    // Cookies on: 64k distinct-tuple SYNs leave *zero* connection state.
    let mut s = server(cookies_on());
    for i in 0..FLOOD {
        let src = Ipv4Addr(0x0a09_0000 | (i & 0xffff));
        s.arp_seed(src, mac(9));
        s.input(0, frame(src, syn((1024 + (i % 60_000)) as u16, i), &[]));
        if i % 4096 == 0 {
            s.take_tx(); // Drain SYN-ACK replies as a driver would.
        }
    }
    s.take_tx();
    assert_eq!(s.stats.syn_cookies_sent, FLOOD as u64);
    assert_eq!(s.flow_count(), 0);
    assert_eq!(s.flow_mem_stats().slab_slots, 0, "slab high-water is flood-independent");
    assert_eq!(s.stats.rx_pool_outstanding, 0, "no receive buffers held");
    // Cookies off: the backlog bound caps the damage instead.
    let mut s = server(StackConfig { syn_backlog: 1_024, ..StackConfig::default() });
    for i in 0..FLOOD {
        let src = Ipv4Addr(0x0a09_0000 | (i & 0xffff));
        s.arp_seed(src, mac(9));
        s.input(0, frame(src, syn((1024 + (i % 60_000)) as u16, i), &[]));
        if i % 4096 == 0 {
            s.take_tx();
        }
    }
    s.take_tx();
    assert_eq!(s.flow_count(), 1_024, "backlog bound holds");
    assert!(s.flow_mem_stats().slab_slots <= 1_024);
    assert_eq!(s.stats.synrcvd_overflow_drops, (FLOOD - 1_024) as u64);
    assert_eq!(s.stats.rx_pool_outstanding, 0);
}
