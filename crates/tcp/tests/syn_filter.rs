//! Pre-stack-era listener hardening: the RFC 793 §3.4 no-listener RST
//! (both arms, golden header fields) and the half-open `SynRcvd` backlog
//! bound that keeps a SYN flood from pinning unbounded TCB-slab slots
//! even with cookies off.

use ix_mempool::Mbuf;
use ix_net::eth::{EthHeader, EtherType, MacAddr};
use ix_net::ip::{IpProto, Ipv4Addr, Ipv4Header};
use ix_net::tcp::{TcpFlags, TcpHeader};
use ix_tcp::{StackConfig, TcpShard};

const SHARD_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const PEER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

fn shard(cfg: StackConfig) -> TcpShard {
    let mut s = TcpShard::new(cfg, SHARD_IP, mac(1));
    s.arp_seed(PEER_IP, mac(9));
    s
}

/// Crafts a raw TCP frame from `src_ip` to the shard.
fn frame(src_ip: Ipv4Addr, tcp: TcpHeader, payload: &[u8]) -> Mbuf {
    let mut m = Mbuf::standalone();
    let tcp_len = tcp.len();
    m.append(payload.len()).copy_from_slice(payload);
    tcp.encode(m.prepend(tcp_len), src_ip, SHARD_IP, payload);
    Ipv4Header {
        tos: 0,
        total_len: (Ipv4Header::LEN + tcp_len + payload.len()) as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Tcp,
        src: src_ip,
        dst: SHARD_IP,
    }
    .encode(m.prepend(Ipv4Header::LEN));
    EthHeader { dst: mac(1), src: mac(9), ethertype: EtherType::Ipv4 }
        .encode(m.prepend(EthHeader::LEN));
    m
}

/// Parses an emitted frame back into its IP + TCP headers.
fn parse(mut f: Mbuf) -> (Ipv4Header, TcpHeader) {
    f.pull(EthHeader::LEN);
    let ip = Ipv4Header::decode(f.data()).unwrap();
    f.pull(Ipv4Header::LEN);
    let (tcp, _) = TcpHeader::decode(f.data(), ip.src, ip.dst).unwrap();
    (ip, tcp)
}

#[test]
fn no_listener_rst_ack_arm_takes_seq_from_ack() {
    let mut s = shard(StackConfig::default());
    // Bare ACK to a port nobody listens on: "the reset takes its
    // sequence number from the ACK field of the segment" — and carries
    // no ACK of its own.
    let tcp = TcpHeader {
        src_port: 4000,
        dst_port: 81,
        seq: 1_000,
        ack: 555_555,
        flags: TcpFlags::ACK,
        window: 100,
        mss: None,
        wscale: None,
    };
    s.input(0, frame(PEER_IP, tcp, b"xyz"));
    assert_eq!(s.stats.no_listener, 1);
    assert_eq!(s.stats.rst_tx, 1);
    let tx = s.take_tx();
    assert_eq!(tx.len(), 1);
    let (ip, rst) = parse(tx.into_iter().next().unwrap());
    assert_eq!(ip.dst, PEER_IP);
    assert!(rst.flags.rst);
    assert!(!rst.flags.ack, "ACK-arm reset must not set ACK");
    assert_eq!(rst.seq, 555_555, "seq comes from the segment's ACK field");
    assert_eq!(rst.src_port, 81);
    assert_eq!(rst.dst_port, 4000);
}

#[test]
fn no_listener_rst_else_arm_acks_full_sequence_span() {
    // Without an ACK, "the reset has sequence number zero and the ACK
    // field is set to the sum of the sequence number and segment
    // length" — where SYN and FIN each occupy one sequence number.
    let cases: &[(TcpFlags, usize, u32)] = &[
        (TcpFlags::SYN, 0, 1),                               // SYN: +1
        (TcpFlags { fin: true, ..TcpFlags::NONE }, 0, 1),    // bare FIN: +1
        (TcpFlags { fin: true, ..TcpFlags::NONE }, 7, 8),    // FIN + data
        (TcpFlags::NONE, 5, 5),                              // bare data
    ];
    for &(flags, plen, span) in cases {
        let mut s = shard(StackConfig::default());
        let tcp = TcpHeader {
            src_port: 4000,
            dst_port: 81,
            seq: 9_000,
            ack: 0,
            flags,
            window: 100,
            mss: if flags.syn { Some(1460) } else { None },
            wscale: None,
        };
        s.input(0, frame(PEER_IP, tcp, &vec![0u8; plen]));
        assert_eq!(s.stats.rst_tx, 1, "{flags:?}");
        let (_, rst) = parse(s.take_tx().into_iter().next().unwrap());
        assert!(rst.flags.rst && rst.flags.ack, "{flags:?}: else-arm reset is RST+ACK");
        assert_eq!(rst.seq, 0, "{flags:?}: seq is zero");
        assert_eq!(rst.ack, 9_000 + span, "{flags:?}: ack covers the sequence span");
    }
}

#[test]
fn syn_backlog_caps_half_open_connections() {
    let mut s = shard(StackConfig { syn_backlog: 4, ..StackConfig::default() });
    s.listen(80);
    for i in 0..10u16 {
        let tcp = TcpHeader {
            src_port: 2000 + i,
            dst_port: 80,
            seq: 100,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65_535,
            mss: Some(1460),
            wscale: None,
        };
        s.input(0, frame(PEER_IP, tcp, &[]));
    }
    assert_eq!(s.flow_count(), 4, "only backlog-many TCBs allocated");
    assert_eq!(s.synrcvd_len(), 4);
    assert_eq!(s.stats.synrcvd_overflow_drops, 6);
    // Exactly one SYN-ACK per admitted connection; the overflow SYNs
    // were dropped silently (no RST — the client will retransmit).
    assert_eq!(s.take_tx().len(), 4);
    assert_eq!(s.stats.rst_tx, 0);
}

#[test]
fn backlog_slot_freed_when_handshake_completes() {
    let mut s = shard(StackConfig { syn_backlog: 1, ..StackConfig::default() });
    s.listen(80);
    let syn = |sport: u16| TcpHeader {
        src_port: sport,
        dst_port: 80,
        seq: 100,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 65_535,
        mss: Some(1460),
        wscale: None,
    };
    s.input(0, frame(PEER_IP, syn(2000), &[]));
    assert_eq!(s.synrcvd_len(), 1);
    // Second half-open connection bounces off the full backlog.
    s.input(0, frame(PEER_IP, syn(2001), &[]));
    assert_eq!(s.stats.synrcvd_overflow_drops, 1);
    // Complete the first handshake: its slot frees immediately.
    let (_, synack) = parse(s.take_tx().into_iter().next().unwrap());
    let ack = TcpHeader {
        src_port: 2000,
        dst_port: 80,
        seq: 101,
        ack: synack.seq.wrapping_add(1),
        flags: TcpFlags::ACK,
        window: 65_535,
        mss: None,
        wscale: None,
    };
    s.input(1_000, frame(PEER_IP, ack, &[]));
    assert_eq!(s.synrcvd_len(), 0, "established connection left the backlog");
    assert_eq!(s.stats.conns_accepted, 1);
    // The freed slot admits the retry.
    s.input(2_000, frame(PEER_IP, syn(2001), &[]));
    assert_eq!(s.synrcvd_len(), 1);
    assert_eq!(s.flow_count(), 2);
}
