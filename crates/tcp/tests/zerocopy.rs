//! Zero-copy TX regression tests: the paper's headline API property
//! (§3, §4.3 — zero-copy `sendv` with shared, immutable payload buffers)
//! enforced by counters and by `Arc` identity.
//!
//! The invariants pinned here:
//! - emitting a data segment on the fast path (warm ARP) writes payload
//!   exactly **once** (into the tail of its pool mbuf) and allocates
//!   **zero** transient heap buffers — down from four writes and three
//!   staging allocations in the old Vec-chain pipeline;
//! - `send` materializes exactly one refcounted storage block per call,
//!   and `send_bytes` materializes none (the retransmit queue slices the
//!   caller's own block);
//! - retransmission re-serializes from the *same* storage block (no
//!   payload copy), and reaping an ACKed segment releases the last
//!   stack-held reference.

use ix_net::eth::MacAddr;
use ix_net::ip::Ipv4Addr;
use ix_tcp::{AckPolicy, FlowId, StackConfig, TcpEvent, TcpShard};
use ix_testkit::prelude::*;
use ix_testkit::Bytes;

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

/// Minimal two-shard wire (the `protocol.rs` Pair, without mangling).
struct Pair {
    a: TcpShard,
    b: TcpShard,
    now: u64,
    /// When false, frames are dropped instead of delivered (loss).
    deliver: bool,
}

impl Pair {
    fn new(cfg: StackConfig) -> Pair {
        let mut a = TcpShard::new(cfg.clone(), A_IP, mac(1));
        let mut b = TcpShard::new(cfg, B_IP, mac(2));
        a.arp_seed(B_IP, mac(2));
        b.arp_seed(A_IP, mac(1));
        Pair { a, b, now: 0, deliver: true }
    }

    fn pump(&mut self, step_ns: u64, max_rounds: usize) {
        for _ in 0..max_rounds {
            self.now += step_ns;
            let from_a = self.a.take_tx();
            let from_b = self.b.take_tx();
            let idle = from_a.is_empty() && from_b.is_empty();
            for f in from_a {
                if self.deliver {
                    self.b.input(self.now, f);
                }
            }
            for f in from_b {
                if self.deliver {
                    self.a.input(self.now, f);
                }
            }
            self.a.end_cycle(self.now);
            self.b.end_cycle(self.now);
            self.a.advance_timers(self.now);
            self.b.advance_timers(self.now);
            if idle && self.a.tx_len() == 0 && self.b.tx_len() == 0 {
                break;
            }
        }
    }

    fn run_for(&mut self, step_ns: u64, dur_ns: u64) {
        let end = self.now + dur_ns;
        while self.now < end {
            self.pump(step_ns, 1);
        }
    }
}

fn establish(p: &mut Pair, port: u16) -> (FlowId, FlowId) {
    p.b.listen(port);
    let cf = p.a.connect(p.now, B_IP, port, 0xA).expect("connect");
    p.pump(1_000, 32);
    for e in p.a.take_events() {
        if let TcpEvent::Connected { ok, .. } = e {
            assert!(ok, "handshake failed");
        }
    }
    let mut server_flow = None;
    for e in p.b.take_events() {
        if let TcpEvent::Knock { flow, .. } = e {
            p.b.accept(flow, 0xB).unwrap();
            server_flow = Some(flow);
        }
    }
    (cf, server_flow.expect("knock event"))
}

/// The headline regression: per data segment on the warm-ARP fast path,
/// exactly one pool mbuf allocation and one payload write; zero transient
/// heap buffers. Enforced against both the `StackStats` counters and the
/// pool's own alloc accounting, so the counters can't drift from reality.
#[test]
fn data_segment_costs_one_write_one_alloc() {
    let mut p = Pair::new(StackConfig::default());
    let (c, _s) = establish(&mut p, 80);

    let stats0 = p.a.stats;
    let pool0 = p.a.pool_stats();

    // 4 full MSS segments plus a runt — five wire segments.
    let mss = 1460usize;
    let data = vec![0x5Au8; 4 * mss + 100];
    let n = p.a.send(p.now, c, &data).unwrap();
    assert_eq!(n, data.len(), "window must accept the whole burst");
    let segs = data.len().div_ceil(mss) as u64;

    let stats1 = p.a.stats;
    let pool1 = p.a.pool_stats();
    assert_eq!(
        stats1.tx_payload_writes - stats0.tx_payload_writes,
        segs,
        "each data segment must write payload exactly once (into its mbuf)"
    );
    assert_eq!(
        stats1.tx_transient_allocs - stats0.tx_transient_allocs,
        0,
        "the fast path must not allocate staging buffers"
    );
    assert_eq!(
        stats1.tx_rtq_blocks - stats0.tx_rtq_blocks,
        1,
        "one shared storage block per send() call"
    );
    assert_eq!(
        pool1.allocs - pool0.allocs,
        segs,
        "exactly one pool mbuf per emitted segment"
    );

    // The transfer still completes correctly.
    p.pump(1_000, 64);
    let got: usize = p
        .b
        .take_events()
        .into_iter()
        .filter_map(|e| match e {
            TcpEvent::Recv { payload, .. } => Some(payload.len()),
            _ => None,
        })
        .sum();
    assert_eq!(got, data.len());
}

/// `send_bytes` is zero-copy end to end: every retransmit-queue entry
/// aliases the caller's own storage block, and no owned block is
/// materialized by the stack.
#[test]
fn send_bytes_shares_the_callers_block() {
    let mut p = Pair::new(StackConfig::default());
    let (c, _s) = establish(&mut p, 80);

    let block = Bytes::from(vec![0xC3u8; 3 * 1460]);
    let stats0 = p.a.stats;
    let n = p.a.send_bytes(p.now, c, &block).unwrap();
    assert_eq!(n, block.len());

    assert_eq!(
        p.a.stats.tx_rtq_blocks - stats0.tx_rtq_blocks,
        0,
        "send_bytes must not materialize an owned block"
    );
    let rtq = p.a.rtq_payloads(c);
    assert_eq!(rtq.len(), 3);
    for seg in &rtq {
        assert!(
            seg.ptr_eq(&block),
            "rtq entry must alias the caller's storage, not copy it"
        );
    }
    drop(rtq);
    // Caller + 3 rtq slices — nothing else holds the payload.
    assert_eq!(block.ref_count(), 4);
}

/// Retransmission is a header rebuild plus a shared-payload reference —
/// no transient buffer, same backing block — and reaping the ACK
/// releases the stack's last reference to the storage.
#[test]
fn retransmit_shares_storage_and_reap_releases_it() {
    let mut cfg = StackConfig::low_latency();
    cfg.ack_policy = AckPolicy::Immediate;
    let mut p = Pair::new(cfg);
    let (c, _s) = establish(&mut p, 80);

    let block = Bytes::from(vec![0x7Eu8; 500]);
    // Black-hole the wire: the data segment (and nothing else) is lost.
    p.deliver = false;
    p.a.send_bytes(p.now, c, &block).unwrap();
    let transient0 = p.a.stats.tx_transient_allocs;

    // Let the 1 ms RTO fire a few times into the black hole.
    p.run_for(100_000, 5_000_000);
    assert!(p.a.stats.retransmits >= 1, "RTO must have fired");
    assert_eq!(
        p.a.stats.tx_transient_allocs, transient0,
        "retransmits must not allocate staging buffers"
    );
    let rtq = p.a.rtq_payloads(c);
    assert_eq!(rtq.len(), 1, "segment still unacknowledged");
    assert!(
        rtq[0].ptr_eq(&block),
        "retransmitted segment must still alias the original storage"
    );
    drop(rtq);

    // Heal the wire; the retransmit goes through and the ACK reaps it.
    p.deliver = true;
    p.run_for(100_000, 20_000_000);
    assert!(p.a.rtq_payloads(c).is_empty(), "ACK must reap the rtq");
    assert_eq!(
        block.ref_count(),
        1,
        "reaping must release the stack's references to the block"
    );
}

props! {
    #![config(cases = 16)]

    /// Sharing holds for arbitrary send sizes: all segments of one
    /// `send_bytes` call alias one block, slices tile the accepted
    /// prefix exactly, and the stack holds one reference per segment.
    #[test]
    fn rtq_slices_tile_one_shared_block(len in 1usize..20_000) {
        let mut p = Pair::new(StackConfig::default());
        let (c, _s) = establish(&mut p, 80);
        let payload: Vec<u8> =
            (0..len).map(|i| (i as u32).wrapping_mul(2654435761).to_le_bytes()[1]).collect();
        let block = Bytes::from(payload);
        let accepted = p.a.send_bytes(p.now, c, &block).unwrap();
        prop_assert!(accepted <= len);
        let rtq = p.a.rtq_payloads(c);
        let mut tiled = 0usize;
        for seg in &rtq {
            prop_assert!(seg.ptr_eq(&block));
            prop_assert_eq!(&seg[..], &block[tiled..tiled + seg.len()]);
            tiled += seg.len();
        }
        prop_assert_eq!(tiled, accepted);
        drop(rtq);
        prop_assert_eq!(block.ref_count(), 1 + p.a.rtq_payloads(c).len());
    }
}
