//! Protocol-level integration tests: two [`TcpShard`]s wired
//! back-to-back through a lossy, reorderable "virtual wire", with no NIC
//! or simulator involved — pure protocol behaviour.

use ix_mempool::Mbuf;
use ix_net::eth::MacAddr;
use ix_net::ip::Ipv4Addr;
use ix_tcp::{AckPolicy, DeadReason, FlowId, StackConfig, TcpEvent, TcpShard};

/// A per-frame mutator (wire corruption), fed a running frame index.
type Mangler = Box<dyn FnMut(u64, &mut Mbuf)>;

/// A deterministic two-host wire harness.
struct Pair {
    a: TcpShard,
    b: TcpShard,
    now: u64,
    /// Called per frame with a running index; return false to drop.
    keep: Box<dyn FnMut(u64) -> bool>,
    /// Called per kept frame; may mutate the frame in place.
    mangle: Mangler,
    frames_moved: u64,
}

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

impl Pair {
    fn new(cfg: StackConfig) -> Pair {
        let mut a = TcpShard::new(cfg.clone(), A_IP, mac(1));
        let mut b = TcpShard::new(cfg, B_IP, mac(2));
        // Seed ARP so protocol tests focus on TCP; ARP itself has its own
        // cold-start test below.
        a.arp_seed(B_IP, mac(2));
        b.arp_seed(A_IP, mac(1));
        Pair {
            a,
            b,
            now: 0,
            keep: Box::new(|_| true),
            mangle: Box::new(|_, _| {}),
            frames_moved: 0,
        }
    }

    /// Moves frames between the shards until both are idle or `max_rounds`
    /// passes elapse. Each round advances time by `step_ns`.
    fn pump(&mut self, step_ns: u64, max_rounds: usize) {
        for _ in 0..max_rounds {
            self.now += step_ns;
            let from_a = self.a.take_tx();
            let from_b = self.b.take_tx();
            let idle = from_a.is_empty() && from_b.is_empty();
            for mut f in from_a {
                self.frames_moved += 1;
                if (self.keep)(self.frames_moved) {
                    (self.mangle)(self.frames_moved, &mut f);
                    self.b.input(self.now, f);
                }
            }
            for mut f in from_b {
                self.frames_moved += 1;
                if (self.keep)(self.frames_moved) {
                    (self.mangle)(self.frames_moved, &mut f);
                    self.a.input(self.now, f);
                }
            }
            self.a.end_cycle(self.now);
            self.b.end_cycle(self.now);
            self.a.advance_timers(self.now);
            self.b.advance_timers(self.now);
            // Stop only when this round moved nothing and nothing new was
            // produced by end-of-cycle ACKs or timers.
            if idle && self.a.tx_len() == 0 && self.b.tx_len() == 0 {
                break;
            }
        }
    }

    /// Runs the wire for `dur_ns` (for timer-driven behaviour).
    fn run_for(&mut self, step_ns: u64, dur_ns: u64) {
        let end = self.now + dur_ns;
        while self.now < end {
            self.pump(step_ns, 1);
        }
    }
}

/// Establishes a connection from `a` to `b` (which listens on `port`) and
/// returns the two flow handles (client side, server side).
fn establish(p: &mut Pair, port: u16) -> (FlowId, FlowId) {
    p.b.listen(port);
    let cf = p.a.connect(p.now, B_IP, port, 0xAAA).expect("connect");
    p.pump(1_000, 32);
    let mut client_flow = None;
    for e in p.a.take_events() {
        if let TcpEvent::Connected { flow, ok, .. } = e {
            assert!(ok, "handshake failed");
            client_flow = Some(flow);
        }
    }
    let mut server_flow = None;
    for e in p.b.take_events() {
        if let TcpEvent::Knock { flow, src_ip, src_port } = e {
            assert_eq!(src_ip, A_IP);
            assert!(src_port >= 16_384);
            p.b.accept(flow, 0xBBB).unwrap();
            server_flow = Some(flow);
        }
    }
    let cf2 = client_flow.expect("connected event");
    assert_eq!(cf2, cf);
    (cf, server_flow.expect("knock event"))
}

#[test]
fn three_way_handshake() {
    let mut p = Pair::new(StackConfig::default());
    let (_c, _s) = establish(&mut p, 80);
    assert_eq!(p.a.flow_count(), 1);
    assert_eq!(p.b.flow_count(), 1);
    assert_eq!(p.a.stats.conns_opened, 1);
    assert_eq!(p.b.stats.conns_accepted, 1);
}

#[test]
fn small_echo_roundtrip() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);
    let n = p.a.send(p.now, c, b"hello").unwrap();
    assert_eq!(n, 5);
    p.pump(1_000, 16);
    // Server got the data.
    let mut got = Vec::new();
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, cookie, .. } = e {
            assert_eq!(cookie, 0xBBB);
            got.extend_from_slice(&payload[..]);
        }
    }
    assert_eq!(got, b"hello");
    // Echo back.
    p.b.recv_done(p.now, s, 5).unwrap();
    p.b.send(p.now, s, b"world").unwrap();
    p.pump(1_000, 16);
    let mut back = Vec::new();
    let mut sent_seen = false;
    for e in p.a.take_events() {
        match e {
            TcpEvent::Recv { payload, .. } => back.extend_from_slice(&payload[..]),
            TcpEvent::Sent { bytes_acked, .. } => {
                sent_seen = true;
                assert_eq!(bytes_acked, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(back, b"world");
    assert!(sent_seen, "client should observe its bytes acked");
}

#[test]
fn large_transfer_is_segmented_and_exact() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);
    // ~100 KB, forced through the 1460-byte MSS and the 64 KB window.
    let data: Vec<u8> = (0..100_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    let mut sent = 0usize;
    let mut received = Vec::new();
    let mut rounds = 0;
    while received.len() < data.len() {
        rounds += 1;
        assert!(rounds < 10_000, "transfer stalled at {} bytes", received.len());
        if sent < data.len() {
            sent += p.a.send(p.now, c, &data[sent..]).unwrap();
        }
        p.pump(1_000, 4);
        for e in p.b.take_events() {
            if let TcpEvent::Recv { payload, .. } = e {
                received.extend_from_slice(&payload[..]);
                p.b.recv_done(p.now, s, payload.len() as u32).unwrap();
            }
        }
        // Drain client events (Sent notifications).
        p.a.take_events();
    }
    assert_eq!(received, data, "stream corrupted");
    assert!(p.a.stats.tx_segments > 68, "MSS segmentation expected");
}

#[test]
fn send_respects_window_and_recv_done_opens_it() {
    let cfg = StackConfig { recv_window: 4_000, ..StackConfig::default() };
    let mut p = Pair::new(cfg);
    let (c, s) = establish(&mut p, 80);
    // Fill the 4 KB window.
    let data = vec![7u8; 10_000];
    let n1 = p.a.send(p.now, c, &data).unwrap();
    assert_eq!(n1, 4_000, "accepts exactly the advertised window");
    p.pump(1_000, 8);
    // Server holds the mbufs (no recv_done): window stays shut.
    let n2 = p.a.send(p.now, c, &data[n1..]).unwrap();
    assert_eq!(n2, 0, "window exhausted until the app consumes");
    // Server consumes; window reopens; client is notified via Sent.
    let mut held = 0;
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            held += payload.len() as u32;
        }
    }
    assert_eq!(held, 4_000);
    p.b.recv_done(p.now, s, held).unwrap();
    p.pump(1_000, 8);
    let reopened = p
        .a
        .take_events()
        .iter()
        .any(|e| matches!(e, TcpEvent::Sent { window, .. } if *window > 0));
    assert!(reopened, "client must learn the window reopened");
    let n3 = p.a.send(p.now, c, &data[n1..]).unwrap();
    assert!(n3 > 0);
}

#[test]
fn retransmission_recovers_from_loss() {
    let mut cfg = StackConfig::low_latency();
    cfg.ack_policy = AckPolicy::Immediate;
    let mut p = Pair::new(cfg);
    let (c, s) = establish(&mut p, 80);
    // Drop the first data frame after the handshake.
    let start = p.frames_moved;
    p.keep = Box::new(move |i| i != start + 1);
    p.a.send(p.now, c, b"must arrive").unwrap();
    // Run long enough for the 1 ms RTO to fire.
    p.run_for(100_000, 20_000_000);
    let mut got = Vec::new();
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            got.extend_from_slice(&payload[..]);
        }
    }
    assert_eq!(got, b"must arrive");
    assert!(p.a.stats.retransmits >= 1);
    let _ = s;
}

#[test]
fn out_of_order_segments_reassemble() {
    // Deliver segment 2 before segment 1 by swapping two frames.
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);
    // Send two MSS-sized chunks in one call: two frames on the wire.
    let data = vec![9u8; 2_920]; // 2 * 1460.
    p.a.send(p.now, c, &data).unwrap();
    // Manually take and reorder.
    let mut frames = p.a.take_tx();
    assert_eq!(frames.len(), 2);
    frames.reverse();
    for f in frames {
        p.b.input(p.now, f);
    }
    p.b.end_cycle(p.now);
    p.pump(1_000, 8);
    let mut got = 0usize;
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            got += payload.len();
            p.b.recv_done(p.now, s, payload.len() as u32).unwrap();
        }
    }
    assert_eq!(got, 2_920, "both segments delivered after reassembly");
}

#[test]
fn graceful_close_fin_handshake() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);
    p.a.close(p.now, c).unwrap();
    p.pump(1_000, 16);
    // Server sees Dead{PeerFin} and closes its side.
    let dead = p
        .b
        .take_events()
        .into_iter()
        .find_map(|e| match e {
            TcpEvent::Dead { reason, .. } => Some(reason),
            _ => None,
        })
        .expect("server sees FIN");
    assert_eq!(dead, DeadReason::PeerFin);
    p.b.close(p.now, s).unwrap();
    p.pump(1_000, 16);
    // Client side ends in TIME_WAIT (still counted) then expires.
    assert_eq!(p.b.flow_count(), 0, "server LAST_ACK completed");
    p.run_for(10_000_000, 2_000_000_000);
    assert_eq!(p.a.flow_count(), 0, "TIME_WAIT expired");
}

#[test]
fn abort_sends_rst_and_peer_sees_reset() {
    let mut p = Pair::new(StackConfig::default());
    let (c, _s) = establish(&mut p, 80);
    p.a.abort(p.now, c).unwrap();
    assert_eq!(p.a.flow_count(), 0, "no TIME_WAIT on abort");
    p.pump(1_000, 8);
    let reset = p
        .b
        .take_events()
        .into_iter()
        .any(|e| matches!(e, TcpEvent::Dead { reason: DeadReason::PeerReset, .. }));
    assert!(reset);
    assert_eq!(p.b.flow_count(), 0);
    assert_eq!(p.a.stats.rst_tx, 1);
}

#[test]
fn syn_to_closed_port_gets_rst() {
    let mut p = Pair::new(StackConfig::default());
    // No listener on 81.
    p.a.connect(p.now, B_IP, 81, 7).unwrap();
    p.pump(1_000, 16);
    let failed = p
        .a
        .take_events()
        .into_iter()
        .any(|e| matches!(e, TcpEvent::Connected { ok: false, cookie: 7, .. }));
    assert!(failed, "connect must fail with RST");
    assert_eq!(p.a.flow_count(), 0);
    assert_eq!(p.b.stats.no_listener, 1);
}

#[test]
fn stale_handle_rejected_after_close() {
    let mut p = Pair::new(StackConfig::default());
    let (c, _s) = establish(&mut p, 80);
    p.a.abort(p.now, c).unwrap();
    assert!(p.a.send(p.now, c, b"x").is_err());
    assert!(p.a.recv_done(p.now, c, 1).is_err());
    assert!(p.a.close(p.now, c).is_err());
}

#[test]
fn recv_done_overcredit_rejected() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);
    p.a.send(p.now, c, b"abc").unwrap();
    p.pump(1_000, 8);
    p.b.take_events();
    assert!(p.b.recv_done(p.now, s, 1_000).is_err(), "overcredit must fail");
    assert!(p.b.recv_done(p.now, s, 3).is_ok());
}

#[test]
fn cold_arp_resolves_then_delivers() {
    let cfg = StackConfig::default();
    let mut a = TcpShard::new(cfg.clone(), A_IP, mac(1));
    let mut b = TcpShard::new(cfg, B_IP, mac(2));
    b.listen(80);
    // No ARP seeding: the SYN must wait for resolution.
    a.connect(0, B_IP, 80, 1).unwrap();
    // First TX from a is an ARP request (broadcast).
    let tx = a.take_tx();
    assert_eq!(tx.len(), 1);
    assert_eq!(a.stats.arp_tx, 1);
    let mut now = 0u64;
    // Pump generously: request -> reply -> SYN -> SYN-ACK -> ACK.
    let mut frames: Vec<(bool, Mbuf)> = tx.into_iter().map(|f| (true, f)).collect();
    for _ in 0..20 {
        now += 1_000;
        let mut next = Vec::new();
        for (to_b, f) in frames.drain(..) {
            if to_b {
                b.input(now, f);
            } else {
                a.input(now, f);
            }
        }
        a.end_cycle(now);
        b.end_cycle(now);
        next.extend(a.take_tx().into_iter().map(|f| (true, f)));
        next.extend(b.take_tx().into_iter().map(|f| (false, f)));
        frames = next;
        if frames.is_empty() {
            break;
        }
    }
    let connected = a
        .take_events()
        .into_iter()
        .any(|e| matches!(e, TcpEvent::Connected { ok: true, .. }));
    assert!(connected, "handshake completes after ARP resolution");
}

#[test]
fn udp_roundtrip() {
    let mut p = Pair::new(StackConfig::default());
    p.a.udp_send(p.now, B_IP, 5000, 11211, b"get k");
    p.pump(1_000, 4);
    let dg = p.b.take_udp();
    assert_eq!(dg.len(), 1);
    assert_eq!(dg[0].src_port, 5000);
    assert_eq!(dg[0].dst_port, 11211);
    assert_eq!(dg[0].mbuf.data(), b"get k");
    assert_eq!(p.b.stats.udp_rx, 1);
}

#[test]
fn icmp_echo_replied() {
    let mut p = Pair::new(StackConfig::default());
    // Build an ICMP echo request from a to b via the stack's own encoder:
    // easiest is to use a raw frame through a's transmit path. We reach
    // for the test-only trick of sending a ping as if from the app layer:
    // craft the ICMP bytes and emit via udp_send's sibling is not public,
    // so drive b directly with a hand-built frame.
    use ix_net::eth::{EthHeader, EtherType};
    use ix_net::icmp::IcmpHeader;
    use ix_net::ip::{IpProto, Ipv4Header};
    let mut m = Mbuf::standalone();
    let icmp = IcmpHeader {
        icmp_type: ix_net::icmp::IcmpType::EchoRequest,
        ident: 0x42,
        seq: 1,
    };
    let payload = b"pingpong";
    let total = IcmpHeader::LEN + payload.len();
    {
        let region = m.append(total);
        region[IcmpHeader::LEN..].copy_from_slice(payload);
        let (h, t) = region.split_at_mut(IcmpHeader::LEN);
        icmp.encode(h, t);
    }
    Ipv4Header {
        tos: 0,
        total_len: (Ipv4Header::LEN + total) as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Icmp,
        src: A_IP,
        dst: B_IP,
    }
    .encode(m.prepend(Ipv4Header::LEN));
    EthHeader {
        dst: mac(2),
        src: mac(1),
        ethertype: EtherType::Ipv4,
    }
    .encode(m.prepend(EthHeader::LEN));
    p.b.input(p.now, m);
    assert_eq!(p.b.stats.icmp_echo, 1);
    let reply = p.b.take_tx();
    assert_eq!(reply.len(), 1);
    // The reply is a valid echo-reply addressed to a.
    let mut f = reply.into_iter().next().unwrap();
    f.pull(EthHeader::LEN);
    let ip = Ipv4Header::decode(f.data()).unwrap();
    assert_eq!(ip.dst, A_IP);
    f.pull(Ipv4Header::LEN);
    let h = IcmpHeader::decode(f.data()).unwrap();
    assert_eq!(h.icmp_type, ix_net::icmp::IcmpType::EchoReply);
    assert_eq!(h.ident, 0x42);
}

#[test]
fn rss_probing_picks_aligned_ports() {
    use std::rc::Rc;
    let cfg = StackConfig::default();
    let mut a = TcpShard::new(cfg, A_IP, mac(1));
    a.arp_seed(B_IP, mac(2));
    // Pretend there are 4 queues and this shard is queue 2; steer by a
    // simple port hash stand-in.
    a.set_steering(2, Rc::new(|_, _, port| (port as usize) % 4));
    for _ in 0..10 {
        let f = a.connect(0, B_IP, 80, 0).unwrap();
        assert_eq!(f.local_port() as usize % 4, 2, "port not RSS-aligned");
    }
}

#[test]
fn handshake_syn_loss_retries() {
    let mut cfg = StackConfig::low_latency();
    cfg.syn_rto_ns = 1_000_000; // 1 ms.
    let mut p = Pair::new(cfg);
    p.b.listen(80);
    // Drop the first SYN.
    p.keep = Box::new(|i| i != 1);
    p.a.connect(p.now, B_IP, 80, 5).unwrap();
    p.run_for(100_000, 10_000_000);
    let connected = p
        .a
        .take_events()
        .into_iter()
        .any(|e| matches!(e, TcpEvent::Connected { ok: true, .. }));
    assert!(connected, "SYN retransmission completes the handshake");
    assert!(p.a.stats.retransmits >= 1);
}

#[test]
fn churn_many_short_connections() {
    // The Fig 3b pattern: connect, one RPC, RST close — repeatedly.
    let mut p = Pair::new(StackConfig::default());
    p.b.listen(80);
    for round in 0..50 {
        let c = p.a.connect(p.now, B_IP, 80, round).unwrap();
        p.pump(1_000, 16);
        let server_flow = p
            .b
            .take_events()
            .into_iter()
            .find_map(|e| match e {
                TcpEvent::Knock { flow, .. } => Some(flow),
                _ => None,
            })
            .expect("knock");
        p.b.accept(server_flow, round).unwrap();
        p.a.take_events();
        p.a.send(p.now, c, b"req").unwrap();
        p.pump(1_000, 16);
        let got: usize = p
            .b
            .take_events()
            .iter()
            .map(|e| match e {
                TcpEvent::Recv { payload, .. } => payload.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(got, 3);
        p.b.recv_done(p.now, server_flow, 3).unwrap();
        p.b.send(p.now, server_flow, b"rsp").unwrap();
        p.pump(1_000, 16);
        p.a.take_events();
        p.a.abort(p.now, c).unwrap();
        p.pump(1_000, 16);
        p.b.take_events();
        assert_eq!(p.a.flow_count(), 0, "round {round}");
        assert_eq!(p.b.flow_count(), 0, "round {round}");
    }
    assert_eq!(p.b.stats.conns_accepted, 50);
}

#[test]
fn window_scaling_negotiated_and_applied() {
    // Both ends offer wscale: windows above 64KB become usable.
    // Large initial cwnd so the flow-control window (not congestion
    // control) is what the test observes.
    let cfg = StackConfig {
        window_scale: 7,
        recv_window: 512 * 1024,
        initial_cwnd_segs: 300,
        ..StackConfig::default()
    };
    let mut p = Pair::new(cfg);
    let (c, s) = establish(&mut p, 80);
    // RFC 7323: the SYN/SYN-ACK windows themselves are never scaled, so
    // the first send is still bounded by 64KB...
    let data = vec![3u8; 300_000];
    let n1 = p.a.send(p.now, c, &data).unwrap();
    assert_eq!(n1, 65_535, "pre-scale window is the unscaled SYN-ACK value");
    p.pump(1_000, 64);
    let mut got = 0;
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            got += payload.len();
            p.b.recv_done(p.now, s, payload.len() as u32).unwrap();
        }
    }
    assert_eq!(got, n1);
    p.pump(1_000, 16);
    p.a.take_events();
    // ...but once scaled window advertisements flow, a single send can
    // put far more than 64KB in flight.
    let n2 = p.a.send(p.now, c, &data).unwrap();
    assert!(n2 > 100_000, "scaled window accepted only {n2} bytes");
    p.pump(1_000, 64);
    let mut got2 = 0;
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            got2 += payload.len();
            p.b.recv_done(p.now, s, payload.len() as u32).unwrap();
        }
    }
    assert_eq!(got2, n2, "all in-flight bytes delivered");
}

#[test]
fn window_scaling_requires_both_ends() {
    // Server scales, client does not: effective window stays <= 64KB.
    let scfg = StackConfig { window_scale: 7, recv_window: 512 * 1024, ..StackConfig::default() };
    let ccfg = StackConfig::default(); // No scaling offered.
    let mut a = TcpShard::new(ccfg, A_IP, mac(1));
    let mut b = TcpShard::new(scfg, B_IP, mac(2));
    a.arp_seed(B_IP, mac(2));
    b.arp_seed(A_IP, mac(1));
    b.listen(80);
    let c = a.connect(0, B_IP, 80, 1).unwrap();
    // Pump manually.
    let mut now = 0;
    for _ in 0..16 {
        now += 1_000;
        for f in a.take_tx() {
            b.input(now, f);
        }
        for f in b.take_tx() {
            a.input(now, f);
        }
        a.end_cycle(now);
        b.end_cycle(now);
    }
    a.take_events();
    let n = a.send(now, c, &vec![0u8; 200_000]).unwrap();
    assert!(n <= 65_535, "unscaled peer must cap the window, accepted {n}");
}

#[test]
fn corrupted_frame_is_dropped_counted_and_recovered() {
    let mut cfg = StackConfig::low_latency();
    cfg.ack_policy = AckPolicy::Immediate;
    let mut p = Pair::new(cfg);
    let (c, s) = establish(&mut p, 80);
    // Flip one byte past the Ethernet header of the first data frame:
    // the IP-header or TCP pseudo-header checksum must catch it.
    let start = p.frames_moved;
    p.mangle = Box::new(move |i, f| {
        if i == start + 1 {
            let off = 14 + (f.len() - 14) / 2;
            f.data_mut()[off] ^= 0xff;
        }
    });
    p.a.send(p.now, c, b"integrity matters").unwrap();
    // Run long enough for the 1 ms RTO to retransmit the dropped copy.
    p.run_for(100_000, 20_000_000);
    let mut got = Vec::new();
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            got.extend_from_slice(&payload[..]);
        }
    }
    assert_eq!(got, b"integrity matters", "payload must arrive intact via retransmit");
    assert_eq!(p.b.stats.checksum_drops, 1, "exactly the mangled frame rejected");
    assert!(p.b.stats.parse_drops >= 1, "checksum drops are a subset of parse drops");
    assert!(p.a.stats.rto_fires >= 1, "a lone lost segment recovers via RTO");
    assert!(p.a.stats.max_recovery_ns > 0, "recovery episode duration recorded");
    let _ = s;
}

#[test]
fn fast_retransmit_fires_on_mid_burst_loss() {
    // A large scaled receive window saturates the 16-bit window field at
    // its cap, so out-of-order arrivals do not perturb the advertised
    // window and duplicate ACKs are recognized as such.
    let mut cfg = StackConfig::low_latency();
    cfg.ack_policy = AckPolicy::Immediate;
    cfg.recv_window = 1_000_000;
    cfg.window_scale = 2;
    let mut p = Pair::new(cfg);
    let (c, s) = establish(&mut p, 80);
    // Drop the first segment of an 8-segment burst: the 7 that follow
    // each produce a duplicate ACK.
    let start = p.frames_moved;
    p.keep = Box::new(move |i| i != start + 1);
    let data = vec![3u8; 8 * 1460];
    p.a.send(p.now, c, &data).unwrap();
    p.run_for(50_000, 40_000_000);
    let mut got = 0usize;
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            got += payload.len();
            p.b.recv_done(p.now, s, payload.len() as u32).unwrap();
        }
    }
    assert_eq!(got, data.len(), "full burst delivered after recovery");
    assert!(
        p.a.stats.fast_retransmits >= 1,
        "three duplicate ACKs must trigger fast retransmit, stats: {:?}",
        p.a.stats
    );
    assert!(p.a.stats.max_recovery_ns > 0, "episode recorded");
}

#[test]
fn persist_probe_counter_increments() {
    let mut cfg = StackConfig::low_latency();
    cfg.ack_policy = AckPolicy::Immediate;
    cfg.recv_window = 2_920; // Two segments fill it.
    cfg.persist_ns = 2_000_000;
    let mut p = Pair::new(cfg);
    let (c, s) = establish(&mut p, 80);
    // Fill the window; server does not consume, so it closes to zero and
    // the client must send persist probes.
    let data = vec![5u8; 10_000];
    p.a.send(p.now, c, &data).unwrap();
    p.pump(1_000, 16);
    p.a.send(p.now, c, &data).unwrap();
    p.run_for(500_000, 20_000_000);
    assert!(
        p.a.stats.persist_probes >= 1,
        "zero-window probes expected, stats: {:?}",
        p.a.stats
    );
    // Server consumes; transfer resumes.
    let mut held = 0;
    for e in p.b.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            held += payload.len() as u32;
        }
    }
    p.b.recv_done(p.now, s, held).unwrap();
    p.pump(1_000, 32);
    assert!(p.a.send(p.now, c, b"more").unwrap() > 0);
}

#[test]
fn stack_stats_absorb_sums_counters_and_maxes_recovery() {
    use ix_tcp::StackStats;
    let mut total = StackStats { retransmits: 2, max_recovery_ns: 500, ..StackStats::default() };
    let other = StackStats {
        retransmits: 3,
        checksum_drops: 4,
        rto_fires: 1,
        fast_retransmits: 2,
        persist_probes: 6,
        max_recovery_ns: 300,
        bytes_rx: 10,
        ..StackStats::default()
    };
    total.absorb(&other);
    assert_eq!(total.retransmits, 5);
    assert_eq!(total.checksum_drops, 4);
    assert_eq!(total.rto_fires, 1);
    assert_eq!(total.fast_retransmits, 2);
    assert_eq!(total.persist_probes, 6);
    assert_eq!(total.bytes_rx, 10);
    assert_eq!(total.max_recovery_ns, 500, "recovery time is a max, not a sum");
}
