//! Bucket-index ↔ flow-table consistency: the per-RSS-bucket intrusive
//! lists `FlowMap` maintains for flow-group migration must stay in
//! lock-step with the probe table under arbitrary insert / remove /
//! extract / absorb churn — every live bucketed entry reachable from
//! exactly one bucket list, in insertion order, with no stale links
//! after a migration round-trip — and the migration order must be a
//! function of the insertion history alone, independent of table
//! layout (capacity, growth history, slab fragmentation).

use std::collections::HashMap;

use ix_tcp::config::StackConfig;
use ix_tcp::event::FlowId;
use ix_tcp::tcb::TcpState;
use ix_tcp::{FlowMap, Tcb, TcpShard, NO_BUCKET, NUM_BUCKETS};
use ix_testkit::prelude::*;

/// One scripted operation against the map and its model.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// Bucketed insert (the shard's flow-adoption path).
    Insert(u64, u16, u32),
    /// Plain insert — unbucketed, must stay invisible to bucket walks.
    InsertPlain(u64, u32),
    /// Remove (connection teardown).
    Remove(u64),
    /// Drain one whole bucket into the migrated pool (extract side).
    Extract(u16),
    /// Re-insert everything in the migrated pool (absorb side).
    Absorb,
}

fn key() -> impl Strategy<Value = u64> {
    (0u64..300).prop_map(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Buckets concentrate on 0..6 so lists grow long enough to exercise
/// middle-of-list unlinks, with occasional strays across the full 128.
fn bucket() -> impl Strategy<Value = u16> {
    prop_oneof![
        6 => 0u16..6,
        1 => 0u16..NUM_BUCKETS as u16,
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (key(), bucket(), any::<u32>()).prop_map(|(k, b, v)| Op::Insert(k, b, v)),
        1 => (key(), any::<u32>()).prop_map(|(k, v)| Op::InsertPlain(k, v)),
        3 => key().prop_map(Op::Remove),
        2 => bucket().prop_map(Op::Extract),
        1 => (0u8..1).prop_map(|_| Op::Absorb),
    ]
}

/// Model entry: bucket, value, and the insertion sequence number that
/// defines its position in the bucket list.
type Model = HashMap<u64, (u16, u32, u64)>;

/// The model's prediction of one bucket's walk order.
fn model_bucket_keys(model: &Model, b: u16) -> Vec<u64> {
    let mut keys: Vec<(u64, u64)> = model
        .iter()
        .filter(|(_, &(mb, _, _))| mb == b)
        .map(|(&k, &(_, _, seq))| (seq, k))
        .collect();
    keys.sort_unstable();
    keys.into_iter().map(|(_, k)| k).collect()
}

/// Full-structure audit: every bucket list matches the model's order,
/// every live bucketed key appears on exactly one list, unbucketed
/// entries appear on none, and `bucket_of` agrees everywhere.
fn audit(map: &FlowMap<u32>, model: &Model) {
    prop_assert_eq!(map.len(), model.len());
    let mut seen: HashMap<u64, u16> = HashMap::new();
    for b in 0..NUM_BUCKETS as u16 {
        let got: Vec<u64> = map.bucket_keys(b).collect();
        let want = model_bucket_keys(model, b);
        prop_assert_eq!(&got, &want, "bucket {} walk order", b);
        // The O(1) population counter must agree with the actual walk.
        prop_assert_eq!(map.bucket_len(b), got.len(), "bucket {} counter", b);
        for k in got {
            prop_assert!(seen.insert(k, b).is_none(), "key {k} on two bucket lists");
        }
    }
    for (&k, &(b, v, _)) in model {
        prop_assert_eq!(map.get(k), Some(&v), "value for {k}");
        prop_assert_eq!(map.bucket_of(k), Some(b), "bucket_of({k})");
        if b == NO_BUCKET {
            prop_assert!(!seen.contains_key(&k), "unbucketed {k} reachable from a list");
        } else {
            prop_assert_eq!(seen.get(&k).copied(), Some(b), "{k} missing from its list");
        }
    }
}

props! {
    #![config(cases = 48)]

    /// Randomized churn keeps the bucket index and the probe table
    /// consistent, including across extract/absorb migration rounds.
    #[test]
    fn bucket_index_stays_consistent_under_churn(ops in collection::vec(op(), 0..250)) {
        let mut map: FlowMap<u32> = FlowMap::new();
        let mut model: Model = HashMap::new();
        let mut pool: Vec<(u64, u16, u32)> = Vec::new();
        let mut seq = 0u64;
        for op in &ops {
            match *op {
                Op::Insert(k, b, v) => {
                    let (_, old) = map.insert_in_bucket(k, b, v);
                    let prev = model.insert(k, (b, v, seq));
                    prop_assert_eq!(old, prev.map(|(_, pv, _)| pv), "displaced for {}", k);
                    // Same-bucket replacement keeps its list position.
                    if let Some((pb, _, pseq)) = prev {
                        if pb == b {
                            model.insert(k, (b, v, pseq));
                        }
                    }
                    seq += 1;
                }
                Op::InsertPlain(k, v) => {
                    let old = map.insert(k, v);
                    let prev = model.insert(k, (NO_BUCKET, v, seq));
                    prop_assert_eq!(old, prev.map(|(_, pv, _)| pv));
                    if let Some((pb, _, pseq)) = prev {
                        if pb == NO_BUCKET {
                            model.insert(k, (NO_BUCKET, v, pseq));
                        }
                    }
                    seq += 1;
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(k), model.remove(&k).map(|(_, v, _)| v));
                }
                Op::Extract(b) => {
                    let keys: Vec<u64> = map.bucket_keys(b).collect();
                    prop_assert_eq!(&keys, &model_bucket_keys(&model, b), "extract order");
                    for k in keys {
                        let v = map.remove(k).expect("listed key present");
                        let (mb, mv, _) = model.remove(&k).expect("model has it");
                        prop_assert_eq!((mb, mv), (b, v));
                        pool.push((k, b, v));
                    }
                    prop_assert_eq!(map.bucket_len(b), 0, "bucket drained");
                }
                Op::Absorb => {
                    for (k, b, v) in pool.drain(..) {
                        map.insert_in_bucket(k, b, v);
                        let prev = model.insert(k, (b, v, seq));
                        // A pooled key re-inserted live before the absorb
                        // keeps its live list position (same-bucket
                        // replacement does not re-home).
                        if let Some((pb, _, pseq)) = prev {
                            if pb == b {
                                model.insert(k, (b, v, pseq));
                            }
                        }
                        seq += 1;
                    }
                }
            }
        }
        audit(&map, &model);
    }

    /// Migration order is layout-independent: the same per-bucket
    /// insertion history walked on a fresh pre-sized map and on a map
    /// with a completely different capacity/churn past (grown through
    /// thousands of unrelated inserts and removals, fragmented slab)
    /// yields byte-identical bucket walks.
    #[test]
    fn two_table_layouts_yield_identical_migration_order(
        inserts in collection::vec((key(), bucket()), 1..120),
        churn in 100usize..2000,
    ) {
        let mut fresh: FlowMap<u64> = FlowMap::with_capacity(4096);
        let mut scarred: FlowMap<u64> = FlowMap::new();
        // Scar tissue: grow the table and fragment the slab/free list
        // with keys disjoint from the test set, then delete them all.
        for i in 0..churn as u64 {
            scarred.insert_in_bucket(u64::MAX - i, (i % 64) as u16, i);
        }
        for i in 0..churn as u64 {
            scarred.remove(u64::MAX - i);
        }
        for (i, &(k, b)) in inserts.iter().enumerate() {
            fresh.insert_in_bucket(k, b, i as u64);
            scarred.insert_in_bucket(k, b, i as u64);
        }
        for b in 0..NUM_BUCKETS as u16 {
            let a: Vec<u64> = fresh.bucket_keys(b).collect();
            let c: Vec<u64> = scarred.bucket_keys(b).collect();
            prop_assert_eq!(a, c, "bucket {} order differs across layouts", b);
        }
    }
}

/// Builds a hand-made established TCB for `(remote_ip, rport, lport)`
/// the way the watchdog re-steer path would hand one to `absorb_flows`.
fn mk_tcb(cfg: &StackConfig, gen: u32, remote: u32, rport: u16, lport: u16) -> Tcb {
    let key = FlowId::pack(ix_net::Ipv4Addr(remote), rport, lport);
    Tcb::new(cfg, FlowId { key, gen }, 0, TcpState::Established, 0x1000)
}

/// Shard-level determinism pin: two shards with different flow-table
/// histories (one brand new, one that already absorbed and re-extracted
/// thousands of unrelated flows, growing its table and fragmenting its
/// slab) absorb the same flows in the same order — and then extract
/// them in the same order. This is the property the control plane's
/// migration replay depends on.
#[test]
fn shard_extract_order_is_layout_independent() {
    let cfg = StackConfig::default();
    let ip = ix_net::Ipv4Addr::new(10, 0, 0, 1);
    let mac = ix_net::eth::MacAddr([2, 0, 0, 0, 0, 1]);
    let mut a = TcpShard::new(cfg.clone(), ip, mac);
    let mut b = TcpShard::new(cfg.clone(), ip, mac);
    // Scar shard `b`: absorb 3000 unrelated flows, then extract them
    // all away. Its table capacity and slab free list now differ
    // completely from `a`'s.
    let scar: Vec<Tcb> =
        (0..3000u32).map(|i| mk_tcb(&cfg, 1, 0x0b00_0001 + i, 40_000, 7000)).collect();
    b.absorb_flows(0, scar);
    let extracted = b.extract_flows(|_, _, _| true);
    assert_eq!(extracted.len(), 3000);
    // Same flows, same order, into both shards.
    let mkset = |gen: u32| -> Vec<Tcb> {
        (0..500u32)
            .map(|i| mk_tcb(&cfg, gen + i, 0x0a00_0002 + (i * 7) % 251, 30_000 + (i as u16 % 91), 7000))
            .collect()
    };
    a.absorb_flows(0, mkset(10));
    b.absorb_flows(0, mkset(10));
    let ea: Vec<u64> = a.extract_flows(|_, _, _| true).iter().map(|t| t.id.key).collect();
    let eb: Vec<u64> = b.extract_flows(|_, _, _| true).iter().map(|t| t.id.key).collect();
    assert!(!ea.is_empty());
    assert_eq!(ea, eb, "extract order depends on table layout");
}

/// Absorb computes a hand-built TCB's RSS bucket once; extract_bucket
/// on that bucket then finds it without any scan.
#[test]
fn absorbed_flows_land_on_their_bucket_list() {
    let cfg = StackConfig::default();
    let ip = ix_net::Ipv4Addr::new(10, 0, 0, 1);
    let mac = ix_net::eth::MacAddr([2, 0, 0, 0, 0, 1]);
    let mut s = TcpShard::new(cfg.clone(), ip, mac);
    let flows: Vec<Tcb> =
        (0..256u32).map(|i| mk_tcb(&cfg, 1 + i, 0x0a00_0100 + i, 41_000, 7000)).collect();
    let keys: Vec<u64> = flows.iter().map(|t| t.id.key).collect();
    s.absorb_flows(0, flows);
    assert_eq!(s.flow_count(), 256);
    // Every flow is reachable through exactly one bucket walk.
    let mut found = 0usize;
    let mut per_bucket_total = 0usize;
    for bkt in 0..NUM_BUCKETS as u16 {
        per_bucket_total += s.bucket_flow_count(bkt);
        let group = s.extract_bucket(bkt);
        found += group.iter().filter(|t| keys.contains(&t.id.key)).count();
        s.absorb_flows(0, group);
    }
    assert_eq!(per_bucket_total, 256);
    assert_eq!(found, 256);
    assert_eq!(s.flow_count(), 256, "extract/absorb round-trip leaked flows");
}
