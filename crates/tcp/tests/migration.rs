//! Flow-group migration correctness (§4.4) — the property and golden
//! suites behind the elastic control loop.
//!
//! A client shard talks to a two-shard server "host"; a routing switch
//! models the NIC redirection table, delivering each client frame to the
//! shard that currently owns the flow. Tests migrate the flow between
//! the server shards mid-transfer — with retransmit queues, held receive
//! buffers, out-of-order segments, and armed timers in flight — and
//! assert the transfer is indistinguishable from one that never
//! migrated: zero resets, zero payload divergence, zero leaked pool
//! mbufs.

use std::cell::Cell;
use std::rc::Rc;

use ix_mempool::Mbuf;
use ix_net::eth::MacAddr;
use ix_net::ip::Ipv4Addr;
use ix_tcp::{AckPolicy, DeadReason, FlowId, StackConfig, StackStats, TcpEvent, TcpShard};
use ix_testkit::prelude::*;

const C_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const S_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

/// Deterministic per-frame wire decisions (SplitMix64 over a counter),
/// identical to the `prop.rs` hostile-wire harness.
struct Wire {
    seed: u64,
    drop_pct: u64,
    dup_pct: u64,
    delay_pct: u64,
    counter: u64,
}

impl Wire {
    fn decide(&mut self) -> (bool, bool, bool) {
        self.counter += 1;
        let mut z = self.seed.wrapping_add(self.counter.wrapping_mul(0x9e3779b97f4a7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let roll = z % 100;
        let drop = roll < self.drop_pct;
        let dup = !drop && roll < self.drop_pct + self.dup_pct;
        let delay = !drop && !dup && roll < self.drop_pct + self.dup_pct + self.delay_pct;
        (drop, dup, delay)
    }
}

/// One client shard + a two-shard server host behind a redirection
/// "switch": frames to the server land on whichever shard currently
/// owns the flow group (the drain-then-reprogram protocol of
/// `set_active_threads` means in-flight frames follow the new table).
struct Cluster {
    c: TcpShard,
    s: [TcpShard; 2],
    owner: usize,
    now: u64,
    /// Drop every server->client frame while set (scripted blackouts).
    cut_s2c: Rc<Cell<bool>>,
    /// Drop every client->server frame while set.
    cut_c2s: Rc<Cell<bool>>,
}

impl Cluster {
    fn new(ccfg: StackConfig, scfg: StackConfig) -> Cluster {
        let mut c = TcpShard::new(ccfg, C_IP, mac(1));
        let mut s0 = TcpShard::new(scfg.clone(), S_IP, mac(2));
        let mut s1 = TcpShard::new(scfg, S_IP, mac(2));
        c.arp_seed(S_IP, mac(2));
        s0.arp_seed(C_IP, mac(1));
        s1.arp_seed(C_IP, mac(1));
        s0.listen(80);
        s1.listen(80);
        Cluster {
            c,
            s: [s0, s1],
            owner: 0,
            now: 0,
            cut_s2c: Rc::new(Cell::new(false)),
            cut_c2s: Rc::new(Cell::new(false)),
        }
    }

    /// Moves the flow group to the other server shard — the §4.4
    /// extract/absorb pair the control plane drives.
    fn migrate(&mut self) {
        let from = self.owner;
        let to = 1 - from;
        let flows = self.s[from].extract_flows(|_, _, _| true);
        self.s[to].absorb_flows(self.now, flows);
        self.owner = to;
    }

    /// One clean pump round: advance time, move frames, run cycle ends
    /// and timers on every shard.
    fn pump_round(&mut self, step_ns: u64) {
        self.now += step_ns;
        let from_c = self.c.take_tx();
        let from_s0 = self.s[0].take_tx();
        let from_s1 = self.s[1].take_tx();
        for f in from_c {
            if !self.cut_c2s.get() {
                self.s[self.owner].input(self.now, f);
            }
        }
        for f in from_s0.into_iter().chain(from_s1) {
            if !self.cut_s2c.get() {
                self.c.input(self.now, f);
            }
        }
        let now = self.now;
        self.c.end_cycle(now);
        self.s[0].end_cycle(now);
        self.s[1].end_cycle(now);
        self.c.advance_timers(now);
        self.s[0].advance_timers(now);
        self.s[1].advance_timers(now);
    }

    /// Pumps until idle (bounded), like `protocol.rs`.
    fn pump(&mut self, step_ns: u64, max_rounds: usize) {
        for _ in 0..max_rounds {
            self.pump_round(step_ns);
            if self.c.tx_len() == 0 && self.s[0].tx_len() == 0 && self.s[1].tx_len() == 0 {
                break;
            }
        }
    }

    fn establish(&mut self) -> (FlowId, FlowId) {
        let cf = self.c.connect(self.now, S_IP, 80, 0xC).expect("connect");
        self.pump(100_000, 64);
        let mut ok = false;
        for e in self.c.take_events() {
            if let TcpEvent::Connected { ok: o, .. } = e {
                ok = o;
            }
        }
        assert!(ok, "handshake failed");
        let mut sf = None;
        for e in self.s[self.owner].take_events() {
            if let TcpEvent::Knock { flow, .. } = e {
                self.s[self.owner].accept(flow, 0x5).unwrap();
                sf = Some(flow);
            }
        }
        (cf, sf.expect("knock"))
    }

    fn summed_stats(&self) -> StackStats {
        let mut sum = StackStats::default();
        sum.absorb(&self.s[0].stats);
        sum.absorb(&self.s[1].stats);
        sum
    }
}

fn low_lat_cfg() -> StackConfig {
    StackConfig {
        syn_rto_ns: 1_000_000,
        ..StackConfig::low_latency()
    }
}

// ---------------------------------------------------------------------
// Satellite: persist-timer migration. Pre-fix, `absorb_flows` silently
// dropped an armed zero-window probe timer — a migrated flow whose
// window-update ACK was lost then deadlocked forever.
// ---------------------------------------------------------------------

#[test]
fn persist_timer_rearms_on_destination_shard() {
    let mut cl = Cluster::new(low_lat_cfg(), low_lat_cfg());
    let (cf, sf) = cl.establish();

    // Server floods until the client's 64 KiB window is full; the client
    // application credits nothing, so the advertised window closes and
    // the server's persist timer arms.
    let blob = vec![0x7u8; 1460];
    let mut pushed = 0usize;
    for _ in 0..200 {
        if let Ok(n) = cl.s[cl.owner].send(cl.now, sf, &blob) {
            pushed += n;
        }
        cl.pump_round(100_000);
    }
    cl.pump(100_000, 256);
    assert!(pushed >= 65_535, "window never filled ({pushed})");
    // Hold the delivered payloads alive like a slow application would.
    let mut held: Vec<ix_testkit::Bytes> = Vec::new();
    let mut got = 0usize;
    for e in cl.c.take_events() {
        if let TcpEvent::Recv { payload, .. } = e {
            got += payload.len();
            held.push(payload);
        }
    }
    assert!(got >= 65_000, "client should have a full window buffered ({got})");

    // Migrate while the persist timer is armed, then lose the window
    // update: the client credits everything while the wire is cut, so
    // the reopening ACK never arrives. Only a zero-window probe — fired
    // from the *destination* wheel — can discover the open window.
    cl.migrate();
    cl.cut_s2c.set(true); // ACK-only direction is irrelevant here…
    cl.cut_c2s.set(true); // …the credit-driven window update is this way.
    held.clear();
    cl.c.recv_done(cl.now, cf, got as u32).unwrap();
    cl.pump(100_000, 8);
    cl.cut_c2s.set(false);
    cl.cut_s2c.set(false);

    // Default persist interval is 200 ms; run 600 ms of probes.
    for _ in 0..6_000 {
        cl.pump_round(100_000);
        if cl.c.take_events().iter().any(|e| matches!(e, TcpEvent::Recv { .. })) {
            break;
        }
    }
    assert!(
        cl.s[cl.owner].stats.persist_probes >= 1,
        "destination shard never probed the zero window"
    );
    assert_eq!(cl.s[1 - cl.owner].stats.persist_probes, 0);
    // Probe answered -> window rediscovered -> the stream moves again.
    let before = cl.c.stats.bytes_rx;
    if let Ok(n) = cl.s[cl.owner].send(cl.now, sf, &blob) {
        assert!(n > 0, "send window still closed after probe");
    }
    cl.pump(100_000, 256);
    assert!(cl.c.stats.bytes_rx > before, "stream did not resume after probe");
}

// ---------------------------------------------------------------------
// Satellite: delayed-ACK migration. Pre-fix the armed delack timer was
// dropped, so the ACK waited for the peer's RTO retransmission.
// ---------------------------------------------------------------------

#[test]
fn delack_timer_rearms_on_destination_shard() {
    // Server shards model a delayed-ACK stack (the Linux/mTCP profile).
    // The client keeps the default 200 ms RTO floor so the 40 ms delack
    // is the *only* thing that can acknowledge within the observation
    // window — a dropped timer shows up as an RTO retransmission.
    let scfg = StackConfig {
        ack_policy: AckPolicy::Delayed(40_000_000),
        ..StackConfig::default()
    };
    let mut cl = Cluster::new(StackConfig::default(), scfg);
    let (cf, sf) = cl.establish();
    let _ = (cf, sf);

    // One lone segment arms the delayed-ACK timer (first-segment branch).
    cl.c.send(cl.now, cf, &[0x42u8; 100]).unwrap();
    cl.pump_round(1_000);
    cl.pump_round(1_000);
    assert_eq!(cl.s[cl.owner].stats.bytes_rx, 100);

    // Migrate with the delack pending, then just let time pass: the
    // destination wheel must emit the ACK. The client's RTO (1 ms floor)
    // would eventually force it, so the discriminating assertion is that
    // zero retransmissions were needed.
    cl.migrate();
    for _ in 0..600 {
        cl.pump_round(100_000); // 60 ms >> the 40 ms delack.
    }
    assert_eq!(cl.c.stats.retransmits, 0, "ACK was recovered only by RTO");
    assert_eq!(cl.c.stats.rto_fires, 0);
    let snd_acked = cl
        .c
        .take_events()
        .iter()
        .filter_map(|e| match e {
            TcpEvent::Sent { bytes_acked, .. } => Some(*bytes_acked as usize),
            _ => None,
        })
        .sum::<usize>();
    assert_eq!(snd_acked, 100, "delayed ACK never arrived from the destination shard");
}

// ---------------------------------------------------------------------
// Satellite: StackStats / gauge conservation. Summed over the shards,
// nothing changes when flows move — counters stay with the shard that
// counted them, gauges follow their flows.
// ---------------------------------------------------------------------

#[test]
fn stats_and_gauges_conserve_across_migration() {
    let scfg = StackConfig {
        syn_backlog: 1,
        ..low_lat_cfg()
    };
    let mut cl = Cluster::new(low_lat_cfg(), scfg);
    let (cf, _sf) = cl.establish();

    // Uncredited in-order data: the server holds rx_held buffers.
    cl.c.send(cl.now, cf, &[0x11u8; 2000]).unwrap();
    cl.pump(100_000, 16);
    // An out-of-order segment: drop one frame, pass the next.
    cl.cut_c2s.set(true);
    cl.c.send(cl.now, cf, &[0x22u8; 1000]).unwrap();
    cl.pump_round(1_000);
    cl.cut_c2s.set(false);
    cl.c.send(cl.now, cf, &[0x33u8; 1000]).unwrap();
    cl.pump_round(1_000);
    cl.pump_round(1_000);

    // Half-open backlog: cut the return path so a second connection's
    // SYN-ACK is lost (the server parks in SynRcvd), and a third SYN
    // overflows the one-deep backlog.
    cl.cut_s2c.set(true);
    cl.c.connect(cl.now, S_IP, 80, 0xB1).unwrap();
    cl.pump_round(1_000);
    cl.c.connect(cl.now, S_IP, 80, 0xB2).unwrap();
    cl.pump_round(1_000);

    let shard_stats = cl.summed_stats();
    let synrcvd: usize = cl.s.iter().map(|s| s.synrcvd_len()).sum();
    let flows: usize = cl.s.iter().map(|s| s.flow_count()).sum();
    assert!(shard_stats.rx_pool_outstanding > 0, "no held buffers to migrate");
    assert_eq!(synrcvd, 1);
    assert_eq!(shard_stats.synrcvd_overflow_drops, 1);

    // Migrate everything, twice (there and back), checking the sums
    // after each hop.
    for _ in 0..2 {
        cl.migrate();
        assert_eq!(cl.summed_stats(), shard_stats, "summed counters drifted");
        let after: usize = cl.s.iter().map(|s| s.synrcvd_len()).sum();
        assert_eq!(after, synrcvd, "SynRcvd gauge drifted");
        let f: usize = cl.s.iter().map(|s| s.flow_count()).sum();
        assert_eq!(f, flows, "flow count drifted");
    }
    // And the source shard is really empty.
    assert_eq!(cl.s[1 - cl.owner].flow_count(), 0);
    assert_eq!(cl.s[1 - cl.owner].synrcvd_len(), 0);
    assert_eq!(cl.s[1 - cl.owner].stats.rx_pool_outstanding, 0);
}

// ---------------------------------------------------------------------
// Golden migration trace: a scripted blackout forces an RTO across a
// migration; the exact recovery sequence — who fires, when, and how the
// stream completes — is pinned.
// ---------------------------------------------------------------------

#[test]
fn golden_rto_sequence_across_migration() {
    let mut cl = Cluster::new(low_lat_cfg(), low_lat_cfg());
    let (_cf, sf) = cl.establish();
    let mut trace: Vec<String> = Vec::new();
    let t0 = cl.now;

    // Server queues two segments; the wire eats both.
    cl.cut_s2c.set(true);
    let n = cl.s[0].send(cl.now, sf, &[0x5Au8; 2920]).unwrap();
    trace.push(format!("+{}us send {} rtq={}", (cl.now - t0) / 1_000, n, cl.s[0].rtq_payloads(sf).len()));
    cl.pump_round(100_000);
    cl.pump_round(100_000);
    cl.cut_s2c.set(false);

    // Migrate mid-recovery: the retransmit queue and the armed RTO move.
    cl.migrate();
    trace.push(format!(
        "+{}us migrate rtq={} timer={}",
        (cl.now - t0) / 1_000,
        cl.s[1].rtq_payloads(sf).len(),
        cl.s[1].next_timer_ns().is_some(),
    ));

    // Observe recovery round by round.
    let (mut rto1, mut retx1) = (0u64, 0u64);
    let mut got = 0usize;
    for _ in 0..200 {
        cl.pump_round(100_000);
        let s = &cl.s[1].stats;
        if s.rto_fires > rto1 {
            rto1 = s.rto_fires;
            trace.push(format!("+{}us rto_fire#{} on dst", (cl.now - t0) / 1_000, rto1));
        }
        if s.retransmits > retx1 {
            retx1 = s.retransmits;
            trace.push(format!("+{}us retransmit#{} on dst", (cl.now - t0) / 1_000, retx1));
        }
        for e in cl.c.take_events() {
            if let TcpEvent::Recv { payload, .. } = e {
                got += payload.len();
            }
        }
        if got == 2920 {
            trace.push(format!("+{}us client complete {}", (cl.now - t0) / 1_000, got));
            break;
        }
    }
    // The source shard saw none of the recovery.
    assert_eq!(cl.s[0].stats.rto_fires, 0);
    assert_eq!(cl.s[0].stats.retransmits, 0);

    // Pinned: the RTO re-arms at its full interval from the absorb
    // instant (+200 µs), so the first fire lands one wheel tick past
    // +200 µs + rto_ns; NewReno's cwnd collapse means the two segments
    // recover through two RTO cycles, and the stream completes right
    // after the second retransmission round-trips.
    let expected = vec![
        "+0us send 2920 rtq=2".to_string(),
        "+200us migrate rtq=2 timer=true".to_string(),
        "+1000us rto_fire#1 on dst".to_string(),
        "+1000us retransmit#1 on dst".to_string(),
        "+3100us rto_fire#2 on dst".to_string(),
        "+3100us retransmit#2 on dst".to_string(),
        "+3200us client complete 2920".to_string(),
    ];
    assert_eq!(trace, expected);
}

// ---------------------------------------------------------------------
// Differential property: migrate mid-transfer vs never migrate, over a
// hostile wire, with concurrent streams in both directions. Both runs
// must deliver identical byte streams with zero resets and zero leaked
// pool mbufs.
// ---------------------------------------------------------------------

struct TransferOutcome {
    c2s: Vec<u8>,
    s2c: Vec<u8>,
    resets: u64,
    abnormal_deaths: usize,
    leaked_mbufs: u64,
    migrations: usize,
}

fn run_transfer(
    c2s_data: &[u8],
    s2c_data: &[u8],
    seed: u64,
    drop_pct: u64,
    migrate_every: Option<usize>,
) -> TransferOutcome {
    let mut cl = Cluster::new(low_lat_cfg(), low_lat_cfg());
    let (cf, sf) = cl.establish();
    let mut wire = Wire { seed, drop_pct, dup_pct: 8, delay_pct: 12, counter: 0 };
    let mut holding: Vec<(bool, Mbuf)> = Vec::new();

    let mut c_sent = 0usize;
    let mut s_sent = 0usize;
    let mut c2s = Vec::new();
    let mut s2c = Vec::new();
    let mut abnormal_deaths = 0usize;
    let mut migrations = 0usize;
    let mut c_closed = false;
    let mut c_dead = false;
    let mut s_dead = false;

    let mut rounds = 0usize;
    let max_rounds = 120_000;
    while rounds < max_rounds {
        rounds += 1;
        cl.now += 100_000;
        let now = cl.now;

        if let Some(k) = migrate_every {
            // Round 1 always migrates so even transfers short enough to
            // finish before the first period still move once.
            if (rounds == 1 || rounds.is_multiple_of(k)) && !s_dead {
                cl.migrate();
                migrations += 1;
            }
        }

        // Wire: route every frame through drop/dup/delay, then deliver
        // to the flow's *current* owner.
        let mut moving: Vec<(bool, Mbuf)> = std::mem::take(&mut holding);
        moving.extend(cl.c.take_tx().into_iter().map(|f| (true, f)));
        moving.extend(cl.s[0].take_tx().into_iter().map(|f| (false, f)));
        moving.extend(cl.s[1].take_tx().into_iter().map(|f| (false, f)));
        for (to_s, f) in moving {
            let (drop, dup, delay) = wire.decide();
            if drop {
                continue;
            }
            if delay {
                holding.push((to_s, f));
                continue;
            }
            if dup {
                let c = f.clone();
                if to_s {
                    cl.s[cl.owner].input(now, c);
                } else {
                    cl.c.input(now, c);
                }
            }
            if to_s {
                cl.s[cl.owner].input(now, f);
            } else {
                cl.c.input(now, f);
            }
        }

        // Applications: both sides consume immediately; the test body is
        // the data source on both sides, so migration never strands
        // app-level state.
        for e in cl.c.take_events() {
            match e {
                TcpEvent::Recv { payload, .. } => {
                    s2c.extend_from_slice(&payload[..]);
                    let n = payload.len() as u32;
                    drop(payload);
                    cl.c.recv_done(now, cf, n).unwrap();
                }
                TcpEvent::Dead { reason, .. } => {
                    if !matches!(reason, DeadReason::PeerFin | DeadReason::LocalClose) {
                        abnormal_deaths += 1;
                    }
                    c_dead = true;
                }
                _ => {}
            }
        }
        for si in 0..2 {
            for e in cl.s[si].take_events() {
                match e {
                    TcpEvent::Recv { payload, .. } => {
                        c2s.extend_from_slice(&payload[..]);
                        let n = payload.len() as u32;
                        drop(payload);
                        cl.s[si].recv_done(now, sf, n).unwrap();
                    }
                    TcpEvent::Dead { reason, .. } => {
                        if !matches!(reason, DeadReason::PeerFin | DeadReason::LocalClose) {
                            abnormal_deaths += 1;
                        }
                        // Half-close: the peer finished sending; close
                        // our side once our stream is fully pushed.
                        s_dead = true;
                    }
                    _ => {}
                }
            }
        }

        // Senders push as windows allow.
        if c_sent < c2s_data.len() {
            if let Ok(n) = cl.c.send(now, cf, &c2s_data[c_sent..]) {
                c_sent += n;
            }
        }
        if s_sent < s2c_data.len() && !s_dead {
            if let Ok(n) = cl.s[cl.owner].send(now, sf, &s2c_data[s_sent..]) {
                s_sent += n;
            }
        }

        // Graceful teardown once both streams are fully delivered. The
        // hostile wire covered the transfer and every migration; the
        // close handshake runs clean so stray duplicates of torn-down
        // flows (ordinary RFC 793 RSTs, migration or not) cannot muddy
        // the zero-resets assertion.
        if !c_closed && c2s.len() == c2s_data.len() && s2c.len() == s2c_data.len() {
            wire.drop_pct = 0;
            wire.dup_pct = 0;
            wire.delay_pct = 0;
            cl.c.close(now, cf).unwrap();
            c_closed = true;
        }
        if s_dead && cl.s[cl.owner].flow_count() > 0 {
            // Ignore BadState if the close raced a prior close.
            let _ = cl.s[cl.owner].close(now, sf);
            s_dead = false; // Only attempt once.
        }

        cl.c.end_cycle(now);
        cl.s[0].end_cycle(now);
        cl.s[1].end_cycle(now);
        cl.c.advance_timers(now);
        cl.s[0].advance_timers(now);
        cl.s[1].advance_timers(now);

        if c_closed
            && c_dead
            && holding.is_empty()
            && cl.c.tx_len() == 0
            && cl.s[0].tx_len() == 0
            && cl.s[1].tx_len() == 0
        {
            break;
        }
    }
    drop(holding);

    // Every mbuf any pool ever lent out must be home again: data and
    // ACK frames consumed by `input`, held RX buffers credited back,
    // retransmit storage reaped. (TIME_WAIT PCBs may still exist but
    // hold no buffers.)
    let leaked_mbufs = cl.c.pool_stats().outstanding
        + cl.s[0].pool_stats().outstanding
        + cl.s[1].pool_stats().outstanding;
    let resets = cl.c.stats.rst_tx
        + cl.c.stats.rst_rx
        + cl.summed_stats().rst_tx
        + cl.summed_stats().rst_rx;
    TransferOutcome { c2s, s2c, resets, abnormal_deaths, leaked_mbufs, migrations }
}

fn pattern(len: usize, salt: u32) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u32).wrapping_mul(2654435761).wrapping_add(salt).to_le_bytes()[1])
        .collect()
}

props! {
    #![config(cases = 12)]

    /// Migrating mid-transfer is invisible: same delivered bytes as the
    /// never-migrate run, no resets, no abnormal deaths, no leaked pool
    /// mbufs — under loss, duplication, and reordering.
    #[test]
    fn migrate_mid_transfer_is_equivalent_to_never_migrating(
        len in 1usize..9_000,
        seed in any::<u64>(),
        drop_pct in 0u64..22,
        every in 3usize..48,
    ) {
        let c2s = pattern(len, 0xAA);
        let s2c = pattern(len / 2 + 64, 0x55);
        let never = run_transfer(&c2s, &s2c, seed, drop_pct, None);
        let moved = run_transfer(&c2s, &s2c, seed, drop_pct, Some(every));
        prop_assert!(moved.migrations > 0);
        // Zero payload divergence, in both directions, for both runs.
        prop_assert_eq!(&never.c2s, &c2s);
        prop_assert_eq!(&never.s2c, &s2c);
        prop_assert_eq!(&moved.c2s, &c2s);
        prop_assert_eq!(&moved.s2c, &s2c);
        // Zero resets.
        prop_assert_eq!(never.resets, 0);
        prop_assert_eq!(moved.resets, 0);
        prop_assert_eq!(never.abnormal_deaths, 0);
        prop_assert_eq!(moved.abnormal_deaths, 0);
        // Zero leaked pool mbufs.
        prop_assert_eq!(never.leaked_mbufs, 0);
        prop_assert_eq!(moved.leaked_mbufs, 0);
    }
}
