//! Differential property tests: `FlowTable`/`FlowMap` must agree with
//! `std::collections::HashMap` on every observable — lookups, displaced
//! values, removal results, lengths, and the full iterated contents —
//! under randomized insert/remove/lookup workloads, including batches
//! of keys engineered to collide in the open-addressing home bucket
//! (the regime where linear probing and backshift deletion actually do
//! work).

use std::collections::HashMap;

use ix_tcp::{FlowMap, FlowTable};
use ix_testkit::prelude::*;

/// The table's hash finisher, replicated so the test can *search* for
/// colliding keys. Keep in sync with `flow_table::mix` — if they drift
/// the collision batches merely lose their bite (keys stop colliding);
/// correctness checking is unaffected.
fn mix(key: u64) -> u64 {
    let mut x = key;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Keys whose hashes share a home bucket in any table of up to
/// `2^bucket_bits` slots (their mixed low bits all equal `target`).
fn collider_pool(target: u64, bucket_bits: u32, n: usize) -> Vec<u64> {
    let mask = (1u64 << bucket_bits) - 1;
    (0..).filter(|&k| mix(k) & mask == target).take(n).collect()
}

/// One scripted operation against both maps.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// Insert `key → val`, comparing the displaced value.
    Insert(u64, u32),
    /// Remove `key`, comparing the returned value.
    Remove(u64),
    /// Look up `key`, comparing presence and value.
    Get(u64),
}

/// Draws an op over a constrained key space: small random keys (so
/// removes and re-inserts actually hit), plus a pool of 32 keys that
/// all collide in any table up to 1024 slots, plus key 0 (the
/// would-be-sentinel edge) and u64::MAX.
fn key() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => (0u64..200).prop_map(|k| k * 3),
        3 => (0usize..32).prop_map(|i| {
            // Deterministic pool; recomputed per draw (cheap at n=32).
            collider_pool(7, 10, 32)[i]
        }),
        1 => (0u64..2).prop_map(|i| if i == 0 { 0 } else { u64::MAX }),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (key(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v & 0xffff)),
        3 => key().prop_map(Op::Remove),
        2 => key().prop_map(Op::Get),
    ]
}

props! {
    #![config(cases = 64)]

    /// `FlowTable` (u64 → u32) is observationally a `HashMap`.
    #[test]
    fn flow_table_matches_hashmap(ops in collection::vec(op(), 0..400)) {
        let mut table = FlowTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(table.insert(k, v), model.insert(k, v), "insert({k}, {v})");
                }
                Op::Remove(k) => {
                    prop_assert_eq!(table.remove(k), model.remove(&k), "remove({k})");
                }
                Op::Get(k) => {
                    prop_assert_eq!(table.get(k), model.get(&k).copied(), "get({k})");
                    prop_assert_eq!(table.contains_key(k), model.contains_key(&k));
                }
            }
            prop_assert_eq!(table.len(), model.len());
            prop_assert_eq!(table.is_empty(), model.is_empty());
        }
        // Full-contents equivalence, order-insensitively (neither map
        // promises an order; the table's contract is sort-if-you-care).
        let mut got: Vec<(u64, u32)> = table.iter().collect();
        let mut want: Vec<(u64, u32)> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// `FlowMap<T>` (the slab-backed value map the TCP shard uses) is
    /// observationally a `HashMap` too — same workloads, value payloads
    /// checked through get/get_mut/remove/iter.
    #[test]
    fn flow_map_matches_hashmap(ops in collection::vec(op(), 0..400)) {
        let mut map: FlowMap<(u32, u32)> = FlowMap::new();
        let mut model: HashMap<u64, (u32, u32)> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let val = (v, v ^ 0xdead);
                    prop_assert_eq!(map.insert(k, val), model.insert(k, val), "insert({k})");
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(k), model.remove(&k), "remove({k})");
                }
                Op::Get(k) => {
                    prop_assert_eq!(map.get(k), model.get(&k), "get({k})");
                    // Mutation through one map must be mirrored in the
                    // other, or later comparisons diverge.
                    if let (Some(a), Some(b)) = (map.get_mut(k), model.get_mut(&k)) {
                        a.0 = a.0.wrapping_add(1);
                        b.0 = b.0.wrapping_add(1);
                    }
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
        let mut got: Vec<(u64, (u32, u32))> = map.iter().map(|(k, v)| (k, *v)).collect();
        let mut want: Vec<(u64, (u32, u32))> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Pure collision torture: every key lands in the same home bucket,
    /// so the whole table is one probe chain. Insert all, remove a
    /// random subset, verify every survivor, then drain.
    #[test]
    fn collision_chain_survives_interleaved_removal(
        keep_mask in any::<u64>(),
        extra in 0usize..40,
    ) {
        let keys = collider_pool(3, 10, 64 + extra);
        let mut table = FlowTable::new();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(table.insert(k, i as u32), None);
        }
        for (i, &k) in keys.iter().enumerate() {
            if keep_mask & (1 << (i % 64)) == 0 {
                prop_assert_eq!(table.remove(k), Some(i as u32), "remove #{i}");
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            let want = if keep_mask & (1 << (i % 64)) == 0 { None } else { Some(i as u32) };
            prop_assert_eq!(table.get(k), want, "survivor #{i}");
        }
        for (i, &k) in keys.iter().enumerate() {
            if keep_mask & (1 << (i % 64)) != 0 {
                prop_assert_eq!(table.remove(k), Some(i as u32), "drain #{i}");
            }
        }
        prop_assert_eq!(table.len(), 0);
    }
}
