//! Property-based tests (on the in-tree `ix-testkit` harness): the TCP
//! invariant that matters — the byte
//! stream delivered to the receiver equals the byte stream the sender
//! submitted, in order, regardless of what the wire does (loss,
//! duplication, reordering), as long as connectivity is eventually
//! restored.

use ix_testkit::prelude::*;

use ix_mempool::Mbuf;
use ix_net::eth::MacAddr;
use ix_net::ip::Ipv4Addr;
use ix_tcp::{StackConfig, TcpEvent, TcpShard};

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Deterministic per-frame perturbation decisions from a seed.
struct Wire {
    seed: u64,
    drop_pct: u64,
    dup_pct: u64,
    delay_pct: u64,
    counter: u64,
    /// Frames delayed by one pump round.
    holding: Vec<(bool, Mbuf)>,
}

impl Wire {
    fn decide(&mut self) -> (bool, bool, bool) {
        // SplitMix64 over the frame counter.
        self.counter += 1;
        let mut z = self.seed.wrapping_add(self.counter.wrapping_mul(0x9e3779b97f4a7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let roll = z % 100;
        let drop = roll < self.drop_pct;
        let dup = !drop && roll < self.drop_pct + self.dup_pct;
        let delay = !drop && !dup && roll < self.drop_pct + self.dup_pct + self.delay_pct;
        (drop, dup, delay)
    }
}

/// Runs a full transfer of `data` from a to b over a hostile wire;
/// returns (received bytes, rounds used).
fn hostile_transfer(data: &[u8], seed: u64, drop_pct: u64) -> (Vec<u8>, usize) {
    let mut cfg = StackConfig::low_latency();
    cfg.syn_rto_ns = 1_000_000;
    let mut a = TcpShard::new(cfg.clone(), A_IP, MacAddr::from_host_index(1));
    let mut b = TcpShard::new(cfg, B_IP, MacAddr::from_host_index(2));
    a.arp_seed(B_IP, MacAddr::from_host_index(2));
    b.arp_seed(A_IP, MacAddr::from_host_index(1));
    b.listen(80);

    let mut wire = Wire {
        seed,
        drop_pct,
        dup_pct: 10,
        delay_pct: 15,
        counter: 0,
        holding: Vec::new(),
    };

    let mut now = 0u64;
    let cflow = a.connect(now, B_IP, 80, 1).expect("connect");
    let mut sflow = None;
    let mut sent = 0usize;
    let mut received: Vec<u8> = Vec::new();
    let mut rounds = 0usize;
    // Generous budget: the RTO floor is 1 ms and rounds are 100 µs.
    let max_rounds = 120_000;
    while rounds < max_rounds {
        rounds += 1;
        now += 100_000;
        // Release last round's delayed frames first (reordering).
        let mut moving: Vec<(bool, Mbuf)> = std::mem::take(&mut wire.holding);
        moving.extend(a.take_tx().into_iter().map(|f| (true, f)));
        moving.extend(b.take_tx().into_iter().map(|f| (false, f)));
        for (to_b, f) in moving {
            let (drop, dup, delay) = wire.decide();
            if drop {
                continue;
            }
            if delay {
                wire.holding.push((to_b, f));
                continue;
            }
            if dup {
                let c = f.clone();
                if to_b {
                    b.input(now, c);
                } else {
                    a.input(now, c);
                }
            }
            if to_b {
                b.input(now, f);
            } else {
                a.input(now, f);
            }
        }
        // Application behaviour.
        for e in a.take_events() {
            if let TcpEvent::Connected { ok, .. } = e {
                assert!(ok, "handshake must eventually succeed");
            }
        }
        for e in b.take_events() {
            match e {
                TcpEvent::Knock { flow, .. } => {
                    b.accept(flow, 2).unwrap();
                    sflow = Some(flow);
                }
                TcpEvent::Recv { payload, flow, .. } => {
                    received.extend_from_slice(&payload[..]);
                    let n = payload.len() as u32;
                    drop(payload);
                    b.recv_done(now, flow, n).unwrap();
                }
                _ => {}
            }
        }
        // Sender pushes as the window allows (only once established).
        if sent < data.len() && a.flow_count() == 1 {
            if let Ok(n) = a.send(now, cflow, &data[sent..]) {
                sent += n;
            }
        }
        a.end_cycle(now);
        b.end_cycle(now);
        a.advance_timers(now);
        b.advance_timers(now);
        if received.len() == data.len() && sent == data.len() {
            break;
        }
    }
    let _ = sflow;
    (received, rounds)
}

/// Regression pinned from the retired `prop.proptest-regressions` file:
/// proptest once shrank a stream-integrity failure to exactly this
/// input (`cc 590d4e61…`), so it stays as an explicit case forever.
#[test]
fn regression_hostile_wire_len4381_drop28() {
    let len = 4381usize;
    let seed = 16042995867252657237u64;
    let drop_pct = 28u64;
    let data: Vec<u8> = (0..len)
        .map(|i| (i as u32).wrapping_mul(2654435761).to_le_bytes()[1])
        .collect();
    let (received, _rounds) = hostile_transfer(&data, seed, drop_pct);
    assert_eq!(received, data);
}

props! {
    #![config(cases = 24)]

    /// Stream integrity under loss+dup+reorder: what B reads is exactly
    /// what A wrote.
    #[test]
    fn stream_integrity_hostile_wire(
        len in 0usize..20_000,
        seed in any::<u64>(),
        drop_pct in 0u64..30,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i as u32).wrapping_mul(2654435761).to_le_bytes()[1]).collect();
        let (received, _rounds) = hostile_transfer(&data, seed, drop_pct);
        prop_assert_eq!(received, data);
    }

    /// On a clean wire the transfer completes quickly (sanity against the
    /// harness itself hiding protocol stalls behind retransmissions).
    #[test]
    fn clean_wire_is_fast(len in 1usize..10_000, seed in any::<u64>()) {
        let data = vec![0xA5u8; len];
        let (received, rounds) = hostile_transfer(&data, seed, 0);
        prop_assert_eq!(received.len(), data.len());
        // Handshake + windowed transfer should take far fewer rounds than
        // the retransmission-driven worst case.
        prop_assert!(rounds < 2_000, "took {} rounds", rounds);
    }
}

props! {
    #![config(cases = 64)]

    /// Sequence-number helpers obey serial arithmetic laws.
    #[test]
    fn seq_arith_laws(a in any::<u32>(), d in 1u32..0x7fff_ffff) {
        use ix_net::tcp::{seq_le, seq_lt, seq_in_range};
        let b = a.wrapping_add(d);
        prop_assert!(seq_lt(a, b));
        prop_assert!(!seq_lt(b, a));
        prop_assert!(seq_le(a, a));
        prop_assert!(seq_in_range(a, a, b));
        prop_assert!(!seq_in_range(b, a, b));
    }
}
