//! Zero-copy RX regression tests: the receive-side mirror of
//! `zerocopy.rs`, pinning the paper's Table 1 `recv`/`recv_done`
//! contract — "message buffers are passed to the application read-only,
//! and returned with `recv_done`, which also replenishes the receive
//! window."
//!
//! The invariants pinned here:
//! - an in-order payload is delivered as a `Bytes` view of the very
//!   buffer the frame arrived in — `rx_payload_copies` stays **zero**
//!   and `Bytes::ptr_eq` proves storage identity end to end, including
//!   through a pool-backed `RxRing` (the DMA copy is the only copy);
//! - a reordered segment is buffered *as the mbuf itself* and later
//!   drained by moving that same mbuf into the held queue —
//!   `rx_ooo_copies` stays **zero** and the drained view still aliases
//!   the original frame storage;
//! - `rx_pool_outstanding` counts exactly the buffers the stack retains
//!   for the app, and `recv_done` credit releases them front-to-back:
//!   partial credit holds the buffer, full credit frees it.

use ix_net::eth::MacAddr;
use ix_net::ip::Ipv4Addr;
use ix_nic::ring::RxRing;
use ix_tcp::{FlowId, StackConfig, TcpEvent, TcpShard};
use ix_testkit::prelude::*;
use ix_testkit::Bytes;

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

/// Minimal two-shard wire (the `zerocopy.rs` Pair).
struct Pair {
    a: TcpShard,
    b: TcpShard,
    now: u64,
}

impl Pair {
    fn new(cfg: StackConfig) -> Pair {
        let mut a = TcpShard::new(cfg.clone(), A_IP, mac(1));
        let mut b = TcpShard::new(cfg, B_IP, mac(2));
        a.arp_seed(B_IP, mac(2));
        b.arp_seed(A_IP, mac(1));
        Pair { a, b, now: 0 }
    }

    fn pump(&mut self, step_ns: u64, max_rounds: usize) {
        for _ in 0..max_rounds {
            self.now += step_ns;
            let from_a = self.a.take_tx();
            let from_b = self.b.take_tx();
            let idle = from_a.is_empty() && from_b.is_empty();
            for f in from_a {
                self.b.input(self.now, f);
            }
            for f in from_b {
                self.a.input(self.now, f);
            }
            self.a.end_cycle(self.now);
            self.b.end_cycle(self.now);
            self.a.advance_timers(self.now);
            self.b.advance_timers(self.now);
            if idle && self.a.tx_len() == 0 && self.b.tx_len() == 0 {
                break;
            }
        }
    }
}

fn establish(p: &mut Pair, port: u16) -> (FlowId, FlowId) {
    p.b.listen(port);
    let cf = p.a.connect(p.now, B_IP, port, 0xA).expect("connect");
    p.pump(1_000, 32);
    for e in p.a.take_events() {
        if let TcpEvent::Connected { ok, .. } = e {
            assert!(ok, "handshake failed");
        }
    }
    let mut server_flow = None;
    for e in p.b.take_events() {
        if let TcpEvent::Knock { flow, .. } = e {
            p.b.accept(flow, 0xB).unwrap();
            server_flow = Some(flow);
        }
    }
    (cf, server_flow.expect("knock event"))
}

/// Pulls the `Recv` payloads out of an event batch, in order.
fn recv_payloads(events: Vec<TcpEvent>) -> Vec<Bytes> {
    events
        .into_iter()
        .filter_map(|e| match e {
            TcpEvent::Recv { payload, .. } => Some(payload),
            _ => None,
        })
        .collect()
}

/// The headline regression: an in-order burst is delivered with zero
/// payload copies, each event view aliasing the storage of the frame
/// that carried it, and the stack retaining exactly one pool buffer per
/// segment until `recv_done` credits it back.
#[test]
fn in_order_recv_is_zero_copy_and_aliases_the_frame() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);
    let stats0 = p.b.stats;

    // 3 full MSS segments plus a runt — four wire segments.
    let mss = 1460usize;
    let data: Vec<u8> = (0..3 * mss + 77).map(|i| (i % 251) as u8).collect();
    let n = p.a.send(p.now, c, &data).unwrap();
    assert_eq!(n, data.len());

    // Deliver by hand so each frame's storage can be captured first.
    p.now += 1_000;
    let mut frame_views = Vec::new();
    for f in p.a.take_tx() {
        frame_views.push(f.as_bytes());
        p.b.input(p.now, f);
    }
    p.b.end_cycle(p.now);
    assert_eq!(frame_views.len(), 4, "four data segments on the wire");

    let payloads = recv_payloads(p.b.take_events());
    assert_eq!(payloads.len(), 4, "one Recv per segment");
    let mut reassembled = Vec::new();
    for (view, frame) in payloads.iter().zip(&frame_views) {
        assert!(
            view.ptr_eq(frame),
            "delivered view must alias the arriving frame's storage"
        );
        reassembled.extend_from_slice(view);
    }
    assert_eq!(reassembled, data, "payload bytes intact");

    let d = p.b.stats;
    assert_eq!(
        d.rx_payload_copies - stats0.rx_payload_copies,
        0,
        "in-order delivery must not copy payload"
    );
    assert_eq!(d.rx_ooo_copies - stats0.rx_ooo_copies, 0);
    assert_eq!(
        d.rx_pool_outstanding, 4,
        "stack retains one buffer per undelivered-credit segment"
    );

    // The held queue is the same storage the app sees, and while held,
    // each block has exactly three aliases: our captured frame view, the
    // app's event payload, and the stack's retained mbuf.
    let held = p.b.rx_held_payloads(s);
    assert_eq!(held.len(), 4);
    for (h, v) in held.iter().zip(&payloads) {
        assert!(h.ptr_eq(v), "held mbuf and app view share storage");
    }
    drop(held);
    for f in &frame_views {
        assert_eq!(f.ref_count(), 3, "frame view + app view + stack hold");
    }

    // Full credit releases every buffer.
    p.b.recv_done(p.now, s, data.len() as u32).unwrap();
    assert_eq!(p.b.stats.rx_pool_outstanding, 0);
    assert!(p.b.rx_held_payloads(s).is_empty());

    // Once the app drops its views, the stack's hold is gone: the only
    // references left are our captured handle and the pool's
    // deferred-recycle slot (aliased storage parks there until the next
    // allocation sweep — it cannot re-enter circulation while a view is
    // live).
    drop(payloads);
    for f in &frame_views {
        assert_eq!(f.ref_count(), 2, "recv_done released the stack's hold");
    }
}

/// Identity through the NIC: a frame DMA'd into a pool-backed `RxRing`
/// is copied exactly once (into the ring's receive buffer); the app's
/// `Recv` view aliases *that* buffer — the wire-side storage is gone and
/// no second copy happens anywhere in the stack.
#[test]
fn ring_buffer_is_the_buffer_the_app_sees() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);

    let data = vec![0xABu8; 700];
    p.a.send(p.now, c, &data).unwrap();

    let mut ring = RxRing::with_pool(8, 16);
    ring.replenish(8);
    p.now += 1_000;
    let mut ring_views = Vec::new();
    for f in p.a.take_tx() {
        assert!(ring.push(f), "descriptor posted, buffer free");
        let m = ring.poll().expect("pushed frame polls back");
        ring_views.push(m.as_bytes());
        p.b.input(p.now, m);
    }
    p.b.end_cycle(p.now);
    assert_eq!(ring_views.len(), 1);

    let payloads = recv_payloads(p.b.take_events());
    assert_eq!(payloads.len(), 1);
    assert!(
        payloads[0].ptr_eq(&ring_views[0]),
        "app view must alias the ring's DMA buffer"
    );
    assert_eq!(&payloads[0][..], &data[..]);
    assert_eq!(p.b.stats.rx_payload_copies, 0);

    // The ring buffer returns to its pool only after recv_done and the
    // app dropping its view.
    assert_eq!(ring.pool_stats().outstanding, 1);
    p.b.recv_done(p.now, s, data.len() as u32).unwrap();
    drop(payloads);
    drop(ring_views);
    // Deferred recycle completes on the pool's next alloc cycle.
    let m = ring.pool_stats();
    assert_eq!(m.allocs, 1);
}

/// A reordered segment is buffered as the arriving mbuf itself and
/// drained by *moving* it — `rx_ooo_copies` pinned at zero, the drained
/// view still aliasing the original frame storage.
#[test]
fn reordered_segment_is_buffered_not_copied() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);

    let d1 = vec![0x11u8; 400];
    let d2 = vec![0x22u8; 300];
    p.a.send(p.now, c, &d1).unwrap();
    let f1: Vec<_> = p.a.take_tx().into_iter().collect();
    p.a.send(p.now, c, &d2).unwrap();
    let f2: Vec<_> = p.a.take_tx().into_iter().collect();
    assert_eq!((f1.len(), f2.len()), (1, 1));

    // Deliver the second segment first: out of order, buffered whole.
    p.now += 1_000;
    let f2_view = f2[0].as_bytes();
    for f in f2 {
        p.b.input(p.now, f);
    }
    p.b.end_cycle(p.now);
    assert!(recv_payloads(p.b.take_events()).is_empty(), "no in-order data yet");
    assert_eq!(p.b.stats.rx_pool_outstanding, 1, "ooo mbuf retained");
    assert_eq!(p.b.stats.rx_ooo_copies, 0);

    // Now the gap-filler: both deliver, in order, and the drained d2
    // view is the very storage that arrived out of order.
    for f in f1 {
        p.b.input(p.now, f);
    }
    p.b.end_cycle(p.now);
    let payloads = recv_payloads(p.b.take_events());
    assert_eq!(payloads.len(), 2);
    assert_eq!(&payloads[0][..], &d1[..]);
    assert_eq!(&payloads[1][..], &d2[..]);
    assert!(
        payloads[1].ptr_eq(&f2_view),
        "drain must move the buffered mbuf, not copy it"
    );
    assert_eq!(p.b.stats.rx_ooo_copies, 0, "no copy on drain");
    assert_eq!(p.b.stats.rx_payload_copies, 0);
    assert_eq!(p.b.stats.rx_pool_outstanding, 2);

    p.b.recv_done(p.now, s, (d1.len() + d2.len()) as u32).unwrap();
    assert_eq!(p.b.stats.rx_pool_outstanding, 0);
}

/// `recv_done` credit releases buffers front-to-back at mbuf
/// granularity: credit smaller than the front buffer keeps it held;
/// completing the buffer releases exactly it.
#[test]
fn partial_credit_holds_the_front_buffer() {
    let mut p = Pair::new(StackConfig::default());
    let (c, s) = establish(&mut p, 80);

    let d1 = vec![0x33u8; 500];
    let d2 = vec![0x44u8; 200];
    p.a.send(p.now, c, &d1).unwrap();
    p.pump(1_000, 4);
    p.a.send(p.now, c, &d2).unwrap();
    p.pump(1_000, 4);
    assert_eq!(p.b.stats.rx_pool_outstanding, 2);

    // 100 bytes of credit: front buffer (500 B) still incomplete.
    p.b.recv_done(p.now, s, 100).unwrap();
    assert_eq!(p.b.stats.rx_pool_outstanding, 2, "partial credit holds");
    assert_eq!(p.b.rx_held_payloads(s).len(), 2);

    // 400 more completes the front buffer only.
    p.b.recv_done(p.now, s, 400).unwrap();
    assert_eq!(p.b.stats.rx_pool_outstanding, 1);
    assert_eq!(p.b.rx_held_payloads(s).len(), 1);

    // The rest releases the second.
    p.b.recv_done(p.now, s, 200).unwrap();
    assert_eq!(p.b.stats.rx_pool_outstanding, 0);
    assert!(p.b.rx_held_payloads(s).is_empty());

    let _ = recv_payloads(p.b.take_events());
}

/// Closing a flow with buffers still held releases the gauge — no
/// retained-buffer leak across connection teardown.
#[test]
fn teardown_releases_held_buffers() {
    let mut p = Pair::new(StackConfig::default());
    let (c, _s) = establish(&mut p, 80);

    p.a.send(p.now, c, &vec![0x55u8; 900]).unwrap();
    p.pump(1_000, 8);
    assert_eq!(p.b.stats.rx_pool_outstanding, 1, "buffer held, no credit yet");

    // Abort from the client; the server flow dies with data still held.
    p.a.abort(p.now, c).unwrap();
    p.pump(1_000, 16);
    assert_eq!(
        p.b.stats.rx_pool_outstanding, 0,
        "destroy must release retained receive buffers"
    );
}

props! {
    #![config(cases = 16)]

    /// Copy counters stay pinned and the gauge returns to zero for
    /// arbitrary burst sizes and arbitrary `recv_done` credit chunking.
    #[test]
    fn copies_zero_gauge_balanced(
        len in 1usize..12_000,
        chunk in 1u32..4_000,
    ) {
        let mut p = Pair::new(StackConfig::default());
        let (c, s) = establish(&mut p, 80);

        let data: Vec<u8> =
            (0..len).map(|i| (i as u32).wrapping_mul(2654435761).to_le_bytes()[2]).collect();
        let sent = p.a.send(p.now, c, &data).unwrap();
        p.pump(1_000, 64);

        let payloads = recv_payloads(p.b.take_events());
        let got: usize = payloads.iter().map(|b| b.len()).sum();
        prop_assert_eq!(got, sent, "burst fully delivered");
        prop_assert_eq!(p.b.stats.rx_payload_copies, 0);
        prop_assert_eq!(p.b.stats.rx_ooo_copies, 0);

        // Credit back in arbitrary chunks; the gauge must drain to zero.
        let mut left = sent as u32;
        while left > 0 {
            let c_now = chunk.min(left);
            p.b.recv_done(p.now, s, c_now).unwrap();
            left -= c_now;
        }
        prop_assert_eq!(p.b.stats.rx_pool_outstanding, 0);
        prop_assert!(p.b.rx_held_payloads(s).is_empty());
    }
}
