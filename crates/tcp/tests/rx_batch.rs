//! Differential property suite for the batched RX pipeline (DESIGN.md
//! §5j). Every plan drives the *same* wire frames into three shards:
//!
//! - **batched** — `batch_rx: true`, fed through `input_batch` (the
//!   staged pre-parse → flow-group → run-process pipeline under test),
//! - **oracle** — fed one frame at a time through the per-packet
//!   `input()` path, the reference semantics,
//! - **off** — `batch_rx: false`, fed through `input_batch`, which must
//!   degrade to a plain drain through `input()`.
//!
//! The observables cross-checked after every cycle:
//!
//! - per-flow application byte streams and event sequences (grouping
//!   may reorder *across* flows, never within one),
//! - per-flow wire frames, byte-identical — except pure ACKs under
//!   `AckPolicy::Immediate`, where the batch pipeline's documented
//!   per-flow coalescing may emit fewer (never more, never a different
//!   final ack/window),
//! - drop counters: corrupted frames land on `checksum_drops` /
//!   `parse_drops` identically on both paths,
//! - the **off** shard's output is globally byte-identical to the
//!   oracle's, frames and events both, every cycle.
//!
//! Plans interleave in-order runs, out-of-order arrivals, duplicates,
//! corrupted frames, and mid-batch FIN/RST teardown across four client
//! flows.

use ix_mempool::Mbuf;
use ix_net::eth::{EthHeader, EtherType, MacAddr};
use ix_net::ip::{IpProto, Ipv4Addr, Ipv4Header};
use ix_net::tcp::{TcpFlags, TcpHeader};
use ix_tcp::{AckPolicy, FlowId, StackConfig, StackStats, TcpEvent, TcpShard};
use ix_testkit::prelude::*;

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const SRV_PORT: u16 = 80;
const N_FLOWS: usize = 4;

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

fn cli_port(flow: usize) -> u16 {
    40_000 + flow as u16
}

/// The byte carried at stream offset `p` of flow `flow` — fixed, so
/// retransmitted and overlapping segments are self-consistent.
fn byte_at(flow: usize, p: usize) -> u8 {
    (((p as u32).wrapping_mul(2_654_435_761) ^ (flow as u32).wrapping_mul(0x9e37_79b9)) >> 24) as u8
}

/// One frame of a batch plan. Offsets are relative to the flow's
/// in-order cursor at build time, so "ahead"/"behind" track the stream.
#[derive(Debug, Clone)]
enum FrameOp {
    /// The next in-order chunk (advances the cursor).
    Next { flow: usize, len: usize },
    /// A reordered segment starting `gap` bytes past the cursor.
    Ahead { flow: usize, gap: usize, len: usize },
    /// A stale/overlapping segment starting `back` bytes before it.
    Behind { flow: usize, back: usize, len: usize },
    /// An otherwise-valid in-order segment with a corrupted TCP
    /// checksum: dropped by verification, cursor not advanced.
    BadSum { flow: usize, len: usize },
    /// A frame addressed to someone else's IP: parse drop.
    BadDst { flow: usize },
    /// A frame truncated mid-header: parse drop.
    Runt { flow: usize },
    /// Client FIN at the cursor (mid-batch teardown begins).
    Fin { flow: usize },
    /// Client RST at the cursor (abortive mid-batch teardown).
    Rst { flow: usize },
}

impl FrameOp {
    fn flow(&self) -> usize {
        match *self {
            FrameOp::Next { flow, .. }
            | FrameOp::Ahead { flow, .. }
            | FrameOp::Behind { flow, .. }
            | FrameOp::BadSum { flow, .. }
            | FrameOp::BadDst { flow }
            | FrameOp::Runt { flow }
            | FrameOp::Fin { flow }
            | FrameOp::Rst { flow } => flow,
        }
    }
}

/// Crafts one client→server frame with valid checksums (the `dst`
/// override builds the misaddressed variant with an internally
/// consistent IP header, so it exercises the dst check, not the
/// checksum check).
fn wire(flow: usize, seq: u32, ack: u32, flags: TcpFlags, payload: &[u8], dst: Ipv4Addr) -> Vec<u8> {
    let hdr = TcpHeader {
        src_port: cli_port(flow),
        dst_port: SRV_PORT,
        seq,
        ack,
        flags,
        window: 65_535,
        mss: if flags.syn { Some(1460) } else { None },
        wscale: None,
    };
    let hlen = hdr.len();
    let mut f = vec![0u8; EthHeader::LEN + Ipv4Header::LEN + hlen + payload.len()];
    EthHeader { dst: mac(2), src: mac(1), ethertype: EtherType::Ipv4 }.encode(&mut f[..EthHeader::LEN]);
    Ipv4Header {
        tos: 0,
        total_len: (Ipv4Header::LEN + hlen + payload.len()) as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Tcp,
        src: A_IP,
        dst,
    }
    .encode(&mut f[EthHeader::LEN..EthHeader::LEN + Ipv4Header::LEN]);
    hdr.encode(&mut f[EthHeader::LEN + Ipv4Header::LEN..], A_IP, dst, payload);
    f[EthHeader::LEN + Ipv4Header::LEN + hlen..].copy_from_slice(payload);
    f
}

/// Emitting fewer ACKs shifts the shard's per-packet IPv4 `ident`
/// counter, so every frame *after* a coalesced ACK differs from the
/// oracle's in exactly ident + the IP header checksum it perturbs. For
/// modulo-coalescing comparisons, blank both.
fn ident_blind(raw: &[u8]) -> Vec<u8> {
    let mut v = raw.to_vec();
    v[EthHeader::LEN + 4..EthHeader::LEN + 6].fill(0);
    v[EthHeader::LEN + 10..EthHeader::LEN + 12].fill(0);
    v
}

fn mk_mbuf(w: &[u8]) -> Mbuf {
    let mut m = Mbuf::standalone();
    m.append(w.len()).copy_from_slice(w);
    m
}

/// A server TX frame, decoded and kept raw for byte-identity checks.
#[derive(Debug, Clone, PartialEq)]
struct TxFrame {
    raw: Vec<u8>,
    hdr: TcpHeader,
    plen: usize,
}

impl TxFrame {
    fn is_pure_ack(&self) -> bool {
        let f = self.hdr.flags;
        f.ack && !f.syn && !f.fin && !f.rst && self.plen == 0
    }
}

/// A stack event normalized for cross-shard comparison.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Recv(Vec<u8>),
    Sent(u32, u32),
    Dead(String),
    Knock,
    Connected,
}

/// Everything one shard produced in one cycle.
struct CycleOut {
    tx: Vec<TxFrame>,
    evs: Vec<(u64, Ev)>,
    stats: StackStats,
}

fn drain(shard: &mut TcpShard) -> CycleOut {
    let mut tx = Vec::new();
    for mut f in shard.take_tx() {
        let raw = f.data().to_vec();
        f.pull(EthHeader::LEN);
        let ip = Ipv4Header::decode(f.data()).expect("server emits valid IP");
        f.pull(Ipv4Header::LEN);
        let (hdr, hlen) = TcpHeader::decode(f.data(), ip.src, ip.dst).expect("server emits valid TCP");
        let plen = ip.total_len as usize - Ipv4Header::LEN - hlen;
        tx.push(TxFrame { raw, hdr, plen });
    }
    let evs = shard
        .take_events()
        .into_iter()
        .map(|e| match e {
            TcpEvent::Recv { flow, payload, .. } => (flow.key, Ev::Recv(payload.to_vec())),
            TcpEvent::Sent { flow, bytes_acked, window, .. } => (flow.key, Ev::Sent(bytes_acked, window)),
            TcpEvent::Dead { flow, reason, .. } => (flow.key, Ev::Dead(format!("{reason:?}"))),
            TcpEvent::Knock { flow, .. } => (flow.key, Ev::Knock),
            TcpEvent::Connected { flow, .. } => (flow.key, Ev::Connected),
        })
        .collect();
    CycleOut { tx, evs, stats: shard.stats }
}

struct FlowCtx {
    id: FlowId,
    /// First payload byte's sequence number (client ISN + 1).
    base: u32,
    /// Every injected segment acknowledges this (server ISS + 1).
    srv_ack: u32,
    /// In-order bytes enqueued so far (FIN counts one).
    cursor: usize,
    /// Cursor at the first FIN sent, if any: a FIN consumes one
    /// sequence number, so stream positions past it no longer line up
    /// with `byte_at` offsets.
    first_fin: Option<usize>,
}

/// Three shards in lockstep plus the synthesized clients.
struct Harness {
    batched: TcpShard,
    oracle: TcpShard,
    off: TcpShard,
    coalesce: bool,
    now: u64,
    flows: Vec<FlowCtx>,
    /// Cumulative per-flow delivered stream (from the oracle; the
    /// batched shard is asserted identical each cycle).
    streams: Vec<Vec<u8>>,
    /// Delivered-but-uncredited bytes per flow.
    owed: Vec<u32>,
}

impl Harness {
    fn establish(policy: AckPolicy, isns: &[u32; N_FLOWS]) -> Harness {
        let mk = |batch_rx| {
            let cfg = StackConfig { batch_rx, ack_policy: policy, ..StackConfig::default() };
            let mut b = TcpShard::new(cfg, B_IP, mac(2));
            b.arp_seed(A_IP, mac(1));
            b.listen(SRV_PORT);
            b
        };
        let mut h = Harness {
            batched: mk(true),
            oracle: mk(false),
            off: mk(false),
            coalesce: matches!(policy, AckPolicy::Immediate | AckPolicy::Delayed(_)),
            now: 1_000,
            flows: Vec::new(),
            streams: vec![Vec::new(); N_FLOWS],
            owed: vec![0; N_FLOWS],
        };
        for (flow, &isn) in isns.iter().enumerate() {
            // Client ISN is isn-1 so the first payload byte carries isn.
            h.now += 1_000;
            let syn = wire(flow, isn.wrapping_sub(1), 0, TcpFlags::SYN, &[], B_IP);
            let mut srv_ack = None;
            for shard in [&mut h.batched, &mut h.oracle, &mut h.off] {
                shard.input(h.now, mk_mbuf(&syn));
                shard.end_cycle(h.now);
                let out = drain(shard);
                let sa = out
                    .tx
                    .iter()
                    .find(|t| t.hdr.flags.syn && t.hdr.flags.ack)
                    .map(|t| t.hdr.seq.wrapping_add(1))
                    .expect("SYN-ACK emitted");
                // Deterministic ISS: all three shards must agree, or the
                // shared client frames below would be meaningless.
                assert_eq!(*srv_ack.get_or_insert(sa), sa, "shards diverged on ISS");
            }
            let srv_ack = srv_ack.unwrap();
            h.now += 1_000;
            let ackf = wire(flow, isn, srv_ack, TcpFlags::ACK, &[], B_IP);
            let mut id = None;
            for shard in [&mut h.batched, &mut h.oracle, &mut h.off] {
                shard.input(h.now, mk_mbuf(&ackf));
                shard.end_cycle(h.now);
                for e in shard.take_events() {
                    if let TcpEvent::Knock { flow: fl, .. } = e {
                        shard.accept(fl, flow as u64).unwrap();
                        assert_eq!(*id.get_or_insert(fl), fl, "shards diverged on FlowId");
                    }
                }
                let _ = shard.take_tx();
            }
            h.flows.push(FlowCtx { id: id.expect("knock on every shard"), base: isn, srv_ack, cursor: 0, first_fin: None });
        }
        h
    }

    /// Builds the wire bytes for one op and updates the driver cursor.
    fn build(&mut self, op: &FrameOp) -> Vec<u8> {
        let fx = op.flow();
        let (base, srv_ack, cursor) = {
            let f = &self.flows[fx];
            (f.base, f.srv_ack, f.cursor)
        };
        let seq_at = |off: usize| base.wrapping_add(off as u32);
        let data = |off: usize, len: usize| -> Vec<u8> { (off..off + len).map(|p| byte_at(fx, p)).collect() };
        match *op {
            FrameOp::Next { flow, len } => {
                let w = wire(flow, seq_at(cursor), srv_ack, TcpFlags::ACK, &data(cursor, len), B_IP);
                self.flows[fx].cursor += len;
                w
            }
            FrameOp::Ahead { flow, gap, len } => {
                let off = cursor + gap;
                wire(flow, seq_at(off), srv_ack, TcpFlags::ACK, &data(off, len), B_IP)
            }
            FrameOp::Behind { flow, back, len } => {
                let off = cursor.saturating_sub(back);
                wire(flow, seq_at(off), srv_ack, TcpFlags::ACK, &data(off, len), B_IP)
            }
            FrameOp::BadSum { flow, len } => {
                let mut w = wire(flow, seq_at(cursor), srv_ack, TcpFlags::ACK, &data(cursor, len), B_IP);
                w[EthHeader::LEN + Ipv4Header::LEN + 16] ^= 0x55;
                w
            }
            FrameOp::BadDst { flow } => {
                wire(flow, seq_at(cursor), srv_ack, TcpFlags::ACK, &data(cursor, 8), Ipv4Addr::new(10, 0, 0, 99))
            }
            FrameOp::Runt { flow } => {
                let mut w = wire(flow, seq_at(cursor), srv_ack, TcpFlags::ACK, &[], B_IP);
                w.truncate(EthHeader::LEN + Ipv4Header::LEN + 10);
                w
            }
            FrameOp::Fin { flow } => {
                let w = wire(flow, seq_at(cursor), srv_ack, TcpFlags::FIN_ACK, &[], B_IP);
                self.flows[fx].first_fin.get_or_insert(cursor);
                self.flows[fx].cursor += 1;
                w
            }
            FrameOp::Rst { flow } => wire(flow, seq_at(cursor), srv_ack, TcpFlags::RST, &[], B_IP),
        }
    }

    /// Feeds one batch to all three shards, cross-checks every
    /// observable, and credits delivered bytes back.
    fn run_batch(&mut self, ops: &[FrameOp]) {
        self.now += 100_000;
        let wires: Vec<Vec<u8>> = ops.iter().map(|op| self.build(op)).collect();

        let mut fb: Vec<Mbuf> = wires.iter().map(|w| mk_mbuf(w)).collect();
        self.batched.input_batch(self.now, &mut fb);
        self.batched.end_cycle(self.now);
        for w in &wires {
            self.oracle.input(self.now, mk_mbuf(w));
        }
        self.oracle.end_cycle(self.now);
        let mut fo: Vec<Mbuf> = wires.iter().map(|w| mk_mbuf(w)).collect();
        self.off.input_batch(self.now, &mut fo);
        self.off.end_cycle(self.now);

        let cb = drain(&mut self.batched);
        let co = drain(&mut self.oracle);
        let cf = drain(&mut self.off);

        // batch_rx off degrades to the per-packet path, byte for byte:
        // same frames in the same global order, same events, same stats.
        let raw_o: Vec<&Vec<u8>> = co.tx.iter().map(|t| &t.raw).collect();
        let raw_f: Vec<&Vec<u8>> = cf.tx.iter().map(|t| &t.raw).collect();
        assert_eq!(raw_f, raw_o, "batch_rx-off TX diverged from per-frame input()");
        assert_eq!(cf.evs, co.evs, "batch_rx-off events diverged");
        assert_eq!(cf.stats, co.stats, "batch_rx-off stats diverged");

        self.compare_batched(&cb, &co);

        // Per-flow streams accumulate from the oracle (batched already
        // asserted identical); credit everything straight back.
        for (key, ev) in &co.evs {
            if let Ev::Recv(bytes) = ev {
                let fx = self.flow_index(*key);
                self.streams[fx].extend_from_slice(bytes);
                self.owed[fx] += bytes.len() as u32;
            }
        }
        for fx in 0..N_FLOWS {
            let n = std::mem::take(&mut self.owed[fx]);
            if n == 0 {
                continue;
            }
            let id = self.flows[fx].id;
            let rb = self.batched.recv_done(self.now, id, n);
            let ro = self.oracle.recv_done(self.now, id, n);
            let rf = self.off.recv_done(self.now, id, n);
            // A torn-down flow refuses credit on every shard alike.
            assert_eq!(rb.is_ok(), ro.is_ok(), "recv_done outcome diverged (batched)");
            assert_eq!(rf.is_ok(), ro.is_ok(), "recv_done outcome diverged (off)");
            // A window-update ACK, if any, must restate agreed state on
            // the batched shard too; flush both so cycles stay aligned.
            let wb = drain(&mut self.batched);
            let wo = drain(&mut self.oracle);
            let _ = drain(&mut self.off);
            let rb: Vec<Vec<u8>> = wb.tx.iter().map(|t| ident_blind(&t.raw)).collect();
            let ro2: Vec<Vec<u8>> = wo.tx.iter().map(|t| ident_blind(&t.raw)).collect();
            assert_eq!(rb, ro2, "window-update ACKs diverged");
        }
    }

    fn flow_index(&self, key: u64) -> usize {
        self.flows.iter().position(|f| f.id.key == key).expect("event for known flow")
    }

    /// The batched-vs-oracle differential: per-flow equality, modulo
    /// the documented pure-ACK coalescing when the policy allows it.
    fn compare_batched(&self, cb: &CycleOut, co: &CycleOut) {
        for f in &self.flows {
            let evs_b: Vec<&Ev> = cb.evs.iter().filter(|(k, _)| *k == f.id.key).map(|(_, e)| e).collect();
            let evs_o: Vec<&Ev> = co.evs.iter().filter(|(k, _)| *k == f.id.key).map(|(_, e)| e).collect();
            assert_eq!(evs_b, evs_o, "per-flow event sequence diverged");

            let port = cli_port(self.flows.iter().position(|g| g.id.key == f.id.key).unwrap());
            let tx_b: Vec<&TxFrame> = cb.tx.iter().filter(|t| t.hdr.dst_port == port).collect();
            let tx_o: Vec<&TxFrame> = co.tx.iter().filter(|t| t.hdr.dst_port == port).collect();
            // Flow-grouping reorders emissions *across* flows, which
            // re-stamps the global IPv4 ident counter; per-flow frames
            // are compared ident-blind (the strict global byte-identity
            // pin is the batch_rx-off shard above).
            if !self.coalesce {
                let raw_b: Vec<Vec<u8>> = tx_b.iter().map(|t| ident_blind(&t.raw)).collect();
                let raw_o: Vec<Vec<u8>> = tx_o.iter().map(|t| ident_blind(&t.raw)).collect();
                assert_eq!(raw_b, raw_o, "per-flow TX diverged (no coalescing in play)");
            } else {
                let solid_b: Vec<Vec<u8>> =
                    tx_b.iter().filter(|t| !t.is_pure_ack()).map(|t| ident_blind(&t.raw)).collect();
                let solid_o: Vec<Vec<u8>> =
                    tx_o.iter().filter(|t| !t.is_pure_ack()).map(|t| ident_blind(&t.raw)).collect();
                assert_eq!(solid_b, solid_o, "per-flow non-ACK TX diverged");
                let acks_b: Vec<&TxFrame> = tx_b.iter().filter(|t| t.is_pure_ack()).copied().collect();
                let acks_o: Vec<&TxFrame> = tx_o.iter().filter(|t| t.is_pure_ack()).copied().collect();
                assert!(
                    acks_b.len() <= acks_o.len(),
                    "batching may only coalesce ACKs, never add them ({} > {})",
                    acks_b.len(),
                    acks_o.len()
                );
                // No presence check: a same-batch teardown can consume a
                // pending coalesced ACK entirely (the per-frame path had
                // already flushed per segment before the flow died).
                if let (Some(b), Some(o)) = (acks_b.last(), acks_o.last()) {
                    assert_eq!(b.hdr.ack, o.hdr.ack, "final coalesced ack diverged");
                    assert_eq!(b.hdr.window, o.hdr.window, "final advertised window diverged");
                }
            }
        }
        assert_eq!(cb.evs.len(), co.evs.len(), "stray events for unknown flows");

        // RX-side counters must agree regardless of policy.
        let (b, o) = (&cb.stats, &co.stats);
        assert_eq!(b.rx_segments, o.rx_segments, "rx_segments diverged");
        assert_eq!(b.parse_drops, o.parse_drops, "parse_drops diverged");
        assert_eq!(b.checksum_drops, o.checksum_drops, "checksum_drops diverged");
        assert_eq!(b.rst_rx, o.rst_rx, "rst_rx diverged");
        assert_eq!(b.bytes_rx, o.bytes_rx, "bytes_rx diverged");
        assert_eq!(b.rx_pool_outstanding, o.rx_pool_outstanding, "rx_pool_outstanding diverged");
        assert_eq!(b.rx_payload_copies, o.rx_payload_copies, "rx_payload_copies diverged");
        assert_eq!(b.rx_ooo_copies, o.rx_ooo_copies, "rx_ooo_copies diverged");
        if !self.coalesce {
            // EndOfCycle coalesces identically on both paths: the whole
            // counter block must match, TX included.
            assert_eq!(cb.stats, co.stats, "full stats diverged under EndOfCycle");
        }
    }

    /// Verifies the cumulative per-flow streams carry the exact bytes
    /// the plan enqueued in order — exact up to the first FIN, past
    /// which a consumed sequence number shifts positions off the
    /// `byte_at` grid (content equality between the shards is still
    /// asserted every cycle by the differential).
    fn check_streams(&self) {
        for (fx, stream) in self.streams.iter().enumerate() {
            let limit = self.flows[fx].first_fin.unwrap_or(usize::MAX).min(stream.len());
            let want: Vec<u8> = (0..limit).map(|p| byte_at(fx, p)).collect();
            assert_eq!(&stream[..limit], &want[..], "flow {fx} stream content corrupted");
        }
    }
}

fn run_plan(policy: AckPolicy, isns: [u32; N_FLOWS], batches: &[Vec<FrameOp>]) -> Harness {
    let mut h = Harness::establish(policy, &isns);
    for batch in batches {
        h.run_batch(batch);
    }
    h.check_streams();
    h
}

// ---------------------------------------------------------------------
// Directed scenarios.
// ---------------------------------------------------------------------

/// 16 interleaved in-order segments (4 flows round-robin): the shape of
/// the rxbatch microbench. Under Immediate the batched side must
/// coalesce to exactly one ACK per flow while the per-frame oracle acks
/// every segment.
#[test]
fn interleaved_inorder_runs_coalesce_acks() {
    let mut h = Harness::establish(AckPolicy::Immediate, &[1_000, 2_000, 3_000, 4_000]);
    let ops: Vec<FrameOp> = (0..16).map(|j| FrameOp::Next { flow: j % N_FLOWS, len: 100 }).collect();
    let wires: Vec<Vec<u8>> = ops.iter().map(|op| h.build(op)).collect();
    let mut fb: Vec<Mbuf> = wires.iter().map(|w| mk_mbuf(w)).collect();
    h.now += 100_000;
    h.batched.input_batch(h.now, &mut fb);
    h.batched.end_cycle(h.now);
    for w in &wires {
        h.oracle.input(h.now, mk_mbuf(w));
    }
    h.oracle.end_cycle(h.now);
    let cb = drain(&mut h.batched);
    let co = drain(&mut h.oracle);
    assert_eq!(cb.tx.iter().filter(|t| t.is_pure_ack()).count(), N_FLOWS, "one coalesced ACK per flow");
    assert_eq!(co.tx.iter().filter(|t| t.is_pure_ack()).count(), 16, "per-frame path acks every segment");
    h.compare_batched(&cb, &co);
}

#[test]
fn interleaved_inorder_streams_match() {
    let batches: Vec<Vec<FrameOp>> = (0..3)
        .map(|_| (0..16).map(|j| FrameOp::Next { flow: j % N_FLOWS, len: 257 }).collect())
        .collect();
    run_plan(AckPolicy::Immediate, [10, 20, 30, 40], &batches);
    run_plan(AckPolicy::EndOfCycle, [10, 20, 30, 40], &batches);
}

#[test]
fn ooo_within_batch_fills_holes() {
    // Each flow's hole is filled later in the same batch; one flow's
    // fill lands in the *next* batch.
    let batches = vec![
        vec![
            FrameOp::Ahead { flow: 0, gap: 300, len: 300 },
            FrameOp::Ahead { flow: 1, gap: 150, len: 150 },
            FrameOp::Next { flow: 2, len: 500 },
            FrameOp::Next { flow: 0, len: 300 }, // fills flow 0's hole
            FrameOp::Ahead { flow: 3, gap: 90, len: 40 },
            FrameOp::Next { flow: 1, len: 150 }, // fills flow 1's hole
        ],
        vec![
            FrameOp::Next { flow: 3, len: 90 }, // fills flow 3's hole
            FrameOp::Behind { flow: 2, back: 200, len: 400 },
            FrameOp::Next { flow: 0, len: 300 },
        ],
    ];
    run_plan(AckPolicy::Immediate, [u32::MAX - 200, 7, 1 << 31, 99_999], &batches);
    run_plan(AckPolicy::EndOfCycle, [u32::MAX - 200, 7, 1 << 31, 99_999], &batches);
}

#[test]
fn corrupted_frames_land_on_drop_counters() {
    let mut h = Harness::establish(AckPolicy::EndOfCycle, &[5, 6, 7, 8]);
    let before_b = h.batched.stats;
    let before_o = h.oracle.stats;
    h.run_batch(&[
        FrameOp::Next { flow: 0, len: 64 },
        FrameOp::BadSum { flow: 1, len: 64 },
        FrameOp::BadDst { flow: 2 },
        FrameOp::BadSum { flow: 0, len: 32 },
        FrameOp::Runt { flow: 3 },
        FrameOp::Next { flow: 1, len: 64 },
    ]);
    for (shard, before) in [(&h.batched, before_b), (&h.oracle, before_o)] {
        assert_eq!(shard.stats.checksum_drops - before.checksum_drops, 2, "two corrupted checksums");
        assert_eq!(shard.stats.parse_drops - before.parse_drops, 4, "checksum + misaddressed + runt drops");
        assert_eq!(shard.stats.rx_segments - before.rx_segments, 2, "only intact segments count");
    }
    h.check_streams();
}

#[test]
fn mid_batch_fin_teardown() {
    // Flow 1 FINs mid-batch; its post-FIN data and next-cycle frames
    // must be handled identically (no fast-path leak past Established).
    let batches = vec![
        vec![
            FrameOp::Next { flow: 1, len: 200 },
            FrameOp::Next { flow: 0, len: 90 },
            FrameOp::Fin { flow: 1 },
            FrameOp::Behind { flow: 1, back: 200, len: 200 },
            FrameOp::Next { flow: 0, len: 90 },
        ],
        vec![FrameOp::Next { flow: 1, len: 50 }, FrameOp::Next { flow: 2, len: 400 }],
    ];
    run_plan(AckPolicy::Immediate, [11, 22, 33, 44], &batches);
    run_plan(AckPolicy::EndOfCycle, [11, 22, 33, 44], &batches);
}

#[test]
fn mid_batch_rst_teardown() {
    let batches = vec![
        vec![
            FrameOp::Next { flow: 2, len: 333 },
            FrameOp::Rst { flow: 2 },
            FrameOp::Next { flow: 2, len: 100 }, // lands on a dead flow
            FrameOp::Next { flow: 3, len: 64 },
        ],
        vec![FrameOp::Next { flow: 2, len: 10 }, FrameOp::Next { flow: 3, len: 64 }],
    ];
    run_plan(AckPolicy::Immediate, [100, 200, 300, 400], &batches);
    run_plan(AckPolicy::EndOfCycle, [100, 200, 300, 400], &batches);
}

/// The headline default-config pin, CI-grepped by name: with `batch_rx`
/// off, `input_batch` must be *globally* byte-identical to the
/// per-packet oracle — every wire frame (ident included), every event,
/// the full stats block — across a plan mixing runs, reordering,
/// corruption, and teardown. (`run_batch` asserts exactly that for the
/// `off` shard after every cycle; this test exists so the invariant has
/// a named, directed witness.)
#[test]
fn batch_rx_off_is_byte_identical() {
    let batches = vec![
        (0..16).map(|j| FrameOp::Next { flow: j % N_FLOWS, len: 128 }).collect(),
        vec![
            FrameOp::Ahead { flow: 0, gap: 64, len: 64 },
            FrameOp::BadSum { flow: 1, len: 64 },
            FrameOp::Next { flow: 0, len: 64 },
            FrameOp::Behind { flow: 2, back: 50, len: 80 },
            FrameOp::Rst { flow: 3 },
        ],
        vec![FrameOp::Fin { flow: 1 }, FrameOp::Next { flow: 2, len: 700 }],
    ];
    run_plan(AckPolicy::Immediate, [9, 8, 7, 6], &batches);
    run_plan(AckPolicy::EndOfCycle, [9, 8, 7, 6], &batches);
}

// ---------------------------------------------------------------------
// The differential property: random interleavings of everything.
// ---------------------------------------------------------------------

fn op_strategy() -> impl Strategy<Value = FrameOp> {
    let fl = 0usize..N_FLOWS;
    prop_oneof![
        6 => (fl.clone(), 1usize..900).prop_map(|(flow, len)| FrameOp::Next { flow, len }),
        2 => (fl.clone(), 1usize..1200, 1usize..600)
            .prop_map(|(flow, gap, len)| FrameOp::Ahead { flow, gap, len }),
        2 => (fl.clone(), 1usize..1200, 1usize..600)
            .prop_map(|(flow, back, len)| FrameOp::Behind { flow, back, len }),
        1 => (fl.clone(), 1usize..300).prop_map(|(flow, len)| FrameOp::BadSum { flow, len }),
        1 => fl.clone().prop_map(|flow| FrameOp::BadDst { flow }),
        1 => fl.clone().prop_map(|flow| FrameOp::Runt { flow }),
        1 => fl.clone().prop_map(|flow| FrameOp::Fin { flow }),
        1 => fl.prop_map(|flow| FrameOp::Rst { flow }),
    ]
}

props! {
    #![config(cases = 24)]

    #[test]
    fn batched_matches_per_packet_oracle_immediate(
        isns in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        batches in collection::vec(collection::vec(op_strategy(), 1..48), 1..5),
    ) {
        run_plan(AckPolicy::Immediate, [isns.0, isns.1, isns.2, isns.3], &batches);
    }

    #[test]
    fn batched_matches_per_packet_oracle_endofcycle(
        isns in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        batches in collection::vec(collection::vec(op_strategy(), 1..48), 1..5),
    ) {
        run_plan(AckPolicy::EndOfCycle, [isns.0, isns.1, isns.2, isns.3], &batches);
    }
}
