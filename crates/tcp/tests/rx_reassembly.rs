//! Differential property suite for RX reassembly: hand-crafted TCP
//! segments — overlapping, duplicate, stale, window-poking, reordered —
//! are driven into one [`TcpShard`] and simultaneously into a *naive
//! byte-stream oracle* that reimplements RFC 793 receive-side trimming
//! with plain `Vec` copies and no buffer management at all. The stack
//! (zero-copy, mbuf-moving, credit-gated) must match it observable for
//! observable:
//!
//! - the delivered byte stream (concatenated `Recv` payloads),
//! - `rcv_nxt` (the ACK field of every emitted acknowledgment),
//! - the advertised receive window (the window field of the same ACKs,
//!   backed by `rcv_outstanding`/`ooo_bytes` accounting),
//! - the retained-buffer census (`rx_held_payloads` and the
//!   `rx_pool_outstanding` gauge vs the oracle's held/ooo sets).
//!
//! The client side of the connection is synthesized frame by frame, so
//! sequence numbers (including wraparound ISNs) and segment geometry are
//! entirely under test control — no sender stack smooths them out.

use std::collections::{BTreeMap, VecDeque};

use ix_mempool::Mbuf;
use ix_net::eth::{EthHeader, EtherType, MacAddr};
use ix_net::ip::{IpProto, Ipv4Addr, Ipv4Header};
use ix_net::tcp::{TcpFlags, TcpHeader};
use ix_tcp::{FlowId, StackConfig, TcpEvent, TcpShard};
use ix_testkit::prelude::*;
use ix_testkit::Bytes;

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const CLI_PORT: u16 = 40_000;
const SRV_PORT: u16 = 80;

fn mac(i: u16) -> MacAddr {
    MacAddr::from_host_index(i)
}

/// Wrapping sequence-space comparisons (RFC 793 arithmetic), mirrored
/// from the stack so the oracle agrees near ISN wraparound.
fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}
fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// The byte carried at absolute stream offset `p` — a fixed pseudorandom
/// function, so duplicated and overlapping segments are consistent the
/// way a real sender's retransmissions are.
fn byte_at(p: usize) -> u8 {
    ((p as u32).wrapping_mul(2_654_435_761) >> 24) as u8
}

/// Crafts one client→server TCP frame with a valid checksum.
fn frame(seq: u32, ack: u32, flags: TcpFlags, mss: Option<u16>, payload: &[u8]) -> Mbuf {
    let hdr = TcpHeader {
        src_port: CLI_PORT,
        dst_port: SRV_PORT,
        seq,
        ack,
        flags,
        window: 65_535,
        mss,
        wscale: None,
    };
    let hlen = hdr.len();
    let mut m = Mbuf::standalone();
    {
        let region = m.append(hlen + payload.len());
        region[hlen..].copy_from_slice(payload);
        let (h, t) = region.split_at_mut(hlen);
        hdr.encode(h, A_IP, B_IP, t);
    }
    Ipv4Header {
        tos: 0,
        total_len: (Ipv4Header::LEN + hlen + payload.len()) as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Tcp,
        src: A_IP,
        dst: B_IP,
    }
    .encode(m.prepend(Ipv4Header::LEN));
    EthHeader { dst: mac(2), src: mac(1), ethertype: EtherType::Ipv4 }
        .encode(m.prepend(EthHeader::LEN));
    m
}

/// Decodes a server-emitted frame down to its TCP header + payload len.
fn decode(mut f: Mbuf) -> (TcpHeader, usize) {
    f.pull(EthHeader::LEN);
    let ip = Ipv4Header::decode(f.data()).expect("ip");
    f.pull(Ipv4Header::LEN);
    let (hdr, hlen) = TcpHeader::decode(f.data(), ip.src, ip.dst).expect("tcp");
    (hdr, ip.total_len as usize - Ipv4Header::LEN - hlen)
}

/// The server under test plus the synthesized client's view of it.
struct Server {
    b: TcpShard,
    now: u64,
    flow: FlowId,
    /// `server_iss + 1`: what every injected segment acknowledges.
    srv_ack: u32,
}

impl Server {
    /// Stands up a listener and walks it through a handshake whose
    /// client ISN is exactly `isn - 1` (so the first payload byte of the
    /// stream carries sequence number `isn`).
    fn establish(isn: u32) -> Server {
        let mut b = TcpShard::new(StackConfig::default(), B_IP, mac(2));
        b.arp_seed(A_IP, mac(1));
        b.listen(SRV_PORT);
        let mut now = 1_000;
        b.input(now, frame(isn.wrapping_sub(1), 0, TcpFlags::SYN, Some(1460), &[]));
        b.end_cycle(now);
        let mut siss = None;
        for f in b.take_tx() {
            let (hdr, _) = decode(f);
            if hdr.flags.syn && hdr.flags.ack {
                assert_eq!(hdr.ack, isn, "SYN-ACK acks our ISN");
                siss = Some(hdr.seq);
            }
        }
        let siss = siss.expect("SYN-ACK emitted");
        let srv_ack = siss.wrapping_add(1);
        now += 1_000;
        b.input(now, frame(isn, srv_ack, TcpFlags::ACK, None, &[]));
        b.end_cycle(now);
        let mut flow = None;
        for e in b.take_events() {
            if let TcpEvent::Knock { flow: fl, .. } = e {
                b.accept(fl, 0xB).unwrap();
                flow = Some(fl);
            }
        }
        let _ = b.take_tx();
        Server { b, now, flow: flow.expect("knock"), srv_ack }
    }

    /// Injects one data segment; returns the `Recv` payloads it produced
    /// and every (ack, window) pair the server emitted in response.
    fn inject(&mut self, seq: u32, payload: &[u8]) -> (Vec<Bytes>, Vec<(u32, u16)>) {
        self.now += 1_000;
        self.b.input(self.now, frame(seq, self.srv_ack, TcpFlags::ACK, None, payload));
        self.b.end_cycle(self.now);
        let mut acks = Vec::new();
        for f in self.b.take_tx() {
            let (hdr, plen) = decode(f);
            if hdr.flags.ack && plen == 0 {
                acks.push((hdr.ack, hdr.window));
            }
        }
        let recvs = self
            .b
            .take_events()
            .into_iter()
            .filter_map(|e| match e {
                TcpEvent::Recv { payload, .. } => Some(payload),
                _ => None,
            })
            .collect();
        (recvs, acks)
    }
}

/// The naive oracle: RFC 793 receive processing over plain `Vec<u8>`,
/// copying freely, with the same first-wins out-of-order coalescing and
/// `recv_done`-credit window the stack implements.
struct Oracle {
    isn: u32,
    /// Contiguously delivered byte count (`rcv_nxt - isn`).
    mark: usize,
    delivered: Vec<u8>,
    /// Delivered-but-uncredited bytes (shrinks the advertised window).
    outstanding: u32,
    /// Credit applied to the (partially released) front held buffer.
    front_credit: u32,
    /// Lengths of the per-delivery buffers the stack still holds.
    held: VecDeque<u32>,
    ooo: BTreeMap<u32, Vec<u8>>,
    ooo_bytes: u32,
}

impl Oracle {
    fn new(isn: u32) -> Oracle {
        Oracle {
            isn,
            mark: 0,
            delivered: Vec::new(),
            outstanding: 0,
            front_credit: 0,
            held: VecDeque::new(),
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
        }
    }

    fn rcv_nxt(&self) -> u32 {
        self.isn.wrapping_add(self.mark as u32)
    }

    fn window(&self) -> u32 {
        65_535u32.saturating_sub(self.outstanding).saturating_sub(self.ooo_bytes)
    }

    fn deliver(&mut self, d: Vec<u8>) {
        self.mark += d.len();
        self.outstanding += d.len() as u32;
        self.held.push_back(d.len() as u32);
        self.delivered.extend_from_slice(&d);
    }

    fn segment(&mut self, seq: u32, data: &[u8]) {
        let rcv = self.rcv_nxt();
        let wnd = self.window();
        let end = seq.wrapping_add(data.len() as u32);
        let win_end = rcv.wrapping_add(wnd);
        if seq_le(end, rcv) {
            return; // Entirely old.
        }
        if !seq_lt(seq, win_end) {
            return; // Entirely beyond the window.
        }
        let mut s = seq;
        let mut d = data.to_vec();
        if seq_lt(s, rcv) {
            d.drain(..rcv.wrapping_sub(s) as usize);
            s = rcv;
        }
        let seg_end = s.wrapping_add(d.len() as u32);
        if seq_lt(win_end, seg_end) {
            d.truncate(win_end.wrapping_sub(s) as usize);
        }
        if d.is_empty() {
            return;
        }
        if s == rcv {
            self.deliver(d);
            self.drain();
        } else if !self.ooo.contains_key(&s) {
            self.ooo_bytes += d.len() as u32;
            self.ooo.insert(s, d);
        }
    }

    fn drain(&mut self) {
        loop {
            let rcv = self.rcv_nxt();
            let Some((&s, _)) = self
                .ooo
                .iter()
                .find(|(&s, d)| seq_le(s, rcv) && seq_lt(rcv, s.wrapping_add(d.len() as u32)))
            else {
                break;
            };
            let d = self.ooo.remove(&s).expect("present");
            self.ooo_bytes -= d.len() as u32;
            let skip = rcv.wrapping_sub(s) as usize;
            if skip >= d.len() {
                continue;
            }
            self.deliver(d[skip..].to_vec());
        }
        let rcv = self.rcv_nxt();
        let stale: Vec<u32> = self
            .ooo
            .iter()
            .filter(|(&s, d)| seq_le(s.wrapping_add(d.len() as u32), rcv))
            .map(|(&s, _)| s)
            .collect();
        for s in stale {
            let d = self.ooo.remove(&s).expect("present");
            self.ooo_bytes -= d.len() as u32;
        }
    }

    fn credit(&mut self, n: u32) {
        self.outstanding -= n;
        self.front_credit += n;
        while let Some(&front) = self.held.front() {
            if self.front_credit < front {
                break;
            }
            self.front_credit -= front;
            self.held.pop_front();
        }
    }
}

/// One step of a reassembly plan, interpreted against the oracle's
/// current state (so "ahead"/"behind" track the moving rcv_nxt).
#[derive(Debug, Clone)]
enum Op {
    /// The next in-order chunk.
    Next { len: usize },
    /// A reordered segment starting `gap` bytes past rcv_nxt.
    Ahead { gap: usize, len: usize },
    /// A stale or overlapping segment starting `back` bytes before
    /// rcv_nxt (clamped to the start of the stream).
    Behind { back: usize, len: usize },
    /// A window-poking segment ending `back` bytes inside the advertised
    /// window's right edge (`back = 0` is entirely beyond it).
    Poke { back: usize, len: usize },
    /// `recv_done` credit (clamped to what is outstanding).
    Credit { n: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1usize..1200).prop_map(|len| Op::Next { len }),
        3 => (1usize..2500, 1usize..1200).prop_map(|(gap, len)| Op::Ahead { gap, len }),
        2 => (1usize..2500, 1usize..1200).prop_map(|(back, len)| Op::Behind { back, len }),
        1 => (0usize..4, 1usize..1200).prop_map(|(back, len)| Op::Poke { back, len }),
        2 => (1u32..50_000).prop_map(|n| Op::Credit { n }),
    ]
}

/// Applies one op to both implementations and cross-checks every
/// observable. Returns the payload bytes the stack delivered.
fn apply_and_check(srv: &mut Server, oracle: &mut Oracle, op: &Op, got: &mut Vec<u8>) {
    let (off, len) = match *op {
        Op::Next { len } => (oracle.mark, len),
        Op::Ahead { gap, len } => (oracle.mark + gap, len),
        Op::Behind { back, len } => (oracle.mark.saturating_sub(back), len),
        Op::Poke { back, len } => (oracle.mark + oracle.window() as usize - back.min(oracle.window() as usize), len),
        Op::Credit { n } => {
            let credit = n.min(oracle.outstanding);
            if credit > 0 {
                srv.b.recv_done(srv.now, srv.flow, credit).expect("valid credit");
                oracle.credit(credit);
                // Any window-update ACK must restate the agreed state.
                for f in srv.b.take_tx() {
                    let (hdr, _) = decode(f);
                    assert_eq!(hdr.ack, oracle.rcv_nxt());
                    assert_eq!(hdr.window as u32, oracle.window());
                }
            }
            check_census(srv, oracle);
            return;
        }
    };
    let payload: Vec<u8> = (off..off + len).map(byte_at).collect();
    let seq = oracle.isn.wrapping_add(off as u32);
    let (recvs, acks) = srv.inject(seq, &payload);
    oracle.segment(seq, &payload);
    for r in &recvs {
        got.extend_from_slice(r);
    }
    assert_eq!(got.len(), oracle.delivered.len(), "delivered byte count diverged");
    assert!(got == &oracle.delivered, "delivered byte stream diverged");
    assert!(!acks.is_empty(), "every data segment elicits an ACK");
    for (ack, window) in acks {
        assert_eq!(ack, oracle.rcv_nxt(), "rcv_nxt trajectory diverged");
        assert_eq!(window as u32, oracle.window(), "advertised window diverged");
    }
    check_census(srv, oracle);
}

/// The stack's retained-buffer census must match the oracle's: held
/// deliveries + buffered out-of-order segments, both in count (the
/// `rx_pool_outstanding` gauge) and in held-queue shape.
fn check_census(srv: &Server, oracle: &Oracle) {
    let held = srv.b.rx_held_payloads(srv.flow);
    assert_eq!(held.len(), oracle.held.len(), "held-buffer count diverged");
    for (h, &olen) in held.iter().zip(oracle.held.iter()) {
        assert_eq!(h.len() as u32, olen, "held-buffer length diverged");
    }
    assert_eq!(
        srv.b.stats.rx_pool_outstanding,
        (oracle.held.len() + oracle.ooo.len()) as u64,
        "pool gauge diverged from held + ooo census"
    );
}

// ---------------------------------------------------------------------
// Directed scenarios: one per adversarial segment class.
// ---------------------------------------------------------------------

fn run_plan(isn: u32, plan: &[Op]) {
    let mut srv = Server::establish(isn);
    let mut oracle = Oracle::new(isn);
    let mut got = Vec::new();
    for op in plan {
        apply_and_check(&mut srv, &mut oracle, op, &mut got);
    }
    // Every delivered byte is the byte the stream carries there.
    let want: Vec<u8> = (0..oracle.mark).map(byte_at).collect();
    assert_eq!(got, want, "stream content corrupted");
    assert_eq!(srv.b.stats.rx_payload_copies, 0, "RX copies must stay pinned at zero");
    assert_eq!(srv.b.stats.rx_ooo_copies, 0, "OOO drain must not copy");
}

#[test]
fn duplicate_segments_are_idempotent() {
    run_plan(
        1_000,
        &[
            Op::Next { len: 700 },
            Op::Behind { back: 700, len: 700 }, // Exact duplicate.
            Op::Behind { back: 700, len: 700 },
            Op::Next { len: 300 },
            Op::Credit { n: 1_000 },
        ],
    );
}

#[test]
fn overlapping_retransmit_is_front_trimmed() {
    run_plan(
        5_000,
        &[
            Op::Next { len: 600 },
            // Covers 200 old bytes and 400 new ones.
            Op::Behind { back: 200, len: 600 },
            Op::Credit { n: 500 },
            Op::Next { len: 100 },
        ],
    );
}

#[test]
fn reordered_segments_fill_backwards() {
    run_plan(
        42,
        &[
            Op::Ahead { gap: 800, len: 400 },
            Op::Ahead { gap: 400, len: 400 },
            Op::Next { len: 400 }, // Fills the hole; all 1200 deliver.
            Op::Credit { n: 1_200 },
        ],
    );
}

#[test]
fn stale_ooo_buffers_are_purged_on_drain() {
    run_plan(
        9_999,
        &[
            Op::Ahead { gap: 100, len: 50 },
            // An in-order chunk long enough to make the buffered
            // segment entirely stale once it lands.
            Op::Next { len: 400 },
            Op::Credit { n: 400 },
        ],
    );
}

#[test]
fn window_pokes_are_clipped_or_dropped() {
    run_plan(
        77,
        &[
            Op::Poke { back: 0, len: 500 }, // Entirely beyond: dropped.
            Op::Poke { back: 2, len: 500 }, // Two bytes land, tail clipped.
            Op::Next { len: 200 },
            Op::Credit { n: 100 },
        ],
    );
}

#[test]
fn zero_window_after_uncredited_backlog() {
    // 65_535 bytes delivered with no credit closes the window; further
    // in-order data must bounce until credit reopens it.
    let mut plan: Vec<Op> = (0..60).map(|_| Op::Next { len: 1_100 }).collect();
    plan.push(Op::Next { len: 1_000 }); // Clipped to the last 535 bytes...
    plan.push(Op::Next { len: 500 }); // ...and this one is refused.
    plan.push(Op::Credit { n: 30_000 });
    plan.push(Op::Next { len: 500 }); // Accepted again.
    run_plan(123_456, &plan);
}

#[test]
fn isn_wraparound_is_transparent() {
    run_plan(
        u32::MAX - 700, // The stream crosses sequence zero mid-plan.
        &[
            Op::Next { len: 500 },
            Op::Ahead { gap: 300, len: 300 },
            Op::Next { len: 300 },
            Op::Behind { back: 400, len: 600 },
            Op::Credit { n: 1_100 },
        ],
    );
}

// ---------------------------------------------------------------------
// The differential property: arbitrary adversarial plans, arbitrary
// ISNs (wraparound included), every observable matched step by step.
// ---------------------------------------------------------------------

props! {
    #![config(cases = 48)]

    #[test]
    fn reassembly_matches_naive_oracle(
        isn in any::<u32>(),
        plan in collection::vec(op_strategy(), 1..32),
    ) {
        let mut srv = Server::establish(isn);
        let mut oracle = Oracle::new(isn);
        let mut got = Vec::new();
        for op in &plan {
            apply_and_check(&mut srv, &mut oracle, op, &mut got);
        }
        let want: Vec<u8> = (0..oracle.mark).map(byte_at).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(srv.b.stats.rx_payload_copies, 0);
        prop_assert_eq!(srv.b.stats.rx_ooo_copies, 0);
    }
}
