//! Stack tuning parameters.

/// When acknowledgments are generated.
///
/// IX generates ACKs at the end of the run-to-completion cycle, after the
/// application has consumed events and issued `recv_done` — so ACKs (and
/// window updates) reflect actual application progress (§3). A commodity
/// kernel ACKs from softirq context immediately, independent of the
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// ACK as soon as data is accepted (quickack behaviour).
    Immediate,
    /// Defer ACKs to the end of the processing cycle (IX model); the
    /// engine must call [`crate::TcpShard::end_cycle`].
    EndOfCycle,
    /// Classic delayed ACKs (Linux/mTCP models): ACK every second
    /// segment immediately, otherwise wait up to the given delay for a
    /// data segment to piggyback on.
    Delayed(u64),
}

/// Configuration for one [`crate::TcpShard`].
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Maximum segment size advertised and used (1460 for standard MTU).
    pub mss: u32,
    /// Per-connection receive buffer / maximum advertised window, bytes.
    /// Values above 65535 require a nonzero `window_scale`.
    pub recv_window: u32,
    /// Window-scale shift to offer on SYN segments (RFC 7323); 0
    /// disables scaling (the paper-era lwIP behaviour, IX's default).
    /// Effective only when both ends offer the option.
    pub window_scale: u8,
    /// Initial congestion window in segments (RFC 6928 IW10 was not yet
    /// standard practice on the 3.16 kernel era; 10 is used by all modern
    /// stacks and keeps the microbenchmarks out of slow-start artifacts).
    pub initial_cwnd_segs: u32,
    /// Minimum retransmission timeout, ns. The paper highlights support
    /// for timeouts as low as 16 µs for incast (§4.2); the default here
    /// is the classic 200 ms datacenter-untuned floor.
    pub min_rto_ns: u64,
    /// Maximum retransmission timeout, ns.
    pub max_rto_ns: u64,
    /// Maximum retransmission attempts before the connection is killed.
    pub max_retries: u32,
    /// SYN retransmission timeout, ns.
    pub syn_rto_ns: u64,
    /// TIME_WAIT hold time, ns. Abbreviated from 2*MSL: the evaluation
    /// workloads close with RST precisely to avoid TIME_WAIT state
    /// accumulation (§5.3), so only correctness tests observe this.
    pub time_wait_ns: u64,
    /// Zero-window probe interval, ns.
    pub persist_ns: u64,
    /// ACK generation policy.
    pub ack_policy: AckPolicy,
    /// Capacity of the shard's mbuf pool (transmit-side allocation).
    pub mbuf_pool: usize,
    /// How many ephemeral ports to probe for RSS-aligned outbound
    /// connections before giving up and taking the last candidate.
    pub rss_probe_limit: u32,
    /// When true, every passive open answers with a stateless SYN-cookie
    /// SYN-ACK and the TCB is allocated only on a validated cookie ACK
    /// (the filter policy's syn-challenge verdict enables the same path
    /// per-rule without this global switch). Default off: the classic
    /// three-way handshake with a `SynRcvd` TCB.
    pub syn_cookies: bool,
    /// Upper bound on simultaneously half-open (`SynRcvd`) connections
    /// per shard when cookies are off; SYNs beyond it are silently
    /// dropped (`synrcvd_overflow_drops`) instead of pinning TCB-slab
    /// slots. Generous by default so connection-scale sweeps (which
    /// legitimately burst handshakes) never see it.
    pub syn_backlog: usize,
    /// Width of the SYN-cookie timestamp bucket, ns: a cookie validates
    /// in its mint bucket and the next one, so this is half the minimum
    /// handshake-completion deadline.
    pub syn_cookie_bucket_ns: u64,
    /// When true, [`crate::TcpShard::input_batch`] runs the staged batch
    /// pipeline (pre-parse the whole polled batch, group segments by
    /// flow so the table is probed once per flow per batch, process
    /// same-flow runs back-to-back against a hot TCB, and coalesce pure
    /// ACKs to at most one per flow per run under the Immediate/Delayed
    /// policies). Default off: `input_batch` degenerates to per-frame
    /// `input` calls and is behaviour-identical byte for byte.
    pub batch_rx: bool,
}

impl Default for StackConfig {
    fn default() -> StackConfig {
        StackConfig {
            mss: 1460,
            recv_window: 65_535,
            window_scale: 0,
            initial_cwnd_segs: 10,
            min_rto_ns: 200_000_000,
            max_rto_ns: 120_000_000_000,
            max_retries: 15,
            syn_rto_ns: 500_000_000,
            time_wait_ns: 1_000_000_000,
            persist_ns: 200_000_000,
            ack_policy: AckPolicy::EndOfCycle,
            mbuf_pool: 8192,
            rss_probe_limit: 512,
            syn_cookies: false,
            syn_backlog: 65_536,
            syn_cookie_bucket_ns: 1_000_000_000,
            batch_rx: false,
        }
    }
}

impl StackConfig {
    /// A configuration with microsecond-scale retransmission floors, as
    /// the paper's incast discussion proposes (16 µs resolution timers).
    pub fn low_latency() -> StackConfig {
        StackConfig {
            min_rto_ns: 1_000_000,     // 1 ms floor.
            max_rto_ns: 1_000_000_000, // Cap backoff at 1 s.
            ..StackConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = StackConfig::default();
        assert_eq!(c.mss, 1460);
        assert!(c.recv_window <= 65_535);
        assert!(c.min_rto_ns < c.max_rto_ns);
    }

    #[test]
    fn low_latency_profile() {
        let c = StackConfig::low_latency();
        assert!(c.min_rto_ns <= 1_000_000);
    }
}
