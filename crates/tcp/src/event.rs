//! Upcall events — the stack-side source of the paper's event conditions.
//!
//! Table 1 of the paper defines five event conditions; [`TcpEvent`] maps
//! onto them one-to-one. The IX dataplane copies these into the
//! user-visible event-condition array; the Linux model translates them
//! into socket readiness (epoll) instead. Keeping the enum here lets both
//! execution models share the protocol code.

use ix_net::ip::Ipv4Addr;
use ix_testkit::Bytes;

/// Identifies a flow within one shard, with a generation tag so stale
/// handles (to closed-and-reused tuples) are rejected rather than
/// misdirected — part of the dataplane's syscall validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    /// Packed tuple key: remote IP (32) | remote port (16) | local port (16).
    pub key: u64,
    /// Generation counter at flow creation.
    pub gen: u32,
}

impl FlowId {
    /// Packs a key from tuple components.
    pub fn pack(remote_ip: Ipv4Addr, remote_port: u16, local_port: u16) -> u64 {
        (remote_ip.0 as u64) << 32 | (remote_port as u64) << 16 | local_port as u64
    }

    /// The remote IP from the packed key.
    pub fn remote_ip(&self) -> Ipv4Addr {
        Ipv4Addr((self.key >> 32) as u32)
    }

    /// The remote port from the packed key.
    pub fn remote_port(&self) -> u16 {
        (self.key >> 16) as u16
    }

    /// The local port from the packed key.
    pub fn local_port(&self) -> u16 {
        self.key as u16
    }
}

/// Why a connection died (the `dead` event's `reason` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadReason {
    /// The peer sent a FIN and the close handshake completed (or the peer
    /// half-closed; no more data will arrive).
    PeerFin,
    /// The peer reset the connection.
    PeerReset,
    /// Retransmission retries were exhausted.
    TimedOut,
    /// The local side closed/aborted it.
    LocalClose,
}

/// An upcall from the stack to its execution engine.
///
/// Field names follow Table 1 of the paper: `cookie` is the opaque
/// user-supplied value for user-level state lookup; `handle` (here
/// [`FlowId`]) is the kernel-level flow identifier.
#[derive(Debug)]
pub enum TcpEvent {
    /// A remotely initiated connection finished its handshake
    /// (Table 1: `knock{handle, src IP, src port}`).
    Knock {
        /// The new flow.
        flow: FlowId,
        /// Peer address.
        src_ip: Ipv4Addr,
        /// Peer port.
        src_port: u16,
    },
    /// A locally initiated connection finished opening
    /// (Table 1: `connected{cookie, outcome}`).
    Connected {
        /// The flow (valid only when `ok`).
        flow: FlowId,
        /// User cookie from `connect`.
        cookie: u64,
        /// Whether the handshake succeeded.
        ok: bool,
    },
    /// Payload arrived in order (Table 1: `recv{cookie, mbuf ptr, mbuf
    /// len}`). The payload is a refcounted view into the receive mbuf's
    /// own storage — nothing is copied between the ring and the
    /// application. The stack holds the mbuf until the consumer credits
    /// the bytes back via `recv_done`, which advances the window and
    /// frees the buffer (the paper's cooperative flow control, §3).
    Recv {
        /// The flow.
        flow: FlowId,
        /// User cookie.
        cookie: u64,
        /// View of exactly the newly delivered bytes, aliasing the
        /// receive buffer the stack retains until `recv_done`.
        payload: Bytes,
    },
    /// Previously sent bytes were acknowledged and/or the send window
    /// changed (Table 1: `sent{cookie, bytes sent, window size}`).
    Sent {
        /// The flow.
        flow: FlowId,
        /// User cookie.
        cookie: u64,
        /// Newly acknowledged payload bytes.
        bytes_acked: u32,
        /// Usable send window after this ACK.
        window: u32,
    },
    /// The connection terminated (Table 1: `dead{cookie, reason}`).
    Dead {
        /// The flow.
        flow: FlowId,
        /// User cookie.
        cookie: u64,
        /// Why.
        reason: DeadReason,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowid_pack_unpack() {
        let ip = Ipv4Addr::new(10, 1, 2, 3);
        let key = FlowId::pack(ip, 8080, 1234);
        let id = FlowId { key, gen: 7 };
        assert_eq!(id.remote_ip(), ip);
        assert_eq!(id.remote_port(), 8080);
        assert_eq!(id.local_port(), 1234);
    }

    #[test]
    fn distinct_tuples_distinct_keys() {
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        let a = FlowId::pack(ip, 1, 2);
        let b = FlowId::pack(ip, 2, 1);
        assert_ne!(a, b);
        let c = FlowId::pack(Ipv4Addr::new(10, 0, 0, 2), 1, 2);
        assert_ne!(a, c);
    }
}
