//! The TCP protocol control block.
//!
//! State and per-connection arithmetic (windows, RTT estimation,
//! congestion control). Segment processing logic lives in
//! [`crate::stack`], which drives these methods; keeping the PCB pure
//! makes the invariants unit-testable without a network.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use ix_mempool::Mbuf;
use ix_net::ip::Ipv4Addr;
use ix_net::tcp::{seq_le, seq_lt};
use ix_testkit::Bytes;
use ix_timerwheel::TimerId;

use crate::config::StackConfig;
use crate::event::FlowId;

/// RFC 793 connection states (LISTEN is represented by the shard's
/// listener table rather than a PCB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent, awaiting ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// Local close sent, awaiting ACK of FIN.
    FinWait1,
    /// FIN acknowledged, awaiting peer FIN.
    FinWait2,
    /// Simultaneous close: FIN exchanged, awaiting final ACK.
    Closing,
    /// Peer FIN received; local side may still send.
    CloseWait,
    /// Local FIN sent after peer's; awaiting final ACK.
    LastAck,
    /// Quarantine before tuple reuse.
    TimeWait,
    /// Gone.
    Closed,
}

/// A segment held for possible retransmission.
#[derive(Debug)]
pub struct TxSeg {
    /// First sequence number.
    pub seq: u32,
    /// Payload bytes (empty for a bare FIN). A refcounted view into the
    /// storage block the application handed to `send`, so queuing and
    /// retransmitting never copy payload — the zero-copy contract of the
    /// paper's `sendv` (§3: buffers stay immutable until acknowledged).
    pub data: Bytes,
    /// Whether this segment carries FIN.
    pub fin: bool,
    /// Transmit timestamp (ns), for RTT sampling.
    pub tx_time_ns: u64,
    /// Set when retransmitted (Karn's rule: no RTT sample).
    pub retransmitted: bool,
}

impl TxSeg {
    /// Sequence space this segment occupies (payload + FIN).
    pub fn seq_len(&self) -> u32 {
        self.data.len() as u32 + self.fin as u32
    }
}

/// Which timer fired, for wheel payload dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout.
    Rto,
    /// Zero-window probe.
    Persist,
    /// TIME_WAIT expiry.
    TimeWait,
    /// Delayed-ACK timeout.
    DelAck,
}

/// The protocol control block for one connection.
#[derive(Debug)]
pub struct Tcb {
    /// Connection state.
    pub state: TcpState,
    /// Flow identity (remote tuple + generation).
    pub id: FlowId,
    /// Opaque user value attached at `connect`/`accept`.
    pub cookie: u64,
    /// Peer address (also packed in `id`, kept unpacked for the hot path).
    pub remote_ip: Ipv4Addr,
    /// Peer port.
    pub remote_port: u16,
    /// Local port.
    pub local_port: u16,

    // --- Send state (RFC 793 names) ---
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Peer-advertised window.
    pub snd_wnd: u32,
    /// Retransmission queue.
    pub rtq: VecDeque<TxSeg>,
    /// FIN has been queued/sent.
    pub fin_queued: bool,

    // --- Congestion control (NewReno) ---
    /// Congestion window, bytes.
    pub cwnd: u32,
    /// Slow-start threshold, bytes.
    pub ssthresh: u32,
    /// Duplicate ACK counter.
    pub dup_acks: u32,
    /// In fast recovery until `snd_una` passes this point.
    pub recover: Option<u32>,
    /// Open loss-recovery episode: `(start_ns, recovery_point)` captured
    /// at the first loss signal (RTO fire or fast-retransmit entry).
    /// Cleared — and its duration folded into
    /// `StackStats::max_recovery_ns` — once the cumulative ACK reaches
    /// the recovery point.
    pub recovery_episode: Option<(u64, u32)>,

    // --- Receive state ---
    /// Next expected sequence number.
    pub rcv_nxt: u32,
    /// Maximum receive window (buffer size).
    pub rcv_buf: u32,
    /// Bytes delivered to the consumer but not yet credited back via
    /// `recv_done` — these shrink the advertised window (IX's cooperative
    /// flow control, §3).
    pub rcv_outstanding: u32,
    /// Receive buffers delivered in order whose bytes the application
    /// has not yet credited back: the mbufs backing the `Bytes` views in
    /// outstanding `Recv` events, oldest first. `recv_done` releases
    /// them front-to-back as credit accumulates, returning each to its
    /// owning pool — Table 1's "frees memory buffers".
    pub rx_held: VecDeque<Mbuf>,
    /// `recv_done` credit accumulated toward releasing the front of
    /// `rx_held` (credits need not align with delivery boundaries).
    pub rx_front_credit: u32,
    /// Out-of-order segments keyed by start sequence: the received
    /// mbufs themselves, trimmed in place when drained — reassembly
    /// buffers the buffer, not a copy of it.
    pub ooo: BTreeMap<u32, Mbuf>,
    /// Bytes held in `ooo`.
    pub ooo_bytes: u32,
    /// An ACK should be emitted for this connection.
    pub need_ack: bool,
    /// Peer's FIN sequence (consumed when in-order).
    pub peer_fin: Option<u32>,
    /// Last window we advertised (for window-update decisions).
    pub adv_wnd_last: u32,
    /// Negotiated shift applied to windows the peer sends us.
    pub snd_wscale: u8,
    /// Negotiated shift we apply to windows we advertise.
    pub rcv_wscale: u8,

    // --- RTT estimation (Jacobson/Karels) ---
    /// Smoothed RTT, ns (0 until first sample).
    pub srtt_ns: u64,
    /// RTT variance, ns.
    pub rttvar_ns: u64,
    /// Current RTO, ns.
    pub rto_ns: u64,
    /// Consecutive retransmissions (for backoff and death).
    pub retries: u32,

    // --- Timers ---
    /// Pending RTO/SYN timer.
    pub rto_timer: Option<TimerId>,
    /// Pending persist (zero-window probe) timer.
    pub persist_timer: Option<TimerId>,
    /// Pending TIME_WAIT timer.
    pub timewait_timer: Option<TimerId>,
    /// Pending delayed-ACK timer.
    pub delack_timer: Option<TimerId>,

    // --- Migration carry-state (§4.4) ---
    /// Residual delay of the RTO timer when `extract_flows` cancelled it
    /// on the source wheel; `absorb_flows` re-arms the destination wheel
    /// with the same remainder. Timer *identity* cannot migrate (wheel
    /// slots are per-core), and re-arming at the full interval would let
    /// frequent migration postpone a retransmission indefinitely — so
    /// the remaining time is the state that moves.
    pub migrate_rto_ns: Option<u64>,
    /// Residual delay of the persist (zero-window probe) timer.
    pub migrate_persist_ns: Option<u64>,
    /// Residual delay of the TIME_WAIT quarantine.
    pub migrate_timewait_ns: Option<u64>,
    /// Residual delay of the delayed-ACK timer.
    pub migrate_delack_ns: Option<u64>,

    /// RSS redirection-table bucket this flow hashes into (`hash &
    /// 0x7f`, the NIC's Toeplitz over the reply tuple), computed once
    /// when the shard adopts the flow and carried across migrations so
    /// neither extract nor absorb re-runs the per-bit software hash.
    /// [`NO_BUCKET`](crate::flow_table::NO_BUCKET) until a shard
    /// computes it.
    pub rss_bucket: u16,

    /// Effective MSS for this connection (min of ours and peer's).
    pub mss: u32,
    /// When the SYN / SYN-ACK was (last) sent, for seeding the RTT
    /// estimator from the handshake.
    pub open_time_ns: u64,
    /// When the connection last retransmitted anything. RTT samples are
    /// taken only from segments first sent after this instant (Karn's
    /// rule extended to cumulative ACKs, which would otherwise fold
    /// retransmission stalls of earlier segments into the estimate).
    pub last_retx_ns: u64,
}

impl Tcb {
    /// Creates a PCB in the given initial state.
    pub fn new(
        cfg: &StackConfig,
        id: FlowId,
        cookie: u64,
        state: TcpState,
        iss: u32,
    ) -> Tcb {
        Tcb {
            state,
            id,
            cookie,
            remote_ip: id.remote_ip(),
            remote_port: id.remote_port(),
            local_port: id.local_port(),
            rss_bucket: crate::flow_table::NO_BUCKET,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            rtq: VecDeque::new(),
            fin_queued: false,
            cwnd: cfg.initial_cwnd_segs * cfg.mss,
            ssthresh: u32::MAX / 2,
            dup_acks: 0,
            recover: None,
            recovery_episode: None,
            rcv_nxt: 0,
            rcv_buf: cfg.recv_window,
            rcv_outstanding: 0,
            rx_held: VecDeque::new(),
            rx_front_credit: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            need_ack: false,
            peer_fin: None,
            adv_wnd_last: cfg.recv_window,
            snd_wscale: 0,
            rcv_wscale: 0,
            srtt_ns: 0,
            rttvar_ns: 0,
            rto_ns: cfg.min_rto_ns.max(1_000_000_000),
            retries: 0,
            rto_timer: None,
            persist_timer: None,
            timewait_timer: None,
            delack_timer: None,
            migrate_rto_ns: None,
            migrate_persist_ns: None,
            migrate_timewait_ns: None,
            migrate_delack_ns: None,
            mss: cfg.mss,
            open_time_ns: 0,
            last_retx_ns: 0,
        }
    }

    /// Bytes in flight (sent, unacknowledged).
    pub fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Usable send window right now: how many *new* payload bytes TCP
    /// will accept from the application. This is what the paper's `sendv`
    /// returns — the sliding window constraint surfaced to user code.
    pub fn usable_window(&self) -> u32 {
        let wnd = self.snd_wnd.min(self.cwnd);
        wnd.saturating_sub(self.flight())
    }

    /// The receive window to advertise: buffer minus bytes the
    /// application still holds (not `recv_done`) minus out-of-order bytes
    /// already buffered, clamped to what the negotiated scale can carry.
    pub fn advertised_window(&self) -> u32 {
        self.rcv_buf
            .saturating_sub(self.rcv_outstanding)
            .saturating_sub(self.ooo_bytes)
            .min(65_535u32 << self.rcv_wscale)
    }

    /// The on-wire (scaled-down) form of [`Tcb::advertised_window`].
    pub fn advertised_window_field(&self) -> u16 {
        (self.advertised_window() >> self.rcv_wscale).min(65_535) as u16
    }

    /// Records an RTT sample (Jacobson/Karels EWMA), updating the RTO.
    pub fn rtt_sample(&mut self, sample_ns: u64, cfg: &StackConfig) {
        if self.srtt_ns == 0 {
            self.srtt_ns = sample_ns;
            self.rttvar_ns = sample_ns / 2;
        } else {
            let err = sample_ns.abs_diff(self.srtt_ns);
            self.rttvar_ns = (3 * self.rttvar_ns + err) / 4;
            self.srtt_ns = (7 * self.srtt_ns + sample_ns) / 8;
        }
        self.rto_ns = (self.srtt_ns + 4 * self.rttvar_ns).clamp(cfg.min_rto_ns, cfg.max_rto_ns);
    }

    /// Congestion-window growth on a new (non-duplicate) ACK covering
    /// `acked` bytes.
    pub fn cwnd_on_ack(&mut self, acked: u32) {
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per MSS acked.
            self.cwnd = self.cwnd.saturating_add(acked.min(self.mss));
        } else {
            // Congestion avoidance: ~one MSS per RTT.
            let inc = (self.mss as u64 * self.mss as u64 / self.cwnd.max(1) as u64).max(1);
            self.cwnd = self.cwnd.saturating_add(inc as u32);
        }
    }

    /// Multiplicative decrease on loss detection (fast retransmit).
    pub fn cwnd_on_fast_retransmit(&mut self) {
        self.ssthresh = (self.flight() / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.recover = Some(self.snd_nxt);
    }

    /// Collapse on retransmission timeout.
    pub fn cwnd_on_rto(&mut self) {
        self.ssthresh = (self.flight() / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.dup_acks = 0;
        self.recover = None;
    }

    /// Whether `ack` acknowledges new data.
    pub fn ack_is_new(&self, ack: u32) -> bool {
        seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt)
    }

    /// Drops acknowledged segments from the retransmission queue,
    /// returning `(payload_bytes_acked, rtt_sample_ns)`.
    pub fn reap_rtq(&mut self, ack: u32, now_ns: u64) -> (u32, Option<u64>) {
        let mut bytes = 0u32;
        let mut sample = None;
        while let Some(seg) = self.rtq.front() {
            let end = seg.seq.wrapping_add(seg.seq_len());
            if seq_le(end, ack) {
                if !seg.retransmitted && seg.tx_time_ns >= self.last_retx_ns {
                    sample = Some(now_ns.saturating_sub(seg.tx_time_ns));
                }
                bytes += seg.data.len() as u32;
                self.rtq.pop_front();
            } else {
                break;
            }
        }
        (bytes, sample)
    }

    /// True when every byte (and FIN) we ever sent is acknowledged.
    pub fn all_sent_acked(&self) -> bool {
        self.snd_una == self.snd_nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(state: TcpState) -> Tcb {
        let cfg = StackConfig::default();
        let id = FlowId {
            key: FlowId::pack(Ipv4Addr::new(10, 0, 0, 2), 80, 1234),
            gen: 1,
        };
        Tcb::new(&cfg, id, 0, state, 1000)
    }

    #[test]
    fn usable_window_respects_cwnd_and_peer() {
        let mut t = mk(TcpState::Established);
        t.snd_wnd = 100_000;
        t.cwnd = 5_000;
        assert_eq!(t.usable_window(), 5_000);
        t.snd_nxt = t.snd_una.wrapping_add(4_000);
        assert_eq!(t.flight(), 4_000);
        assert_eq!(t.usable_window(), 1_000);
        t.cwnd = 100_000;
        t.snd_wnd = 4_500;
        assert_eq!(t.usable_window(), 500);
    }

    #[test]
    fn advertised_window_shrinks_with_held_buffers() {
        let mut t = mk(TcpState::Established);
        assert_eq!(t.advertised_window(), 65_535);
        t.rcv_outstanding = 10_000;
        assert_eq!(t.advertised_window(), 55_535);
        t.ooo_bytes = 55_535;
        assert_eq!(t.advertised_window(), 0);
    }

    #[test]
    fn rtt_estimation_converges() {
        let cfg = StackConfig::default();
        let mut t = mk(TcpState::Established);
        for _ in 0..50 {
            t.rtt_sample(10_000, &cfg); // Constant 10 µs RTT.
        }
        assert!((t.srtt_ns as i64 - 10_000).abs() < 500, "srtt {}", t.srtt_ns);
        // RTO clamps at the configured floor.
        assert_eq!(t.rto_ns, cfg.min_rto_ns);
    }

    #[test]
    fn rtt_spike_inflates_rto() {
        // min_rto_ns low so the estimator shows through.
        let cfg = StackConfig { min_rto_ns: 1_000, ..StackConfig::default() };
        let mut t = mk(TcpState::Established);
        for _ in 0..20 {
            t.rtt_sample(10_000, &cfg);
        }
        let before = t.rto_ns;
        t.rtt_sample(1_000_000, &cfg);
        assert!(t.rto_ns > before * 10);
    }

    #[test]
    fn slow_start_then_avoidance() {
        let mut t = mk(TcpState::Established);
        t.cwnd = 2 * t.mss;
        t.ssthresh = 8 * t.mss;
        // Slow start doubles per round.
        t.cwnd_on_ack(t.mss);
        assert_eq!(t.cwnd, 3 * t.mss);
        t.cwnd = 10 * t.mss; // Past ssthresh.
        let before = t.cwnd;
        t.cwnd_on_ack(t.mss);
        assert!(t.cwnd > before && t.cwnd < before + t.mss / 4);
    }

    #[test]
    fn loss_reactions() {
        let mut t = mk(TcpState::Established);
        t.snd_nxt = t.snd_una.wrapping_add(20_000);
        t.cwnd = 20_000;
        t.cwnd_on_fast_retransmit();
        assert_eq!(t.ssthresh, 10_000);
        assert_eq!(t.cwnd, 10_000 + 3 * t.mss);
        t.cwnd_on_rto();
        assert_eq!(t.cwnd, t.mss);
    }

    #[test]
    fn rtq_reaping_and_rtt_sampling() {
        let mut t = mk(TcpState::Established);
        t.snd_una = 1000;
        t.rtq.push_back(TxSeg {
            seq: 1000,
            data: vec![0; 500].into(),
            fin: false,
            tx_time_ns: 100,
            retransmitted: false,
        });
        t.rtq.push_back(TxSeg {
            seq: 1500,
            data: vec![0; 500].into(),
            fin: false,
            tx_time_ns: 200,
            retransmitted: true,
        });
        t.snd_nxt = 2000;
        // ACK covers only the first segment.
        let (bytes, sample) = t.reap_rtq(1500, 10_100);
        assert_eq!(bytes, 500);
        assert_eq!(sample, Some(10_000));
        assert_eq!(t.rtq.len(), 1);
        // ACK covers the retransmitted one: no sample (Karn).
        let (bytes, sample) = t.reap_rtq(2000, 20_000);
        assert_eq!(bytes, 500);
        assert_eq!(sample, None);
        assert!(t.rtq.is_empty());
    }

    #[test]
    fn seq_wraparound_in_reap() {
        let mut t = mk(TcpState::Established);
        let base = u32::MAX - 100;
        t.snd_una = base;
        t.snd_nxt = base.wrapping_add(400);
        t.rtq.push_back(TxSeg {
            seq: base,
            data: vec![0; 400].into(),
            fin: false,
            tx_time_ns: 0,
            retransmitted: false,
        });
        let ack = base.wrapping_add(400); // Wrapped past zero.
        assert!(t.ack_is_new(ack));
        let (bytes, _) = t.reap_rtq(ack, 1);
        assert_eq!(bytes, 400);
    }

    #[test]
    fn fin_occupies_sequence_space() {
        let seg = TxSeg {
            seq: 5,
            data: vec![0; 10].into(),
            fin: true,
            tx_time_ns: 0,
            retransmitted: false,
        };
        assert_eq!(seg.seq_len(), 11);
    }
}
